//! Transmission control: adaptive retransmission timeouts and paced
//! blast rounds.
//!
//! The paper's protocols are tuned by two knobs the text calls out
//! explicitly: the retransmission interval `Tr` (Figures 5/6 sweep it
//! from `To(D)` to `100 × To(1)`) and the rate at which a blast is
//! offered to the receiving interface (§3's *interface errors* are
//! exactly what happens when the sender overruns it).  On 1985 hardware
//! both were fixed constants; on a modern stack neither survives
//! contact with a shared socket buffer:
//!
//! * a fixed `Tr` is either so short it fires spuriously under load or
//!   so long that one lost round-0 packet stalls the transfer for the
//!   whole interval — [`RttEstimator`] replaces it with the classic
//!   Jacobson/Karn estimator (SRTT + RTTVAR, exponential backoff on
//!   retransmission, samples only from unambiguous exchanges);
//! * dumping a whole round into the socket in one loop overruns the
//!   receive buffer exactly like the paper's single-buffered interface —
//!   [`Pacer`] spreads each round into bursts separated by a configured
//!   gap, expressed through the ordinary timer machinery
//!   ([`PACE_TIMER`]) so every driver honours it without new I/O
//!   vocabulary.
//!
//! Both knobs keep their paper-faithful degenerate modes:
//! [`AdaptiveTimeout::Fixed`] is the fixed `Tr` every analytic-model
//! test pins, and [`PacingConfig::off`] is the paper's full-speed blast.

use std::time::Duration;

use crate::api::TimerToken;

/// The timer token engines arm between paced bursts of one round.
///
/// Chosen above `u32::MAX` so it can never collide with the
/// sliding-window sender's per-sequence tokens (sequence numbers are
/// `u32`) nor with the blast/stop-and-wait retransmission token `0`.
pub const PACE_TIMER: TimerToken = TimerToken(1 << 32);

/// Retransmission-timeout policy for a transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AdaptiveTimeout {
    /// The paper's fixed retransmission interval `Tr`: every timeout
    /// waits exactly this long, regardless of observed round trips.
    /// The degenerate mode the analytic model and the calibrated
    /// simulator tests pin.
    Fixed(Duration),
    /// Jacobson/Karn adaptive RTO: seeded at `initial` until the first
    /// round-trip sample, then `SRTT + 4 × RTTVAR`, clamped to
    /// `[min, max]`, doubled on every retransmission timeout.
    Adaptive {
        /// RTO before the first RTT sample.
        initial: Duration,
        /// Lower clamp on the computed RTO.
        min: Duration,
        /// Upper clamp on the computed RTO (and on backoff).
        max: Duration,
    },
}

impl AdaptiveTimeout {
    /// Adaptive defaults for a LAN/loopback path: start at 25 ms (well
    /// under the paper's 173 ms `To(D)`), clamp to [2 ms, 2 s].
    pub fn lan() -> Self {
        AdaptiveTimeout::Adaptive {
            initial: Duration::from_millis(25),
            min: Duration::from_millis(2),
            max: Duration::from_secs(2),
        }
    }

    /// The timeout in force before any RTT sample: the fixed value, or
    /// the adaptive seed.
    pub fn initial(&self) -> Duration {
        match self {
            AdaptiveTimeout::Fixed(d) => *d,
            AdaptiveTimeout::Adaptive { initial, .. } => *initial,
        }
    }

    /// True for the adaptive mode.
    pub fn is_adaptive(&self) -> bool {
        matches!(self, AdaptiveTimeout::Adaptive { .. })
    }

    /// Validation error, if any (used by `ProtocolConfig::validated`).
    pub(crate) fn invalid(&self) -> Option<&'static str> {
        match self {
            AdaptiveTimeout::Fixed(d) if d.is_zero() => Some("retransmission timeout must be > 0"),
            AdaptiveTimeout::Adaptive { initial, min, max } => {
                if initial.is_zero() || min.is_zero() {
                    Some("adaptive timeout bounds must be > 0")
                } else if min > max || initial > max || initial < min {
                    Some("adaptive timeout requires min <= initial <= max")
                } else {
                    None
                }
            }
            _ => None,
        }
    }
}

impl From<Duration> for AdaptiveTimeout {
    /// A plain `Duration` is the fixed (paper) mode — so existing
    /// `cfg.timeout = Duration::from_millis(15).into()` call sites stay
    /// one-liners.
    fn from(d: Duration) -> Self {
        AdaptiveTimeout::Fixed(d)
    }
}

/// Jacobson/Karn round-trip estimator (RFC 6298 constants: gains 1/8
/// and 1/4, variance multiplier 4), with the fixed mode folded in as a
/// degenerate case so engines hold exactly one timeout source.
///
/// Karn's algorithm is the *caller's* half of the contract: feed
/// [`sample`](RttEstimator::sample) only round trips whose request was
/// transmitted exactly once (an ack following any retransmission is
/// ambiguous), and call [`backoff`](RttEstimator::backoff) on every
/// retransmission timeout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RttEstimator {
    /// Smoothed RTT in nanoseconds; `None` until the first sample.
    srtt_ns: Option<u64>,
    /// RTT variance in nanoseconds.
    rttvar_ns: u64,
    /// Current RTO in nanoseconds.
    rto_ns: u64,
    min_ns: u64,
    max_ns: u64,
    /// Fixed mode: `sample` and `backoff` are no-ops.
    fixed: bool,
}

impl RttEstimator {
    /// An estimator implementing `policy`.
    pub fn new(policy: &AdaptiveTimeout) -> Self {
        match *policy {
            AdaptiveTimeout::Fixed(d) => {
                let ns = d.as_nanos() as u64;
                RttEstimator {
                    srtt_ns: None,
                    rttvar_ns: 0,
                    rto_ns: ns,
                    min_ns: ns,
                    max_ns: ns,
                    fixed: true,
                }
            }
            AdaptiveTimeout::Adaptive { initial, min, max } => RttEstimator {
                srtt_ns: None,
                rttvar_ns: 0,
                rto_ns: initial.as_nanos() as u64,
                min_ns: min.as_nanos() as u64,
                max_ns: max.as_nanos() as u64,
                fixed: false,
            },
        }
    }

    /// The retransmission timeout currently in force.
    pub fn rto(&self) -> Duration {
        Duration::from_nanos(self.rto_ns)
    }

    /// The smoothed round-trip estimate, once at least one sample has
    /// been taken (always `None` in fixed mode).
    pub fn srtt(&self) -> Option<Duration> {
        self.srtt_ns.map(Duration::from_nanos)
    }

    /// Feed one **unambiguous** round-trip measurement (Karn: the
    /// request was transmitted exactly once).  No-op in fixed mode.
    pub fn sample(&mut self, rtt: Duration) {
        if self.fixed {
            return;
        }
        let r = rtt.as_nanos() as u64;
        match self.srtt_ns {
            None => {
                // RFC 6298 §2.2: SRTT = R, RTTVAR = R/2.
                self.srtt_ns = Some(r);
                self.rttvar_ns = r / 2;
            }
            Some(srtt) => {
                // RTTVAR = 3/4·RTTVAR + 1/4·|SRTT − R|;
                // SRTT = 7/8·SRTT + 1/8·R.
                let delta = srtt.abs_diff(r);
                self.rttvar_ns = self.rttvar_ns - self.rttvar_ns / 4 + delta / 4;
                self.srtt_ns = Some(srtt - srtt / 8 + r / 8);
            }
        }
        let srtt = self.srtt_ns.expect("just set");
        self.rto_ns = (srtt + 4 * self.rttvar_ns.max(1)).clamp(self.min_ns, self.max_ns);
    }

    /// Exponential backoff after a retransmission timeout (Karn's
    /// second half), capped at the configured maximum.  No-op in fixed
    /// mode.
    pub fn backoff(&mut self) {
        if self.fixed {
            return;
        }
        self.rto_ns = self.rto_ns.saturating_mul(2).min(self.max_ns);
    }
}

/// How a multi-packet round is offered to the network.
///
/// A config with `max_burst == 0` is *static*: every burst is exactly
/// [`burst`](PacingConfig::burst) packets, forever (the behaviour every
/// exact-schedule test pins).  Setting `max_burst > 0` makes the
/// [`Pacer`] **AIMD-adaptive**: clean rounds grow the burst additively
/// by [`growth`](PacingConfig::growth) up to `max_burst`, and every
/// loss signal (NACK or retransmission timeout) halves it down to
/// [`min_burst`](PacingConfig::min_burst) — Reno-style probing with the
/// burst size as the congestion window, the gap as the clock.
///
/// Setting [`rate_based`](PacingConfig::rate_based) on top of the AIMD
/// bounds switches the pacer to **delivery-rate** (BBR-flavoured)
/// pacing: the burst tracks `pacing_gain × max_rate × min_rtt` from a
/// [`DeliveryRateEstimator`] fed by the engines' solicit/ack rate
/// samples, with the AIMD machinery retained as the loss backstop (see
/// [`Pacer`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PacingConfig {
    /// Packets emitted back-to-back before the engine yields for
    /// [`gap`](PacingConfig::gap).  `0` disables pacing (the paper's
    /// full-speed blast).  In AIMD mode this is the *initial* burst.
    pub burst: u32,
    /// Inter-burst gap, expressed through [`PACE_TIMER`].
    pub gap: Duration,
    /// AIMD floor: the burst never shrinks below this.  Ignored when
    /// `max_burst == 0` (static pacing).
    pub min_burst: u32,
    /// AIMD ceiling: the burst never grows above this.  `0` disables
    /// adaptation entirely (the pre-AIMD static pacer).
    pub max_burst: u32,
    /// Additive increase per clean round, in packets.
    pub growth: u32,
    /// Pace to the measured bandwidth-delay product instead of probing
    /// for loss.  Requires the AIMD bounds (`max_burst > 0`), which
    /// become the recovery backstop.
    pub rate_based: bool,
}

impl Default for PacingConfig {
    fn default() -> Self {
        PacingConfig::off()
    }
}

impl PacingConfig {
    /// The smallest socket wait the I/O tier should ever issue: waits
    /// below this are indistinguishable from "poll now" at kernel timer
    /// resolution, and `std`'s socket timeouts reject zero outright.
    /// Kept well under the shortest sane inter-burst [`gap`] so pacing
    /// deadlines are never rounded up into scheduler noise — the single
    /// authority for the floor the UDP channel and driver used to
    /// hard-code separately.
    ///
    /// [`gap`]: PacingConfig::gap
    pub const MIN_WAIT: Duration = Duration::from_micros(50);

    /// No pacing: every round goes out in one loop (the paper's mode).
    pub fn off() -> Self {
        PacingConfig {
            burst: 0,
            gap: Duration::ZERO,
            min_burst: 0,
            max_burst: 0,
            growth: 0,
            rate_based: false,
        }
    }

    /// Pace a *fixed* `burst` packets per `gap` (no adaptation).
    pub fn new(burst: u32, gap: Duration) -> Self {
        PacingConfig {
            burst,
            gap,
            min_burst: 0,
            max_burst: 0,
            growth: 0,
            rate_based: false,
        }
    }

    /// AIMD pacing: start at `burst` packets per `gap`, grow by
    /// `growth` per clean round up to `max_burst`, halve on loss down
    /// to `min_burst`.
    pub fn aimd(burst: u32, gap: Duration, min_burst: u32, max_burst: u32, growth: u32) -> Self {
        PacingConfig {
            burst,
            gap,
            min_burst,
            max_burst,
            growth,
            rate_based: false,
        }
    }

    /// Delivery-rate (BBR-flavoured) pacing: burst tracks
    /// `pacing_gain × max_rate × min_rtt` once the estimator has
    /// samples (starting from `burst` until then), clamped to
    /// `[min_burst, max_burst]`.  Loss or a retransmission timeout
    /// snaps the rate cap down and falls back to the AIMD machinery
    /// (`growth` per clean round) until the backstop window regrows to
    /// the rate-derived target.
    pub fn rate_based(
        burst: u32,
        gap: Duration,
        min_burst: u32,
        max_burst: u32,
        growth: u32,
    ) -> Self {
        PacingConfig {
            burst,
            gap,
            min_burst,
            max_burst,
            growth,
            rate_based: true,
        }
    }

    /// [`lan`](PacingConfig::lan) with delivery-rate pacing on top: the
    /// same initial burst and AIMD backstop bounds, but steady state is
    /// governed by the measured bandwidth-delay product.
    pub fn rate_lan() -> Self {
        let mut cfg = PacingConfig::lan();
        cfg.rate_based = true;
        cfg
    }

    /// LAN/loopback defaults: start at 64 packets per 250 µs (≈ 360 MB/s
    /// at 1400-byte payloads) and let AIMD probe between 4 and 256.
    /// The old static preset (32 / 500 µs) was sized for drivers that
    /// could not *wait* a sub-millisecond gap and had to spin it; with
    /// the event-driven `NetIo` waits the gap is honest, so the initial
    /// rate can sit near the link and the shrink-on-loss half of AIMD —
    /// down to ~22 MB/s at the floor — covers the flooded-`SO_RCVBUF`
    /// case the conservative preset existed for.
    pub fn lan() -> Self {
        PacingConfig::aimd(64, Duration::from_micros(250), 4, 256, 32)
    }

    /// True when pacing is in force.
    pub fn enabled(&self) -> bool {
        self.burst > 0 && !self.gap.is_zero()
    }

    /// True when the burst size adapts (AIMD or rate-based mode).
    pub fn is_adaptive(&self) -> bool {
        self.enabled() && self.max_burst > 0
    }

    /// True when the burst is governed by the delivery-rate estimator.
    pub fn is_rate_based(&self) -> bool {
        self.is_adaptive() && self.rate_based
    }

    /// Validation error, if any.
    pub(crate) fn invalid(&self) -> Option<&'static str> {
        if self.burst > 0 && self.gap.is_zero() {
            Some("pacing burst requires a non-zero gap")
        } else if self.rate_based && self.max_burst == 0 {
            Some("rate-based pacing requires AIMD backstop bounds (max_burst > 0)")
        } else if self.max_burst > 0 {
            if self.min_burst == 0 {
                Some("AIMD pacing requires min_burst >= 1")
            } else if self.min_burst > self.burst || self.burst > self.max_burst {
                Some("AIMD pacing requires min_burst <= burst <= max_burst")
            } else if self.growth == 0 && self.min_burst != self.max_burst {
                Some("AIMD pacing requires growth >= 1")
            } else {
                None
            }
        } else {
            None
        }
    }
}

/// Rounds of delivery-rate samples the windowed-max filter keeps.  A
/// loss-free round's sample stays influential for this many rounds, so
/// one slow (queued-behind-cross-traffic) round cannot collapse the
/// pacing rate.
pub const RATE_WINDOW: usize = 8;

/// Round-trip samples the windowed-min RTT filter keeps — longer than
/// [`RATE_WINDOW`] because the propagation floor drifts far slower than
/// the delivery rate.
pub const RTT_WINDOW: usize = 32;

/// Windowed max-filter over per-round delivery-rate samples plus a
/// windowed min-filter over round-trip samples — the two measurements
/// BBR-style pacing needs to estimate the bandwidth-delay product.
///
/// Storage is fixed-size rings so the estimator is `Copy`, costs no
/// heap, and can ride the engines' zero-allocation hot path (and the
/// multi-blast chunk carry-over, which copies the whole [`Pacer`]).
///
/// **App-limited rounds are excluded from the rate window**: a round
/// smaller than the pacer's burst budget measures how much data the
/// application had, not what the path can carry, so folding it in would
/// only ever drag the max down.  Its RTT still feeds the min-filter —
/// a short round measures the propagation floor just fine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeliveryRateEstimator {
    /// Delivery-rate samples in bytes/sec; only `rate_len` slots valid.
    rates_bps: [f64; RATE_WINDOW],
    /// Packets/sec twin of `rates_bps`, so burst arithmetic needs no
    /// bytes-per-packet assumption.
    rates_pps: [f64; RATE_WINDOW],
    rate_next: usize,
    rate_len: usize,
    /// Round-trip samples in nanoseconds; only `rtt_len` slots valid.
    rtts_ns: [u64; RTT_WINDOW],
    rtt_next: usize,
    rtt_len: usize,
    /// Total samples offered (app-limited included).
    samples: u64,
    /// Samples excluded from the rate window as app-limited.
    app_limited: u64,
}

impl Default for DeliveryRateEstimator {
    fn default() -> Self {
        DeliveryRateEstimator::new()
    }
}

impl DeliveryRateEstimator {
    /// An empty estimator.
    pub fn new() -> Self {
        DeliveryRateEstimator {
            rates_bps: [0.0; RATE_WINDOW],
            rates_pps: [0.0; RATE_WINDOW],
            rate_next: 0,
            rate_len: 0,
            rtts_ns: [0; RTT_WINDOW],
            rtt_next: 0,
            rtt_len: 0,
            samples: 0,
            app_limited: 0,
        }
    }

    /// Fold in one per-round delivery sample: `packets`/`bytes` were
    /// acknowledged `interval` after the round began.  `app_limited`
    /// keeps the sample out of the rate window (its RTT still counts).
    /// Zero-interval or zero-packet samples carry no information and
    /// are ignored.
    pub fn on_sample(&mut self, packets: u32, bytes: u64, interval: Duration, app_limited: bool) {
        if interval.is_zero() || packets == 0 {
            return;
        }
        self.samples += 1;
        self.rtts_ns[self.rtt_next] = interval.as_nanos() as u64;
        self.rtt_next = (self.rtt_next + 1) % RTT_WINDOW;
        self.rtt_len = (self.rtt_len + 1).min(RTT_WINDOW);
        if app_limited {
            self.app_limited += 1;
            return;
        }
        let secs = interval.as_secs_f64();
        self.rates_bps[self.rate_next] = bytes as f64 / secs;
        self.rates_pps[self.rate_next] = f64::from(packets) / secs;
        self.rate_next = (self.rate_next + 1) % RATE_WINDOW;
        self.rate_len = (self.rate_len + 1).min(RATE_WINDOW);
    }

    /// Windowed-max delivery rate in bytes/sec (`0.0` until the first
    /// non-app-limited sample).
    pub fn max_rate_bps(&self) -> f64 {
        self.rates_bps[..self.rate_len]
            .iter()
            .fold(0.0, |m, &r| m.max(r))
    }

    /// Windowed-max delivery rate in packets/sec (`0.0` until sampled).
    pub fn max_rate_pps(&self) -> f64 {
        self.rates_pps[..self.rate_len]
            .iter()
            .fold(0.0, |m, &r| m.max(r))
    }

    /// Windowed-min round trip (`None` until the first sample).
    pub fn min_rtt(&self) -> Option<Duration> {
        self.rtts_ns[..self.rtt_len]
            .iter()
            .min()
            .map(|&ns| Duration::from_nanos(ns))
    }

    /// Snap the rate window down by `factor` (loss backstop: the old
    /// max was measured on a path that just dropped packets, so it no
    /// longer certifies that rate).  Fresh samples rebuild the window
    /// at whatever the path actually delivers.
    pub fn cut(&mut self, factor: f64) {
        for r in &mut self.rates_bps[..self.rate_len] {
            *r *= factor;
        }
        for r in &mut self.rates_pps[..self.rate_len] {
            *r *= factor;
        }
    }

    /// True once the rate window has at least one sample.
    pub fn has_rate(&self) -> bool {
        self.rate_len > 0
    }

    /// Total samples offered (app-limited included).
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Samples excluded from the rate window as app-limited.
    pub fn app_limited_samples(&self) -> u64 {
        self.app_limited
    }
}

/// The pacing-gain cycle of the rate-based mode: one probe-up phase
/// (send 25 % above the estimated rate to discover freed bandwidth),
/// one drain phase (undo the probe's queue), six cruise phases.  The
/// classic BBR ProbeBW schedule, advanced one phase per delivery
/// sample.
const GAIN_CYCLE: [f64; 8] = [1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0];

/// The gain-cycle phase loss recovery resets to: a cruise phase, so
/// the first post-recovery round does not immediately probe above the
/// freshly-cut rate.
const CRUISE_PHASE: u8 = 2;

/// A point-in-time view of one [`Pacer`]'s state, for metrics and the
/// perf harness's burst-trajectory records.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PacerSnapshot {
    /// The configured initial burst.
    pub initial_burst: u32,
    /// The burst size currently in force.
    pub burst: u32,
    /// The smallest burst the pacer ever shrank to.
    pub min_burst_seen: u32,
    /// Mean burst size over all signalled rounds (the current burst if
    /// no round has been signalled yet).
    pub mean_burst: f64,
    /// Rounds that completed without a loss signal.
    pub clean_rounds: u64,
    /// Loss signals received (NACKs + retransmission timeouts).
    pub loss_events: u64,
    /// Windowed-max estimated delivery rate, bytes/sec (`0.0` until the
    /// estimator has a non-app-limited sample).
    pub rate_bps: f64,
    /// Windowed-min round trip in microseconds (`0.0` until sampled).
    pub min_rtt_us: f64,
    /// Delivery samples folded into the estimator (app-limited
    /// included).
    pub rate_samples: u64,
    /// Samples excluded from the rate window as app-limited.
    pub app_limited_samples: u64,
    /// True while a rate-based pacer is in AIMD loss recovery.
    pub in_recovery: bool,
}

/// The per-engine pacing governor: answers "how many packets may this
/// burst emit" so the emission loops stay branch-light, and integrates
/// the engine's feedback signals into the burst size.
///
/// Three adaptive behaviours, chosen by the [`PacingConfig`]:
///
/// * **static** (`max_burst == 0`): the burst never moves;
/// * **AIMD**: clean rounds grow it additively, loss halves it;
/// * **rate-based** (`rate_based`): the burst tracks
///   `pacing_gain × max_rate × min_rtt` — the measured
///   bandwidth-delay product under the current gain-cycle phase —
///   from the engines' [`on_rate_sample`](Pacer::on_rate_sample)
///   feedback.  Loss snaps the rate window down and re-enters the AIMD
///   machinery ([`on_loss`](Pacer::on_loss) halves, clean rounds
///   regrow) until the backstop window reaches the rate-derived target
///   again.
#[derive(Debug, Clone, Copy)]
pub struct Pacer {
    cfg: PacingConfig,
    /// AIMD window: the burst in force in static/AIMD modes, and the
    /// recovery backstop in rate-based mode.
    burst: u32,
    min_seen: u32,
    rounds: u64,
    clean_rounds: u64,
    loss_events: u64,
    burst_sum: u64,
    est: DeliveryRateEstimator,
    /// Current `GAIN_CYCLE` phase (rate-based mode).
    cycle: u8,
    /// Rate-based mode: true while the AIMD backstop governs the burst
    /// after a loss, until it regrows to the rate-derived target.
    recovery: bool,
}

impl Pacer {
    /// A pacer enforcing `cfg`.
    pub fn new(cfg: PacingConfig) -> Self {
        Pacer {
            cfg,
            burst: cfg.burst,
            min_seen: cfg.burst,
            rounds: 0,
            clean_rounds: 0,
            loss_events: 0,
            burst_sum: 0,
            est: DeliveryRateEstimator::new(),
            cycle: 0,
            recovery: false,
        }
    }

    /// True when bursts are bounded.
    pub fn enabled(&self) -> bool {
        self.cfg.enabled()
    }

    /// True when the burst size adapts to loss signals.
    pub fn is_adaptive(&self) -> bool {
        self.cfg.is_adaptive()
    }

    /// True when the burst is governed by the delivery-rate estimator.
    pub fn is_rate_based(&self) -> bool {
        self.cfg.is_rate_based()
    }

    /// The delivery-rate estimator (telemetry and diagnostics).
    pub fn estimator(&self) -> &DeliveryRateEstimator {
        &self.est
    }

    /// True once at least one delivery sample has been taken — engines
    /// without pacing still feed samples, and their reports should show
    /// the measured rate.
    pub fn has_rate_samples(&self) -> bool {
        self.est.samples() > 0
    }

    /// The burst the rate-based mode would pace to right now:
    /// `pacing_gain × max_rate × min_rtt` in packets, clamped to the
    /// configured `[min_burst, max_burst]`.  `None` until the estimator
    /// has both a rate and an RTT.
    fn rate_target(&self) -> Option<u32> {
        let min_rtt = self.est.min_rtt()?;
        let pps = self.est.max_rate_pps();
        if pps <= 0.0 {
            return None;
        }
        let gain = GAIN_CYCLE[usize::from(self.cycle) % GAIN_CYCLE.len()];
        let bdp = (gain * pps * min_rtt.as_secs_f64()).round();
        let clamped = if bdp >= f64::from(u32::MAX) {
            u32::MAX
        } else {
            bdp as u32
        };
        Some(clamped.clamp(self.cfg.min_burst.max(1), self.cfg.max_burst))
    }

    /// The burst in force: the rate target when rate pacing governs,
    /// the AIMD window otherwise.
    fn effective_burst(&self) -> u32 {
        if self.cfg.is_rate_based() && !self.recovery {
            if let Some(target) = self.rate_target() {
                return target;
            }
        }
        self.burst
    }

    /// Packets the current burst may emit (`u32::MAX` when unpaced).
    pub fn burst_budget(&self) -> u32 {
        if self.cfg.enabled() {
            self.effective_burst()
        } else {
            u32::MAX
        }
    }

    /// The inter-burst gap.
    pub fn gap(&self) -> Duration {
        self.cfg.gap
    }

    /// Feed one per-round delivery sample: `packets`/`bytes` were
    /// acknowledged `interval` after the round began (Karn-valid rounds
    /// only — a retransmitted round's pairing is ambiguous).  Engines
    /// call this regardless of mode so AIMD runs also record their
    /// rate/min-RTT trajectory; only the rate-based mode *acts* on it,
    /// advancing the gain cycle and checking for recovery exit.
    pub fn on_rate_sample(
        &mut self,
        packets: u32,
        bytes: u64,
        interval: Duration,
        app_limited: bool,
    ) {
        self.est.on_sample(packets, bytes, interval, app_limited);
        if !self.cfg.is_rate_based() {
            return;
        }
        self.cycle = (self.cycle + 1) % GAIN_CYCLE.len() as u8;
        self.maybe_exit_recovery();
    }

    /// Leave AIMD recovery once the backstop window has regrown to the
    /// rate-derived target — from there the estimator governs again.
    fn maybe_exit_recovery(&mut self) {
        if !self.recovery {
            return;
        }
        if let Some(target) = self.rate_target() {
            if self.burst >= target {
                self.recovery = false;
            }
        }
    }

    /// Signal that a round completed without loss (a positive ack for
    /// everything solicited): additive increase (AIMD mode and
    /// rate-based recovery; steady-state rate pacing has nothing to
    /// grow — the estimator moves the target).
    pub fn on_clean_round(&mut self) {
        if !self.cfg.enabled() {
            return;
        }
        self.rounds += 1;
        self.burst_sum += u64::from(self.effective_burst());
        self.clean_rounds += 1;
        if !self.cfg.is_adaptive() {
            return;
        }
        if self.cfg.is_rate_based() && !self.recovery {
            return;
        }
        self.burst = self
            .burst
            .saturating_add(self.cfg.growth)
            .min(self.cfg.max_burst);
        self.maybe_exit_recovery();
    }

    /// Signal a loss event (NACK or retransmission timeout):
    /// multiplicative decrease.  In rate-based mode this also snaps the
    /// rate window down by half and re-enters AIMD recovery — the loss
    /// disproves the windowed max, and the backstop governs until the
    /// window regrows to whatever the fresh samples certify.
    pub fn on_loss(&mut self) {
        if !self.cfg.enabled() {
            return;
        }
        let current = self.effective_burst();
        self.rounds += 1;
        self.burst_sum += u64::from(current);
        self.loss_events += 1;
        if !self.cfg.is_adaptive() {
            return;
        }
        self.burst = (current / 2).max(self.cfg.min_burst).max(1);
        self.min_seen = self.min_seen.min(self.burst);
        if self.cfg.is_rate_based() {
            self.est.cut(0.5);
            self.recovery = true;
            self.cycle = CRUISE_PHASE;
        }
    }

    /// The current pacing state (telemetry; cheap to copy).
    pub fn snapshot(&self) -> PacerSnapshot {
        let burst = if self.cfg.enabled() {
            self.effective_burst()
        } else {
            self.burst
        };
        PacerSnapshot {
            initial_burst: self.cfg.burst,
            burst,
            min_burst_seen: self.min_seen,
            mean_burst: if self.rounds == 0 {
                f64::from(burst)
            } else {
                self.burst_sum as f64 / self.rounds as f64
            },
            clean_rounds: self.clean_rounds,
            loss_events: self.loss_events,
            rate_bps: self.est.max_rate_bps(),
            min_rtt_us: self.est.min_rtt().map_or(0.0, |d| d.as_secs_f64() * 1e6),
            rate_samples: self.est.samples(),
            app_limited_samples: self.est.app_limited_samples(),
            in_recovery: self.recovery,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_mode_is_inert() {
        let mut e = RttEstimator::new(&AdaptiveTimeout::Fixed(Duration::from_millis(173)));
        assert_eq!(e.rto(), Duration::from_millis(173));
        e.sample(Duration::from_micros(20));
        e.backoff();
        e.backoff();
        assert_eq!(e.rto(), Duration::from_millis(173), "fixed stays fixed");
        assert_eq!(e.srtt(), None);
    }

    #[test]
    fn first_sample_seeds_srtt_and_variance() {
        let mut e = RttEstimator::new(&AdaptiveTimeout::lan());
        assert_eq!(e.rto(), Duration::from_millis(25));
        e.sample(Duration::from_millis(10));
        assert_eq!(e.srtt(), Some(Duration::from_millis(10)));
        // RTO = SRTT + 4·(SRTT/2) = 3·SRTT = 30 ms.
        assert_eq!(e.rto(), Duration::from_millis(30));
    }

    #[test]
    fn constant_rtt_converges_to_min_clamp() {
        let mut e = RttEstimator::new(&AdaptiveTimeout::Adaptive {
            initial: Duration::from_millis(100),
            min: Duration::from_millis(1),
            max: Duration::from_secs(1),
        });
        for _ in 0..100 {
            e.sample(Duration::from_micros(500));
        }
        let srtt = e.srtt().unwrap();
        assert!(
            srtt.abs_diff(Duration::from_micros(500)) < Duration::from_micros(5),
            "srtt converges to the true rtt, got {srtt:?}"
        );
        // Variance decays toward zero, so the RTO hits the min clamp.
        assert_eq!(e.rto(), Duration::from_millis(1));
    }

    #[test]
    fn backoff_doubles_and_saturates() {
        let mut e = RttEstimator::new(&AdaptiveTimeout::Adaptive {
            initial: Duration::from_millis(10),
            min: Duration::from_millis(1),
            max: Duration::from_millis(100),
        });
        let mut prev = e.rto();
        for _ in 0..10 {
            e.backoff();
            assert!(e.rto() >= prev, "backoff is monotone");
            prev = e.rto();
        }
        assert_eq!(e.rto(), Duration::from_millis(100), "capped at max");
    }

    #[test]
    fn sample_after_backoff_recovers() {
        let mut e = RttEstimator::new(&AdaptiveTimeout::lan());
        e.sample(Duration::from_millis(4));
        for _ in 0..6 {
            e.backoff();
        }
        assert!(e.rto() > Duration::from_millis(100));
        // One valid sample recomputes from SRTT/RTTVAR, collapsing the
        // backed-off value.
        e.sample(Duration::from_millis(4));
        assert!(e.rto() < Duration::from_millis(20), "rto {:?}", e.rto());
    }

    #[test]
    fn timeout_policy_validation() {
        assert!(AdaptiveTimeout::Fixed(Duration::ZERO).invalid().is_some());
        assert!(AdaptiveTimeout::Fixed(Duration::from_millis(1))
            .invalid()
            .is_none());
        assert!(AdaptiveTimeout::lan().invalid().is_none());
        assert!(AdaptiveTimeout::Adaptive {
            initial: Duration::from_millis(1),
            min: Duration::from_millis(2),
            max: Duration::from_millis(3),
        }
        .invalid()
        .is_some());
        assert!(AdaptiveTimeout::Adaptive {
            initial: Duration::from_millis(5),
            min: Duration::from_millis(2),
            max: Duration::from_millis(3),
        }
        .invalid()
        .is_some());
        let t: AdaptiveTimeout = Duration::from_millis(7).into();
        assert_eq!(t, AdaptiveTimeout::Fixed(Duration::from_millis(7)));
        assert_eq!(t.initial(), Duration::from_millis(7));
        assert!(!t.is_adaptive());
        assert!(AdaptiveTimeout::lan().is_adaptive());
    }

    #[test]
    fn pacer_budget_and_validation() {
        let p = Pacer::new(PacingConfig::off());
        assert!(!p.enabled());
        assert_eq!(p.burst_budget(), u32::MAX);

        let p = Pacer::new(PacingConfig::new(8, Duration::from_micros(100)));
        assert!(p.enabled());
        assert!(!p.is_adaptive());
        assert_eq!(p.burst_budget(), 8);
        assert_eq!(p.gap(), Duration::from_micros(100));

        assert!(PacingConfig::off().invalid().is_none());
        assert!(PacingConfig::lan().invalid().is_none());
        assert!(PacingConfig::lan().is_adaptive());
        assert!(PacingConfig::new(4, Duration::ZERO).invalid().is_some());
        // AIMD bounds must bracket the initial burst, with room to grow.
        let gap = Duration::from_micros(100);
        assert!(PacingConfig::aimd(8, gap, 2, 32, 4).invalid().is_none());
        assert!(PacingConfig::aimd(8, gap, 0, 32, 4).invalid().is_some());
        assert!(PacingConfig::aimd(8, gap, 9, 32, 4).invalid().is_some());
        assert!(PacingConfig::aimd(33, gap, 2, 32, 4).invalid().is_some());
        assert!(PacingConfig::aimd(8, gap, 2, 32, 0).invalid().is_some());
        assert!(PacingConfig::aimd(8, gap, 8, 8, 0).invalid().is_none());
    }

    #[test]
    fn static_pacer_ignores_signals() {
        let mut p = Pacer::new(PacingConfig::new(8, Duration::from_micros(100)));
        p.on_loss();
        p.on_clean_round();
        p.on_loss();
        assert_eq!(p.burst_budget(), 8, "static burst never moves");
        let snap = p.snapshot();
        assert_eq!(snap.burst, 8);
        assert_eq!(snap.min_burst_seen, 8);
        assert_eq!(snap.clean_rounds, 1);
        assert_eq!(snap.loss_events, 2);
    }

    #[test]
    fn aimd_pacer_grows_additively_and_shrinks_multiplicatively() {
        let cfg = PacingConfig::aimd(16, Duration::from_micros(100), 4, 64, 8);
        let mut p = Pacer::new(cfg);
        assert!(p.is_adaptive());
        assert_eq!(p.burst_budget(), 16);

        p.on_clean_round();
        assert_eq!(p.burst_budget(), 24, "additive increase");
        for _ in 0..20 {
            p.on_clean_round();
        }
        assert_eq!(p.burst_budget(), 64, "capped at the ceiling");

        p.on_loss();
        assert_eq!(p.burst_budget(), 32, "multiplicative decrease");
        for _ in 0..20 {
            p.on_loss();
        }
        assert_eq!(p.burst_budget(), 4, "floored");
        assert_eq!(p.snapshot().min_burst_seen, 4);

        // Recovery: (64 - 4) / 8 = 8 clean rounds back to the ceiling.
        for _ in 0..8 {
            p.on_clean_round();
        }
        assert_eq!(p.burst_budget(), 64);
        let snap = p.snapshot();
        assert!(snap.mean_burst > 4.0 && snap.mean_burst < 64.0);
        assert_eq!(snap.initial_burst, 16);
    }

    #[test]
    fn rate_config_validation_and_modes() {
        let gap = Duration::from_micros(100);
        let cfg = PacingConfig::rate_based(16, gap, 4, 64, 8);
        assert!(cfg.invalid().is_none());
        assert!(cfg.enabled() && cfg.is_adaptive() && cfg.is_rate_based());
        assert!(!PacingConfig::aimd(16, gap, 4, 64, 8).is_rate_based());
        assert!(PacingConfig::rate_lan().invalid().is_none());
        assert!(PacingConfig::rate_lan().is_rate_based());
        // Rate mode without the AIMD backstop bounds is rejected.
        let mut bad = PacingConfig::new(16, gap);
        bad.rate_based = true;
        assert!(bad.invalid().is_some());
        // The AIMD bracket rules still apply underneath.
        assert!(PacingConfig::rate_based(16, gap, 0, 64, 8)
            .invalid()
            .is_some());
        assert!(PacingConfig::rate_based(65, gap, 4, 64, 8)
            .invalid()
            .is_some());
    }

    #[test]
    fn estimator_windows_max_rate_and_min_rtt() {
        let mut e = DeliveryRateEstimator::new();
        assert!(!e.has_rate());
        assert_eq!(e.min_rtt(), None);
        assert_eq!(e.max_rate_bps(), 0.0);

        // 32 packets / 32 KiB per 1 ms = 32 MB/s, 32 kpps.
        e.on_sample(32, 32 * 1024, Duration::from_millis(1), false);
        assert!((e.max_rate_bps() - 32.0 * 1024.0 * 1000.0).abs() < 1.0);
        assert!((e.max_rate_pps() - 32_000.0).abs() < 1.0);
        assert_eq!(e.min_rtt(), Some(Duration::from_millis(1)));

        // A faster sample raises the max; a slower one does not lower it.
        e.on_sample(64, 64 * 1024, Duration::from_millis(1), false);
        let peak = e.max_rate_bps();
        e.on_sample(8, 8 * 1024, Duration::from_millis(1), false);
        assert_eq!(e.max_rate_bps(), peak);
        // The min-RTT keeps the smallest sample in the window.
        e.on_sample(8, 8 * 1024, Duration::from_micros(100), false);
        assert_eq!(e.min_rtt(), Some(Duration::from_micros(100)));

        // The peak expires once RATE_WINDOW newer samples displace it.
        for _ in 0..RATE_WINDOW {
            e.on_sample(8, 8 * 1024, Duration::from_millis(1), false);
        }
        assert!(e.max_rate_bps() < peak);
    }

    #[test]
    fn estimator_excludes_app_limited_and_ignores_empty() {
        let mut e = DeliveryRateEstimator::new();
        e.on_sample(1_000_000, u64::MAX / 2, Duration::from_micros(1), true);
        assert!(
            !e.has_rate(),
            "app-limited sample must not enter the rate window"
        );
        assert_eq!(e.app_limited_samples(), 1);
        // ... but its RTT still feeds the min filter.
        assert_eq!(e.min_rtt(), Some(Duration::from_micros(1)));
        // Degenerate samples carry no information.
        e.on_sample(0, 0, Duration::from_millis(1), false);
        e.on_sample(5, 5_000, Duration::ZERO, false);
        assert_eq!(e.samples(), 1);
    }

    #[test]
    fn rate_pacer_tracks_bdp_and_cycles_gain() {
        let gap = Duration::from_micros(100);
        let cfg = PacingConfig::rate_based(16, gap, 2, 256, 8);
        let mut p = Pacer::new(cfg);
        assert!(p.is_rate_based());
        assert_eq!(p.burst_budget(), 16, "initial burst before any sample");

        // 64 packets per 1 ms round trip: BDP = 64 packets.  First
        // sample lands in the probe-up phase's successor... the cycle
        // advances per sample, so pin the numbers via the gain table.
        p.on_rate_sample(64, 64 * 1024, Duration::from_millis(1), false);
        let budgets: Vec<u32> = (0..8)
            .map(|_| {
                let b = p.burst_budget();
                p.on_rate_sample(64, 64 * 1024, Duration::from_millis(1), false);
                b
            })
            .collect();
        // Across one full cycle the budget must visit the probe value
        // (80 = 1.25 × 64), the drain value (48 = 0.75 × 64) and cruise
        // (64).
        assert!(budgets.contains(&80), "probe-up phase: {budgets:?}");
        assert!(budgets.contains(&48), "drain phase: {budgets:?}");
        assert!(budgets.contains(&64), "cruise phase: {budgets:?}");
        // And never outside the configured clamp.
        assert!(budgets.iter().all(|&b| (2..=256).contains(&b)));
    }

    #[test]
    fn rate_pacer_loss_enters_and_exits_aimd_recovery() {
        let gap = Duration::from_micros(100);
        let cfg = PacingConfig::rate_based(16, gap, 2, 256, 8);
        let mut p = Pacer::new(cfg);
        for _ in 0..4 {
            p.on_rate_sample(64, 64 * 1024, Duration::from_millis(1), false);
        }
        let before = p.burst_budget();
        assert!(before >= 48, "rate pacing in force before loss");

        p.on_loss();
        let snap = p.snapshot();
        assert!(snap.in_recovery, "loss re-enters AIMD recovery");
        assert_eq!(p.burst_budget(), (before / 2).max(2), "backstop halves");
        assert!(
            snap.rate_bps < 64.0 * 1024.0 * 1000.0 * 0.6,
            "rate cap snapped down: {}",
            snap.rate_bps
        );

        // Clean rounds regrow the backstop additively; fresh samples
        // rebuild the rate window; recovery exits once the backstop
        // reaches the (cruise-gain) target again.
        for _ in 0..32 {
            p.on_clean_round();
            p.on_rate_sample(64, 64 * 1024, Duration::from_millis(1), false);
            if !p.snapshot().in_recovery {
                break;
            }
        }
        assert!(!p.snapshot().in_recovery, "recovery must exit");
        assert!(p.burst_budget() >= 48, "rate pacing governs again");
        assert_eq!(p.snapshot().loss_events, 1);
    }

    #[test]
    fn aimd_pacer_records_rate_trajectory_without_acting_on_it() {
        let cfg = PacingConfig::aimd(16, Duration::from_micros(100), 4, 64, 8);
        let mut p = Pacer::new(cfg);
        p.on_rate_sample(64, 64 * 1024, Duration::from_millis(1), false);
        assert_eq!(p.burst_budget(), 16, "AIMD budget ignores the estimator");
        let snap = p.snapshot();
        assert!(snap.rate_bps > 0.0, "but the trajectory is recorded");
        assert!(snap.min_rtt_us > 0.0);
        assert_eq!(snap.rate_samples, 1);
        assert!(!snap.in_recovery);
    }

    #[test]
    fn unpaced_pacer_signals_are_inert() {
        let mut p = Pacer::new(PacingConfig::off());
        p.on_loss();
        p.on_clean_round();
        assert_eq!(p.burst_budget(), u32::MAX);
        assert_eq!(p.snapshot().clean_rounds, 0);
        assert_eq!(p.snapshot().loss_events, 0);
    }
}
