//! Proof that the batched send/receive path is allocation-free in the
//! steady state: once a channel's `NetIo` backend is constructed (its
//! slot slabs are pre-allocated) and the FCS scratch is warm, staging a
//! whole burst, flushing it as `sendmmsg` submissions, draining it with
//! `recvmmsg` and popping every datagram performs **exactly zero** heap
//! allocations — the syscall batching never buys throughput by hiding
//! per-packet allocation.
//!
//! Single `#[test]` on purpose: the allocation counter is
//! process-global, and a sibling test on another thread would pollute
//! the measured window.

use std::time::Duration;

use blast_counting_alloc::{allocations, CountingAlloc};
use blast_udp::channel::{Channel, UdpChannel};
use blast_udp::fcs::FcsChannel;

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const BURST: usize = 48; // more than one sendmmsg batch
const FRAME: usize = 1400;

fn burst_roundtrip(
    tx: &mut FcsChannel<UdpChannel>,
    rx: &mut FcsChannel<UdpChannel>,
    buf: &mut [u8],
) {
    let frame = [0x5au8; FRAME];
    for _ in 0..BURST {
        tx.stage(&frame).unwrap();
    }
    tx.flush().unwrap();
    let mut got = 0;
    while got < BURST {
        match rx.recv_timeout(buf, Duration::from_secs(2)).unwrap() {
            Some(n) => {
                assert_eq!(n, FRAME, "frame length survives the batch");
                got += 1;
            }
            None => panic!("burst datagram lost on loopback"),
        }
    }
}

#[test]
fn batched_burst_path_is_allocation_free() {
    let (a, b) = UdpChannel::pair().unwrap();
    let mut tx = FcsChannel::new(a);
    let mut rx = FcsChannel::new(b);
    let mut buf = vec![0u8; 2048];

    // Warm-up: first use grows the FCS scratch and faults in the slot
    // slabs; everything after must be steady-state.
    burst_roundtrip(&mut tx, &mut rx, &mut buf);

    let before = allocations();
    for _ in 0..4 {
        burst_roundtrip(&mut tx, &mut rx, &mut buf);
    }
    let allocs = allocations() - before;
    assert_eq!(
        allocs,
        0,
        "staging, flushing and draining {} framed datagrams must not allocate",
        4 * BURST
    );

    // When the kernel supports segmentation offload, the bursts above
    // travelled as GSO super-datagrams — so the zero-alloc proof covers
    // the coalescing staging layer, not just the plain batched path.
    let tx = tx.into_inner();
    if tx.offload().gso() {
        assert!(
            tx.io_stats().gso_super_datagrams > 0,
            "equal-size bursts must coalesce when GSO is usable"
        );
    }
}
