//! `perf_compare` — diff freshly-generated `BENCH_*.json` against a
//! committed baseline and print the goodput / allocs-per-packet deltas
//! as a markdown table (for `$GITHUB_STEP_SUMMARY`).
//!
//! Informational only: the process always exits 0, because the smoke
//! numbers come from shared CI runners whose noise would make a failing
//! threshold flap.  The value is the visible trajectory — every PR's
//! job summary shows what it did to the measured numbers.
//!
//! Usage: `perf_compare [--title <heading>] <baseline-dir> <fresh-dir>
//! [file ...]` (default files: `BENCH_engines.json`,
//! `BENCH_node_loopback.json`).  `--title` overrides the heading so the
//! same tool renders both the committed-baseline trajectory and the
//! batched-vs-portable backend delta table in one job summary.
//!
//! The parser is deliberately tiny and tied to the writer in `perf.rs`:
//! one record per line, `"key": value` fields — not a general JSON
//! reader (the workspace builds offline, with no serde).

use std::fmt::Write as _;
use std::path::Path;

/// One parsed record line.
#[derive(Debug, Clone)]
struct Entry {
    name: String,
    goodput_mbps: Option<f64>,
    allocs_per_packet: Option<f64>,
    p99_ms: Option<f64>,
    shards: Option<f64>,
    /// Segmentation-offload probe outcome (`gso+gro`, `unsupported`,
    /// `offload-disabled`, …) — node records from schema v7 on.
    offload: Option<String>,
    /// Mean retransmission rounds — cc-sweep records (schema v8 on).
    retx_rounds_mean: Option<f64>,
    /// Mean bottleneck-overflow drops — cc-sweep records (schema v8 on).
    overflow_mean: Option<f64>,
}

/// Extract `"key": <number>` from a record line.
fn field(line: &str, key: &str) -> Option<f64> {
    let tag = format!("\"{key}\": ");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extract `"key": "<value>"` (a string field) from a record line.
fn str_field(line: &str, key: &str) -> Option<String> {
    let tag = format!("\"{key}\": \"");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    Some(rest[..rest.find('"')?].to_string())
}

/// Extract `"name": "<value>"` from a record line.
fn name_field(line: &str) -> Option<String> {
    str_field(line, "name")
}

fn parse(path: &Path) -> Vec<Entry> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    text.lines()
        .filter_map(|line| {
            let name = name_field(line)?;
            let entry = Entry {
                name,
                goodput_mbps: field(line, "goodput_mbps"),
                allocs_per_packet: field(line, "allocs_per_packet"),
                p99_ms: field(line, "p99_ms"),
                shards: field(line, "shards"),
                offload: str_field(line, "offload"),
                retx_rounds_mean: field(line, "retx_rounds_mean"),
                overflow_mean: field(line, "overflow_mean"),
            };
            // Auxiliary sections (e.g. the loss sweep) carry names but
            // no goodput; they are trajectories, not comparables.
            entry.goodput_mbps.is_some().then_some(entry)
        })
        .collect()
}

fn delta_cell(base: Option<f64>, fresh: Option<f64>) -> String {
    match (base, fresh) {
        (Some(b), Some(f)) if b.abs() > 1e-12 => {
            format!("{:+.1}%", (f - b) / b * 100.0)
        }
        (None, Some(_)) => "new".to_string(),
        _ => "–".to_string(),
    }
}

fn fmt_opt(v: Option<f64>, digits: usize) -> String {
    v.map(|x| format!("{x:.digits$}")).unwrap_or("–".into())
}

fn compare(file: &str, baseline_dir: &Path, fresh_dir: &Path, out: &mut String) {
    let base = parse(&baseline_dir.join(file));
    let fresh = parse(&fresh_dir.join(file));
    if fresh.is_empty() {
        let _ = writeln!(out, "\n### {file}\n\n_no fresh results found_");
        return;
    }
    let _ = writeln!(out, "\n### {file}\n");
    let _ = writeln!(
        out,
        "| name | goodput MB/s (base → new) | Δ | allocs/packet (base → new) | Δ |"
    );
    let _ = writeln!(out, "|---|---|---|---|---|");
    for f in &fresh {
        let b = base.iter().find(|b| b.name == f.name);
        let (bg, ba) = b
            .map(|b| (b.goodput_mbps, b.allocs_per_packet))
            .unwrap_or((None, None));
        let _ = writeln!(
            out,
            "| {} | {} → {} | {} | {} → {} | {} |",
            f.name,
            fmt_opt(bg, 2),
            fmt_opt(f.goodput_mbps, 2),
            delta_cell(bg, f.goodput_mbps),
            fmt_opt(ba, 4),
            fmt_opt(f.allocs_per_packet, 4),
            delta_cell(ba, f.allocs_per_packet),
        );
    }
    for b in &base {
        if !fresh.iter().any(|f| f.name == b.name) {
            let _ = writeln!(out, "| {} | _dropped from fresh run_ | | | |", b.name);
        }
    }
}

/// Split a sharded record name `push_16x256k_s4` into its
/// single-reactor base name and shard count.
fn sharded_base(name: &str) -> Option<(&str, u32)> {
    let (base, suffix) = name.rsplit_once("_s")?;
    let shards: u32 = suffix.parse().ok()?;
    (shards > 1).then_some((base, shards))
}

/// Split a recorder-on record name `push_16x256k_s4_rec` into its
/// recorder-off sibling `push_16x256k_s4`.
fn recorder_base(name: &str) -> Option<&str> {
    name.strip_suffix("_rec")
}

/// Render the flight-recorder overhead table for one fresh file: every
/// `<name>_rec` record paired with its `<name>` sibling from the same
/// run.  This is the tentpole's ≤5% overhead claim, measured on every
/// CI run instead of asserted once.
fn recorder_delta(file: &str, fresh_dir: &Path, out: &mut String) {
    let fresh = parse(&fresh_dir.join(file));
    let pairs: Vec<(&Entry, &Entry)> = fresh
        .iter()
        .filter_map(|r| {
            let base = recorder_base(&r.name)?;
            let plain = fresh.iter().find(|e| e.name == base)?;
            Some((plain, r))
        })
        .collect();
    if pairs.is_empty() {
        return;
    }
    let _ = writeln!(out, "\n### Flight recorder on vs off ({file}, fresh run)\n");
    let _ = writeln!(
        out,
        "| workload | goodput MB/s (off → on) | Δ | p99 ms (off → on) | Δ | allocs/packet (off → on) |"
    );
    let _ = writeln!(out, "|---|---|---|---|---|---|");
    for (plain, rec) in pairs {
        let _ = writeln!(
            out,
            "| {} | {} → {} | {} | {} → {} | {} | {} → {} |",
            plain.name,
            fmt_opt(plain.goodput_mbps, 2),
            fmt_opt(rec.goodput_mbps, 2),
            delta_cell(plain.goodput_mbps, rec.goodput_mbps),
            fmt_opt(plain.p99_ms, 2),
            fmt_opt(rec.p99_ms, 2),
            delta_cell(plain.p99_ms, rec.p99_ms),
            fmt_opt(plain.allocs_per_packet, 4),
            fmt_opt(rec.allocs_per_packet, 4),
        );
    }
}

/// Render the sharded-vs-single goodput/p99 delta table for one fresh
/// file: every `<name>_sN` record is paired with its `<name>` sibling
/// from the same run, so the table shows what the reactor shards buy on
/// this machine (not vs the baseline).
fn sharding_delta(file: &str, fresh_dir: &Path, out: &mut String) {
    let fresh = parse(&fresh_dir.join(file));
    let pairs: Vec<(&Entry, &Entry, u32)> = fresh
        .iter()
        .filter_map(|s| {
            let (base, shards) = sharded_base(&s.name)?;
            let single = fresh.iter().find(|e| e.name == base)?;
            Some((single, s, shards))
        })
        .collect();
    if pairs.is_empty() {
        return;
    }
    let _ = writeln!(out, "\n### Sharded vs single reactor ({file}, fresh run)\n");
    let _ = writeln!(
        out,
        "| workload | goodput MB/s (1 shard → N) | Δ | p99 ms (1 shard → N) | Δ | shards |"
    );
    let _ = writeln!(out, "|---|---|---|---|---|---|");
    for (single, sharded, shards) in pairs {
        let effective = sharded
            .shards
            .map(|s| format!("{s:.0}"))
            .unwrap_or_else(|| "–".into());
        let _ = writeln!(
            out,
            "| {} | {} → {} | {} | {} → {} | {} | {shards} req / {effective} eff |",
            single.name,
            fmt_opt(single.goodput_mbps, 2),
            fmt_opt(sharded.goodput_mbps, 2),
            delta_cell(single.goodput_mbps, sharded.goodput_mbps),
            fmt_opt(single.p99_ms, 2),
            fmt_opt(sharded.p99_ms, 2),
            delta_cell(single.p99_ms, sharded.p99_ms),
        );
    }
}

/// Split a GSO-on record name `push_16x256k_s4_gso` into its
/// offload-off sibling `push_16x256k_s4`.
fn gso_base(name: &str) -> Option<&str> {
    name.strip_suffix("_gso")
}

/// Render the segmentation-offload delta table for one fresh file:
/// every `<name>_gso` record paired with its offload-off `<name>`
/// sibling from the same run, with the probe outcome alongside — so
/// the job summary shows what `UDP_SEGMENT`/`UDP_GRO` bought, or says
/// `unsupported` explicitly on hosts whose kernel lacks them.
fn gso_delta(file: &str, fresh_dir: &Path, out: &mut String) {
    let fresh = parse(&fresh_dir.join(file));
    let pairs: Vec<(&Entry, &Entry)> = fresh
        .iter()
        .filter_map(|g| {
            let base = gso_base(&g.name)?;
            let plain = fresh.iter().find(|e| e.name == base)?;
            Some((plain, g))
        })
        .collect();
    if pairs.is_empty() {
        return;
    }
    let probe = pairs
        .iter()
        .find_map(|(_, g)| g.offload.as_deref())
        .unwrap_or("unknown");
    let _ = writeln!(
        out,
        "\n### Segmentation offload vs plain batched ({file}, fresh run)\n"
    );
    let _ = writeln!(out, "Offload probe outcome: `{probe}`\n");
    let _ = writeln!(
        out,
        "| workload | goodput MB/s (off → on) | Δ | p99 ms (off → on) | Δ | probe |"
    );
    let _ = writeln!(out, "|---|---|---|---|---|---|");
    for (plain, gso) in pairs {
        let _ = writeln!(
            out,
            "| {} | {} → {} | {} | {} → {} | {} | {} |",
            plain.name,
            fmt_opt(plain.goodput_mbps, 2),
            fmt_opt(gso.goodput_mbps, 2),
            delta_cell(plain.goodput_mbps, gso.goodput_mbps),
            fmt_opt(plain.p99_ms, 2),
            fmt_opt(gso.p99_ms, 2),
            delta_cell(plain.p99_ms, gso.p99_ms),
            gso.offload.as_deref().unwrap_or("–"),
        );
    }
}

/// Split a rate-paced cc-sweep record name `mblast_256k_ge_rate` into
/// the name of its AIMD-paced sibling `mblast_256k_ge_aimd`.
fn aimd_sibling(name: &str) -> Option<String> {
    let base = name.strip_suffix("_rate")?;
    Some(format!("{base}_aimd"))
}

/// Render the congestion-control delta table for one fresh file: every
/// `*_rate` cc-sweep record paired with its `*_aimd` sibling from the
/// same run — what delivery-rate (BBR-flavoured) pacing buys over the
/// AIMD backstop alone, per loss profile, over the same bottleneck.
fn cc_delta(file: &str, fresh_dir: &Path, out: &mut String) {
    let fresh = parse(&fresh_dir.join(file));
    let pairs: Vec<(&Entry, &Entry)> = fresh
        .iter()
        .filter_map(|r| {
            let sibling = aimd_sibling(&r.name)?;
            let aimd = fresh.iter().find(|e| e.name == sibling)?;
            Some((aimd, r))
        })
        .collect();
    if pairs.is_empty() {
        return;
    }
    let _ = writeln!(
        out,
        "\n### AIMD vs delivery-rate pacing ({file}, fresh run)\n"
    );
    let _ = writeln!(
        out,
        "| workload | goodput MB/s (aimd → rate) | Δ | retx rounds (aimd → rate) | Δ | overflow drops (aimd → rate) | Δ |"
    );
    let _ = writeln!(out, "|---|---|---|---|---|---|---|");
    for (aimd, rate) in pairs {
        let _ = writeln!(
            out,
            "| {} | {} → {} | {} | {} → {} | {} | {} → {} | {} |",
            rate.name.strip_suffix("_rate").unwrap_or(&rate.name),
            fmt_opt(aimd.goodput_mbps, 2),
            fmt_opt(rate.goodput_mbps, 2),
            delta_cell(aimd.goodput_mbps, rate.goodput_mbps),
            fmt_opt(aimd.retx_rounds_mean, 2),
            fmt_opt(rate.retx_rounds_mean, 2),
            delta_cell(aimd.retx_rounds_mean, rate.retx_rounds_mean),
            fmt_opt(aimd.overflow_mean, 2),
            fmt_opt(rate.overflow_mean, 2),
            delta_cell(aimd.overflow_mean, rate.overflow_mean),
        );
    }
}

/// Split a direct third-party-copy record name `copy_direct_256k` into
/// the name of its client-relayed sibling `copy_relayed_256k`.
fn relayed_sibling(name: &str) -> Option<String> {
    let size = name.strip_prefix("copy_direct_")?;
    Some(format!("copy_relayed_{size}"))
}

/// Render the third-party-copy delta table for one fresh file: every
/// `copy_direct_*` record paired with its `copy_relayed_*` sibling
/// from the same run — what the `Copy` verb's node-to-node blast buys
/// over hauling the bytes through the client.
fn copy_delta(file: &str, fresh_dir: &Path, out: &mut String) {
    let fresh = parse(&fresh_dir.join(file));
    let pairs: Vec<(&Entry, &Entry)> = fresh
        .iter()
        .filter_map(|d| {
            let sibling = relayed_sibling(&d.name)?;
            let relayed = fresh.iter().find(|e| e.name == sibling)?;
            Some((relayed, d))
        })
        .collect();
    if pairs.is_empty() {
        return;
    }
    let _ = writeln!(
        out,
        "\n### Third-party copy vs client relay ({file}, fresh run)\n"
    );
    let _ = writeln!(
        out,
        "| workload | goodput MB/s (relayed → direct) | Δ | p99 ms (relayed → direct) | Δ |"
    );
    let _ = writeln!(out, "|---|---|---|---|---|");
    for (relayed, direct) in pairs {
        let _ = writeln!(
            out,
            "| {} | {} → {} | {} | {} → {} | {} |",
            direct.name,
            fmt_opt(relayed.goodput_mbps, 2),
            fmt_opt(direct.goodput_mbps, 2),
            delta_cell(relayed.goodput_mbps, direct.goodput_mbps),
            fmt_opt(relayed.p99_ms, 2),
            fmt_opt(direct.p99_ms, 2),
            delta_cell(relayed.p99_ms, direct.p99_ms),
        );
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut title = String::from("Perf trajectory vs committed baseline");
    if args.first().map(String::as_str) == Some("--title") {
        if args.len() < 2 {
            eprintln!("--title requires a value");
            return;
        }
        title = args[1].clone();
        args.drain(..2);
    }
    if args.len() < 2 {
        eprintln!("usage: perf_compare [--title <heading>] <baseline-dir> <fresh-dir> [file ...]");
        // Informational tool: never fail the job, even on misuse.
        return;
    }
    let baseline_dir = Path::new(&args[0]);
    let fresh_dir = Path::new(&args[1]);
    let default_files = ["BENCH_engines.json", "BENCH_node_loopback.json"];
    let files: Vec<&str> = if args.len() > 2 {
        args[2..].iter().map(String::as_str).collect()
    } else {
        default_files.to_vec()
    };

    let mut out = format!("## {title}\n");
    let _ = writeln!(
        out,
        "\n_Informational (smoke workload on a shared runner); \
         deltas are new vs base as given on the command line._"
    );
    for &file in &files {
        compare(file, baseline_dir, fresh_dir, &mut out);
    }
    for &file in &files {
        sharding_delta(file, fresh_dir, &mut out);
    }
    for &file in &files {
        gso_delta(file, fresh_dir, &mut out);
    }
    for &file in &files {
        recorder_delta(file, fresh_dir, &mut out);
    }
    for &file in &files {
        copy_delta(file, fresh_dir, &mut out);
    }
    for &file in &files {
        cc_delta(file, fresh_dir, &mut out);
    }
    print!("{out}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_extraction() {
        let line = r#"    {"name": "push_4x256k", "bytes": 1048576, "goodput_mbps": 43.057, "allocs_per_packet": 0.3015},"#;
        assert_eq!(name_field(line).as_deref(), Some("push_4x256k"));
        assert_eq!(field(line, "goodput_mbps"), Some(43.057));
        assert_eq!(field(line, "allocs_per_packet"), Some(0.3015));
        assert_eq!(field(line, "missing"), None);
        assert_eq!(name_field("not a record"), None);
    }

    #[test]
    fn sharded_names_pair_with_their_base() {
        assert_eq!(sharded_base("push_16x256k_s4"), Some(("push_16x256k", 4)));
        assert_eq!(sharded_base("push_16x256k"), None);
        assert_eq!(sharded_base("push_16x256k_s1"), None);
        assert_eq!(sharded_base("blast/first-missing"), None);
    }

    #[test]
    fn recorder_names_pair_with_their_base() {
        assert_eq!(recorder_base("push_16x256k_rec"), Some("push_16x256k"));
        assert_eq!(
            recorder_base("push_16x256k_s4_rec"),
            Some("push_16x256k_s4")
        );
        assert_eq!(recorder_base("push_16x256k"), None);
        // `_rec` strips before `_sN` pairing would: a `_rec` record
        // never also parses as a sharded base of something else.
        assert_eq!(sharded_base("push_16x256k_rec"), None);
    }

    #[test]
    fn gso_names_pair_with_their_base() {
        assert_eq!(gso_base("push_16x256k_gso"), Some("push_16x256k"));
        assert_eq!(gso_base("push_16x256k_s4_gso"), Some("push_16x256k_s4"));
        assert_eq!(gso_base("push_16x256k"), None);
        // A `_gso` record never mis-parses as a sharded base: the
        // shard suffix must be a pure number.
        assert_eq!(sharded_base("push_16x256k_gso"), None);
        assert_eq!(sharded_base("push_16x256k_s4_gso"), None);
    }

    #[test]
    fn offload_field_parses_from_a_record_line() {
        let line =
            r#"    {"name": "push_4x256k_gso", "goodput_mbps": 50.1, "offload": "gso+gro"},"#;
        assert_eq!(str_field(line, "offload").as_deref(), Some("gso+gro"));
        assert_eq!(str_field(line, "netio_backend"), None);
    }

    #[test]
    fn copy_names_pair_direct_with_relayed() {
        assert_eq!(
            relayed_sibling("copy_direct_256k").as_deref(),
            Some("copy_relayed_256k")
        );
        assert_eq!(relayed_sibling("copy_relayed_256k"), None);
        assert_eq!(relayed_sibling("push_16x256k"), None);
    }

    #[test]
    fn cc_names_pair_rate_with_aimd() {
        assert_eq!(
            aimd_sibling("mblast_256k_ge_rate").as_deref(),
            Some("mblast_256k_ge_aimd")
        );
        assert_eq!(
            aimd_sibling("mblast_256k_loss_5pct_rate").as_deref(),
            Some("mblast_256k_loss_5pct_aimd")
        );
        assert_eq!(aimd_sibling("mblast_256k_ge_aimd"), None);
        assert_eq!(aimd_sibling("push_16x256k"), None);
    }

    #[test]
    fn cc_fields_parse_from_a_sweep_line() {
        let line = r#"    {"name": "mblast_256k_ge_rate", "loss_pct": 3.7, "retx_rounds_mean": 16.200, "goodput_mbps": 17.044, "overflow_mean": 72.00},"#;
        assert_eq!(field(line, "retx_rounds_mean"), Some(16.2));
        assert_eq!(field(line, "overflow_mean"), Some(72.0));
        assert_eq!(field(line, "goodput_mbps"), Some(17.044));
    }

    #[test]
    fn delta_formatting() {
        assert_eq!(delta_cell(Some(10.0), Some(11.0)), "+10.0%");
        assert_eq!(delta_cell(Some(10.0), Some(9.0)), "-10.0%");
        assert_eq!(delta_cell(None, Some(1.0)), "new");
        assert_eq!(delta_cell(Some(1.0), None), "–");
    }
}
