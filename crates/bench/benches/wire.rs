//! Criterion benches for the wire formats: the per-packet costs of this
//! implementation itself (building, parsing, checksumming).
//!
//! The paper's `C` was 1.35 ms per kilobyte packet on a 68000; a modern
//! machine builds and parses the same packet in tens of nanoseconds —
//! five orders of magnitude — which is the context for `blast-udp`'s
//! loopback numbers.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use blast_wire::ack::{AckPayload, Bitmap};
use blast_wire::checksum;
use blast_wire::packet::{Datagram, DatagramBuilder};

fn bench_build_parse(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire");
    group.throughput(Throughput::Bytes(1024 + blast_wire::HEADER_LEN as u64));

    let builder = DatagramBuilder::new(7);
    let payload = vec![0xa5u8; 1024];
    let mut buf = vec![0u8; 2048];

    group.bench_function("build_data_1k", |b| {
        b.iter(|| {
            let len = builder
                .build_data(
                    black_box(&mut buf),
                    5,
                    64,
                    5 * 1024,
                    black_box(&payload),
                    0,
                    false,
                )
                .unwrap();
            black_box(len)
        })
    });

    let len = builder
        .build_data(&mut buf, 5, 64, 5 * 1024, &payload, 0, false)
        .unwrap();
    let packet = buf[..len].to_vec();
    group.bench_function("parse_data_1k", |b| {
        b.iter(|| Datagram::parse(black_box(&packet)).unwrap())
    });

    group.bench_function("build_selective_nack_64", |b| {
        let bm = Bitmap::from_missing(0, 64, [1, 7, 33, 60]).unwrap();
        let ack = AckPayload::NackBitmap(bm);
        b.iter(|| {
            builder
                .build_ack(black_box(&mut buf), 64, black_box(&ack))
                .unwrap()
        })
    });

    group.finish();

    let mut group = c.benchmark_group("checksum");
    group.throughput(Throughput::Bytes(1024));
    let data = vec![0x5au8; 1024];
    group.bench_function("internet_1k", |b| {
        b.iter(|| checksum::internet(black_box(&data)))
    });
    group.bench_function("crc32_1k", |b| b.iter(|| checksum::crc32(black_box(&data))));
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_build_parse
}
criterion_main!(benches);
