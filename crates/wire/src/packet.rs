//! Assembling and disassembling complete transport datagrams.
//!
//! The sans-I/O engines in `blast-core` deal in *transport* datagrams —
//! a [`BlastHeader`] followed by payload bytes.  The drivers (simulator,
//! UDP) wrap these in whatever framing their medium needs (Ethernet II in
//! `blast-sim`, nothing extra over UDP).  This module provides:
//!
//! * [`DatagramBuilder`] — writes well-formed datagrams into a caller
//!   buffer with a single copy of the payload;
//! * [`Datagram`] — a fully-validated parsed view, with the ack payload
//!   already decoded when present.

use crate::ack::AckPayload;
use crate::error::{WireError, WireResult};
use crate::header::{flags, BlastHeader, PacketKind, HEADER_LEN};

/// A parsed, validated transport datagram.
///
/// Borrows the underlying receive buffer; `payload` points at the data
/// bytes in place (no copy — the engines copy straight into the
/// pre-allocated transfer buffer, honouring the paper's no-intermediate-
/// copy design).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Datagram<'a> {
    /// Packet kind.
    pub kind: PacketKind,
    /// Transfer this packet belongs to.
    pub transfer_id: u32,
    /// Sequence number within the transfer (data packets; 0 otherwise).
    pub seq: u32,
    /// Total data packets in the transfer.
    pub total: u32,
    /// Byte offset of `payload` within the transfer.
    pub offset: u32,
    /// Retransmission round that produced the packet.
    pub round: u16,
    /// Raw flag bits.
    pub flags: u16,
    /// Payload bytes (data packets; empty for acks — see `ack`).
    pub payload: &'a [u8],
    /// Decoded acknowledgement, for `PacketKind::Ack` packets.
    pub ack: Option<AckPayload>,
}

impl<'a> Datagram<'a> {
    /// Parse and validate a transport datagram from raw bytes.
    pub fn parse(buf: &'a [u8]) -> WireResult<Self> {
        let view = BlastHeader::new_checked(buf)?;
        let kind = view.kind().expect("kind validated by new_checked");
        let payload_len = view.payload_len() as usize;
        let payload = &buf[HEADER_LEN..HEADER_LEN + payload_len];
        let ack = match kind {
            PacketKind::Ack => Some(AckPayload::decode(payload)?),
            _ => None,
        };
        Ok(Datagram {
            kind,
            transfer_id: view.transfer_id(),
            seq: view.seq(),
            total: view.total(),
            offset: view.offset(),
            round: view.round(),
            flags: view.flags(),
            payload,
            ack,
        })
    }

    /// Whether the LAST flag is set.
    pub fn is_last(&self) -> bool {
        self.flags & flags::LAST != 0
    }

    /// Whether the RELIABLE flag is set.
    pub fn is_reliable(&self) -> bool {
        self.flags & flags::RELIABLE != 0
    }
}

/// Writes transport datagrams into caller-provided buffers.
///
/// All `build_*` methods return the total datagram length written.
///
/// ```
/// use blast_wire::packet::{Datagram, DatagramBuilder};
/// use blast_wire::header::PacketKind;
///
/// let mut buf = [0u8; 2048];
/// let b = DatagramBuilder::new(42);
/// let len = b.build_data(&mut buf, 3, 64, 3 * 1024, b"payload bytes", 0, false).unwrap();
/// let d = Datagram::parse(&buf[..len]).unwrap();
/// assert_eq!(d.kind, PacketKind::Data);
/// assert_eq!(d.transfer_id, 42);
/// assert_eq!(d.payload, b"payload bytes");
/// ```
#[derive(Debug, Clone, Copy)]
pub struct DatagramBuilder {
    transfer_id: u32,
    kernel: bool,
    multiblast: bool,
}

impl DatagramBuilder {
    /// Builder for packets of transfer `transfer_id`.
    pub fn new(transfer_id: u32) -> Self {
        DatagramBuilder {
            transfer_id,
            kernel: false,
            multiblast: false,
        }
    }

    /// Mark packets as belonging to a V-kernel IPC operation.
    pub fn kernel(mut self, yes: bool) -> Self {
        self.kernel = yes;
        self
    }

    /// Mark packets as chunks of a multi-blast sequence.
    pub fn multiblast(mut self, yes: bool) -> Self {
        self.multiblast = yes;
        self
    }

    fn base_flags(&self) -> u16 {
        let mut f = 0;
        if self.kernel {
            f |= flags::KERNEL;
        }
        if self.multiblast {
            f |= flags::MULTIBLAST;
        }
        f
    }

    // Private helper mirroring the header's field list one-to-one; a
    // params struct would just restate `BlastHeader` field by field.
    #[allow(clippy::too_many_arguments)]
    fn emit(
        &self,
        buf: &mut [u8],
        kind: PacketKind,
        seq: u32,
        total: u32,
        offset: u32,
        payload: &[u8],
        round: u16,
        extra_flags: u16,
    ) -> WireResult<usize> {
        let need = HEADER_LEN + payload.len();
        if buf.len() < need {
            return Err(WireError::Truncated {
                needed: need,
                got: buf.len(),
            });
        }
        BlastHeader::<&mut [u8]>::clear(buf);
        let mut h = BlastHeader::new_unchecked(&mut buf[..need]);
        h.set_kind(kind);
        h.set_transfer_id(self.transfer_id);
        h.set_seq(seq);
        h.set_total(total);
        h.set_offset(offset);
        h.set_payload_len(payload.len() as u32);
        h.set_round(round);
        h.set_flags(self.base_flags() | extra_flags);
        h.payload_mut()[..payload.len()].copy_from_slice(payload);
        h.fill_checksum();
        Ok(need)
    }

    /// Build a data packet.  `last` sets the LAST|RELIABLE flags as the
    /// blast protocol requires for the final packet of a sequence.
    #[allow(clippy::too_many_arguments)]
    pub fn build_data(
        &self,
        buf: &mut [u8],
        seq: u32,
        total: u32,
        offset: u32,
        payload: &[u8],
        round: u16,
        last: bool,
    ) -> WireResult<usize> {
        let mut extra = 0;
        if last {
            extra |= flags::LAST | flags::RELIABLE;
        }
        self.emit(
            buf,
            PacketKind::Data,
            seq,
            total,
            offset,
            payload,
            round,
            extra,
        )
    }

    /// Build a data packet that is individually acknowledged (stop-and-
    /// wait and sliding-window modes): RELIABLE is always set, LAST only
    /// on the final packet.
    #[allow(clippy::too_many_arguments)]
    pub fn build_reliable_data(
        &self,
        buf: &mut [u8],
        seq: u32,
        total: u32,
        offset: u32,
        payload: &[u8],
        round: u16,
    ) -> WireResult<usize> {
        let mut extra = flags::RELIABLE;
        if seq + 1 == total {
            extra |= flags::LAST;
        }
        self.emit(
            buf,
            PacketKind::Data,
            seq,
            total,
            offset,
            payload,
            round,
            extra,
        )
    }

    /// Build an acknowledgement packet carrying `ack`.
    pub fn build_ack(&self, buf: &mut [u8], total: u32, ack: &AckPayload) -> WireResult<usize> {
        // Stack staging: ack payloads are bounded, so encoding never
        // touches the heap.
        let mut payload = [0u8; AckPayload::MAX_ENCODED_LEN];
        let n = ack.encode(&mut payload)?;
        self.emit(buf, PacketKind::Ack, 0, total, 0, &payload[..n], 0, 0)
    }

    /// Build a transfer request packet (`MoveFrom`, session setup).
    /// `total` advertises how many packets the responder should send and
    /// `payload` carries request-specific bytes (e.g. a file name).
    pub fn build_request(&self, buf: &mut [u8], total: u32, payload: &[u8]) -> WireResult<usize> {
        self.emit(buf, PacketKind::Request, 0, total, 0, payload, 0, 0)
    }

    /// Build a cancel packet aborting the transfer.
    pub fn build_cancel(&self, buf: &mut [u8]) -> WireResult<usize> {
        self.emit(buf, PacketKind::Cancel, 0, 0, 0, &[], 0, 0)
    }

    /// Build a control-plane stats packet.  A query carries an empty
    /// payload; the node's reply reuses the kind with the snapshot text
    /// as payload.  `seq` echoes the query's nonce so a client can
    /// match replies to requests.
    pub fn build_stats(&self, buf: &mut [u8], seq: u32, payload: &[u8]) -> WireResult<usize> {
        self.emit(buf, PacketKind::Stats, seq, 0, 0, payload, 0, 0)
    }

    /// Build a control-plane third-party-copy packet.  The payload is a
    /// `blast_udp::copy` sub-message (submit, status query/reply,
    /// digest); `seq` carries the request nonce echoed in replies, and
    /// the builder's transfer id names the copy being discussed.
    pub fn build_copy(&self, buf: &mut [u8], seq: u32, payload: &[u8]) -> WireResult<usize> {
        self.emit(buf, PacketKind::Copy, seq, 0, 0, payload, 0, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ack::Bitmap;

    #[test]
    fn data_roundtrip_with_flags() {
        let mut buf = [0u8; 256];
        let b = DatagramBuilder::new(9).kernel(true);
        let len = b
            .build_data(&mut buf, 63, 64, 63 * 1024, b"tail", 1, true)
            .unwrap();
        let d = Datagram::parse(&buf[..len]).unwrap();
        assert_eq!(d.kind, PacketKind::Data);
        assert_eq!(d.transfer_id, 9);
        assert_eq!(d.seq, 63);
        assert_eq!(d.total, 64);
        assert_eq!(d.offset, 63 * 1024);
        assert_eq!(d.round, 1);
        assert!(d.is_last());
        assert!(d.is_reliable());
        assert_eq!(d.flags & flags::KERNEL, flags::KERNEL);
        assert_eq!(d.payload, b"tail");
        assert!(d.ack.is_none());
    }

    #[test]
    fn reliable_data_sets_last_only_on_final() {
        let mut buf = [0u8; 256];
        let b = DatagramBuilder::new(1);
        let len = b.build_reliable_data(&mut buf, 0, 3, 0, b"x", 0).unwrap();
        let d = Datagram::parse(&buf[..len]).unwrap();
        assert!(d.is_reliable());
        assert!(!d.is_last());
        let len = b
            .build_reliable_data(&mut buf, 2, 3, 2048, b"x", 0)
            .unwrap();
        let d = Datagram::parse(&buf[..len]).unwrap();
        assert!(d.is_reliable());
        assert!(d.is_last());
    }

    #[test]
    fn ack_roundtrip_all_variants() {
        let mut buf = [0u8; 2048];
        let b = DatagramBuilder::new(5);
        let variants = [
            AckPayload::Positive { acked: 63 },
            AckPayload::NackFull,
            AckPayload::NackFirstMissing { first_missing: 7 },
            AckPayload::NackBitmap(Bitmap::from_missing(0, 64, [1, 2, 60]).unwrap()),
        ];
        for ack in variants {
            let len = b.build_ack(&mut buf, 64, &ack).unwrap();
            let d = Datagram::parse(&buf[..len]).unwrap();
            assert_eq!(d.kind, PacketKind::Ack);
            assert_eq!(d.total, 64);
            assert_eq!(d.ack.as_ref(), Some(&ack));
        }
    }

    #[test]
    fn request_and_cancel_roundtrip() {
        let mut buf = [0u8; 256];
        let b = DatagramBuilder::new(77);
        let len = b.build_request(&mut buf, 16, b"/etc/motd").unwrap();
        let d = Datagram::parse(&buf[..len]).unwrap();
        assert_eq!(d.kind, PacketKind::Request);
        assert_eq!(d.total, 16);
        assert_eq!(d.payload, b"/etc/motd");

        let len = b.build_cancel(&mut buf).unwrap();
        let d = Datagram::parse(&buf[..len]).unwrap();
        assert_eq!(d.kind, PacketKind::Cancel);
        assert!(d.payload.is_empty());
    }

    #[test]
    fn copy_roundtrip() {
        let mut buf = [0u8; 256];
        let b = DatagramBuilder::new(31);
        let len = b.build_copy(&mut buf, 0xfeed, b"submit bytes").unwrap();
        let d = Datagram::parse(&buf[..len]).unwrap();
        assert_eq!(d.kind, PacketKind::Copy);
        assert_eq!(d.transfer_id, 31);
        assert_eq!(d.seq, 0xfeed);
        assert_eq!(d.payload, b"submit bytes");
        assert!(d.ack.is_none());
    }

    #[test]
    fn build_rejects_small_buffer() {
        let mut buf = [0u8; HEADER_LEN + 3];
        let b = DatagramBuilder::new(1);
        assert!(b
            .build_data(&mut buf, 0, 1, 0, b"too big for that", 0, true)
            .is_err());
        assert!(b.build_data(&mut buf, 0, 1, 0, b"ok!", 0, true).is_ok());
    }

    #[test]
    fn parse_rejects_corrupted_ack_payload() {
        let mut buf = [0u8; 256];
        let b = DatagramBuilder::new(5);
        let len = b
            .build_ack(&mut buf, 64, &AckPayload::Positive { acked: 63 })
            .unwrap();
        // Corrupt the ack tag byte; header checksum doesn't cover payload
        // so the ack decoder must catch it.
        buf[HEADER_LEN] = 0x99;
        assert_eq!(Datagram::parse(&buf[..len]).unwrap_err(), WireError::BadAck);
    }

    #[test]
    fn parse_is_total_on_garbage() {
        // No input may panic the parser.  One buffer serves every case:
        // each iteration extends it by the next pseudo-random byte, so
        // the parser sees all prefixes without a collect per length.
        let mut garbage = Vec::with_capacity(128);
        for len in 0..128 {
            garbage.push((len * 37 + 11) as u8);
            let _ = Datagram::parse(&garbage);
        }
        let _ = Datagram::parse(&[]);
    }
}
