//! The paper's motivating workload (§2): a diskless workstation reads a
//! file from a file server over the V kernel's IPC.
//!
//! "When a process wants to read an entire file into its address space,
//! it first allocates a buffer big enough to contain that file.  It
//! then sends a message to the file server … the file server … uses
//! MoveTo to move the file from its address space into that of the
//! client."
//!
//! Run with: `cargo run --release --example file_server`

use blastlan::vkernel::fileserver::{client_read, FileServer};
use blastlan::vkernel::VCluster;

fn main() {
    // Two machines on the simulated 10 Mbit Ethernet.
    let mut cluster = VCluster::new();
    let workstation = cluster.add_kernel("diskless-workstation");
    let server_machine = cluster.add_kernel("file-server-machine");

    let client = cluster.create_process(workstation, "editor");
    let fs_pid = cluster.create_process(server_machine, "fileserver");
    let mut fs = FileServer::new(fs_pid);

    // Install some files.
    fs.put("/etc/motd", b"V-System 6.0  --  welcome\n".to_vec());
    fs.put(
        "/bin/editor",
        (0..48 * 1024).map(|i| (i % 253) as u8).collect(),
    );
    fs.put(
        "/usr/data/trace.log",
        (0..64 * 1024).map(|i| (i * 7 % 251) as u8).collect(),
    );

    println!("client {} reading files from server {}\n", client, fs_pid);
    for name in ["/etc/motd", "/bin/editor", "/usr/data/trace.log"] {
        let before = cluster.clock_ms;
        let (segment, outcome) = client_read(&mut cluster, &mut fs, client, name).unwrap();
        let total = cluster.clock_ms - before;
        let bytes = cluster.segment(client, segment).unwrap().len();
        println!(
            "read {name:<22} {:>6} bytes  move {:>7.2} ms  (+msgs: {:>7.2} ms total)  \
             {} packets",
            bytes,
            outcome.transfer.elapsed_ms,
            total,
            outcome.transfer.sender_stats.data_packets_sent,
        );
    }
    println!(
        "\ncluster totals: {:.1} ms simulated, {} bytes moved, {} messages, {} reads",
        cluster.clock_ms, cluster.bytes_moved, cluster.messages, fs.reads_served
    );
    println!(
        "\nTable 3 anchor: the 64 KB read's MoveTo runs at ≈173 ms — exactly the \
         paper's\nmeasured V-kernel MoveTo time for that size."
    );

    // The same read on a lossy network still delivers intact data.
    let mut lossy = VCluster::new().with_loss(0.02, 99);
    let k0 = lossy.add_kernel("ws");
    let k1 = lossy.add_kernel("fs");
    let client2 = lossy.create_process(k0, "client");
    let fs2_pid = lossy.create_process(k1, "fileserver");
    let mut fs2 = FileServer::new(fs2_pid);
    let payload: Vec<u8> = (0..64 * 1024).map(|i| (i * 13 % 255) as u8).collect();
    fs2.put("/big", payload.clone());
    let (seg, outcome) = client_read(&mut lossy, &mut fs2, client2, "/big").unwrap();
    assert_eq!(lossy.segment(client2, seg).unwrap(), &payload[..]);
    println!(
        "\nwith 2 % packet loss: read still intact; {} losses, {} packets retransmitted, \
         {:.1} ms",
        outcome.transfer.wire_losses,
        outcome.transfer.sender_stats.data_packets_retransmitted,
        outcome.transfer.elapsed_ms,
    );
}
