//! # blast-bench — regenerating every table and figure of the paper
//!
//! One binary per artifact (run with `cargo run --release -p blast-bench
//! --bin <name>`):
//!
//! | binary | regenerates |
//! |---|---|
//! | `table1`  | Table 1 — standalone error-free elapsed times |
//! | `table2`  | Table 2 — 1 KB exchange cost breakdown (+ Figure 2 timeline) |
//! | `table3`  | Table 3 — V-kernel MoveTo measurements |
//! | `figure3` | Figure 3.a–d — protocol timelines for N = 3 |
//! | `figure4` | Figure 4 — elapsed time vs transfer size |
//! | `figure5` | Figure 5 — expected time vs error rate, D = 64 |
//! | `figure6` | Figure 6 — standard deviation of retransmission strategies |
//! | `utilization` | §2.1.3 — network utilization vs size |
//! | `ablation_strategies` | §3.2.4 — strategy comparison at the engine level |
//! | `ablation_multiblast` | §3.1.3 — multi-blast chunk-size sweep |
//! | `interface_errors` | §3 — the interface-overrun error regime |
//!
//! This library holds the shared measurement plumbing: running one
//! protocol transfer through the calibrated simulator and collecting
//! elapsed times over seeded trials.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::Arc;
use std::time::Duration;

use blast_core::blast::{BlastReceiver, BlastSender};
use blast_core::config::{ProtocolConfig, RetxStrategy};
use blast_core::multiblast::MultiBlastSender;
use blast_core::saw::{SawReceiver, SawSender};
use blast_core::window::WindowSender;
use blast_sim::{LossModel, SimConfig, SimReport, Simulator};
use blast_stats::OnlineStats;

/// Which protocol (and variant) to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Proto {
    /// Stop-and-wait.
    Saw,
    /// Sliding window with the paper's never-closing window.
    Window,
    /// Blast with the given retransmission strategy.
    Blast(RetxStrategy),
    /// Blast over the hypothetical double-buffered interface.
    BlastDouble,
    /// Multi-blast with the given chunk size (packets).
    MultiBlast(u32),
}

impl std::fmt::Display for Proto {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Proto::Saw => write!(f, "stop-and-wait"),
            Proto::Window => write!(f, "sliding-window"),
            Proto::Blast(s) => write!(f, "blast/{s}"),
            Proto::BlastDouble => write!(f, "blast/double-buffered"),
            Proto::MultiBlast(c) => write!(f, "multi-blast/{c}"),
        }
    }
}

/// Result of one simulated transfer.
#[derive(Debug)]
pub struct RunResult {
    /// Sender-side elapsed time (ms) — the paper's metric.
    pub elapsed_ms: f64,
    /// Full simulator report.
    pub report: SimReport,
}

/// Deterministic payload bytes.
pub fn payload(bytes: usize) -> Arc<[u8]> {
    (0..bytes)
        .map(|i| (i.wrapping_mul(2654435761) >> 9) as u8)
        .collect::<Vec<u8>>()
        .into()
}

/// Run one `proto` transfer of `bytes` bytes through the simulator.
///
/// `sim_cfg` picks hardware + loss; the protocol timeout defaults to a
/// comfortably-large value unless `timeout_ms` is given (Figures 5/6
/// sweep it).
pub fn run_transfer(
    proto: Proto,
    bytes: usize,
    sim_cfg: SimConfig,
    timeout_ms: Option<f64>,
) -> RunResult {
    let mut sim = Simulator::new(match proto {
        Proto::BlastDouble => SimConfig {
            tx_buffers: 2,
            busy_wait_tx: false,
            ..sim_cfg
        },
        _ => sim_cfg,
    });
    let a = sim.add_host("sender");
    let b = sim.add_host("receiver");
    let mut cfg = ProtocolConfig::default();
    cfg.max_retries = 1_000_000;
    if let Some(ms) = timeout_ms {
        cfg.timeout = Duration::from_nanos((ms * 1e6) as u64).into();
    } else {
        cfg.timeout = Duration::from_secs(3600).into();
    }
    let data = payload(bytes);
    match proto {
        Proto::Saw => {
            sim.attach(a, b, Box::new(SawSender::new(1, data.clone(), &cfg)));
            sim.attach(b, a, Box::new(SawReceiver::new(1, data.len(), &cfg)));
        }
        Proto::Window => {
            sim.attach(a, b, Box::new(WindowSender::new(1, data.clone(), &cfg)));
            sim.attach(b, a, Box::new(SawReceiver::new(1, data.len(), &cfg)));
        }
        Proto::Blast(strategy) => {
            cfg.strategy = strategy;
            sim.attach(a, b, Box::new(BlastSender::new(1, data.clone(), &cfg)));
            sim.attach(b, a, Box::new(BlastReceiver::new(1, data.len(), &cfg)));
        }
        Proto::MultiBlast(chunk) => {
            cfg.multiblast_chunk = chunk;
            sim.attach(a, b, Box::new(MultiBlastSender::new(1, data.clone(), &cfg)));
            sim.attach(b, a, Box::new(BlastReceiver::new(1, data.len(), &cfg)));
        }
        Proto::BlastDouble => {
            sim.attach(a, b, Box::new(BlastSender::new(1, data.clone(), &cfg)));
            sim.attach(b, a, Box::new(BlastReceiver::new(1, data.len(), &cfg)));
        }
    }
    let report = sim.run();
    let elapsed_ms = report.elapsed_ms(a, 1).unwrap_or(f64::NAN);
    RunResult { elapsed_ms, report }
}

/// Mean/σ of elapsed time over `trials` seeded runs under iid loss.
pub fn trials_under_loss(
    proto: Proto,
    bytes: usize,
    p_n: f64,
    timeout_ms: f64,
    trials: u64,
    base_seed: u64,
) -> OnlineStats {
    let mut stats = OnlineStats::new();
    for t in 0..trials {
        let seed = blast_stats::experiment::splitmix64(base_seed.wrapping_add(t));
        let sim_cfg = SimConfig::vkernel().with_loss(LossModel::iid(p_n), seed);
        let r = run_transfer(proto, bytes, sim_cfg, Some(timeout_ms));
        if r.elapsed_ms.is_finite() {
            stats.push(r.elapsed_ms);
        }
    }
    stats
}

/// The paper's canonical experiment sizes in packets (1 KB each).
pub const TABLE_SIZES_KB: [usize; 4] = [1, 4, 16, 64];

/// Error-rate sweep used by Figures 5 and 6.
pub fn pn_sweep() -> Vec<f64> {
    let mut v = Vec::new();
    for exp in [-6i32, -5, -4, -3, -2, -1] {
        for mantissa in [1.0, 2.0, 5.0] {
            v.push(mantissa * 10f64.powi(exp));
        }
    }
    v.truncate(v.len() - 2); // stop at 1e-1
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_transfer_matches_known_values() {
        let r = run_transfer(
            Proto::Blast(RetxStrategy::GoBackN),
            64 * 1024,
            SimConfig::standalone(),
            None,
        );
        assert_eq!(r.elapsed_ms, 140.62);
        let r = run_transfer(Proto::Saw, 1024, SimConfig::standalone(), None);
        assert_eq!(r.elapsed_ms, 3.91);
        let r = run_transfer(Proto::Window, 64 * 1024, SimConfig::standalone(), None);
        assert!((r.elapsed_ms - 151.16).abs() < 0.5);
        let r = run_transfer(Proto::BlastDouble, 64 * 1024, SimConfig::standalone(), None);
        assert!((r.elapsed_ms - (64.0 * 1.35 + 0.82 + 1.35 + 0.34 + 0.05)).abs() < 1e-9);
    }

    #[test]
    fn multiblast_runs() {
        let r = run_transfer(
            Proto::MultiBlast(16),
            64 * 1024,
            SimConfig::standalone(),
            None,
        );
        // 4 chunks: 64×(C+T) + 4×(C + 2Ca + Ta) = 138.88 + 4×1.74
        assert!(
            (r.elapsed_ms - (64.0 * 2.17 + 4.0 * 1.74)).abs() < 1e-9,
            "{}",
            r.elapsed_ms
        );
    }

    #[test]
    fn trials_under_loss_accumulate() {
        let s = trials_under_loss(
            Proto::Blast(RetxStrategy::GoBackN),
            16 * 1024,
            0.01,
            173.0,
            10,
            1,
        );
        assert_eq!(s.count(), 10);
        assert!(s.mean() > 0.0);
    }

    #[test]
    fn pn_sweep_is_sorted_and_bounded() {
        let v = pn_sweep();
        assert!(v.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(*v.first().unwrap(), 1e-6);
        assert_eq!(*v.last().unwrap(), 1e-1);
    }

    #[test]
    fn proto_display() {
        assert_eq!(Proto::Saw.to_string(), "stop-and-wait");
        assert_eq!(
            Proto::Blast(RetxStrategy::GoBackN).to_string(),
            "blast/go-back-n"
        );
        assert_eq!(Proto::MultiBlast(64).to_string(), "multi-blast/64");
    }
}
