//! Figure 5 — "Expected Time for 64 kilobyte Transfers" vs the network
//! error rate `p_n`.
//!
//! Four curves, as in the paper (V-kernel constants, D = 64,
//! To(1) = 5.9 ms, To(D) = 173 ms):
//!
//! * stop-and-wait with `T_r = 10 × To(1)` and `100 × To(1)`;
//! * blast (full retransmission) with `T_r = To(D)` and `10 × To(D)`.
//!
//! Closed forms from §3.1 drawn as lines; engine-level simulator
//! measurements overlaid at spot error rates to validate them.  The
//! paper's operating region ("between 10⁻⁵ and 10⁻⁴") sits on the flat
//! part of the blast curves — the basis for its conclusion that even
//! full retransmission is acceptable for *expected* time.

use blast_analytic::{CostModel, ExpectedTime};
use blast_bench::{pn_sweep, trials_under_loss, Proto};
use blast_core::config::RetxStrategy;
use blast_stats::Chart;

fn main() {
    let x = ExpectedTime::new(CostModel::vkernel_sun());
    let d = 64u64;
    let t0_1 = x.error_free().saw(1); // 5.87 ms
    let t0_d = x.error_free().blast(d); // 172.82 ms

    let mut chart = Chart::new(
        "Figure 5: expected time, 64 KB transfer, vs error rate p_n (V-kernel constants)",
        90,
        24,
    )
    .log_x()
    .labels("p_n", "expected time (ms)");

    type Curve<'a> = (&'a str, Box<dyn Fn(f64) -> f64>);
    let curves: [Curve; 4] = [
        (
            "SAW, Tr = 100 x To(1)",
            Box::new(move |p| x.saw(d, p, 100.0 * t0_1)),
        ),
        (
            "SAW, Tr = 10 x To(1)",
            Box::new(move |p| x.saw(d, p, 10.0 * t0_1)),
        ),
        (
            "blast, Tr = 10 x To(D)",
            Box::new(move |p| x.blast_full_retx(d, p, 10.0 * t0_d)),
        ),
        (
            "blast, Tr = To(D)",
            Box::new(move |p| x.blast_full_retx(d, p, t0_d)),
        ),
    ];
    for (name, f) in &curves {
        let pts: Vec<(f64, f64)> = pn_sweep()
            .into_iter()
            .map(|p| (p, f(p)))
            .filter(|&(_, y)| y.is_finite() && y < 600.0) // paper's y-range
            .collect();
        chart.series(name, pts);
    }
    println!("{}", chart.render());

    // Engine-level validation at spot rates (full engines over the
    // simulated network, 200 seeded trials each).
    println!("engine-in-simulator validation (mean over 200 trials, ms):");
    println!(
        "{:>8} {:>16} {:>13} {:>16} {:>13}",
        "p_n", "blast sim", "closed form", "SAW sim", "closed form"
    );
    for p_n in [1e-4, 1e-3, 1e-2] {
        let blast_sim = trials_under_loss(
            Proto::Blast(RetxStrategy::FullNoNack),
            64 * 1024,
            p_n,
            t0_d,
            200,
            11,
        );
        let saw_sim = trials_under_loss(Proto::Saw, 64 * 1024, p_n, 10.0 * t0_1, 200, 13);
        println!(
            "{:>8.0e} {:>16.1} {:>13.1} {:>16.1} {:>13.1}",
            p_n,
            blast_sim.mean(),
            x.blast_full_retx(d, p_n, t0_d),
            saw_sim.mean(),
            x.saw(d, p_n, 10.0 * t0_1),
        );
    }
    println!();
    println!(
        "operating region: network errors ~1e-5, interface errors up to ~1e-4 \
         (§3.1.3) — the flat part of the blast curves."
    );
}
