//! Extension E1 — burst errors (Gilbert–Elliott) vs the paper's iid
//! assumption.
//!
//! §3: "we assume that packet transmissions are statistically
//! independent events with a constant failure probability.  In
//! practice, this assumption is a reasonable approximation of reality,
//! although burst errors occasionally occur.  Analysis of the
//! performance under other error distributions is beyond the scope of
//! this paper."  This binary does that analysis: a two-state
//! Gilbert–Elliott channel tuned to the *same average loss rate* as an
//! iid channel, compared across retransmission strategies.
//!
//! Expected outcome (and the measurement confirms it): bursts *help*
//! the full-retransmission strategies slightly (losses cluster into
//! fewer failed rounds) and *hurt* selective retransmission's
//! round count less than one might fear, because a burst maps to one
//! contiguous chunk of missing packets — which go-back-n repairs in a
//! single round.  The paper's strategy ranking is robust to the iid
//! assumption.

use blast_bench::payload;
use blast_core::blast::{BlastReceiver, BlastSender};
use blast_core::config::{ProtocolConfig, RetxStrategy};
use blast_sim::{LossModel, SimConfig, Simulator};
use blast_stats::{OnlineStats, Table};

const AVG_LOSS: f64 = 1e-2;

/// GE parameters with stationary average loss = AVG_LOSS:
/// π_bad = p_g2b/(p_g2b+p_b2g); avg = π_bad × loss_bad.
fn gilbert_elliott() -> LossModel {
    let p_g2b = 0.005;
    let p_b2g = 0.245;
    let loss_bad = 0.5;
    let pi_bad = p_g2b / (p_g2b + p_b2g);
    debug_assert!((pi_bad * loss_bad - AVG_LOSS).abs() < 2e-3);
    LossModel::GilbertElliott {
        p_g2b,
        p_b2g,
        loss_good: 0.0,
        loss_bad,
    }
}

fn measure(strategy: RetxStrategy, loss: LossModel, trials: u64) -> (OnlineStats, f64) {
    let t0_d = 64.0 * 2.65 + 3.22;
    let data = payload(64 * 1024);
    let mut elapsed = OnlineStats::new();
    let mut rounds = OnlineStats::new();
    for t in 0..trials {
        let seed = blast_stats::experiment::splitmix64(0xBEEF ^ t);
        let mut sim = Simulator::new(SimConfig::vkernel().with_loss(loss, seed));
        let a = sim.add_host("a");
        let b = sim.add_host("b");
        let mut cfg = ProtocolConfig::default().with_strategy(strategy);
        cfg.max_retries = 1_000_000;
        cfg.timeout = std::time::Duration::from_nanos((t0_d * 1e6) as u64).into();
        sim.attach(a, b, Box::new(BlastSender::new(1, data.clone(), &cfg)));
        sim.attach(b, a, Box::new(BlastReceiver::new(1, data.len(), &cfg)));
        let report = sim.run();
        if let Some(c) = report.completions.get(&(a, 1)) {
            if c.info.is_success() {
                elapsed.push(c.at.as_ms());
                rounds.push(c.info.stats.retransmission_rounds as f64);
            }
        }
    }
    let mean_rounds = rounds.mean();
    (elapsed, mean_rounds)
}

fn main() {
    let trials = 400;
    println!(
        "Burst errors vs iid at the same average loss ({AVG_LOSS:.0e}), 64 KB transfers, \
         {trials} trials\n"
    );
    let mut t = Table::new(&[
        "strategy",
        "iid mean",
        "iid sigma",
        "GE mean",
        "GE sigma",
        "iid rounds",
        "GE rounds",
    ])
    .with_title("elapsed time (ms) under iid vs Gilbert-Elliott loss");
    for strategy in RetxStrategy::ALL {
        let (iid, iid_rounds) = measure(strategy, LossModel::iid(AVG_LOSS), trials);
        let (ge, ge_rounds) = measure(strategy, gilbert_elliott(), trials);
        t.row(&[
            &strategy.to_string(),
            &format!("{:.1}", iid.mean()),
            &format!("{:.1}", iid.population_stddev()),
            &format!("{:.1}", ge.mean()),
            &format!("{:.1}", ge.population_stddev()),
            &format!("{iid_rounds:.2}"),
            &format!("{ge_rounds:.2}"),
        ]);
    }
    println!("{}", t.render());
    println!(
        "reading: clustering the same number of losses into bursts concentrates\n\
         damage into fewer rounds; the strategy ranking (and hence the paper's\n\
         §3.2.4 recommendation) is unchanged by dropping the iid assumption."
    );
}
