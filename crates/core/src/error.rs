//! Errors surfaced by the protocol engines.

use core::fmt;

use blast_wire::WireError;

/// Result alias for engine operations.
pub type CoreResult<T> = Result<T, CoreError>;

/// Errors from the protocol engines.
///
/// Engines treat most anomalies (duplicate packets, stale rounds,
/// unexpected acks) as noise to be ignored — that is protocol behaviour,
/// not an error.  `CoreError` is reserved for conditions that make the
/// transfer itself fail or that indicate caller misuse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// The retransmission budget was exhausted without completing the
    /// transfer (the peer is unreachable or losses exceed the budget).
    RetriesExhausted {
        /// Retries configured.
        retries: u32,
    },
    /// A received packet contradicts the transfer parameters, e.g. a
    /// data packet whose `total`/`offset`/length does not match the
    /// pre-allocated receive buffer.  The paper's premise is that buffers
    /// are allocated *before* the transfer, so geometry is fixed.
    GeometryMismatch {
        /// Human-readable description of the mismatch.
        what: &'static str,
    },
    /// The transfer was cancelled by the peer.
    Cancelled,
    /// A wire-format error on a packet the engine was asked to process.
    /// Drivers normally drop malformed packets before the engine sees
    /// them; this surfaces misuse of the engine API itself.
    Wire(WireError),
    /// Caller misuse: the engine cannot accept this call in its current
    /// state (e.g. `start` called twice).
    BadState {
        /// Human-readable description.
        what: &'static str,
    },
    /// The requested configuration is unusable (zero-size packets,
    /// window of zero, transfer too large for a single blast, ...).
    BadConfig {
        /// Human-readable description.
        what: &'static str,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::RetriesExhausted { retries } => {
                write!(f, "transfer failed after {retries} retransmission attempts")
            }
            CoreError::GeometryMismatch { what } => {
                write!(f, "packet does not match transfer geometry: {what}")
            }
            CoreError::Cancelled => write!(f, "transfer cancelled by peer"),
            CoreError::Wire(e) => write!(f, "wire error: {e}"),
            CoreError::BadState { what } => write!(f, "engine misuse: {what}"),
            CoreError::BadConfig { what } => write!(f, "bad configuration: {what}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WireError> for CoreError {
    fn from(e: WireError) -> Self {
        CoreError::Wire(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(CoreError::RetriesExhausted { retries: 5 }
            .to_string()
            .contains('5'));
        assert!(CoreError::GeometryMismatch { what: "offset" }
            .to_string()
            .contains("offset"));
        assert_eq!(
            CoreError::Cancelled.to_string(),
            "transfer cancelled by peer"
        );
        assert!(CoreError::BadState {
            what: "double start"
        }
        .to_string()
        .contains("double"));
        assert!(CoreError::BadConfig { what: "window=0" }
            .to_string()
            .contains("window=0"));
    }

    #[test]
    fn wire_error_converts_and_chains() {
        let we = WireError::BadChecksum;
        let ce: CoreError = we.into();
        assert!(matches!(ce, CoreError::Wire(WireError::BadChecksum)));
        assert!(std::error::Error::source(&ce).is_some());
        assert!(std::error::Error::source(&CoreError::Cancelled).is_none());
    }
}
