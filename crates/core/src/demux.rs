//! Demultiplexing datagrams to per-transfer engines.
//!
//! The paper's standalone experiments deliberately omit demultiplexing
//! ("no provisions are made for demultiplexing packets") while the
//! V-kernel measurements include it as part of the per-packet overhead
//! that raises `C` from 1.35 ms to 1.83 ms.  [`Demux`] is that component:
//! it routes validated datagrams to the engine owning the transfer id
//! and drops everything else.

use std::collections::HashMap;

use blast_wire::packet::Datagram;
use blast_wire::WireError;

use crate::api::ActionSink;
use crate::engine::Engine;

/// Routes datagrams to engines by transfer id.
///
/// ## Lifecycle
///
/// Engines enter via [`register`](Demux::register) (started in place) or
/// [`insert`](Demux::insert) (already started).  Finished engines stay
/// registered — a finished receiver must keep re-acknowledging duplicate
/// packets so a lost final ack cannot strand its peer — until the owner
/// removes them with [`remove`](Demux::remove) or sweeps them with
/// [`reap_finished`](Demux::reap_finished), typically after a linger
/// period.  Without reaping, a long-lived server accumulates one dead
/// engine per transfer forever.
pub struct Demux {
    engines: HashMap<u32, Box<dyn Engine>>,
    /// Datagrams dropped because no engine owned their transfer id.
    pub unroutable: u64,
    /// Buffers dropped because they failed wire validation.
    pub malformed: u64,
    /// Datagrams successfully routed to an engine.
    pub dispatched: u64,
    /// Engines removed via [`reap_finished`](Demux::reap_finished) or
    /// [`remove`](Demux::remove) over the table's lifetime.
    pub reaped: u64,
}

impl Default for Demux {
    fn default() -> Self {
        Self::new()
    }
}

impl Demux {
    /// Empty table.
    pub fn new() -> Self {
        Demux {
            engines: HashMap::new(),
            unroutable: 0,
            malformed: 0,
            dispatched: 0,
            reaped: 0,
        }
    }

    /// Register `engine` (keyed by its transfer id) and start it,
    /// collecting its opening actions into `sink`.
    pub fn register(&mut self, mut engine: Box<dyn Engine>, sink: &mut dyn ActionSink) {
        engine.start(sink);
        self.engines.insert(engine.transfer_id(), engine);
    }

    /// Register without starting (for engines already started elsewhere).
    pub fn insert(&mut self, engine: Box<dyn Engine>) {
        self.engines.insert(engine.transfer_id(), engine);
    }

    /// Number of registered engines.
    pub fn len(&self) -> usize {
        self.engines.len()
    }

    /// True when no engines are registered.
    pub fn is_empty(&self) -> bool {
        self.engines.is_empty()
    }

    /// Borrow an engine by transfer id.
    pub fn get(&self, transfer_id: u32) -> Option<&dyn Engine> {
        self.engines.get(&transfer_id).map(|b| b.as_ref())
    }

    /// Mutably borrow an engine by transfer id, for drivers that parse
    /// datagrams themselves (e.g. to segregate handshake traffic) and
    /// only need the routing table.
    pub fn get_mut(&mut self, transfer_id: u32) -> Option<&mut dyn Engine> {
        match self.engines.get_mut(&transfer_id) {
            Some(b) => Some(b.as_mut()),
            None => None,
        }
    }

    /// Transfer ids currently registered, in no particular order.
    pub fn ids(&self) -> impl Iterator<Item = u32> + '_ {
        self.engines.keys().copied()
    }

    /// Remove an engine (e.g. once finished and drained).
    pub fn remove(&mut self, transfer_id: u32) -> Option<Box<dyn Engine>> {
        let engine = self.engines.remove(&transfer_id);
        if engine.is_some() {
            self.reaped += 1;
        }
        engine
    }

    /// Remove and return every finished engine.  Call periodically (or
    /// after a linger delay) so completed transfers do not accumulate.
    pub fn reap_finished(&mut self) -> Vec<Box<dyn Engine>> {
        let ids: Vec<u32> = self
            .engines
            .iter()
            .filter(|(_, e)| e.is_finished())
            .map(|(id, _)| *id)
            .collect();
        ids.into_iter().filter_map(|id| self.remove(id)).collect()
    }

    /// Validate a raw buffer and route it.  Malformed packets and
    /// unknown transfer ids are counted and dropped — the software
    /// equivalent of the interface dropping bad-FCS frames.
    pub fn dispatch(&mut self, raw: &[u8], sink: &mut dyn ActionSink) -> Result<bool, WireError> {
        let dgram = match Datagram::parse(raw) {
            Ok(d) => d,
            Err(e) => {
                self.malformed += 1;
                return Err(e);
            }
        };
        match self.engines.get_mut(&dgram.transfer_id) {
            Some(engine) => {
                engine.on_datagram(&dgram, sink);
                self.dispatched += 1;
                Ok(true)
            }
            None => {
                self.unroutable += 1;
                Ok(false)
            }
        }
    }

    /// Route a timer expiry to the owning engine.
    pub fn on_timer(
        &mut self,
        transfer_id: u32,
        token: crate::api::TimerToken,
        sink: &mut dyn ActionSink,
    ) {
        if let Some(engine) = self.engines.get_mut(&transfer_id) {
            engine.on_timer(token, sink);
        }
    }

    /// Transfer ids of engines that have finished.
    pub fn finished(&self) -> Vec<u32> {
        self.engines
            .iter()
            .filter(|(_, e)| e.is_finished())
            .map(|(id, _)| *id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::Action;
    use crate::config::ProtocolConfig;
    use crate::saw::{SawReceiver, SawSender};

    #[test]
    fn routes_by_transfer_id() {
        let cfg = ProtocolConfig::default();
        let mut demux = Demux::new();
        let mut sink: Vec<Action> = Vec::new();
        demux.register(Box::new(SawReceiver::new(7, 1024, &cfg)), &mut sink);
        demux.register(Box::new(SawReceiver::new(9, 1024, &cfg)), &mut sink);
        assert_eq!(demux.len(), 2);
        assert!(sink.is_empty(), "receivers are passive on start");

        // Build a packet for transfer 7.
        let data: std::sync::Arc<[u8]> = vec![1u8; 1024].into();
        let mut s = SawSender::new(7, data, &cfg);
        let mut out: Vec<Action> = Vec::new();
        s.start(&mut out);
        let pkt = out[0].as_transmit().unwrap().to_vec();

        let mut sink: Vec<Action> = Vec::new();
        assert_eq!(demux.dispatch(&pkt, &mut sink), Ok(true));
        // Receiver 7 acked; receiver 9 untouched.
        assert_eq!(sink.iter().filter(|a| a.as_transmit().is_some()).count(), 1);
        assert_eq!(demux.finished(), vec![7]);
        assert!(demux.get(9).is_some());
        assert!(!demux.get(9).unwrap().is_finished());
    }

    #[test]
    fn counts_malformed_and_unroutable() {
        let cfg = ProtocolConfig::default();
        let mut demux = Demux::new();
        let mut sink: Vec<Action> = Vec::new();
        demux.register(Box::new(SawReceiver::new(1, 1024, &cfg)), &mut sink);

        assert!(demux.dispatch(&[0u8; 8], &mut sink).is_err());
        assert_eq!(demux.malformed, 1);

        let data: std::sync::Arc<[u8]> = vec![1u8; 8].into();
        let mut s = SawSender::new(42, data, &cfg);
        let mut out: Vec<Action> = Vec::new();
        s.start(&mut out);
        let pkt = out[0].as_transmit().unwrap().to_vec();
        assert_eq!(demux.dispatch(&pkt, &mut sink), Ok(false));
        assert_eq!(demux.unroutable, 1);
    }

    #[test]
    fn remove_and_timer_routing() {
        let cfg = ProtocolConfig::default();
        let mut demux = Demux::new();
        let mut sink: Vec<Action> = Vec::new();
        let data: std::sync::Arc<[u8]> = vec![1u8; 2048].into();
        demux.register(Box::new(SawSender::new(3, data, &cfg)), &mut sink);
        sink.clear();
        // Timer for an unknown transfer: no-op.
        demux.on_timer(99, crate::api::TimerToken(0), &mut sink);
        assert!(sink.is_empty());
        // Timer for the sender: retransmission.
        demux.on_timer(3, crate::api::TimerToken(0), &mut sink);
        assert_eq!(sink.iter().filter(|a| a.as_transmit().is_some()).count(), 1);
        assert!(demux.remove(3).is_some());
        assert!(demux.is_empty());
        assert_eq!(demux.reaped, 1);
        assert!(demux.remove(3).is_none());
        assert_eq!(demux.reaped, 1, "removing a missing id counts nothing");
    }

    #[test]
    fn reap_finished_sweeps_only_completed_engines() {
        let cfg = ProtocolConfig::default();
        let mut demux = Demux::new();
        let mut sink: Vec<Action> = Vec::new();
        demux.register(Box::new(SawReceiver::new(7, 1024, &cfg)), &mut sink);
        demux.register(Box::new(SawReceiver::new(9, 4096, &cfg)), &mut sink);
        assert!(demux.reap_finished().is_empty(), "nothing finished yet");

        // Complete transfer 7 with its single packet.
        let data: std::sync::Arc<[u8]> = vec![1u8; 1024].into();
        let mut s = SawSender::new(7, data, &cfg);
        let mut out: Vec<Action> = Vec::new();
        s.start(&mut out);
        let pkt = out[0].as_transmit().unwrap().to_vec();
        demux.dispatch(&pkt, &mut sink).unwrap();
        assert_eq!(demux.dispatched, 1);

        let reaped = demux.reap_finished();
        assert_eq!(reaped.len(), 1);
        assert_eq!(reaped[0].transfer_id(), 7);
        assert!(reaped[0].is_finished());
        assert_eq!(demux.len(), 1, "unfinished engine 9 survives the sweep");
        assert_eq!(demux.reaped, 1);
        assert!(demux.get(9).is_some());

        // A reaped id becomes unroutable again.
        demux.dispatch(&pkt, &mut sink).unwrap();
        assert_eq!(demux.unroutable, 1);
        assert_eq!(demux.dispatched, 1);
    }

    #[test]
    fn received_data_is_reachable_through_the_table() {
        let cfg = ProtocolConfig::default();
        let mut demux = Demux::new();
        let mut sink: Vec<Action> = Vec::new();
        demux.register(Box::new(SawReceiver::new(4, 512, &cfg)), &mut sink);
        let payload: Vec<u8> = (0..512).map(|i| (i % 256) as u8).collect();
        let data: std::sync::Arc<[u8]> = payload.clone().into();
        let mut s = SawSender::new(4, data, &cfg);
        let mut out: Vec<Action> = Vec::new();
        s.start(&mut out);
        let pkt = out[0].as_transmit().unwrap().to_vec();
        demux.dispatch(&pkt, &mut sink).unwrap();

        let engine = demux.get_mut(4).unwrap();
        assert!(engine.is_finished());
        assert_eq!(engine.received_data(), Some(&payload[..]));

        // Senders expose no buffer.
        let data2: std::sync::Arc<[u8]> = vec![0u8; 64].into();
        let sender = SawSender::new(5, data2, &cfg);
        demux.insert(Box::new(sender));
        assert_eq!(demux.get(5).unwrap().received_data(), None);
        assert_eq!(demux.ids().count(), 2);
    }
}
