//! The cost model: the small set of constants the paper's entire
//! analysis reduces to.
//!
//! Table 2 of the paper decomposes a 1 KB reliable exchange into six
//! components; §2.1.3 then expresses every protocol's elapsed time in
//! terms of:
//!
//! | symbol | meaning | standalone | V kernel |
//! |---|---|---|---|
//! | `C`  | copy a data packet into/out of an interface | 1.35 ms | 1.83 ms |
//! | `Ca` | copy an acknowledgement into/out of an interface | 0.17 ms | 0.67 ms |
//! | `T`  | data packet transmission time | 0.82 ms | 0.82 ms |
//! | `Ta` | acknowledgement transmission time | 0.05 ms | 0.05 ms |
//! | `τ`  | network propagation delay | ~0.01 ms | ~0.01 ms |
//!
//! The V-kernel values fold in "transmission of the headers, as well as
//! access right checking, demultiplexing and interrupt handling" (§2.2):
//! the paper's own way of modelling software overhead is to inflate `C`
//! and `Ca`, which we adopt wholesale.

/// Copy/transmission cost constants, in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Time to copy a data packet between memory and an interface (`C`).
    pub c_data: f64,
    /// Time to copy an acknowledgement likewise (`Ca`).
    pub c_ack: f64,
    /// Network transmission time of a data packet (`T`).
    pub t_data: f64,
    /// Network transmission time of an acknowledgement (`Ta`).
    pub t_ack: f64,
    /// One-way propagation delay (`τ`).  The paper's formulas omit it
    /// ("the propagation delay is far exaggerated in Figures 2 and 3 to
    /// make it visible at all"); set it to zero to reproduce the printed
    /// numbers exactly, or to ~0.01 ms for the realistic value quoted in
    /// §2.1 ("typical propagation delays … are on the order of 10
    /// microseconds").
    pub tau: f64,
}

/// 10 Mbit/s in bits per millisecond.
const ETHERNET_BITS_PER_MS: f64 = 10_000.0;

impl CostModel {
    /// The standalone measurement constants (Table 2): `C = 1.35 ms`,
    /// `Ca = 0.17 ms`, `T = 0.82 ms`, `Ta = 0.05 ms`, `τ = 0`.
    pub fn standalone_sun() -> Self {
        CostModel {
            c_data: 1.35,
            c_ack: 0.17,
            t_data: 0.82,
            t_ack: 0.05,
            tau: 0.0,
        }
    }

    /// The V-kernel constants (fitted to Table 3's `To(1) = 5.9 ms`,
    /// `To(64) = 173 ms`): `C = 1.83 ms`, `Ca = 0.67 ms` (§2.2).
    pub fn vkernel_sun() -> Self {
        CostModel {
            c_data: 1.83,
            c_ack: 0.67,
            t_data: 0.82,
            t_ack: 0.05,
            tau: 0.0,
        }
    }

    /// The §2.1 introduction's naive model: *only* wire time counts
    /// (`C = Ca = 0`), with `τ = 10 µs`.  Reproduces the 57 024 / 55 764
    /// / 52 551 µs estimates that the measurements then demolish.
    pub fn wire_only() -> Self {
        CostModel {
            c_data: 0.0,
            c_ack: 0.0,
            t_data: 0.82,
            t_ack: 0.051,
            tau: 0.01,
        }
    }

    /// An Excelan-style DMA interface (§2.1.3): the copy is performed by
    /// the on-board 8088 instead of the 68000 host, and is "much slower".
    /// The elapsed-time formulas remain valid with `C`/`Ca` read as the
    /// *DMA processor's* copy times; what changes is that the host CPU
    /// is free during them.  Constants: 2× the host-copy times (the
    /// paper gives no number beyond "much slower"; 2× is conservative
    /// for an 8088 vs a 68000 moving Multibus data).
    pub fn excelan_dma() -> Self {
        CostModel {
            c_data: 2.70,
            c_ack: 0.34,
            t_data: 0.82,
            t_ack: 0.05,
            tau: 0.0,
        }
    }

    /// Host-CPU time per data packet under this model when the *host*
    /// performs copies (3-Com style): simply `C`.
    pub fn host_cpu_per_packet_host_copy(&self) -> f64 {
        self.c_data
    }

    /// Host-CPU time per data packet when a DMA processor copies:
    /// only the descriptor/doorbell setup remains on the host.  The
    /// paper gives no measurement; 0.10 ms (a few hundred 68000
    /// instructions) is used and documented.
    pub fn host_cpu_per_packet_dma(&self) -> f64 {
        0.10
    }

    /// Derive transmission times from packet sizes at 10 Mbit/s, keeping
    /// the given copy costs.  The paper computes `T` from the 1024
    /// payload bytes alone (no header/padding), which
    /// `from_packet_sizes(1024, 64, …)` reproduces: `T = 0.8192 ms`.
    pub fn from_packet_sizes(data_bytes: usize, ack_bytes: usize, c_data: f64, c_ack: f64) -> Self {
        CostModel {
            c_data,
            c_ack,
            t_data: (data_bytes * 8) as f64 / ETHERNET_BITS_PER_MS,
            t_ack: (ack_bytes * 8) as f64 / ETHERNET_BITS_PER_MS,
            tau: 0.0,
        }
    }

    /// Replace the propagation delay.
    pub fn with_tau(mut self, tau: f64) -> Self {
        self.tau = tau;
        self
    }

    /// Linear-in-bytes copy cost calibrated through the two paper
    /// points (data 1024+copy `C`, ack 64 bytes+copy `Ca`): returns
    /// `(base_ms, per_byte_ms)`.  Used by the simulator to price
    /// odd-sized packets consistently with the model.
    pub fn copy_cost_line(&self, data_bytes: usize, ack_bytes: usize) -> (f64, f64) {
        let db = data_bytes as f64;
        let ab = ack_bytes as f64;
        if (db - ab).abs() < f64::EPSILON {
            return (self.c_ack, 0.0);
        }
        let per_byte = (self.c_data - self.c_ack) / (db - ab);
        let base = self.c_ack - per_byte * ab;
        (base, per_byte)
    }

    /// Time for a 1-packet reliable exchange — `To(1)` in §3.1.1:
    /// `2C + T + 2Ca + Ta (+ 2τ)`.
    pub fn t0_exchange(&self) -> f64 {
        2.0 * self.c_data + self.t_data + 2.0 * self.c_ack + self.t_ack + 2.0 * self.tau
    }

    /// Sender-side time to put `k` packets on the wire in blast mode:
    /// `k (C + T)` (copy and transmit strictly alternate on a
    /// single-buffered interface).
    pub fn blast_send_time(&self, k: u64) -> f64 {
        k as f64 * (self.c_data + self.t_data)
    }

    /// The tail from the last data bit leaving the sender to the ack
    /// being processed: receiver copy-out `C`, ack copy-in `Ca`, ack
    /// transmission `Ta`, ack copy-out `Ca`, plus two propagations.
    pub fn reply_tail(&self) -> f64 {
        self.c_data + 2.0 * self.c_ack + self.t_ack + 2.0 * self.tau
    }
}

impl Default for CostModel {
    /// Defaults to the standalone SUN constants.
    fn default() -> Self {
        Self::standalone_sun()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_table_2() {
        let m = CostModel::standalone_sun();
        assert_eq!(m.c_data, 1.35);
        assert_eq!(m.c_ack, 0.17);
        assert_eq!(m.t_data, 0.82);
        assert_eq!(m.t_ack, 0.05);
        // Table 2's total: 2×1.35 + 0.82 + 2×0.17 + 0.05 = 3.91 ms.
        assert!((m.t0_exchange() - 3.91).abs() < 1e-12);
    }

    #[test]
    fn vkernel_reproduces_table_3_to1() {
        // To(1) = 2×1.83 + 0.82 + 2×0.67 + 0.05 = 5.87 ≈ 5.9 ms.
        let m = CostModel::vkernel_sun();
        assert!((m.t0_exchange() - 5.87).abs() < 1e-12);
    }

    #[test]
    fn packet_size_derivation() {
        let m = CostModel::from_packet_sizes(1024, 64, 1.35, 0.17);
        assert!((m.t_data - 0.8192).abs() < 1e-12);
        assert!((m.t_ack - 0.0512).abs() < 1e-12);
    }

    #[test]
    fn copy_cost_line_passes_through_both_points() {
        let m = CostModel::standalone_sun();
        let (base, per_byte) = m.copy_cost_line(1024, 64);
        assert!((base + per_byte * 1024.0 - m.c_data).abs() < 1e-12);
        assert!((base + per_byte * 64.0 - m.c_ack).abs() < 1e-12);
        assert!(per_byte > 0.0);
    }

    #[test]
    fn copy_cost_line_degenerate_sizes() {
        let m = CostModel::standalone_sun();
        let (base, per_byte) = m.copy_cost_line(64, 64);
        assert_eq!(per_byte, 0.0);
        assert_eq!(base, m.c_ack);
    }

    #[test]
    fn blast_send_and_tail() {
        let m = CostModel::standalone_sun();
        assert!((m.blast_send_time(64) - 64.0 * 2.17).abs() < 1e-9);
        // tail = 1.35 + 2×0.17 + 0.05 = 1.74
        assert!((m.reply_tail() - 1.74).abs() < 1e-12);
        // Blast total = send + tail = paper's T_B.
        assert!((m.blast_send_time(64) + m.reply_tail() - 140.62).abs() < 1e-9);
    }

    #[test]
    fn tau_adjustment() {
        let m = CostModel::standalone_sun().with_tau(0.01);
        assert!((m.t0_exchange() - 3.93).abs() < 1e-12);
    }

    #[test]
    fn excelan_dma_is_slower_elapsed_but_cheaper_host_cpu() {
        // §2.1.3's conclusion in numbers: "the elapsed time is not
        // significantly improved by using currently available DMA
        // interfaces.  The amount of host processor utilization for
        // network access is decreased."
        let host = CostModel::standalone_sun();
        let dma = CostModel::excelan_dma();
        // Elapsed per blast packet: C+T is *worse* with the slow 8088.
        assert!(dma.c_data + dma.t_data > host.c_data + host.t_data);
        // Host CPU per packet: far better with DMA.
        assert!(dma.host_cpu_per_packet_dma() < host.host_cpu_per_packet_host_copy() / 5.0);
    }
}
