//! Property test for the `SO_REUSEPORT` group contract the sharded
//! node is built on: the kernel's 4-tuple hash assigns every remote
//! socket to exactly one group member, and keeps it there — a session's
//! datagrams never migrate between members mid-transfer.
//!
//! The test is a hand-rolled property sweep (many clients × many
//! interleaved rounds) rather than a `proptest` harness: the input
//! space is "distinct ephemeral 4-tuples", which the OS generates for
//! us, and the property must hold for *all* of them.

use std::collections::HashMap;
use std::net::UdpSocket;
use std::time::Duration;

use blast_udp::sockopt;

const MEMBERS: usize = 4;
const CLIENTS: usize = 24;
const ROUNDS: usize = 8;

/// Bind a `MEMBERS`-strong reuseport group on a loopback ephemeral
/// port, or `None` where the platform has no `SO_REUSEPORT`.
fn bind_group() -> Option<Vec<UdpSocket>> {
    if !sockopt::reuseport_supported() {
        return None;
    }
    let first = sockopt::bind_reuseport("127.0.0.1:0".parse().unwrap()).unwrap();
    let addr = first.local_addr().unwrap();
    let mut group = vec![first];
    for _ in 1..MEMBERS {
        group.push(sockopt::bind_reuseport(addr).unwrap());
    }
    Some(group)
}

/// Every client socket maps to exactly one group member, across many
/// interleaved send rounds, with no datagram lost on loopback.
#[test]
fn four_tuple_hash_pins_each_client_to_one_member() {
    let Some(group) = bind_group() else {
        eprintln!("skipping: SO_REUSEPORT unsupported on this platform");
        return;
    };
    let group_addr = group[0].local_addr().unwrap();
    for sock in &group {
        sock.set_read_timeout(Some(Duration::from_millis(100)))
            .unwrap();
    }

    // Distinct client sockets — distinct source ports, so each draws an
    // independent sample from the kernel's hash.
    let clients: Vec<UdpSocket> = (0..CLIENTS)
        .map(|_| {
            let c = UdpSocket::bind("127.0.0.1:0").unwrap();
            c.connect(group_addr).unwrap();
            c
        })
        .collect();

    // Interleave the rounds (client 0..N, then again) so a hash that
    // depended on anything but the 4-tuple — arrival order, member
    // load, time — would get every chance to wander.
    for round in 0..ROUNDS as u8 {
        for (i, c) in clients.iter().enumerate() {
            c.send(&[i as u8, round]).unwrap();
        }
    }

    // Drain every member and record which member saw which client.
    let mut owner: HashMap<u8, usize> = HashMap::new();
    let mut received = 0usize;
    let mut buf = [0u8; 16];
    for (member, sock) in group.iter().enumerate() {
        while let Ok(n) = sock.recv(&mut buf) {
            assert_eq!(n, 2, "test datagrams are 2 bytes");
            received += 1;
            let client = buf[0];
            let prev = owner.insert(client, member);
            assert!(
                prev.is_none_or(|p| p == member),
                "client {client} migrated from member {prev:?} to {member}: \
                 the 4-tuple hash must pin a session to one shard"
            );
        }
    }

    assert_eq!(
        received,
        CLIENTS * ROUNDS,
        "loopback keeps every datagram; a miss means a member dropped out \
         of the group"
    );
    assert_eq!(owner.len(), CLIENTS, "every client was heard");
    // Not a kernel guarantee, but with 24 ephemeral ports hashed over 4
    // members the chance of total collapse onto one member is ~4^-23 —
    // if this fires, the group was not actually sharing the port.
    let distinct: std::collections::HashSet<usize> = owner.values().copied().collect();
    assert!(
        distinct.len() >= 2,
        "hash spread {CLIENTS} clients over only {distinct:?}"
    );
}

/// Pinning survives a member being *added* after traffic started is
/// not promised (the kernel may rehash) — but a fixed group must keep
/// serving a long-lived client on the same member even while other
/// clients come and go.
#[test]
fn pinning_is_stable_while_other_clients_churn() {
    let Some(group) = bind_group() else {
        eprintln!("skipping: SO_REUSEPORT unsupported on this platform");
        return;
    };
    let group_addr = group[0].local_addr().unwrap();
    for sock in &group {
        sock.set_read_timeout(Some(Duration::from_millis(100)))
            .unwrap();
    }

    let pinned = UdpSocket::bind("127.0.0.1:0").unwrap();
    pinned.connect(group_addr).unwrap();

    let mut home: Option<usize> = None;
    let mut buf = [0u8; 16];
    for wave in 0..6u8 {
        // Churn: a fresh batch of short-lived clients each wave.
        for i in 0..8u8 {
            let c = UdpSocket::bind("127.0.0.1:0").unwrap();
            c.connect(group_addr).unwrap();
            c.send(&[0xFF, wave.wrapping_mul(8) + i]).unwrap();
        }
        pinned.send(&[0x01, wave]).unwrap();
        // Find which member got the pinned client's datagram this wave.
        let mut seen_at: Option<usize> = None;
        for (member, sock) in group.iter().enumerate() {
            while let Ok(n) = sock.recv(&mut buf) {
                if n == 2 && buf[0] == 0x01 && buf[1] == wave {
                    seen_at = Some(member);
                }
            }
        }
        let member = seen_at.expect("pinned datagram delivered");
        assert!(
            home.is_none_or(|h| h == member),
            "pinned client moved from member {home:?} to {member} on wave {wave}"
        );
        home = Some(member);
    }
}
