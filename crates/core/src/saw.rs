//! The stop-and-wait protocol (§2.1, Figure 3.a of the paper).
//!
//! "With stop-and-wait protocols, the source refrains from sending a
//! packet until it has received an acknowledgement for the previous
//! packet."  Every data packet is RELIABLE: the sender retransmits it on
//! timeout until acknowledged, then moves to the next.
//!
//! The paper's headline observation is about this protocol: because the
//! sender's copy-in and the receiver's copy-out never overlap
//! (Figure 3.a — "the two processors are never active in parallel"), its
//! elapsed time is `N × (2C + T + 2Ca + Ta)`, roughly *twice* the blast
//! protocol's, not the ~10 % that wire-time arithmetic predicts.

use std::sync::Arc;

use blast_wire::ack::AckPayload;
use blast_wire::header::PacketKind;
use blast_wire::packet::{Datagram, DatagramBuilder};

use std::time::Duration;

use crate::api::{Action, ActionSink, CompletionInfo, EngineStats, TimerToken};
use crate::config::ProtocolConfig;
use crate::control::{Pacer, PacerSnapshot, RttEstimator};
use crate::engine::{Engine, Finish};
use crate::error::CoreError;
use crate::pool::BufferPool;
use crate::rxbuf::RxBuffer;
use crate::txdata::TxData;

/// The only timer a stop-and-wait sender uses.
const RETX_TIMER: TimerToken = TimerToken(0);

/// Stop-and-wait sender.
#[derive(Debug)]
pub struct SawSender {
    transfer_id: u32,
    tx: TxData,
    builder: DatagramBuilder,
    /// Retransmission-timeout source: fixed `Tr` or Jacobson/Karn.
    rto: RttEstimator,
    /// Stop-and-wait never bursts, so the pacer's budget is moot — but
    /// it hosts the delivery-rate estimator, so this engine's reports
    /// carry the same measured rate/min-RTT trajectory as the others.
    /// One packet per round trip *is* the protocol's delivery rate.
    pacer: Pacer,
    max_retries: u32,
    /// Sequence currently awaiting acknowledgement.
    cur: u32,
    /// Retransmission attempts already made for `cur`.
    attempts: u32,
    /// Driver clock (see [`Engine::set_now`]).
    now: Duration,
    /// When `cur` first went out — stop-and-wait acknowledges every
    /// packet, so every untroubled exchange is a Karn-valid RTT sample.
    sent_at: Duration,
    pool: BufferPool,
    stats: EngineStats,
    finish: Finish,
}

impl SawSender {
    /// Create a sender for `data` on transfer `transfer_id`.
    pub fn new(transfer_id: u32, data: Arc<[u8]>, config: &ProtocolConfig) -> Self {
        SawSender {
            transfer_id,
            tx: TxData::new(data, config.packet_payload),
            builder: DatagramBuilder::new(transfer_id).kernel(config.kernel_flag),
            rto: RttEstimator::new(&config.timeout),
            pacer: Pacer::new(config.pacing),
            max_retries: config.max_retries,
            cur: 0,
            attempts: 0,
            now: Duration::ZERO,
            sent_at: Duration::ZERO,
            pool: config.pool.clone(),
            stats: EngineStats::default(),
            finish: Finish::default(),
        }
    }

    /// The retransmission timeout currently in force.
    pub fn current_rto(&self) -> Duration {
        self.rto.rto()
    }

    fn send_current(&mut self, sink: &mut dyn ActionSink) {
        let seq = self.cur;
        let payload = self.tx.payload_of(seq);
        let mut buf = self
            .pool
            .checkout_sized(blast_wire::HEADER_LEN + payload.len());
        let len = self
            .builder
            .build_reliable_data(
                &mut buf,
                seq,
                self.tx.total_packets(),
                self.tx.offset_of(seq) as u32,
                payload,
                self.attempts as u16,
            )
            .expect("buffer sized for payload");
        buf.truncate(len);
        self.stats.data_packets_sent += 1;
        if self.attempts > 0 {
            self.stats.data_packets_retransmitted += 1;
        } else {
            // First transmission: the ack, if it comes before any
            // retransmission, is an unambiguous RTT sample.
            self.sent_at = self.now;
        }
        sink.push_action(Action::Transmit(buf));
        sink.push_action(Action::SetTimer {
            token: RETX_TIMER,
            after: self.rto.rto(),
        });
    }
}

impl Engine for SawSender {
    fn start(&mut self, sink: &mut dyn ActionSink) {
        self.send_current(sink);
    }

    fn set_now(&mut self, now: Duration) {
        self.now = now;
    }

    fn on_datagram(&mut self, dgram: &Datagram<'_>, sink: &mut dyn ActionSink) {
        if self.finish.is_finished() || dgram.kind != PacketKind::Ack {
            return;
        }
        let Some(AckPayload::Positive { acked }) = &dgram.ack else {
            // Stop-and-wait never solicits NACKs; ignore anything else.
            return;
        };
        if *acked != self.cur {
            // A stale ack for an earlier packet (duplicate in the
            // network); the paper's iid-loss model has no reordering but
            // real UDP does.
            return;
        }
        self.stats.acks_received += 1;
        if self.attempts == 0 {
            // Karn: only a never-retransmitted packet's ack is sampled.
            let rtt = self.now.saturating_sub(self.sent_at);
            self.rto.sample(rtt);
            // The same unambiguous exchange is a delivery-rate sample:
            // one packet per round trip.  Never app-limited — lockstep
            // is the protocol's ceiling, not the application's.
            let bytes = self.tx.payload_of(self.cur).len() as u64;
            self.pacer.on_rate_sample(1, bytes, rtt, false);
        }
        self.cur += 1;
        self.attempts = 0;
        if self.cur == self.tx.total_packets() {
            sink.push_action(Action::CancelTimer { token: RETX_TIMER });
            let stats = self.stats;
            self.finish
                .complete(sink, CompletionInfo::success(self.tx.len(), stats));
        } else {
            self.send_current(sink);
        }
    }

    fn on_timer(&mut self, token: TimerToken, sink: &mut dyn ActionSink) {
        if self.finish.is_finished() || token != RETX_TIMER {
            return;
        }
        self.stats.timeouts += 1;
        self.rto.backoff();
        if self.attempts >= self.max_retries {
            let stats = self.stats;
            self.finish.complete(
                sink,
                CompletionInfo::failure(
                    CoreError::RetriesExhausted {
                        retries: self.max_retries,
                    },
                    stats,
                ),
            );
            return;
        }
        self.attempts += 1;
        self.stats.retransmission_rounds += 1;
        self.send_current(sink);
    }

    fn is_finished(&self) -> bool {
        self.finish.is_finished()
    }

    fn stats(&self) -> EngineStats {
        self.stats
    }

    fn transfer_id(&self) -> u32 {
        self.transfer_id
    }

    fn pacing_snapshot(&self) -> Option<PacerSnapshot> {
        (self.pacer.enabled() || self.pacer.has_rate_samples()).then(|| self.pacer.snapshot())
    }
}

/// Stop-and-wait receiver: place each packet, acknowledge each packet.
///
/// Also serves as the sliding-window receiver — on the receive side the
/// two protocols are identical (§2.1: "with sliding window protocols
/// every packet is individually acknowledged"); only the sender differs.
#[derive(Debug)]
pub struct SawReceiver {
    transfer_id: u32,
    rx: RxBuffer,
    builder: DatagramBuilder,
    pool: BufferPool,
    stats: EngineStats,
    finish: Finish,
}

impl SawReceiver {
    /// Create a receiver expecting `bytes` bytes on `transfer_id`.
    pub fn new(transfer_id: u32, bytes: usize, config: &ProtocolConfig) -> Self {
        SawReceiver {
            transfer_id,
            rx: RxBuffer::new(bytes, config.packet_payload),
            builder: DatagramBuilder::new(transfer_id).kernel(config.kernel_flag),
            pool: config.pool.clone(),
            stats: EngineStats::default(),
            finish: Finish::default(),
        }
    }

    /// The received bytes (zero-filled holes until complete).
    pub fn data(&self) -> &[u8] {
        self.rx.data()
    }

    /// Consume the engine, returning the received data.
    pub fn into_data(self) -> Vec<u8> {
        self.rx.into_data()
    }

    fn send_ack(&mut self, seq: u32, sink: &mut dyn ActionSink) {
        let ack = AckPayload::Positive { acked: seq };
        let mut buf = self
            .pool
            .checkout_sized(blast_wire::HEADER_LEN + ack.encoded_len());
        let len = self
            .builder
            .build_ack(&mut buf, self.rx.total_packets(), &ack)
            .expect("ack fits");
        buf.truncate(len);
        self.stats.acks_sent += 1;
        sink.push_action(Action::Transmit(buf));
    }
}

impl Engine for SawReceiver {
    fn start(&mut self, _sink: &mut dyn ActionSink) {
        // Receivers are passive; the buffer was allocated in `new` —
        // exactly the paper's "buffers available before the transfer".
    }

    fn on_datagram(&mut self, dgram: &Datagram<'_>, sink: &mut dyn ActionSink) {
        match dgram.kind {
            PacketKind::Data => {}
            PacketKind::Cancel => {
                let stats = self.stats;
                self.finish
                    .complete(sink, CompletionInfo::failure(CoreError::Cancelled, stats));
                return;
            }
            _ => return,
        }
        match self
            .rx
            .place(dgram.seq, dgram.offset as usize, dgram.payload)
        {
            Ok(true) => self.stats.data_packets_received += 1,
            Ok(false) => self.stats.duplicate_packets_received += 1,
            Err(e) => {
                // A packet contradicting the pre-allocated geometry is a
                // protocol violation, not recoverable loss.
                let stats = self.stats;
                self.finish
                    .complete(sink, CompletionInfo::failure(e, stats));
                return;
            }
        }
        // Acknowledge every data packet, duplicates included: the
        // duplicate means our previous ack was lost (or the sender timed
        // out early), so it must be re-sent or the sender stalls forever.
        self.send_ack(dgram.seq, sink);
        if self.rx.is_complete() {
            let stats = self.stats;
            let bytes = self.rx.len();
            self.finish
                .complete(sink, CompletionInfo::success(bytes, stats));
        }
    }

    fn on_timer(&mut self, _token: TimerToken, _sink: &mut dyn ActionSink) {
        // Receivers arm no timers.
    }

    fn is_finished(&self) -> bool {
        self.finish.is_finished()
    }

    fn stats(&self) -> EngineStats {
        self.stats
    }

    fn transfer_id(&self) -> u32 {
        self.transfer_id
    }

    fn received_data(&self) -> Option<&[u8]> {
        Some(self.rx.data())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::Action;

    fn config() -> ProtocolConfig {
        ProtocolConfig::default()
    }

    fn data(n: usize) -> Arc<[u8]> {
        (0..n).map(|i| (i % 253) as u8).collect::<Vec<u8>>().into()
    }

    /// Drive one datagram from `actions` into `engine`, returning new actions.
    fn feed(engine: &mut dyn Engine, packet: &[u8]) -> Vec<Action> {
        let d = Datagram::parse(packet).unwrap();
        let mut out = Vec::new();
        engine.on_datagram(&d, &mut out);
        out
    }

    #[test]
    fn lockstep_exchange_completes() {
        let cfg = config();
        let payload = data(3 * 1024);
        let mut s = SawSender::new(1, payload.clone(), &cfg);
        let mut r = SawReceiver::new(1, payload.len(), &cfg);

        let mut actions = Vec::new();
        s.start(&mut actions);
        let mut sender_done = false;
        let mut steps = 0;
        while !sender_done {
            steps += 1;
            assert!(steps < 100, "livelock");
            // Extract the data packet the sender just sent (borrowed in
            // place — the lockstep needs no copies).
            let pkt = actions
                .iter()
                .find_map(Action::as_transmit)
                .expect("sender transmits");
            let r_actions = feed(&mut r, pkt);
            let ack = r_actions
                .iter()
                .find_map(Action::as_transmit)
                .expect("receiver acks");
            actions = feed(&mut s, ack);
            sender_done = s.is_finished();
        }
        assert!(r.is_finished());
        assert_eq!(r.data(), &payload[..]);
        assert_eq!(s.stats().data_packets_sent, 3);
        assert_eq!(s.stats().data_packets_retransmitted, 0);
        assert_eq!(r.stats().acks_sent, 3);
    }

    #[test]
    fn sender_sends_one_packet_at_a_time() {
        let cfg = config();
        let mut s = SawSender::new(1, data(10 * 1024), &cfg);
        let mut actions = Vec::new();
        s.start(&mut actions);
        let transmits = actions.iter().filter(|a| a.as_transmit().is_some()).count();
        assert_eq!(transmits, 1, "stop-and-wait must not pipeline");
    }

    #[test]
    fn timeout_retransmits_same_packet() {
        let cfg = config();
        let mut s = SawSender::new(1, data(2048), &cfg);
        let mut actions = Vec::new();
        s.start(&mut actions);
        let first = actions[0].as_transmit().unwrap().to_vec();
        let mut out = Vec::new();
        s.on_timer(RETX_TIMER, &mut out);
        let second = out[0].as_transmit().unwrap().to_vec();
        let d1 = Datagram::parse(&first).unwrap();
        let d2 = Datagram::parse(&second).unwrap();
        assert_eq!(d1.seq, d2.seq);
        assert_eq!(d1.payload, d2.payload);
        assert_eq!(d2.round, 1, "retransmission carries the round counter");
        assert_eq!(s.stats().data_packets_retransmitted, 1);
        assert_eq!(s.stats().timeouts, 1);
    }

    #[test]
    fn retries_exhaust_to_failure() {
        let mut cfg = config();
        cfg.max_retries = 3;
        let mut s = SawSender::new(1, data(1024), &cfg);
        let mut actions = Vec::new();
        s.start(&mut actions);
        for _ in 0..3 {
            let mut out = Vec::new();
            s.on_timer(RETX_TIMER, &mut out);
            assert!(!s.is_finished());
        }
        let mut out = Vec::new();
        s.on_timer(RETX_TIMER, &mut out);
        assert!(s.is_finished());
        match &out[..] {
            [Action::Complete(info)] => {
                assert_eq!(info.result, Err(CoreError::RetriesExhausted { retries: 3 }));
            }
            other => panic!("expected completion, got {other:?}"),
        }
    }

    #[test]
    fn stale_and_foreign_acks_ignored() {
        let cfg = config();
        let mut s = SawSender::new(1, data(4096), &cfg);
        let mut actions = Vec::new();
        s.start(&mut actions);

        // Ack for a packet we haven't reached (never produced by an
        // honest receiver, but the engine must not advance on it).
        let b = DatagramBuilder::new(1);
        let mut buf = vec![0u8; 64];
        let len = b
            .build_ack(&mut buf, 4, &AckPayload::Positive { acked: 3 })
            .unwrap();
        let out = feed(&mut s, &buf[..len]);
        assert!(out.is_empty());
        assert_eq!(s.stats().acks_received, 0);

        // NACKs are not part of stop-and-wait.
        let len = b.build_ack(&mut buf, 4, &AckPayload::NackFull).unwrap();
        let out = feed(&mut s, &buf[..len]);
        assert!(out.is_empty());
    }

    #[test]
    fn receiver_reacks_duplicates() {
        let cfg = config();
        let mut r = SawReceiver::new(1, 2048, &cfg);
        let b = DatagramBuilder::new(1);
        let mut buf = vec![0u8; 2048];
        let payload: Vec<u8> = (0..1024).map(|i| i as u8).collect();
        let len = b
            .build_reliable_data(&mut buf, 0, 2, 0, &payload, 0)
            .unwrap();
        let first = feed(&mut r, &buf[..len]);
        assert_eq!(
            first.iter().filter(|a| a.as_transmit().is_some()).count(),
            1
        );
        // Same packet again (our ack was lost): must re-ack.
        let second = feed(&mut r, &buf[..len]);
        assert_eq!(
            second.iter().filter(|a| a.as_transmit().is_some()).count(),
            1
        );
        assert_eq!(r.stats().duplicate_packets_received, 1);
        assert_eq!(r.stats().acks_sent, 2);
    }

    #[test]
    fn receiver_completes_once_despite_more_duplicates() {
        let cfg = config();
        let mut r = SawReceiver::new(1, 1024, &cfg);
        let b = DatagramBuilder::new(1);
        let mut buf = vec![0u8; 2048];
        let payload: Vec<u8> = (0..1024).map(|i| i as u8).collect();
        let len = b
            .build_reliable_data(&mut buf, 0, 1, 0, &payload, 0)
            .unwrap();
        let out = feed(&mut r, &buf[..len]);
        assert!(r.is_finished());
        assert_eq!(
            out.iter()
                .filter(|a| matches!(a, Action::Complete(_)))
                .count(),
            1
        );
        // Duplicate after completion: re-ack, but no second Complete.
        let out = feed(&mut r, &buf[..len]);
        assert_eq!(
            out.iter()
                .filter(|a| matches!(a, Action::Complete(_)))
                .count(),
            0
        );
        assert_eq!(out.iter().filter(|a| a.as_transmit().is_some()).count(), 1);
    }

    #[test]
    fn cancel_fails_receiver() {
        let cfg = config();
        let mut r = SawReceiver::new(1, 1024, &cfg);
        let b = DatagramBuilder::new(1);
        let mut buf = vec![0u8; 64];
        let len = b.build_cancel(&mut buf).unwrap();
        let out = feed(&mut r, &buf[..len]);
        assert!(r.is_finished());
        match &out[..] {
            [Action::Complete(info)] => assert_eq!(info.result, Err(CoreError::Cancelled)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn geometry_violation_fails_receiver() {
        let cfg = config();
        let mut r = SawReceiver::new(1, 2048, &cfg);
        let b = DatagramBuilder::new(1);
        let mut buf = vec![0u8; 2048];
        // seq 1 but offset of seq 0.
        let payload = vec![0u8; 1024];
        let len = b
            .build_reliable_data(&mut buf, 1, 2, 0, &payload, 0)
            .unwrap();
        let out = feed(&mut r, &buf[..len]);
        assert!(r.is_finished());
        match &out[..] {
            [Action::Complete(info)] => {
                assert!(matches!(
                    info.result,
                    Err(CoreError::GeometryMismatch { .. })
                ));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn zero_byte_transfer_works() {
        let cfg = config();
        let mut s = SawSender::new(1, Vec::new().into(), &cfg);
        let mut r = SawReceiver::new(1, 0, &cfg);
        let mut actions = Vec::new();
        s.start(&mut actions);
        let pkt = actions[0].as_transmit().unwrap().to_vec();
        let r_out = feed(&mut r, &pkt);
        assert!(r.is_finished());
        let ack = r_out
            .iter()
            .find_map(|a| a.as_transmit().map(<[u8]>::to_vec))
            .unwrap();
        feed(&mut s, &ack);
        assert!(s.is_finished());
    }
}
