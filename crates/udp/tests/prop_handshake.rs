//! Property tests for the `Request` handshake.
//!
//! The handshake's whole job is surviving an unreliable channel: the
//! `Request` may be lost, the echo may be lost, and either may be
//! duplicated — the initiator must converge on exactly one accepted
//! echo regardless.  These tests script a responder that drops the
//! first `k` echoes, duplicates the rest, and injects stray datagrams,
//! then assert the handshake still completes with the right parameters.

use std::collections::VecDeque;
use std::io;
use std::time::Duration;

use blast_core::config::{ProtocolConfig, RetxStrategy};
use blast_udp::channel::Channel;
use blast_udp::handshake::{self, Direction, Request};
use proptest::prelude::*;

/// A scripted in-memory responder: every `send` is a `Request` from the
/// initiator; echoes are dropped, duplicated and preceded by noise
/// according to the script.
struct ScriptedResponder {
    /// Echoes to suppress before the first one goes through (lost
    /// echoes — the initiator must keep retransmitting its request).
    drop_first_echoes: u32,
    /// Extra copies of every delivered echo (duplicated echoes).
    duplicate_echoes: u32,
    /// Datagrams delivered ahead of the first successful echo (garbage,
    /// other transfers' traffic) that the initiator must ignore.
    noise: Vec<Vec<u8>>,
    queue: VecDeque<Vec<u8>>,
    requests_seen: u32,
}

impl ScriptedResponder {
    fn new(drop_first_echoes: u32, duplicate_echoes: u32, noise: Vec<Vec<u8>>) -> Self {
        ScriptedResponder {
            drop_first_echoes,
            duplicate_echoes,
            noise,
            queue: VecDeque::new(),
            requests_seen: 0,
        }
    }
}

impl Channel for ScriptedResponder {
    fn send(&mut self, buf: &[u8]) -> io::Result<()> {
        self.requests_seen += 1;
        if self.requests_seen <= self.drop_first_echoes {
            return Ok(()); // the echo to this request is lost in flight
        }
        for n in std::mem::take(&mut self.noise) {
            self.queue.push_back(n);
        }
        for _ in 0..=self.duplicate_echoes {
            self.queue.push_back(buf.to_vec());
        }
        Ok(())
    }

    fn recv_timeout(&mut self, buf: &mut [u8], _timeout: Duration) -> io::Result<Option<usize>> {
        match self.queue.pop_front() {
            Some(p) => {
                buf[..p.len()].copy_from_slice(&p);
                Ok(Some(p.len()))
            }
            None => Ok(None),
        }
    }
}

fn request_from(len: usize, strategy_byte: u8, chunk: u32, pull: bool, name_tag: u64) -> Request {
    Request {
        len,
        packet_payload: 1024,
        strategy: handshake::strategy_from_u8(strategy_byte),
        multiblast_chunk: chunk,
        direction: if pull {
            Direction::Pull
        } else {
            Direction::Push
        },
        name: if name_tag == 0 {
            String::new()
        } else {
            format!("blob-{name_tag}")
        },
    }
}

proptest! {
    /// Lost and duplicated echoes never break the handshake, and the
    /// initiator retransmits exactly once per lost echo.
    #[test]
    fn handshake_survives_lost_and_duplicate_echoes(
        lost in 0u32..6,
        dups in 0u32..4,
        len in 0usize..1_000_000,
        strategy_byte in any::<u8>(),
        chunk in 0u32..128,
        pull in any::<bool>(),
        name_tag in 0u64..1000,
        transfer_id in any::<u32>(),
    ) {
        let request = request_from(len, strategy_byte, chunk, pull, name_tag);
        let mut channel = ScriptedResponder::new(lost, dups, Vec::new());
        let reply = handshake::initiate(
            &mut channel,
            transfer_id,
            &request,
            Duration::from_millis(1),
            Duration::from_secs(10),
        ).expect("handshake completes");
        prop_assert_eq!(&reply.echoed, &request, "echo must carry the request verbatim");
        prop_assert_eq!(reply.datagrams_sent, u64::from(lost) + 1,
            "one request per lost echo, plus the one that got through");
    }

    /// Stray datagrams ahead of the echo — garbage bytes, a different
    /// transfer's echo, a data packet — are ignored, not accepted.
    #[test]
    fn handshake_ignores_stray_datagrams(
        garbage in proptest::collection::vec(any::<u8>(), 0..64),
        other_id in 1u32..u32::MAX,
    ) {
        let cfg = ProtocolConfig::default().with_strategy(RetxStrategy::Selective);
        let request = Request::push(4096, &cfg, false);
        let transfer_id = 7;
        // An otherwise-valid echo for a *different* transfer id must not
        // satisfy transfer 7's handshake.
        let imposter = request.build_datagram(if other_id == 7 { 8 } else { other_id });
        let noise = vec![garbage, imposter];
        let mut channel = ScriptedResponder::new(0, 0, noise);
        let reply = handshake::initiate(
            &mut channel,
            transfer_id,
            &request,
            Duration::from_millis(1),
            Duration::from_secs(10),
        ).expect("handshake completes");
        prop_assert_eq!(&reply.echoed, &request);
    }

    /// Encode/decode is a bijection over the request space, so an echo
    /// always reproduces the initiator's parameters exactly.
    #[test]
    fn request_roundtrips(
        len in any::<u32>(),
        strategy_byte in any::<u8>(),
        chunk in any::<u32>(),
        pull in any::<bool>(),
        name_tag in 0u64..10_000,
    ) {
        let request = request_from(len as usize, strategy_byte, chunk, pull, name_tag);
        prop_assert_eq!(Request::decode(&request.encode()), Some(request));
    }

    /// The decoder is total: arbitrary bytes either decode or are
    /// rejected, never panic.
    #[test]
    fn decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        let _ = Request::decode(&bytes);
    }
}

// ---------------------------------------------------------------------
// Copy control-plane robustness: the `Copy` verb rides the same
// handshake datagram path, so its messages get the same treatment —
// unknown operations are rejected, truncations never decode, and the
// encode/decode pair is a bijection over every field the submit and
// status carry.

use std::net::{IpAddr, SocketAddr};

use blast_udp::copy::{errcode, BlobDigest, CopyMode, CopyMsg, CopyState, CopyStatus, CopySubmit};

/// Build an arbitrary-but-valid `CopyMsg` from proptest primitives.
#[allow(clippy::too_many_arguments)]
fn copy_msg_from(
    selector: u8,
    pull: bool,
    v6: bool,
    addr_bits: u128,
    port: u16,
    epoch_ns: u64,
    name_tag: u64,
    state_byte: u8,
    error_sel: u8,
    bytes_done: u64,
    bytes_total: u64,
    crc32: u32,
) -> CopyMsg {
    let states = [
        CopyState::Unknown,
        CopyState::Handshaking,
        CopyState::Running,
        CopyState::Done,
        CopyState::Failed,
    ];
    let errors = [
        errcode::NONE,
        errcode::NOT_FOUND,
        errcode::BUSY,
        errcode::HANDSHAKE_TIMEOUT,
        errcode::TRANSFER_FAILED,
        errcode::MALFORMED,
    ];
    match selector % 5 {
        0 => {
            let ip: IpAddr = if v6 {
                IpAddr::from(addr_bits.to_be_bytes())
            } else {
                IpAddr::from((addr_bits as u32).to_be_bytes())
            };
            CopyMsg::Submit(CopySubmit {
                mode: if pull { CopyMode::Pull } else { CopyMode::Push },
                remote: SocketAddr::new(ip, port),
                epoch_ns,
                name: format!("blob-{name_tag}"),
            })
        }
        1 => CopyMsg::Query,
        2 => CopyMsg::Status(CopyStatus {
            state: states[state_byte as usize % states.len()],
            error: errors[error_sel as usize % errors.len()],
            bytes_done,
            bytes_total,
            crc32,
        }),
        3 => CopyMsg::Digest {
            name: format!("blob-{name_tag}"),
        },
        _ => CopyMsg::DigestReply(BlobDigest {
            found: pull,
            len: bytes_total,
            crc32,
        }),
    }
}

proptest! {
    /// Encode/decode is a bijection over the copy control plane: every
    /// submit (both modes, v4 and v6 remotes, any trace epoch, any
    /// name), status, digest and reply round-trips exactly.
    #[test]
    fn copy_msg_roundtrips(
        selector in any::<u8>(),
        pull in any::<bool>(),
        v6 in any::<bool>(),
        addr_bits in any::<u128>(),
        port in any::<u16>(),
        epoch_ns in any::<u64>(),
        name_tag in 0u64..10_000,
        state_byte in any::<u8>(),
        error_sel in any::<u8>(),
        bytes_done in any::<u64>(),
        bytes_total in any::<u64>(),
        crc32 in any::<u32>(),
    ) {
        let msg = copy_msg_from(
            selector, pull, v6, addr_bits, port, epoch_ns, name_tag,
            state_byte, error_sel, bytes_done, bytes_total, crc32,
        );
        prop_assert_eq!(CopyMsg::decode(&msg.encode()), Some(msg));
    }

    /// The copy decoder is total: arbitrary bytes either decode or are
    /// rejected, never panic.
    #[test]
    fn copy_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        let _ = CopyMsg::decode(&bytes);
    }

    /// Unknown operation bytes are rejected outright — a node never
    /// guesses at a verb it does not speak.
    #[test]
    fn copy_unknown_ops_rejected(
        opcode in 6u8..=u8::MAX,
        body in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let mut payload = vec![opcode];
        payload.extend_from_slice(&body);
        prop_assert_eq!(CopyMsg::decode(&payload), None);
    }

    /// Every strict prefix of a valid encoding is rejected: the
    /// decoders demand exact length, so a truncated submit can never
    /// masquerade as a shorter valid message.
    #[test]
    fn copy_truncations_never_decode(
        selector in any::<u8>(),
        pull in any::<bool>(),
        v6 in any::<bool>(),
        addr_bits in any::<u128>(),
        port in any::<u16>(),
        epoch_ns in any::<u64>(),
        name_tag in 0u64..10_000,
        cut in any::<proptest::sample::Index>(),
    ) {
        let msg = copy_msg_from(
            selector, pull, v6, addr_bits, port, epoch_ns, name_tag,
            0, 0, 0, 0, 0,
        );
        let wire = msg.encode();
        let truncated = &wire[..cut.index(wire.len())];
        prop_assert_eq!(CopyMsg::decode(truncated), None);
    }
}
