//! Criterion benches for the discrete-event simulator: how fast the
//! 1985 testbed simulates on modern hardware.  One 64 KB blast is ~400
//! simulated events; Figure 5/6 reproductions run hundreds of thousands
//! of these.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use blast_bench::{run_transfer, Proto};
use blast_core::config::RetxStrategy;
use blast_sim::{LossModel, SimConfig};

fn bench_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");

    group.bench_function("blast_64k_error_free", |b| {
        b.iter(|| {
            black_box(run_transfer(
                Proto::Blast(RetxStrategy::GoBackN),
                64 * 1024,
                SimConfig::standalone(),
                None,
            ))
        })
    });

    group.bench_function("saw_64k_error_free", |b| {
        b.iter(|| {
            black_box(run_transfer(
                Proto::Saw,
                64 * 1024,
                SimConfig::standalone(),
                None,
            ))
        })
    });

    group.bench_function("blast_64k_1pct_loss", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let cfg = SimConfig::vkernel().with_loss(LossModel::iid(0.01), seed);
            black_box(run_transfer(
                Proto::Blast(RetxStrategy::GoBackN),
                64 * 1024,
                cfg,
                Some(173.0),
            ))
        })
    });

    group.bench_function("multiblast_1m_error_free", |b| {
        b.iter(|| {
            black_box(run_transfer(
                Proto::MultiBlast(64),
                1024 * 1024,
                SimConfig::vkernel(),
                None,
            ))
        })
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_sim
}
criterion_main!(benches);
