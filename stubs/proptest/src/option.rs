//! `option::of` — optional-value strategies.

use crate::rng::TestRng;
use crate::strategy::Strategy;

/// Generates `None` about a quarter of the time and `Some` of the
/// inner strategy otherwise, mirroring `proptest::option::of`'s
/// default weighting.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// The strategy returned by [`of`].
#[derive(Debug)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}
