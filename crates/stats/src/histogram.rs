//! Histograms with percentile queries.
//!
//! §3.2 of the paper argues that expected time alone is misleading —
//! strategy 1's *distribution* has an unacceptable tail.  A histogram of
//! simulated elapsed times shows the same thing percentiles make
//! precise.

use std::fmt;

/// A histogram over `[lo, hi)` with equal-width or log-spaced buckets.
///
/// Samples outside the range are clamped into the first/last bucket and
/// counted separately so no data is silently lost.
///
/// ```
/// use blast_stats::Histogram;
/// let mut h = Histogram::linear(0.0, 100.0, 10);
/// for x in 0..100 {
///     h.record(x as f64);
/// }
/// assert_eq!(h.count(), 100);
/// assert!((h.percentile(50.0) - 50.0).abs() < 10.0);
/// ```
#[derive(Debug)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    log: bool,
    buckets: Vec<u64>,
    count: u64,
    below: u64,
    above: u64,
}

// Hand-written so `clone_from` reuses the destination's bucket vector:
// the sharded node republishes its histogram into a shared slot every
// reactor tick, and with same-geometry histograms that republish must
// not allocate.
impl Clone for Histogram {
    fn clone(&self) -> Self {
        Histogram {
            lo: self.lo,
            hi: self.hi,
            log: self.log,
            buckets: self.buckets.clone(),
            count: self.count,
            below: self.below,
            above: self.above,
        }
    }

    fn clone_from(&mut self, other: &Self) {
        self.lo = other.lo;
        self.hi = other.hi;
        self.log = other.log;
        self.buckets.clone_from(&other.buckets);
        self.count = other.count;
        self.below = other.below;
        self.above = other.above;
    }
}

impl Histogram {
    /// Equal-width buckets over `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `hi <= lo` or `buckets == 0`.
    pub fn linear(lo: f64, hi: f64, buckets: usize) -> Self {
        assert!(hi > lo && buckets > 0, "invalid histogram range");
        Histogram {
            lo,
            hi,
            log: false,
            buckets: vec![0; buckets],
            count: 0,
            below: 0,
            above: 0,
        }
    }

    /// Log-spaced buckets over `[lo, hi)`; both bounds must be positive.
    ///
    /// # Panics
    /// Panics if `lo <= 0`, `hi <= lo` or `buckets == 0`.
    pub fn logarithmic(lo: f64, hi: f64, buckets: usize) -> Self {
        assert!(
            lo > 0.0 && hi > lo && buckets > 0,
            "invalid log histogram range"
        );
        Histogram {
            lo,
            hi,
            log: true,
            buckets: vec![0; buckets],
            count: 0,
            below: 0,
            above: 0,
        }
    }

    fn bucket_of(&self, x: f64) -> usize {
        let n = self.buckets.len();
        let frac = if self.log {
            (x.ln() - self.lo.ln()) / (self.hi.ln() - self.lo.ln())
        } else {
            (x - self.lo) / (self.hi - self.lo)
        };
        ((frac * n as f64) as isize).clamp(0, n as isize - 1) as usize
    }

    /// Lower edge of bucket `i`.
    pub fn bucket_lo(&self, i: usize) -> f64 {
        let n = self.buckets.len() as f64;
        if self.log {
            (self.lo.ln() + (self.hi.ln() - self.lo.ln()) * i as f64 / n).exp()
        } else {
            self.lo + (self.hi - self.lo) * i as f64 / n
        }
    }

    /// Record one sample.
    pub fn record(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        if x < self.lo {
            self.below += 1;
        } else if x >= self.hi {
            self.above += 1;
        }
        let b = self.bucket_of(x.clamp(self.lo, self.hi * (1.0 - 1e-12)));
        self.buckets[b] += 1;
        self.count += 1;
    }

    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Samples clamped from below/above the range.
    pub fn clamped(&self) -> (u64, u64) {
        (self.below, self.above)
    }

    /// Raw bucket counts.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Approximate `p`-th percentile (0–100) by linear interpolation
    /// within the containing bucket.  Returns `lo` for an empty
    /// histogram.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.count == 0 {
            return self.lo;
        }
        let target = (p.clamp(0.0, 100.0) / 100.0) * self.count as f64;
        let mut acc = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            let next = acc + c;
            if next as f64 >= target && c > 0 {
                let within = (target - acc as f64) / c as f64;
                let lo = self.bucket_lo(i);
                let hi = self.bucket_lo(i + 1);
                return lo + (hi - lo) * within.clamp(0.0, 1.0);
            }
            acc = next;
        }
        self.hi
    }

    /// Fold another histogram's counts into this one.
    ///
    /// # Panics
    /// Panics if the two histograms' geometries (range, spacing, bucket
    /// count) differ — merging those would silently misbucket.
    pub fn merge(&mut self, other: &Histogram) {
        assert!(
            self.lo == other.lo
                && self.hi == other.hi
                && self.log == other.log
                && self.buckets.len() == other.buckets.len(),
            "histogram geometries differ"
        );
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.count += other.count;
        self.below += other.below;
        self.above += other.above;
    }

    /// Render a bar-chart sketch, one line per non-empty bucket.
    pub fn render(&self, width: usize) -> String {
        let max = self.buckets.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let bar = "#".repeat(((c as f64 / max as f64) * width as f64).ceil() as usize);
            out.push_str(&format!(
                "{:>12.4} .. {:>12.4} | {:>8} {}\n",
                self.bucket_lo(i),
                self.bucket_lo(i + 1),
                c,
                bar
            ));
        }
        out
    }
}

/// One-line summary: sample count, clamp counts when non-zero, and the
/// p50/p90/p99 tail — the shape §3.2 cares about, at a glance.
///
/// ```
/// use blast_stats::Histogram;
/// let mut h = Histogram::linear(0.0, 100.0, 100);
/// for x in 0..100 { h.record(x as f64); }
/// let line = h.to_string();
/// assert!(line.contains("n=100"));
/// assert!(line.contains("p50="));
/// ```
impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.count == 0 {
            return write!(f, "n=0 (empty)");
        }
        write!(
            f,
            "n={} p50={:.4} p90={:.4} p99={:.4}",
            self.count,
            self.percentile(50.0),
            self.percentile(90.0),
            self.percentile(99.0),
        )?;
        if self.below > 0 || self.above > 0 {
            write!(f, " clamped={}/{}", self.below, self.above)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_bucketing() {
        let mut h = Histogram::linear(0.0, 10.0, 10);
        for i in 0..10 {
            h.record(i as f64 + 0.5);
        }
        assert_eq!(h.count(), 10);
        assert!(h.buckets().iter().all(|&c| c == 1));
    }

    #[test]
    fn log_bucketing_spreads_decades() {
        let mut h = Histogram::logarithmic(1.0, 1000.0, 3);
        h.record(2.0); // decade 1
        h.record(20.0); // decade 2
        h.record(200.0); // decade 3
        assert_eq!(h.buckets(), &[1, 1, 1]);
        assert!((h.bucket_lo(1) - 10.0).abs() < 1e-9);
        assert!((h.bucket_lo(2) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn out_of_range_clamped_and_counted() {
        let mut h = Histogram::linear(0.0, 10.0, 5);
        h.record(-5.0);
        h.record(50.0);
        assert_eq!(h.count(), 2);
        assert_eq!(h.clamped(), (1, 1));
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(h.buckets()[4], 1);
    }

    #[test]
    fn percentiles_are_monotone_and_bounded() {
        let mut h = Histogram::linear(0.0, 100.0, 50);
        for i in 0..1000 {
            h.record((i % 100) as f64);
        }
        let p10 = h.percentile(10.0);
        let p50 = h.percentile(50.0);
        let p90 = h.percentile(90.0);
        assert!(p10 <= p50 && p50 <= p90);
        assert!((p50 - 50.0).abs() < 5.0);
        assert!((p90 - 90.0).abs() < 5.0);
        assert!(h.percentile(0.0) >= 0.0);
        assert!(h.percentile(100.0) <= 100.0);
    }

    #[test]
    fn empty_percentile_is_lo() {
        let h = Histogram::linear(5.0, 10.0, 4);
        assert_eq!(h.percentile(50.0), 5.0);
    }

    #[test]
    fn nonfinite_samples_ignored() {
        let mut h = Histogram::linear(0.0, 1.0, 2);
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn merge_sums_counts_bucketwise() {
        let mut a = Histogram::linear(0.0, 10.0, 5);
        let mut b = Histogram::linear(0.0, 10.0, 5);
        a.record(1.0);
        b.record(1.5);
        b.record(9.0);
        b.record(42.0); // clamped above
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.buckets()[0], 2);
        assert_eq!(a.buckets()[4], 2);
        assert_eq!(a.clamped(), (0, 1));
    }

    #[test]
    #[should_panic(expected = "histogram geometries differ")]
    fn merge_rejects_mismatched_geometry() {
        let mut a = Histogram::linear(0.0, 10.0, 5);
        let b = Histogram::linear(0.0, 10.0, 6);
        a.merge(&b);
    }

    #[test]
    fn render_contains_bars() {
        let mut h = Histogram::linear(0.0, 4.0, 4);
        h.record(0.5);
        h.record(0.6);
        h.record(2.5);
        let s = h.render(20);
        assert!(s.contains('#'));
        assert_eq!(s.lines().count(), 2, "two non-empty buckets");
    }

    #[test]
    #[should_panic(expected = "invalid histogram range")]
    fn rejects_bad_range() {
        let _ = Histogram::linear(1.0, 1.0, 4);
    }

    /// With samples uniform over the range, interpolation error is
    /// bounded by one bucket width at every percentile — the accuracy
    /// contract the reports rely on.
    #[test]
    fn percentile_error_bounded_by_bucket_width() {
        let mut h = Histogram::linear(0.0, 1000.0, 100);
        for i in 0..10_000 {
            h.record(i as f64 / 10.0);
        }
        let width = 1000.0 / 100.0;
        for p in [1.0, 5.0, 10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0] {
            let exact = p * 10.0; // uniform: p-th percentile = p% of 1000
            let got = h.percentile(p);
            assert!(
                (got - exact).abs() <= width,
                "p{p}: got {got}, exact {exact}"
            );
        }
    }

    /// Log-spaced buckets keep *relative* accuracy across decades: each
    /// estimate lands within one bucket ratio of the true value.
    #[test]
    fn log_percentiles_track_across_decades() {
        let mut h = Histogram::logarithmic(1.0, 10_000.0, 80);
        // Log-uniform samples: exp of a uniform grid over [0, ln 1e4).
        for i in 0..8_000 {
            h.record((i as f64 / 8_000.0 * 10_000f64.ln()).exp());
        }
        let ratio = 10_000f64.ln() / 80.0; // per-bucket log width
        for p in [10.0, 50.0, 90.0, 99.0] {
            let exact = (p / 100.0 * 10_000f64.ln()).exp();
            let got = h.percentile(p);
            assert!(
                (got.ln() - exact.ln()).abs() <= ratio,
                "p{p}: got {got}, exact {exact}"
            );
        }
    }

    /// A single-bucket spike interpolates within that bucket's edges —
    /// the estimate can never escape the containing bucket.
    #[test]
    fn percentile_stays_inside_the_containing_bucket() {
        let mut h = Histogram::linear(0.0, 100.0, 10);
        for _ in 0..500 {
            h.record(34.0); // bucket [30, 40)
        }
        for p in [0.1, 25.0, 50.0, 99.9] {
            let got = h.percentile(p);
            assert!((30.0..=40.0).contains(&got), "p{p} escaped: {got}");
        }
    }

    /// Merging two shards and querying equals querying the union —
    /// what `NodeHandle::metrics` does with per-shard session times.
    #[test]
    fn merge_then_quantile_matches_union() {
        let mut union = Histogram::linear(0.0, 100.0, 50);
        let mut a = Histogram::linear(0.0, 100.0, 50);
        let mut b = Histogram::linear(0.0, 100.0, 50);
        for i in 0..600 {
            let x = ((i * 7) % 100) as f64;
            union.record(x);
            if i % 2 == 0 {
                a.record(x);
            } else {
                b.record(x);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), union.count());
        for p in [10.0, 50.0, 90.0, 99.0] {
            assert_eq!(a.percentile(p), union.percentile(p), "p{p}");
        }
    }

    #[test]
    fn display_summarises_count_and_tail() {
        let mut h = Histogram::linear(0.0, 100.0, 100);
        for i in 0..100 {
            h.record(i as f64);
        }
        let line = h.to_string();
        assert!(line.contains("n=100"), "{line}");
        assert!(line.contains("p50=") && line.contains("p99="), "{line}");
        assert!(!line.contains("clamped"), "no clamps to report: {line}");

        h.record(-1.0);
        h.record(1e6);
        let line = h.to_string();
        assert!(line.contains("clamped=1/1"), "{line}");

        let empty = Histogram::linear(0.0, 1.0, 2);
        assert_eq!(empty.to_string(), "n=0 (empty)");
    }
}
