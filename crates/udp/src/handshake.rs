//! The pre-allocation `Request` handshake, as a reusable module.
//!
//! The paper's premise is that "the recipient has sufficient buffers
//! allocated to receive the data before the transfer takes place".
//! Over UDP that guarantee comes from a tiny handshake:
//!
//! 1. the initiator transmits a `Request` describing the transfer and
//!    retransmits it until echoed;
//! 2. the responder allocates the whole buffer, echoes the `Request`,
//!    and enters the data phase — continuing to echo duplicate
//!    requests, since its echo may itself be lost;
//! 3. the data phase runs, per the strategy carried in the request.
//!
//! The `Request` echo is deliberately *not* an `Ack` packet: the blast
//! sender treats positive acks as completion signals, so handshake
//! traffic must be invisible to the engines (drivers filter `Request`
//! packets before any engine sees them).
//!
//! Beyond the original peer-to-peer fields (length, packet size,
//! strategy, multiblast chunk), a request carries a [`Direction`] and a
//! blob [`name`](Request::name) so that a `blast-node` server can tell
//! a push ("store these bytes under this name") from a pull ("blast me
//! the named blob").  For pulls the initiator does not know the length;
//! the responder fills it in before echoing, so the echo doubles as the
//! size announcement that lets the client pre-allocate.

use std::io;
use std::time::{Duration, Instant};

use blast_core::config::{ProtocolConfig, RetxStrategy};
use blast_wire::header::PacketKind;
use blast_wire::packet::{Datagram, DatagramBuilder};

use crate::channel::{Channel, MAX_DATAGRAM};

/// Shortest well-formed request payload (the legacy fixed fields).
pub const MIN_REQUEST_LEN: usize = 17;

/// Longest blob name a request can carry.
pub const MAX_NAME_LEN: usize = 255;

/// Which way the data phase flows, relative to the request's sender.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Direction {
    /// The initiator sends the data (classic `send_data`, or storing a
    /// named blob on a node).
    #[default]
    Push,
    /// The initiator receives the data (fetching a named blob).
    Pull,
}

/// A decoded transfer request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Transfer length in bytes.  Zero in an outgoing pull request (the
    /// initiator does not know it); filled in by the responder's echo.
    pub len: usize,
    /// Payload bytes per data packet.
    pub packet_payload: usize,
    /// Blast retransmission strategy for the data phase.
    pub strategy: RetxStrategy,
    /// Packets per chunk for multi-blast transfers; `0` = single blast.
    pub multiblast_chunk: u32,
    /// Which way the data flows.
    pub direction: Direction,
    /// Blob name (empty for anonymous peer-to-peer transfers).
    pub name: String,
}

impl Request {
    /// A push request for `len` bytes, taking packet size and strategy
    /// from `cfg`.  `multiblast` selects chunked transfer.
    pub fn push(len: usize, cfg: &ProtocolConfig, multiblast: bool) -> Self {
        Request {
            len,
            packet_payload: cfg.packet_payload,
            strategy: cfg.strategy,
            multiblast_chunk: if multiblast { cfg.multiblast_chunk } else { 0 },
            direction: Direction::Push,
            name: String::new(),
        }
    }

    /// A pull request for the blob `name`, with transfer parameters
    /// from `cfg`.  The length is unknown until the responder echoes.
    pub fn pull(name: &str, cfg: &ProtocolConfig) -> Self {
        Request {
            len: 0,
            packet_payload: cfg.packet_payload,
            strategy: cfg.strategy,
            multiblast_chunk: 0,
            direction: Direction::Pull,
            name: name.to_string(),
        }
    }

    /// Builder-style setter for the blob name.
    pub fn with_name(mut self, name: &str) -> Self {
        self.name = name.to_string();
        self
    }

    /// Copy the negotiated transfer parameters into `cfg` (what a
    /// responder adopts before instantiating its engine).
    pub fn apply_to(&self, cfg: &mut ProtocolConfig) {
        cfg.packet_payload = self.packet_payload;
        cfg.strategy = self.strategy;
        if self.multiblast_chunk > 0 {
            cfg.multiblast_chunk = self.multiblast_chunk;
        }
    }

    /// Number of data packets the described transfer needs.
    pub fn total_packets(&self) -> u32 {
        if self.len == 0 {
            1
        } else {
            self.len.div_ceil(self.packet_payload) as u32
        }
    }

    /// Encode the request payload (`len` u64 | `packet_payload` u32 |
    /// strategy u8 | `multiblast_chunk` u32 | direction u8 | name-len
    /// u16 | name bytes).  Decoders also accept the legacy 17-byte
    /// prefix alone.
    pub fn encode(&self) -> Vec<u8> {
        debug_assert!(self.name.len() <= MAX_NAME_LEN, "blob name too long");
        let mut p = Vec::with_capacity(MIN_REQUEST_LEN + 3 + self.name.len());
        p.extend_from_slice(&(self.len as u64).to_be_bytes());
        p.extend_from_slice(&(self.packet_payload as u32).to_be_bytes());
        p.push(strategy_to_u8(self.strategy));
        p.extend_from_slice(&self.multiblast_chunk.to_be_bytes());
        p.push(match self.direction {
            Direction::Push => 0,
            Direction::Pull => 1,
        });
        p.extend_from_slice(&(self.name.len() as u16).to_be_bytes());
        p.extend_from_slice(self.name.as_bytes());
        p
    }

    /// Decode a request payload; `None` if malformed.
    pub fn decode(p: &[u8]) -> Option<Self> {
        if p.len() < MIN_REQUEST_LEN {
            return None;
        }
        let len = u64::from_be_bytes(p[0..8].try_into().ok()?) as usize;
        let packet_payload = u32::from_be_bytes(p[8..12].try_into().ok()?) as usize;
        if packet_payload == 0 || packet_payload > blast_wire::MAX_ETHERNET_PAYLOAD {
            return None;
        }
        let strategy = strategy_from_u8(p[12]);
        let multiblast_chunk = u32::from_be_bytes(p[13..17].try_into().ok()?);
        let (direction, name) = if p.len() == MIN_REQUEST_LEN {
            // Legacy fixed-field request.
            (Direction::Push, String::new())
        } else {
            if p.len() < MIN_REQUEST_LEN + 3 {
                return None;
            }
            let direction = match p[17] {
                0 => Direction::Push,
                1 => Direction::Pull,
                _ => return None,
            };
            let name_len = u16::from_be_bytes(p[18..20].try_into().ok()?) as usize;
            if name_len > MAX_NAME_LEN || p.len() != MIN_REQUEST_LEN + 3 + name_len {
                return None;
            }
            let name = std::str::from_utf8(&p[20..]).ok()?.to_string();
            (direction, name)
        };
        Some(Request {
            len,
            packet_payload,
            strategy,
            multiblast_chunk,
            direction,
            name,
        })
    }

    /// Build the complete `Request` datagram for `transfer_id`.
    pub fn build_datagram(&self, transfer_id: u32) -> Vec<u8> {
        let payload = self.encode();
        let mut buf = vec![0u8; blast_wire::HEADER_LEN + payload.len()];
        let n = DatagramBuilder::new(transfer_id)
            .build_request(&mut buf, self.total_packets(), &payload)
            .expect("request fits");
        buf.truncate(n);
        buf
    }
}

/// Wire byte for a strategy (its index in [`RetxStrategy::ALL`]).
pub fn strategy_to_u8(s: RetxStrategy) -> u8 {
    RetxStrategy::ALL
        .iter()
        .position(|&x| x == s)
        .expect("strategy in ALL") as u8
}

/// Strategy for a wire byte (modulo the table, so any byte decodes).
pub fn strategy_from_u8(b: u8) -> RetxStrategy {
    RetxStrategy::ALL[(b as usize) % RetxStrategy::ALL.len()]
}

/// What [`initiate`] returns once the responder echoes.
#[derive(Debug)]
pub struct HandshakeReply {
    /// The request as echoed (for pulls, `len` is now authoritative).
    pub echoed: Request,
    /// Request datagrams transmitted before the echo arrived.
    pub datagrams_sent: u64,
}

/// Run the initiator side: send the `Request` datagram every
/// `retry_interval` until the responder echoes it (or sends `Cancel`),
/// giving up after `deadline`.
///
/// Duplicate-tolerance is the responder's job — it must keep echoing
/// duplicate requests for as long as it serves the transfer, because
/// any single echo may be lost.  Datagrams that are not a matching echo
/// (stray data, other transfers, garbage) are ignored here; the caller
/// typically starts its engine right after, and any data packets that
/// raced ahead of the echo are still queued in the socket buffer.
///
/// Errors: `InvalidInput` for a request no responder could decode (a
/// blob name over [`MAX_NAME_LEN`] — catching it here turns a silent
/// 30-second timeout into an immediate error), `NotFound` if the
/// responder cancels (e.g. pulling a blob the node does not have),
/// `TimedOut` if `deadline` passes un-echoed.
pub fn initiate<C: Channel>(
    channel: &mut C,
    transfer_id: u32,
    request: &Request,
    retry_interval: Duration,
    deadline: Duration,
) -> io::Result<HandshakeReply> {
    if request.name.len() > MAX_NAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("blob name exceeds {MAX_NAME_LEN} bytes"),
        ));
    }
    let req = request.build_datagram(transfer_id);
    let mut sent = 0u64;
    let mut buf = vec![0u8; MAX_DATAGRAM];
    let give_up = Instant::now() + deadline;
    loop {
        if Instant::now() > give_up {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "handshake timed out",
            ));
        }
        channel.send(&req)?;
        sent += 1;
        let t0 = Instant::now();
        while t0.elapsed() < retry_interval {
            // Wait only the *remaining* slice of the retry interval:
            // with the event-driven backend this is exact, and a slow
            // responder can no longer stretch one interval to two by
            // trickling unrelated datagrams in.  (Saturating: the clock
            // may pass the interval between the loop check and here.)
            let remaining = retry_interval.saturating_sub(t0.elapsed());
            match channel.recv_timeout(&mut buf, remaining)? {
                None => break,
                Some(n) => {
                    let Ok(d) = Datagram::parse(&buf[..n]) else {
                        continue;
                    };
                    if d.transfer_id != transfer_id {
                        continue;
                    }
                    match d.kind {
                        PacketKind::Request => {
                            if let Some(echoed) = Request::decode(d.payload) {
                                return Ok(HandshakeReply {
                                    echoed,
                                    datagrams_sent: sent,
                                });
                            }
                        }
                        PacketKind::Cancel => {
                            return Err(io::Error::new(
                                io::ErrorKind::NotFound,
                                "responder cancelled the transfer",
                            ));
                        }
                        _ => {}
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Request {
        Request {
            len: 123_456,
            packet_payload: 1400,
            strategy: RetxStrategy::Selective,
            multiblast_chunk: 32,
            direction: Direction::Pull,
            name: "models/weights.bin".to_string(),
        }
    }

    #[test]
    fn roundtrip_with_name_and_direction() {
        let r = sample();
        assert_eq!(Request::decode(&r.encode()), Some(r));
    }

    #[test]
    fn roundtrip_empty_name_push() {
        let r = Request::push(999, &ProtocolConfig::default(), true);
        assert_eq!(r.multiblast_chunk, 64);
        assert_eq!(Request::decode(&r.encode()), Some(r));
    }

    #[test]
    fn legacy_fixed_fields_decode_as_anonymous_push() {
        let full = sample().encode();
        let r = Request::decode(&full[..MIN_REQUEST_LEN]).unwrap();
        assert_eq!(r.direction, Direction::Push);
        assert!(r.name.is_empty());
        assert_eq!(r.len, 123_456);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Request::decode(&[]).is_none());
        assert!(Request::decode(&[0; 12]).is_none());
        // Zero packet size.
        let mut bad = sample().encode();
        bad[8..12].copy_from_slice(&0u32.to_be_bytes());
        assert!(Request::decode(&bad).is_none());
        // Unknown direction byte.
        let mut bad = sample().encode();
        bad[17] = 7;
        assert!(Request::decode(&bad).is_none());
        // Name length that contradicts the payload length.
        let mut bad = sample().encode();
        bad[18..20].copy_from_slice(&999u16.to_be_bytes());
        assert!(Request::decode(&bad).is_none());
        // Truncated extension.
        let good = sample().encode();
        assert!(Request::decode(&good[..MIN_REQUEST_LEN + 2]).is_none());
        // Non-UTF-8 name.
        let mut bad = sample().encode();
        let end = bad.len();
        bad[end - 1] = 0xff;
        assert!(Request::decode(&bad).is_none());
    }

    #[test]
    fn initiate_rejects_oversized_name_immediately() {
        struct DeadChannel;
        impl crate::channel::Channel for DeadChannel {
            fn send(&mut self, _: &[u8]) -> std::io::Result<()> {
                panic!("must fail before any send");
            }
            fn recv_timeout(
                &mut self,
                _: &mut [u8],
                _: Duration,
            ) -> std::io::Result<Option<usize>> {
                Ok(None)
            }
        }
        let cfg = ProtocolConfig::default();
        let request = Request::pull(&"x".repeat(MAX_NAME_LEN + 1), &cfg);
        let err = initiate(
            &mut DeadChannel,
            1,
            &request,
            Duration::from_millis(1),
            Duration::from_secs(1),
        )
        .unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    }

    #[test]
    fn strategy_byte_roundtrip() {
        for s in RetxStrategy::ALL {
            assert_eq!(strategy_from_u8(strategy_to_u8(s)), s);
        }
        // Any byte decodes to *some* strategy (modulo table).
        let _ = strategy_from_u8(0xff);
    }

    #[test]
    fn apply_to_adopts_negotiated_parameters() {
        let mut cfg = ProtocolConfig::default();
        sample().apply_to(&mut cfg);
        assert_eq!(cfg.packet_payload, 1400);
        assert_eq!(cfg.strategy, RetxStrategy::Selective);
        assert_eq!(cfg.multiblast_chunk, 32);
        // A single-blast request leaves the chunk setting alone.
        let mut cfg = ProtocolConfig::default();
        Request::push(10, &cfg.clone(), false).apply_to(&mut cfg);
        assert_eq!(cfg.multiblast_chunk, 64);
    }

    #[test]
    fn total_packets_rounds_up_and_floors_at_one() {
        let r = Request::push(0, &ProtocolConfig::default(), false);
        assert_eq!(r.total_packets(), 1);
        let r = Request::push(1025, &ProtocolConfig::default(), false);
        assert_eq!(r.total_packets(), 2);
    }

    #[test]
    fn build_datagram_parses_as_request() {
        let r = sample();
        let dgram = r.build_datagram(42);
        let d = Datagram::parse(&dgram).unwrap();
        assert_eq!(d.kind, PacketKind::Request);
        assert_eq!(d.transfer_id, 42);
        assert_eq!(Request::decode(d.payload), Some(r));
    }
}
