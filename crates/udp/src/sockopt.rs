//! Socket-buffer tuning: grow `SO_RCVBUF` so a blast round fits.
//!
//! ROADMAP's measured bottleneck: a full blast round (≈ 256 KB at
//! 1400-byte payloads) dumped into a default-sized UDP receive buffer
//! (≈ 208 KB on Linux) loses its tail packets to the kernel before the
//! application ever sees them — the modern incarnation of the paper's
//! §3 *interface errors*, where "the receiver has no buffer available
//! for an incoming packet".  The paper's fix was more interface
//! buffers; ours is the same: ask the kernel for a bigger receive
//! queue at socket setup.
//!
//! `std::net::UdpSocket` exposes no buffer-size API, so on Linux this
//! module calls `setsockopt(2)`/`getsockopt(2)` directly through the
//! already-linked C library.  This is the crate's one sanctioned use of
//! `unsafe` (mirroring the `blast-counting-alloc` precedent): two
//! audited FFI calls on a valid file descriptor with stack-local
//! buffers, nothing else.  On other platforms the functions are no-ops
//! that report `Unsupported`; callers treat the whole thing as
//! best-effort — a socket with a small buffer still works, it just
//! drops more.

use std::io;
use std::net::UdpSocket;

/// Receive-buffer request for blast workloads: 4 MiB comfortably holds
/// several concurrent 256 KB rounds.  The kernel clamps the effective
/// size to `net.core.rmem_max`; [`set_recv_buffer`] reports what was
/// actually granted.
pub const BLAST_RECV_BUFFER: usize = 4 * 1024 * 1024;

// The hardcoded option constants below are the asm-generic values;
// MIPS and SPARC kernels use different ones (SOL_SOCKET = 0xffff), so
// those architectures take the unsupported fallback rather than poking
// the wrong socket level.
#[cfg(all(
    target_os = "linux",
    not(any(
        target_arch = "mips",
        target_arch = "mips64",
        target_arch = "sparc",
        target_arch = "sparc64"
    ))
))]
#[allow(unsafe_code)]
mod imp {
    use std::io;
    use std::net::UdpSocket;
    use std::os::fd::AsRawFd;

    // Linked via std's libc dependency; declared here because the
    // workspace builds offline with no `libc` crate available.
    extern "C" {
        fn setsockopt(
            fd: i32,
            level: i32,
            name: i32,
            value: *const core::ffi::c_void,
            len: u32,
        ) -> i32;
        fn getsockopt(
            fd: i32,
            level: i32,
            name: i32,
            value: *mut core::ffi::c_void,
            len: *mut u32,
        ) -> i32;
    }

    const SOL_SOCKET: i32 = 1;
    const SO_SNDBUF: i32 = 7;
    const SO_RCVBUF: i32 = 8;

    fn set_buffer(socket: &UdpSocket, option: i32, bytes: usize) -> io::Result<usize> {
        let fd = socket.as_raw_fd();
        let request: i32 = bytes.min(i32::MAX as usize) as i32;
        // SAFETY: `fd` is a live descriptor owned by `socket` for the
        // duration of the call; the value pointer/length describe a
        // stack-local i32.
        let rc = unsafe {
            setsockopt(
                fd,
                SOL_SOCKET,
                option,
                (&request as *const i32).cast(),
                std::mem::size_of::<i32>() as u32,
            )
        };
        if rc != 0 {
            return Err(io::Error::last_os_error());
        }
        buffer(socket, option)
    }

    fn buffer(socket: &UdpSocket, option: i32) -> io::Result<usize> {
        let fd = socket.as_raw_fd();
        let mut granted: i32 = 0;
        let mut len = std::mem::size_of::<i32>() as u32;
        // SAFETY: as above; the kernel writes at most `len` bytes into
        // the stack-local i32.
        let rc = unsafe {
            getsockopt(
                fd,
                SOL_SOCKET,
                option,
                (&mut granted as *mut i32).cast(),
                &mut len,
            )
        };
        if rc != 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(granted.max(0) as usize)
    }

    pub fn set_recv_buffer(socket: &UdpSocket, bytes: usize) -> io::Result<usize> {
        set_buffer(socket, SO_RCVBUF, bytes)
    }

    pub fn recv_buffer(socket: &UdpSocket) -> io::Result<usize> {
        buffer(socket, SO_RCVBUF)
    }

    pub fn set_send_buffer(socket: &UdpSocket, bytes: usize) -> io::Result<usize> {
        set_buffer(socket, SO_SNDBUF, bytes)
    }

    pub fn send_buffer(socket: &UdpSocket) -> io::Result<usize> {
        buffer(socket, SO_SNDBUF)
    }
}

#[cfg(not(all(
    target_os = "linux",
    not(any(
        target_arch = "mips",
        target_arch = "mips64",
        target_arch = "sparc",
        target_arch = "sparc64"
    ))
)))]
mod imp {
    use std::io;
    use std::net::UdpSocket;

    pub fn set_recv_buffer(_socket: &UdpSocket, _bytes: usize) -> io::Result<usize> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "SO_RCVBUF tuning is only implemented on Linux",
        ))
    }

    pub fn recv_buffer(_socket: &UdpSocket) -> io::Result<usize> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "SO_RCVBUF inspection is only implemented on Linux",
        ))
    }

    pub fn set_send_buffer(_socket: &UdpSocket, _bytes: usize) -> io::Result<usize> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "SO_SNDBUF tuning is only implemented on Linux",
        ))
    }

    pub fn send_buffer(_socket: &UdpSocket) -> io::Result<usize> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "SO_SNDBUF inspection is only implemented on Linux",
        ))
    }
}

/// Ask the kernel for a `bytes`-sized receive buffer and return what it
/// granted (Linux doubles the request for bookkeeping and clamps it to
/// `net.core.rmem_max`).  `Unsupported` on non-Linux platforms.
pub fn set_recv_buffer(socket: &UdpSocket, bytes: usize) -> io::Result<usize> {
    imp::set_recv_buffer(socket, bytes)
}

/// The socket's current receive-buffer size, as the kernel reports it.
pub fn recv_buffer(socket: &UdpSocket) -> io::Result<usize> {
    imp::recv_buffer(socket)
}

/// Ask the kernel for a `bytes`-sized send buffer and return what it
/// granted (clamped to `net.core.wmem_max`).  `Unsupported` on
/// non-Linux platforms.
pub fn set_send_buffer(socket: &UdpSocket, bytes: usize) -> io::Result<usize> {
    imp::set_send_buffer(socket, bytes)
}

/// The socket's current send-buffer size, as the kernel reports it.
pub fn send_buffer(socket: &UdpSocket) -> io::Result<usize> {
    imp::send_buffer(socket)
}

/// Best-effort variant of [`set_recv_buffer`] for socket setup paths:
/// failures (permissions, platform) are swallowed — the socket still
/// works, it just keeps the default queue depth.
pub fn grow_recv_buffer(socket: &UdpSocket) {
    let _ = set_recv_buffer(socket, BLAST_RECV_BUFFER);
}

/// Grow both socket buffers (best effort): the receive queue so a blast
/// round does not spill, and the send queue so a whole batched
/// `sendmmsg` burst (an AIMD-grown round can reach 256 × 1400 bytes)
/// submits without `ENOBUFS` drops.
pub fn grow_buffers(socket: &UdpSocket) {
    let _ = set_recv_buffer(socket, BLAST_RECV_BUFFER);
    let _ = set_send_buffer(socket, BLAST_RECV_BUFFER);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg(all(
        target_os = "linux",
        not(any(
            target_arch = "mips",
            target_arch = "mips64",
            target_arch = "sparc",
            target_arch = "sparc64"
        ))
    ))]
    fn grow_and_read_back() {
        let socket = UdpSocket::bind("127.0.0.1:0").unwrap();
        let before = recv_buffer(&socket).unwrap();
        assert!(before > 0);
        let granted = set_recv_buffer(&socket, BLAST_RECV_BUFFER).unwrap();
        // The kernel may clamp to rmem_max, but it never grants zero,
        // and it must not *shrink* the buffer below the old size when
        // asked for more.
        assert!(granted > 0);
        assert!(granted >= before.min(BLAST_RECV_BUFFER));
        assert_eq!(recv_buffer(&socket).unwrap(), granted);
    }

    #[test]
    #[cfg(all(
        target_os = "linux",
        not(any(
            target_arch = "mips",
            target_arch = "mips64",
            target_arch = "sparc",
            target_arch = "sparc64"
        ))
    ))]
    fn grow_and_read_back_send_buffer() {
        let socket = UdpSocket::bind("127.0.0.1:0").unwrap();
        let before = send_buffer(&socket).unwrap();
        assert!(before > 0);
        let granted = set_send_buffer(&socket, BLAST_RECV_BUFFER).unwrap();
        assert!(granted > 0);
        assert!(granted >= before.min(BLAST_RECV_BUFFER));
        assert_eq!(send_buffer(&socket).unwrap(), granted);
    }

    #[test]
    fn grow_recv_buffer_is_infallible() {
        let socket = UdpSocket::bind("127.0.0.1:0").unwrap();
        grow_recv_buffer(&socket); // must not panic anywhere
        grow_buffers(&socket);
    }
}
