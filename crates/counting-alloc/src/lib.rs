//! A counting allocator: wraps [`System`] and bumps a global counter on
//! every `alloc`/`realloc`.
//!
//! This is the measurement behind the repo's headline per-packet
//! number: the `perf` harness divides the counter delta by the packets
//! moved to report *allocations per packet*, and
//! `crates/core/tests/zero_alloc.rs` asserts the steady-state blast
//! loop leaves the counter untouched.
//!
//! The crate exists so the one `unsafe impl` lives in exactly one
//! audited place; consumers stay `forbid(unsafe_code)`-clean and only
//! declare the registration:
//!
//! ```ignore
//! use blast_counting_alloc::CountingAlloc;
//!
//! #[global_allocator]
//! static GLOBAL: CountingAlloc = CountingAlloc;
//! ```

// The one sanctioned use of `unsafe` in the workspace (see the
// workspace lints table in the root Cargo.toml).
#![allow(unsafe_code)]
#![warn(missing_docs)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Delegates to [`System`], counting every `alloc` and `realloc`.
pub struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// Allocations (plus reallocations) observed so far, process-wide.
/// Measure a region by differencing before/after.
pub fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

// SAFETY: delegates verbatim to `System`; the only addition is a relaxed
// atomic increment, which allocates nothing.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Registered for this test binary so the counter actually moves.
    #[global_allocator]
    static GLOBAL: CountingAlloc = CountingAlloc;

    #[test]
    fn counts_heap_activity() {
        let before = allocations();
        let v: Vec<u64> = (0..1024).collect();
        assert!(allocations() > before, "allocation must bump the counter");
        drop(v);
        let before = allocations();
        let _x = 17u64; // stack only
        assert_eq!(allocations(), before, "stack work must not");
    }
}
