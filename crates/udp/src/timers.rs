//! A generation-stamped timer wheel for event-loop drivers.
//!
//! The sans-I/O engines arm and cancel timers by token
//! ([`blast_core::api::Action::SetTimer`] / `CancelTimer`), with
//! replace-on-rearm semantics: arming a token that is already pending
//! moves its deadline, and a cancelled token must not fire.  Deleting
//! from the middle of a binary heap is awkward, so [`TimerWheel`] uses
//! the classic lazy scheme instead: every arm/cancel bumps a per-key
//! *generation*, heap entries carry the generation they were armed
//! with, and stale entries are discarded when they surface.
//!
//! The key is generic so the same wheel serves both the single-engine
//! blocking [`crate::driver::Driver`] (keyed by [`TimerToken`]) and the
//! many-session `blast-node` event loop (keyed by
//! `(transfer_id, TimerToken)`).
//!
//! [`TimerToken`]: blast_core::api::TimerToken

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::hash::Hash;
use std::time::{Duration, Instant};

/// One pending-deadline tracker per key.
#[derive(Debug, Clone, Copy)]
struct Slot {
    generation: u64,
    armed: bool,
}

/// A set of one-shot timers with replace-on-rearm and O(log n) expiry.
#[derive(Debug)]
pub struct TimerWheel<K> {
    slots: HashMap<K, Slot>,
    heap: BinaryHeap<Reverse<(Instant, u64, K)>>,
    armed: usize,
    /// Wheel-global generation counter: every arm draws a fresh value,
    /// so a key whose slot was dropped by
    /// [`forget_where`](TimerWheel::forget_where) and later re-armed can
    /// never collide with one of its own stale heap entries.
    next_generation: u64,
}

impl<K: Copy + Eq + Hash + Ord> Default for TimerWheel<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Copy + Eq + Hash + Ord> TimerWheel<K> {
    /// An empty wheel.
    pub fn new() -> Self {
        TimerWheel {
            slots: HashMap::new(),
            heap: BinaryHeap::new(),
            armed: 0,
            next_generation: 0,
        }
    }

    /// Arm (or re-arm) `key` to fire at `when`.  A previously pending
    /// deadline for the same key is superseded.
    pub fn arm_at(&mut self, key: K, when: Instant) {
        self.next_generation += 1;
        let generation = self.next_generation;
        let slot = self.slots.entry(key).or_insert(Slot {
            generation,
            armed: false,
        });
        slot.generation = generation;
        if !slot.armed {
            slot.armed = true;
            self.armed += 1;
        }
        self.heap.push(Reverse((when, generation, key)));
    }

    /// Arm (or re-arm) `key` to fire after `after` from now.
    pub fn arm(&mut self, key: K, after: Duration) {
        self.arm_at(key, Instant::now() + after);
    }

    /// Cancel `key` if pending; a no-op otherwise.
    pub fn cancel(&mut self, key: K) {
        if let Some(slot) = self.slots.get_mut(&key) {
            if slot.armed {
                slot.armed = false;
                self.armed -= 1;
            }
        }
    }

    /// Drop all bookkeeping for keys matching `pred` (e.g. every timer
    /// of a reaped session).  Their heap entries become stale and are
    /// discarded lazily.
    pub fn forget_where(&mut self, pred: impl Fn(&K) -> bool) {
        let armed = &mut self.armed;
        self.slots.retain(|k, slot| {
            if pred(k) {
                if slot.armed {
                    *armed -= 1;
                }
                false
            } else {
                true
            }
        });
    }

    /// Number of keys currently armed.
    pub fn len(&self) -> usize {
        self.armed
    }

    /// True when no timer is pending.
    pub fn is_empty(&self) -> bool {
        self.armed == 0
    }

    fn discard_stale_head(&mut self) -> bool {
        if let Some(&Reverse((_, generation, key))) = self.heap.peek() {
            let live = self
                .slots
                .get(&key)
                .is_some_and(|s| s.armed && s.generation == generation);
            if !live {
                self.heap.pop();
                return true;
            }
        }
        false
    }

    /// The earliest pending deadline, if any.
    pub fn next_deadline(&mut self) -> Option<Instant> {
        while self.discard_stale_head() {}
        self.heap.peek().map(|Reverse((when, _, _))| *when)
    }

    /// Pop one key whose deadline is at or before `now`.  Call in a
    /// loop to drain everything due.
    pub fn pop_due(&mut self, now: Instant) -> Option<K> {
        while self.discard_stale_head() {}
        let &Reverse((when, _, key)) = self.heap.peek()?;
        if when > now {
            return None;
        }
        self.heap.pop();
        let slot = self.slots.get_mut(&key).expect("live head has a slot");
        slot.armed = false;
        self.armed -= 1;
        Some(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_in_deadline_order() {
        let mut w: TimerWheel<u32> = TimerWheel::new();
        let t0 = Instant::now();
        w.arm_at(1, t0 + Duration::from_millis(30));
        w.arm_at(2, t0 + Duration::from_millis(10));
        w.arm_at(3, t0 + Duration::from_millis(20));
        assert_eq!(w.len(), 3);
        let late = t0 + Duration::from_secs(1);
        assert_eq!(w.pop_due(late), Some(2));
        assert_eq!(w.pop_due(late), Some(3));
        assert_eq!(w.pop_due(late), Some(1));
        assert_eq!(w.pop_due(late), None);
        assert!(w.is_empty());
    }

    #[test]
    fn rearm_supersedes_previous_deadline() {
        let mut w: TimerWheel<u32> = TimerWheel::new();
        let t0 = Instant::now();
        w.arm_at(7, t0 + Duration::from_millis(5));
        w.arm_at(7, t0 + Duration::from_millis(500));
        assert_eq!(w.len(), 1);
        // The old deadline must not fire.
        assert_eq!(w.pop_due(t0 + Duration::from_millis(100)), None);
        assert_eq!(w.pop_due(t0 + Duration::from_secs(1)), Some(7));
    }

    #[test]
    fn cancelled_timer_never_fires() {
        let mut w: TimerWheel<u32> = TimerWheel::new();
        let t0 = Instant::now();
        w.arm_at(1, t0 + Duration::from_millis(1));
        w.cancel(1);
        assert!(w.is_empty());
        assert_eq!(w.pop_due(t0 + Duration::from_secs(1)), None);
        // Cancelling an unknown key is a no-op.
        w.cancel(99);
    }

    #[test]
    fn next_deadline_skips_stale_entries() {
        let mut w: TimerWheel<u32> = TimerWheel::new();
        let t0 = Instant::now();
        w.arm_at(1, t0 + Duration::from_millis(1));
        w.arm_at(2, t0 + Duration::from_millis(50));
        w.cancel(1);
        let next = w.next_deadline().unwrap();
        assert_eq!(next, t0 + Duration::from_millis(50));
    }

    #[test]
    fn forget_where_drops_a_sessions_timers() {
        let mut w: TimerWheel<(u32, u64)> = TimerWheel::new();
        let t0 = Instant::now();
        w.arm_at((1, 0), t0);
        w.arm_at((1, 1), t0);
        w.arm_at((2, 0), t0 + Duration::from_millis(5));
        w.forget_where(|&(session, _)| session == 1);
        assert_eq!(w.len(), 1);
        let late = t0 + Duration::from_secs(1);
        assert_eq!(w.pop_due(late), Some((2, 0)));
        assert_eq!(w.pop_due(late), None);
    }

    #[test]
    fn forgotten_key_rearmed_cannot_hit_stale_entry() {
        // Regression: if generations were per-slot, forgetting a key and
        // re-arming it would restart its generation at 1 and an old heap
        // entry (same key, generation 1) would fire at the old deadline.
        let mut w: TimerWheel<u32> = TimerWheel::new();
        let t0 = Instant::now();
        w.arm_at(1, t0 + Duration::from_millis(1)); // old session's timer
        w.forget_where(|&k| k == 1); // session reaped; heap entry left stale
        w.arm_at(1, t0 + Duration::from_secs(5)); // id reused by a new session
        assert_eq!(
            w.pop_due(t0 + Duration::from_secs(1)),
            None,
            "the new session's timer must not fire at the old deadline"
        );
        assert_eq!(w.pop_due(t0 + Duration::from_secs(6)), Some(1));
    }

    #[test]
    fn rearm_after_fire_works() {
        let mut w: TimerWheel<u32> = TimerWheel::new();
        let t0 = Instant::now();
        w.arm_at(1, t0);
        assert_eq!(w.pop_due(t0), Some(1));
        w.arm_at(1, t0 + Duration::from_millis(2));
        assert_eq!(w.len(), 1);
        assert_eq!(w.pop_due(t0 + Duration::from_millis(2)), Some(1));
    }
}
