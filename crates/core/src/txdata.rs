//! The sender's view of the data being transferred.

use std::sync::Arc;

/// Immutable transfer data, pre-segmented into fixed-size packets.
///
/// Cheap to clone (`Arc`); the engines never copy the data — slices of it
/// are copied exactly once, into the outgoing datagram, which is the
/// paper's "copy into the sender's interface".
#[derive(Debug, Clone)]
pub struct TxData {
    data: Arc<[u8]>,
    packet_payload: usize,
}

impl TxData {
    /// Wrap `data` for transmission in `packet_payload`-byte packets.
    ///
    /// # Panics
    /// Panics if `packet_payload` is zero (configs are validated before
    /// engines are built).
    pub fn new(data: Arc<[u8]>, packet_payload: usize) -> Self {
        assert!(packet_payload > 0, "packet_payload must be positive");
        TxData {
            data,
            packet_payload,
        }
    }

    /// Total bytes in the transfer.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True for a zero-byte transfer (still one empty packet on the
    /// wire, so the receiver gets a completion signal).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Number of data packets the transfer needs (`D` in the paper).
    pub fn total_packets(&self) -> u32 {
        if self.data.is_empty() {
            1
        } else {
            self.data.len().div_ceil(self.packet_payload) as u32
        }
    }

    /// Byte offset of packet `seq` within the transfer.
    pub fn offset_of(&self, seq: u32) -> usize {
        seq as usize * self.packet_payload
    }

    /// Payload slice of packet `seq`.  The final packet may be shorter
    /// than `packet_payload`; all others are exactly `packet_payload`.
    ///
    /// # Panics
    /// Panics if `seq >= total_packets()`.
    pub fn payload_of(&self, seq: u32) -> &[u8] {
        let total = self.total_packets();
        assert!(seq < total, "seq {seq} out of range (total {total})");
        let start = self.offset_of(seq);
        let end = (start + self.packet_payload).min(self.data.len());
        &self.data[start..end]
    }

    /// The configured per-packet payload size.
    pub fn packet_payload(&self) -> usize {
        self.packet_payload
    }

    /// The whole transfer buffer.
    pub fn bytes(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make(len: usize, payload: usize) -> TxData {
        let data: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
        TxData::new(data.into(), payload)
    }

    #[test]
    fn exact_multiple_segmentation() {
        let tx = make(4096, 1024);
        assert_eq!(tx.total_packets(), 4);
        for seq in 0..4 {
            assert_eq!(tx.payload_of(seq).len(), 1024);
            assert_eq!(tx.offset_of(seq), seq as usize * 1024);
        }
    }

    #[test]
    fn short_final_packet() {
        let tx = make(2500, 1024);
        assert_eq!(tx.total_packets(), 3);
        assert_eq!(tx.payload_of(0).len(), 1024);
        assert_eq!(tx.payload_of(1).len(), 1024);
        assert_eq!(tx.payload_of(2).len(), 2500 - 2048);
    }

    #[test]
    fn single_packet_transfer() {
        let tx = make(10, 1024);
        assert_eq!(tx.total_packets(), 1);
        assert_eq!(tx.payload_of(0).len(), 10);
    }

    #[test]
    fn empty_transfer_is_one_empty_packet() {
        let tx = make(0, 1024);
        assert!(tx.is_empty());
        assert_eq!(tx.total_packets(), 1);
        assert_eq!(tx.payload_of(0).len(), 0);
    }

    #[test]
    fn payload_content_matches_source() {
        let tx = make(3000, 1000);
        let mut reassembled = Vec::new();
        for seq in 0..tx.total_packets() {
            reassembled.extend_from_slice(tx.payload_of(seq));
        }
        assert_eq!(reassembled, tx.bytes());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn payload_out_of_range_panics() {
        let tx = make(1024, 1024);
        let _ = tx.payload_of(1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_payload_size_panics() {
        let _ = TxData::new(vec![1u8].into(), 0);
    }

    #[test]
    fn clone_shares_storage() {
        let tx = make(2048, 1024);
        let tx2 = tx.clone();
        assert_eq!(tx.bytes().as_ptr(), tx2.bytes().as_ptr());
    }
}
