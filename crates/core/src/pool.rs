//! A bounded pool of reusable packet buffers.
//!
//! The paper's central observation is that large-transfer performance is
//! limited by *per-packet software overhead*, not by the wire.  The most
//! gratuitous modern incarnation of that overhead is allocating a fresh
//! `Vec<u8>` for every datagram an engine emits.  [`BufferPool`] removes
//! it: engines check fixed-capacity buffers out, build packets in place,
//! and the buffer returns to the pool automatically when the driver
//! drops the executed [`crate::api::Action::Transmit`] — so a
//! steady-state transfer recycles a small, bounded set of buffers and
//! performs **zero heap allocations per packet** (verified by the
//! counting-allocator test in `tests/zero_alloc.rs`).
//!
//! The pool is shared: [`crate::config::ProtocolConfig`] carries a
//! handle, cloning a config (as the `blast-node` server does per
//! session) shares the same pool, so one socket serving many sessions
//! recycles one bounded set of buffers.
//!
//! Ownership doubles as the double-free guard: a [`PooledBuf`] *is* the
//! checkout, and the only way to return a buffer is to drop it.

use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Default capacity of each pooled buffer: one maximum Ethernet payload
/// plus the blast header, rounded up — every packet a validated
/// [`crate::config::ProtocolConfig`] can produce fits without reallocation.
pub const DEFAULT_BUF_CAPACITY: usize = 2048;

/// Default bound on buffers the pool retains when idle.
pub const DEFAULT_MAX_FREE: usize = 256;

#[derive(Debug)]
struct PoolInner {
    free: Mutex<Vec<Vec<u8>>>,
    buf_capacity: usize,
    max_free: usize,
    fresh: AtomicU64,
    warmed: AtomicU64,
    recycled: AtomicU64,
    discarded: AtomicU64,
}

/// A shared, bounded free-list of packet buffers.
///
/// Cloning the pool clones the *handle*; all clones draw from the same
/// free list.  [`checkout`](BufferPool::checkout) pops a retained buffer
/// (allocating a fresh one only when the pool runs dry), and dropping
/// the returned [`PooledBuf`] checks it back in.  The free list never
/// holds more than [`max_free`](BufferPool::max_free) buffers: surplus
/// check-ins are simply freed, so an arrival burst cannot ratchet the
/// pool's footprint up forever.
#[derive(Debug, Clone)]
pub struct BufferPool {
    inner: Arc<PoolInner>,
}

impl Default for BufferPool {
    fn default() -> Self {
        BufferPool::new(DEFAULT_BUF_CAPACITY, DEFAULT_MAX_FREE)
    }
}

impl BufferPool {
    /// A pool of `buf_capacity`-byte buffers retaining at most
    /// `max_free` of them when idle.
    pub fn new(buf_capacity: usize, max_free: usize) -> Self {
        BufferPool {
            inner: Arc::new(PoolInner {
                free: Mutex::new(Vec::with_capacity(max_free.min(1024))),
                buf_capacity,
                max_free,
                fresh: AtomicU64::new(0),
                warmed: AtomicU64::new(0),
                recycled: AtomicU64::new(0),
                discarded: AtomicU64::new(0),
            }),
        }
    }

    /// Check a buffer out.  The buffer is empty (`len == 0`) with at
    /// least [`buf_capacity`](BufferPool::buf_capacity) bytes of
    /// capacity; resizing within that capacity allocates nothing.
    pub fn checkout(&self) -> PooledBuf {
        let mut b = self.checkout_raw();
        b.clear();
        b
    }

    /// Check a buffer out pre-sized to `len` bytes of **unspecified
    /// content** — the fast path for builders that overwrite every byte
    /// anyway (`blast_wire::DatagramBuilder` does: header cleared and
    /// set, payload copied).  Recycled buffers keep their previous
    /// length, so in the steady state this truncate-or-extend writes
    /// nothing at all; a plain `vec![0; len]` would zero the lot just
    /// to have it overwritten.
    pub fn checkout_sized(&self, len: usize) -> PooledBuf {
        let mut b = self.checkout_raw();
        b.resize(len, 0);
        b
    }

    /// Check a buffer out pre-sized to `len` *zeroed* bytes.
    pub fn checkout_zeroed(&self, len: usize) -> PooledBuf {
        let mut b = self.checkout_raw();
        b.clear();
        b.resize(len, 0);
        b
    }

    /// Check out `n` buffers with a **single** lock acquisition,
    /// appending them to `into` — the per-round batch path.  A blast
    /// round checking buffers out one at a time pays one pool lock per
    /// packet (~20 ns each); batching the round's worth of checkouts
    /// collapses that to one lock per round.  The buffers arrive with
    /// unspecified length, exactly like
    /// [`checkout_sized`](BufferPool::checkout_sized) before its
    /// resize: callers that overwrite every byte just `resize` to their
    /// packet length.
    pub fn checkout_many(&self, n: usize, into: &mut Vec<PooledBuf>) {
        if n == 0 {
            return;
        }
        into.reserve(n);
        let recycled = {
            let mut free = self.inner.free.lock().expect("pool lock");
            let take = n.min(free.len());
            let from = free.len() - take;
            for buf in free.drain(from..) {
                into.push(PooledBuf {
                    buf,
                    pool: Some(Arc::clone(&self.inner)),
                });
            }
            take
        };
        self.inner
            .recycled
            .fetch_add(recycled as u64, Ordering::Relaxed);
        // Any shortfall is allocated outside the lock.
        let fresh = n - recycled;
        self.inner.fresh.fetch_add(fresh as u64, Ordering::Relaxed);
        for _ in 0..fresh {
            into.push(PooledBuf {
                buf: Vec::with_capacity(self.inner.buf_capacity),
                pool: Some(Arc::clone(&self.inner)),
            });
        }
    }

    /// Pop a recycled buffer (length as it was checked in) or allocate.
    fn checkout_raw(&self) -> PooledBuf {
        let recycled = self.inner.free.lock().expect("pool lock").pop();
        let buf = match recycled {
            Some(buf) => {
                self.inner.recycled.fetch_add(1, Ordering::Relaxed);
                buf
            }
            None => {
                self.inner.fresh.fetch_add(1, Ordering::Relaxed);
                Vec::with_capacity(self.inner.buf_capacity)
            }
        };
        PooledBuf {
            buf,
            pool: Some(Arc::clone(&self.inner)),
        }
    }

    /// Pre-fill the free list so the first `n` checkouts are allocation
    /// free (capped at [`max_free`](BufferPool::max_free)).
    pub fn warm(&self, n: usize) {
        let mut free = self.inner.free.lock().expect("pool lock");
        while free.len() < n.min(self.inner.max_free) {
            self.inner.warmed.fetch_add(1, Ordering::Relaxed);
            free.push(Vec::with_capacity(self.inner.buf_capacity));
        }
    }

    /// Capacity each pooled buffer is created with.
    pub fn buf_capacity(&self) -> usize {
        self.inner.buf_capacity
    }

    /// Bound on buffers retained while idle.
    pub fn max_free(&self) -> usize {
        self.inner.max_free
    }

    /// Buffers currently retained, awaiting checkout.
    pub fn free_count(&self) -> usize {
        self.inner.free.lock().expect("pool lock").len()
    }

    /// Checkouts that had to allocate because the pool was dry
    /// (pre-filling via [`warm`](BufferPool::warm) is counted
    /// separately, so this is a true dry-pool signal).
    pub fn fresh_allocations(&self) -> u64 {
        self.inner.fresh.load(Ordering::Relaxed)
    }

    /// Buffers pre-allocated by [`warm`](BufferPool::warm).
    pub fn warmed_allocations(&self) -> u64 {
        self.inner.warmed.load(Ordering::Relaxed)
    }

    /// Checkouts served from the free list.
    pub fn recycled_checkouts(&self) -> u64 {
        self.inner.recycled.load(Ordering::Relaxed)
    }

    /// Check-ins dropped because the free list was already full.
    pub fn discarded_checkins(&self) -> u64 {
        self.inner.discarded.load(Ordering::Relaxed)
    }

    /// True if `other` is a handle to this same pool.
    pub fn same_pool(&self, other: &BufferPool) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

impl PoolInner {
    fn checkin(&self, buf: Vec<u8>) {
        let mut free = self.free.lock().expect("pool lock");
        if free.len() < self.max_free {
            // Retained as-is (length included): `checkout_sized` then
            // truncates rather than re-zeroing, and `checkout` clears —
            // both O(1).
            free.push(buf);
        } else {
            self.discarded.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// An owned packet buffer, checked out of a [`BufferPool`] (or detached,
/// when built from a plain `Vec<u8>`).
///
/// Dereferences to `Vec<u8>`, so the wire builders' `&mut [u8]` APIs and
/// `resize`/`truncate` work directly.  Dropping a pooled buffer returns
/// its storage to the pool; a detached buffer just frees.  Cloning
/// always produces a *detached* deep copy — clones are a test
/// convenience, not part of the hot path.
#[derive(Debug)]
pub struct PooledBuf {
    buf: Vec<u8>,
    pool: Option<Arc<PoolInner>>,
}

impl PooledBuf {
    /// A detached buffer wrapping `bytes` (no pool; dropping frees).
    pub fn detached(bytes: Vec<u8>) -> Self {
        PooledBuf {
            buf: bytes,
            pool: None,
        }
    }

    /// True when dropping this buffer returns it to a pool.
    pub fn is_pooled(&self) -> bool {
        self.pool.is_some()
    }

    /// Extract the bytes, detaching them from the pool (the pool simply
    /// allocates afresh when it next runs dry).
    pub fn into_vec(mut self) -> Vec<u8> {
        self.pool = None;
        std::mem::take(&mut self.buf)
    }
}

impl From<Vec<u8>> for PooledBuf {
    fn from(bytes: Vec<u8>) -> Self {
        PooledBuf::detached(bytes)
    }
}

impl Clone for PooledBuf {
    fn clone(&self) -> Self {
        PooledBuf::detached(self.buf.clone())
    }
}

impl PartialEq for PooledBuf {
    fn eq(&self, other: &Self) -> bool {
        self.buf == other.buf
    }
}

impl Eq for PooledBuf {}

impl Deref for PooledBuf {
    type Target = Vec<u8>;

    fn deref(&self) -> &Vec<u8> {
        &self.buf
    }
}

impl DerefMut for PooledBuf {
    fn deref_mut(&mut self) -> &mut Vec<u8> {
        &mut self.buf
    }
}

impl Drop for PooledBuf {
    fn drop(&mut self) {
        if let Some(pool) = self.pool.take() {
            pool.checkin(std::mem::take(&mut self.buf));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkout_recycles_on_drop() {
        let pool = BufferPool::new(128, 4);
        assert_eq!(pool.free_count(), 0);
        let a = pool.checkout();
        assert_eq!(pool.fresh_allocations(), 1);
        assert!(a.is_pooled());
        assert_eq!(a.len(), 0);
        assert!(a.capacity() >= 128);
        drop(a);
        assert_eq!(pool.free_count(), 1);
        let b = pool.checkout();
        assert_eq!(pool.fresh_allocations(), 1, "second checkout recycles");
        assert_eq!(pool.recycled_checkouts(), 1);
        drop(b);
    }

    #[test]
    fn checkin_respects_bound() {
        let pool = BufferPool::new(64, 2);
        let bufs: Vec<PooledBuf> = (0..5).map(|_| pool.checkout()).collect();
        assert_eq!(pool.fresh_allocations(), 5);
        drop(bufs);
        assert_eq!(pool.free_count(), 2, "free list capped at max_free");
        assert_eq!(pool.discarded_checkins(), 3);
    }

    #[test]
    fn checked_in_buffers_come_back_empty() {
        let pool = BufferPool::new(64, 4);
        let mut a = pool.checkout_zeroed(48);
        a[0] = 0xAA;
        drop(a);
        let b = pool.checkout();
        assert_eq!(b.len(), 0, "recycled buffer is cleared");
        assert!(b.capacity() >= 48);
    }

    #[test]
    fn warm_prefills_up_to_bound() {
        let pool = BufferPool::new(64, 3);
        pool.warm(10);
        assert_eq!(pool.free_count(), 3);
        assert_eq!(pool.warmed_allocations(), 3);
        assert_eq!(
            pool.fresh_allocations(),
            0,
            "warming is not a dry-pool event"
        );
        let _a = pool.checkout();
        assert_eq!(
            pool.fresh_allocations(),
            0,
            "warmed checkout stays fresh-free"
        );
    }

    #[test]
    fn clones_share_the_free_list() {
        let pool = BufferPool::new(64, 4);
        let pool2 = pool.clone();
        assert!(pool.same_pool(&pool2));
        drop(pool2.checkout());
        assert_eq!(pool.free_count(), 1);
        assert!(!pool.same_pool(&BufferPool::default()));
    }

    #[test]
    fn checkout_many_recycles_then_allocates() {
        let pool = BufferPool::new(64, 8);
        pool.warm(3);
        let mut batch = Vec::new();
        pool.checkout_many(5, &mut batch);
        assert_eq!(batch.len(), 5);
        assert_eq!(pool.recycled_checkouts(), 3, "warm buffers drained first");
        assert_eq!(pool.fresh_allocations(), 2, "shortfall allocated");
        assert!(batch.iter().all(PooledBuf::is_pooled));
        drop(batch);
        assert_eq!(pool.free_count(), 5, "batch checkouts still check in");
        // A zero-size batch is a no-op.
        let mut batch = Vec::new();
        pool.checkout_many(0, &mut batch);
        assert!(batch.is_empty());
    }

    #[test]
    fn detached_buffers_skip_the_pool() {
        let pool = BufferPool::new(64, 4);
        let d = PooledBuf::detached(vec![1, 2, 3]);
        assert!(!d.is_pooled());
        drop(d);
        assert_eq!(pool.free_count(), 0);

        let v: PooledBuf = vec![9u8; 8].into();
        assert_eq!(v.into_vec(), vec![9u8; 8]);
    }

    #[test]
    fn into_vec_detaches_a_pooled_buffer() {
        let pool = BufferPool::new(64, 4);
        let mut a = pool.checkout();
        a.extend_from_slice(b"abc");
        let v = a.into_vec();
        assert_eq!(v, b"abc");
        assert_eq!(pool.free_count(), 0, "extracted storage never checks in");
    }

    #[test]
    fn equality_and_clone_are_by_contents() {
        let pool = BufferPool::new(64, 4);
        let mut a = pool.checkout();
        a.extend_from_slice(b"xyz");
        let b = a.clone();
        assert_eq!(a, b);
        assert!(!b.is_pooled(), "clones are detached");
        assert_eq!(&b[..], b"xyz");
    }
}
