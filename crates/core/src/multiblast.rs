//! Multi-blast transfers (§3.1.3 of the paper).
//!
//! "Clearly as the size of the data transfer increases, errors are more
//! likely and retransmission becomes more costly.  For such very large
//! sizes, we suggest the use of multiple blasts, whereby the transfer is
//! broken up in a number of different blasts, each of which proceeds
//! according to the definition of the blast protocol."
//!
//! [`MultiBlastSender`] drives one [`BlastSender`] per chunk of
//! `multiblast_chunk` packets, strictly in sequence: a chunk must be
//! positively acknowledged before the next chunk starts.  The receive
//! side needs no special engine — [`crate::blast::BlastReceiver`]'s
//! cumulative acknowledgements (`Positive { acked }` covers everything
//! up to `acked`) handle chunked transfers transparently;
//! [`MultiBlastReceiver`] is a re-export.

use std::sync::Arc;

use blast_wire::packet::Datagram;

use crate::api::{Action, ActionSink, CompletionInfo, EngineStats, TimerToken};
use crate::blast::BlastSender;
use crate::config::ProtocolConfig;
use crate::engine::{Engine, Finish};
use crate::txdata::TxData;

/// Multi-blast receiver: the ordinary blast receiver.
pub type MultiBlastReceiver = crate::blast::BlastReceiver;

/// Sender that splits a large transfer into sequentially-acknowledged
/// blasts.
#[derive(Debug)]
pub struct MultiBlastSender {
    transfer_id: u32,
    tx: TxData,
    config: ProtocolConfig,
    chunk: u32,
    /// First packet of the chunk currently in flight.
    chunk_start: u32,
    /// Driver clock, mirrored into each chunk engine.
    now: std::time::Duration,
    /// Flight recorder, re-attached to each chunk engine.
    recorder: Option<blast_telemetry::Recorder>,
    inner: BlastSender,
    /// Stats of completed chunks (the live chunk's stats are added on
    /// query).
    absorbed: EngineStats,
    /// Reused staging vector for [`drive`](MultiBlastSender::drive):
    /// the chunk engine's actions are drained out of it every call, so
    /// the steady state allocates no per-call sink.
    staged: Vec<Action>,
    finish: Finish,
}

impl MultiBlastSender {
    /// Create a sender for `data` on `transfer_id`, blasting
    /// `config.multiblast_chunk` packets per chunk.
    pub fn new(transfer_id: u32, data: Arc<[u8]>, config: &ProtocolConfig) -> Self {
        let tx = TxData::new(data, config.packet_payload);
        let chunk = config.multiblast_chunk;
        let end = chunk.min(tx.total_packets());
        let inner = BlastSender::for_range(transfer_id, tx.clone(), config, 0, end, true);
        MultiBlastSender {
            transfer_id,
            tx,
            config: config.clone(),
            chunk,
            chunk_start: 0,
            now: std::time::Duration::ZERO,
            recorder: None,
            inner,
            absorbed: EngineStats::default(),
            staged: Vec::new(),
            finish: Finish::default(),
        }
    }

    /// Number of chunks the transfer uses.
    pub fn total_chunks(&self) -> u32 {
        self.tx.total_packets().div_ceil(self.chunk)
    }

    /// Zero-based index of the chunk currently in flight.
    pub fn current_chunk(&self) -> u32 {
        self.chunk_start / self.chunk
    }

    /// Current retransmission timeout (the RTT estimator carries
    /// across chunks, so this is the session's converged RTO).
    pub fn current_rto(&self) -> std::time::Duration {
        self.inner.current_rto()
    }

    /// Smoothed round-trip estimate carried across chunks, once a
    /// Karn-valid sample has landed.
    pub fn srtt(&self) -> Option<std::time::Duration> {
        self.inner.srtt()
    }

    /// Run the inner chunk engine and post-process its actions:
    /// pass-through everything except `Complete`, which advances to the
    /// next chunk (or completes the whole transfer).
    fn drive<F: FnOnce(&mut BlastSender, &mut Vec<Action>)>(
        &mut self,
        f: F,
        sink: &mut dyn ActionSink,
    ) {
        // Take/put-back: a recursive `advance` (chunk rollover) sees an
        // empty staging vector and stages its own batch independently.
        let mut staged = std::mem::take(&mut self.staged);
        f(&mut self.inner, &mut staged);
        for action in staged.drain(..) {
            match action {
                Action::Complete(info) => {
                    self.absorbed.absorb(&info.stats);
                    match info.result {
                        Ok(_) => self.advance(sink),
                        Err(e) => {
                            let stats = self.absorbed;
                            self.finish
                                .complete(sink, CompletionInfo::failure(e, stats));
                        }
                    }
                }
                other => sink.push_action(other),
            }
        }
        self.staged = staged;
    }

    fn advance(&mut self, sink: &mut dyn ActionSink) {
        let next_start = self.chunk_start + self.chunk;
        if next_start >= self.tx.total_packets() {
            let stats = self.absorbed;
            self.finish
                .complete(sink, CompletionInfo::success(self.tx.len(), stats));
            return;
        }
        self.chunk_start = next_start;
        let end = (next_start + self.chunk).min(self.tx.total_packets());
        // The RTT estimator and the AIMD pacer outlive the chunk
        // engine: every chunk's round-0 acknowledgement is a clean
        // sample *and* a clean round, so later chunks start from the
        // converged RTO and the grown burst instead of the configured
        // seeds — per-session adaptation, not per-chunk.
        let estimator = self.inner.estimator().clone();
        let pacer = *self.inner.pacer();
        let now = self.now;
        self.inner = BlastSender::for_range(
            self.transfer_id,
            self.tx.clone(),
            &self.config,
            next_start,
            end,
            true,
        );
        self.inner.adopt_estimator(estimator);
        self.inner.adopt_pacer(pacer);
        self.inner.set_now(now);
        if let Some(rec) = &self.recorder {
            self.inner.set_recorder(rec.clone());
        }
        // Kick the fresh chunk off; its actions flow to the real sink
        // (completion of a 1-chunk tail is handled recursively).
        self.drive(|inner, staged| inner.start(staged), sink);
    }
}

impl Engine for MultiBlastSender {
    fn start(&mut self, sink: &mut dyn ActionSink) {
        self.drive(|inner, staged| inner.start(staged), sink);
    }

    fn set_now(&mut self, now: std::time::Duration) {
        self.now = now;
        self.inner.set_now(now);
    }

    fn set_recorder(&mut self, recorder: blast_telemetry::Recorder) {
        self.inner.set_recorder(recorder.clone());
        self.recorder = Some(recorder);
    }

    fn on_datagram(&mut self, dgram: &Datagram<'_>, sink: &mut dyn ActionSink) {
        if self.finish.is_finished() {
            return;
        }
        self.drive(|inner, staged| inner.on_datagram(dgram, staged), sink);
    }

    fn on_timer(&mut self, token: TimerToken, sink: &mut dyn ActionSink) {
        if self.finish.is_finished() {
            return;
        }
        self.drive(|inner, staged| inner.on_timer(token, staged), sink);
    }

    fn is_finished(&self) -> bool {
        self.finish.is_finished()
    }

    fn stats(&self) -> EngineStats {
        let mut s = self.absorbed;
        if !self.finish.is_finished() {
            s.absorb(&self.inner.stats());
        }
        s
    }

    fn transfer_id(&self) -> u32 {
        self.transfer_id
    }

    fn pacing_snapshot(&self) -> Option<crate::control::PacerSnapshot> {
        self.inner.pacing_snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blast::BlastReceiver;
    use crate::config::RetxStrategy;
    use blast_wire::ack::AckPayload;
    use blast_wire::header::flags;

    fn data(n: usize) -> Arc<[u8]> {
        (0..n)
            .map(|i| (i * 31 % 251) as u8)
            .collect::<Vec<u8>>()
            .into()
    }

    fn feed(engine: &mut dyn Engine, packet: &[u8]) -> Vec<Action> {
        let d = Datagram::parse(packet).unwrap();
        let mut out = Vec::new();
        engine.on_datagram(&d, &mut out);
        out
    }

    fn transmits(actions: &[Action]) -> Vec<Vec<u8>> {
        actions
            .iter()
            .filter_map(|a| a.as_transmit().map(<[u8]>::to_vec))
            .collect()
    }

    fn run_lossless(bytes: usize, chunk: u32) -> (MultiBlastSender, BlastReceiver, u32) {
        let cfg = ProtocolConfig::default().with_multiblast_chunk(chunk);
        let payload = data(bytes);
        let mut s = MultiBlastSender::new(1, payload.clone(), &cfg);
        let mut r = BlastReceiver::new(1, payload.len(), &cfg);
        let mut actions = Vec::new();
        s.start(&mut actions);
        let mut acks_seen = 0;
        let mut guard = 0;
        while !s.is_finished() {
            guard += 1;
            assert!(guard < 10_000, "livelock");
            let pkts = transmits(&actions);
            assert!(!pkts.is_empty(), "sender stalled");
            let mut next_actions = Vec::new();
            for p in &pkts {
                let out = feed(&mut r, p);
                for ack in transmits(&out) {
                    acks_seen += 1;
                    next_actions.extend(feed(&mut s, &ack));
                }
            }
            actions = next_actions;
        }
        assert!(r.is_finished());
        assert_eq!(r.data(), &data(bytes)[..]);
        (s, r, acks_seen)
    }

    #[test]
    fn chunked_transfer_completes_with_one_ack_per_chunk() {
        let (s, _r, acks) = run_lossless(16 * 1024, 4);
        assert_eq!(s.total_chunks(), 4);
        assert_eq!(acks, 4, "one acknowledgement per chunk");
        assert_eq!(s.stats().data_packets_sent, 16);
        assert_eq!(s.stats().data_packets_retransmitted, 0);
    }

    #[test]
    fn ragged_tail_chunk() {
        // 10 packets in chunks of 4 → 4 + 4 + 2.
        let (s, _r, acks) = run_lossless(10 * 1024, 4);
        assert_eq!(s.total_chunks(), 3);
        assert_eq!(acks, 3);
    }

    #[test]
    fn single_chunk_degenerates_to_blast() {
        let (s, _r, acks) = run_lossless(4 * 1024, 64);
        assert_eq!(s.total_chunks(), 1);
        assert_eq!(acks, 1);
    }

    #[test]
    fn packets_carry_multiblast_flag_and_global_seqs() {
        let cfg = ProtocolConfig::default().with_multiblast_chunk(2);
        let payload = data(6 * 1024);
        let mut s = MultiBlastSender::new(1, payload.clone(), &cfg);
        let mut r = BlastReceiver::new(1, payload.len(), &cfg);
        let mut actions = Vec::new();
        s.start(&mut actions);

        // First chunk: global seqs 0,1; LAST on 1.
        let pkts = transmits(&actions);
        let seqs: Vec<u32> = pkts
            .iter()
            .map(|p| Datagram::parse(p).unwrap().seq)
            .collect();
        assert_eq!(seqs, vec![0, 1]);
        for p in &pkts {
            let d = Datagram::parse(p).unwrap();
            assert_ne!(d.flags & flags::MULTIBLAST, 0);
            assert_eq!(d.total, 6, "total is the global packet count");
        }
        let mut acks = Vec::new();
        for p in &pkts {
            acks.extend(transmits(&feed(&mut r, p)));
        }
        // Chunk ack is cumulative: Positive{1}.
        let d = Datagram::parse(&acks[0]).unwrap();
        assert_eq!(d.ack, Some(AckPayload::Positive { acked: 1 }));

        // Feeding it advances to chunk 2 (global seqs 2,3).
        let out = feed(&mut s, &acks[0]);
        let seqs: Vec<u32> = transmits(&out)
            .iter()
            .map(|p| Datagram::parse(p).unwrap().seq)
            .collect();
        assert_eq!(seqs, vec![2, 3]);
        assert_eq!(s.current_chunk(), 1);
    }

    #[test]
    fn loss_within_chunk_recovers_before_next_chunk() {
        let cfg = ProtocolConfig::default()
            .with_multiblast_chunk(4)
            .with_strategy(RetxStrategy::GoBackN);
        let payload = data(8 * 1024);
        let mut s = MultiBlastSender::new(1, payload.clone(), &cfg);
        let mut r = BlastReceiver::new(1, payload.len(), &cfg);
        let mut actions = Vec::new();
        s.start(&mut actions);

        // Drop packet 1 of chunk 0.
        let pkts = transmits(&actions);
        let mut acks = Vec::new();
        for p in &pkts {
            let d = Datagram::parse(p).unwrap();
            if d.seq == 1 {
                continue;
            }
            acks.extend(transmits(&feed(&mut r, p)));
        }
        let d = Datagram::parse(&acks[0]).unwrap();
        assert_eq!(
            d.ack,
            Some(AckPayload::NackFirstMissing { first_missing: 1 })
        );

        // NACK resends 1..4 — still chunk 0, not chunk 1.
        let out = feed(&mut s, &acks[0]);
        let seqs: Vec<u32> = transmits(&out)
            .iter()
            .map(|p| Datagram::parse(p).unwrap().seq)
            .collect();
        assert_eq!(seqs, vec![1, 2, 3]);
        assert_eq!(s.current_chunk(), 0);

        // Deliver; chunk 0 acks; chunk 1 starts.
        let mut acks = Vec::new();
        for p in transmits(&out) {
            acks.extend(transmits(&feed(&mut r, &p)));
        }
        let out = feed(&mut s, &acks[0]);
        let seqs: Vec<u32> = transmits(&out)
            .iter()
            .map(|p| Datagram::parse(p).unwrap().seq)
            .collect();
        assert_eq!(seqs, vec![4, 5, 6, 7]);

        // Finish up.
        let mut acks = Vec::new();
        for p in transmits(&out) {
            acks.extend(transmits(&feed(&mut r, &p)));
        }
        feed(&mut s, &acks[0]);
        assert!(s.is_finished() && r.is_finished());
        assert_eq!(r.data(), &payload[..]);
        assert_eq!(s.stats().retransmission_rounds, 1);
    }

    #[test]
    fn stats_aggregate_across_chunks() {
        let (s, r, _) = run_lossless(12 * 1024, 3);
        assert_eq!(s.stats().data_packets_sent, 12);
        assert_eq!(r.stats().data_packets_received, 12);
        assert_eq!(r.stats().acks_sent, 4);
    }
}
