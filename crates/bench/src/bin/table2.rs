//! Table 2 — "Breakdown of Transmission Cost over its Various
//! Components", plus the Figure 2 timeline.
//!
//! A 1 KB reliable exchange decomposed into its six components.  The
//! component values *are* the calibration constants, so the table
//! reproduces exactly; the value of this binary is the cross-check that
//! the simulator's trace shows the same decomposition, and the rendered
//! packet-transmission timeline (Figure 2).

use blast_bench::{run_transfer, Proto, RunResult};
use blast_sim::{render_timeline, Lane, SimConfig};
use blast_stats::Table;

fn main() {
    let mut t = Table::new(&["operation", "time (ms)"])
        .with_title("Table 2: breakdown of a 1 KB reliable exchange");
    t.row(&["Copy data into sender's interface", "1.35"]);
    t.row(&["Transmit data", "0.82"]);
    t.row(&["Copy data out of receiver's interface", "1.35"]);
    t.row(&["Copy ack into receiver's interface", "0.17"]);
    t.row(&["Transmit ack", "0.05"]);
    t.row(&["Copy ack out of sender's interface", "0.17"]);
    t.row(&["Total (model)", "3.91"]);
    t.row(&["Observed elapsed time (paper)", "4.08"]);
    println!("{}", t.render());

    // Cross-check: run the exchange in the simulator with tracing and
    // recompute the component sums from the trace itself.
    let RunResult { elapsed_ms, report } =
        run_transfer(Proto::Saw, 1024, SimConfig::standalone().with_trace(), None);
    let copy_ms: f64 = report
        .trace
        .iter()
        .filter(|e| e.lane != Lane::Wire)
        .map(|e| (e.end - e.start).as_secs_f64() * 1e3)
        .sum();
    let wire_ms: f64 = report
        .trace
        .iter()
        .filter(|e| e.lane == Lane::Wire)
        .map(|e| (e.end - e.start).as_secs_f64() * 1e3)
        .sum();
    println!("simulated exchange: {elapsed_ms} ms total");
    println!(
        "  copying: {copy_ms:.2} ms ({:.0} % — paper says 75 %)",
        copy_ms / elapsed_ms * 100.0
    );
    println!(
        "  wire:    {wire_ms:.2} ms ({:.0} % — paper says 21 %)",
        wire_ms / elapsed_ms * 100.0
    );
    println!();
    println!("Figure 2: network packet transmission (timeline):");
    println!(
        "{}",
        render_timeline(&report.trace, &["sender", "receiver"], 72)
    );
}
