//! Bounded SPSC event rings and the handles around them.
//!
//! Each reactor shard (or standalone driver) gets one [`Ring`]: a
//! fixed-capacity circular buffer of packed [`TraceEvent`]s with a
//! single producer (the shard thread, via [`Recorder`]) and a single
//! consumer (whoever drains the [`Telemetry`] handle).  The record path
//! is a handful of atomic loads and stores — no locks, no allocation —
//! so it is safe to call from inside the zero-allocation packet path.
//!
//! Overflow is *counted, never blocked on*: when the ring is full the
//! event is dropped and [`Ring::dropped`] increments, so
//! `offered == accepted + dropped` holds exactly (property-tested in
//! `tests/ring_props.rs`).
//!
//! The slots are plain `AtomicU64`s, which keeps the whole crate in
//! safe Rust: even a misused ring (two racing producers) can only
//! interleave events, never corrupt memory.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::event::{EventKind, TraceEvent};

/// Words per packed event slot.
const WORDS: usize = 4;

/// A bounded single-producer/single-consumer ring of packed events.
#[derive(Debug)]
pub struct Ring {
    /// `capacity * WORDS` atomic words; slot `i` lives at
    /// `(i % capacity) * WORDS`.
    slots: Box<[AtomicU64]>,
    capacity: u64,
    /// Monotonic count of events published (never wraps in practice).
    head: AtomicU64,
    /// Monotonic count of events consumed.
    tail: AtomicU64,
    /// Events offered while the ring was full.
    drops: AtomicU64,
}

impl Ring {
    /// A ring holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Ring {
        let capacity = capacity.max(1);
        let mut slots = Vec::with_capacity(capacity * WORDS);
        slots.resize_with(capacity * WORDS, || AtomicU64::new(0));
        Ring {
            slots: slots.into_boxed_slice(),
            capacity: capacity as u64,
            head: AtomicU64::new(0),
            tail: AtomicU64::new(0),
            drops: AtomicU64::new(0),
        }
    }

    /// Maximum events the ring retains.
    pub fn capacity(&self) -> usize {
        self.capacity as usize
    }

    /// Producer side: publish one event.  Returns `false` (and counts
    /// the drop) when the ring is full.  Allocation-free, lock-free.
    pub fn push(&self, ev: TraceEvent) -> bool {
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Acquire);
        if head - tail >= self.capacity {
            self.drops.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        let base = ((head % self.capacity) as usize) * WORDS;
        for (i, w) in ev.pack().into_iter().enumerate() {
            self.slots[base + i].store(w, Ordering::Relaxed);
        }
        self.head.store(head + 1, Ordering::Release);
        true
    }

    /// Consumer side: take the oldest event, if any.
    pub fn pop(&self) -> Option<TraceEvent> {
        let tail = self.tail.load(Ordering::Relaxed);
        let head = self.head.load(Ordering::Acquire);
        if tail == head {
            return None;
        }
        let base = ((tail % self.capacity) as usize) * WORDS;
        let mut w = [0u64; WORDS];
        for (i, word) in w.iter_mut().enumerate() {
            *word = self.slots[base + i].load(Ordering::Relaxed);
        }
        self.tail.store(tail + 1, Ordering::Release);
        TraceEvent::unpack(w)
    }

    /// Events currently buffered.
    pub fn len(&self) -> usize {
        let tail = self.tail.load(Ordering::Relaxed);
        let head = self.head.load(Ordering::Relaxed);
        (head - tail) as usize
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events dropped because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.drops.load(Ordering::Relaxed)
    }

    /// Events ever accepted (published) into the ring.
    pub fn accepted(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }
}

/// The per-shard producer handle: cheap to clone, lock-free to use.
///
/// A recorder stamps events with nanoseconds since its `epoch`
/// ([`Recorder::record`]) or with a caller-supplied sans-I/O timestamp
/// ([`Recorder::record_at`] — what engines use, fed from their
/// `set_now` clock).  All recorders of one [`Telemetry`] share an
/// epoch, so the merged drain is globally ordered.
///
/// One recorder (plus its clones) must stay on one thread at a time —
/// the ring is single-producer.  Breaking that rule can interleave
/// events but is memory-safe.
///
/// High-rate round-level events can be thinned with
/// [`sample_every`](Recorder::sample_every); lifecycle and error events
/// ([`EventKind::always_recorded`]) are exempt, so a sampled trace
/// stays truthful about admissions, losses and probe outcomes.
#[derive(Debug, Clone)]
pub struct Recorder {
    ring: Arc<Ring>,
    shard: u16,
    epoch: Instant,
    /// Record 1 in `sample` sampleable events (1 = record everything).
    sample: u64,
    /// Sampleable events seen so far; each clone counts its own stream.
    seen: Cell<u64>,
}

impl Recorder {
    /// A standalone recorder over its own ring (driver-side use, where
    /// there is no [`Telemetry`] merging several shards).
    pub fn standalone(capacity: usize) -> Recorder {
        Recorder {
            ring: Arc::new(Ring::new(capacity)),
            shard: 0,
            epoch: Instant::now(),
            sample: 1,
            seen: Cell::new(0),
        }
    }

    /// Record only 1 in `n` round-level events (`n` is clamped to at
    /// least 1; 1 restores full recording).  Events whose
    /// [`EventKind::always_recorded`] is true — session/copy lifecycle,
    /// loss and error signals — bypass sampling entirely.  When `n > 1`
    /// a [`EventKind::SampleRate`] event (`a` = `n`) is stamped into
    /// the stream so exporters and readers can annotate the thinning.
    pub fn sample_every(mut self, n: u64) -> Recorder {
        self.sample = n.max(1);
        self.seen = Cell::new(0);
        if self.sample > 1 {
            self.record(0, EventKind::SampleRate, self.sample, 0);
        }
        self
    }

    /// The configured sampling period (1 = everything recorded).
    pub fn sample_period(&self) -> u64 {
        self.sample
    }

    /// Record `kind` now (nanoseconds since the shared epoch).
    pub fn record(&self, session: u32, kind: EventKind, a: u64, b: u64) -> bool {
        self.record_at(self.epoch.elapsed(), session, kind, a, b)
    }

    /// Record `kind` at a caller-supplied timestamp — the sans-I/O
    /// path used by engines, whose only clock is the `set_now` input.
    ///
    /// Returns `false` only when the ring was full; an event thinned
    /// out by [`sample_every`](Recorder::sample_every) counts as
    /// handled (`true`), not as a drop.
    pub fn record_at(&self, ts: Duration, session: u32, kind: EventKind, a: u64, b: u64) -> bool {
        if self.sample > 1 && !kind.always_recorded() {
            let seen = self.seen.get();
            self.seen.set(seen.wrapping_add(1));
            if seen % self.sample != 0 {
                return true;
            }
        }
        self.ring.push(TraceEvent {
            ts_ns: ts.as_nanos() as u64,
            session,
            shard: self.shard,
            kind,
            a,
            b,
        })
    }

    /// The shard id stamped on this recorder's events.
    pub fn shard(&self) -> u16 {
        self.shard
    }

    /// The epoch timestamps are measured from.
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// Drain this recorder's own ring, oldest first (standalone use).
    pub fn drain(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.ring.len());
        while let Some(ev) = self.ring.pop() {
            out.push(ev);
        }
        out
    }

    /// Events this recorder's ring dropped on overflow.
    pub fn dropped(&self) -> u64 {
        self.ring.dropped()
    }
}

/// The consumer-side handle: owns one ring per shard, hands out
/// [`Recorder`]s, and merges the rings into a single time-ordered
/// stream on [`drain`](Telemetry::drain).
///
/// Cloning clones the handle (all clones see the same rings).
#[derive(Debug, Clone)]
pub struct Telemetry {
    rings: Arc<[Arc<Ring>]>,
    epoch: Instant,
}

impl Telemetry {
    /// `shards` rings of `capacity` events each, all stamping against
    /// one epoch taken now.
    pub fn new(shards: usize, capacity: usize) -> Telemetry {
        let rings: Vec<Arc<Ring>> = (0..shards.max(1))
            .map(|_| Arc::new(Ring::new(capacity)))
            .collect();
        Telemetry {
            rings: rings.into(),
            epoch: Instant::now(),
        }
    }

    /// Number of shard rings.
    pub fn shards(&self) -> usize {
        self.rings.len()
    }

    /// The epoch all recorders stamp against.
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// The producer handle for `shard`.
    ///
    /// # Panics
    /// Panics if `shard >= self.shards()`.
    pub fn recorder(&self, shard: usize) -> Recorder {
        Recorder {
            ring: Arc::clone(&self.rings[shard]),
            shard: shard as u16,
            epoch: self.epoch,
            sample: 1,
            seen: Cell::new(0),
        }
    }

    /// Drain every shard ring and merge into one stream ordered by
    /// timestamp (ties keep shard order, stably).
    pub fn drain(&self) -> Vec<TraceEvent> {
        let mut out = Vec::new();
        self.drain_into(&mut out);
        out
    }

    /// [`drain`](Telemetry::drain) into a caller-owned buffer
    /// (appended; not cleared first).
    pub fn drain_into(&self, out: &mut Vec<TraceEvent>) {
        let start = out.len();
        for ring in self.rings.iter() {
            while let Some(ev) = ring.pop() {
                out.push(ev);
            }
        }
        out[start..].sort_by_key(|ev| ev.ts_ns);
    }

    /// Total events dropped across all shard rings.
    pub fn dropped(&self) -> u64 {
        self.rings.iter().map(|r| r.dropped()).sum()
    }

    /// Total events accepted across all shard rings.
    pub fn accepted(&self) -> u64 {
        self.rings.iter().map(|r| r.accepted()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ts: u64) -> TraceEvent {
        TraceEvent {
            ts_ns: ts,
            session: 1,
            shard: 0,
            kind: EventKind::ShardTick,
            a: 0,
            b: 0,
        }
    }

    #[test]
    fn fifo_order_and_capacity_bound() {
        let ring = Ring::new(4);
        for i in 0..4 {
            assert!(ring.push(ev(i)));
        }
        assert!(!ring.push(ev(99)), "fifth push overflows");
        assert_eq!(ring.dropped(), 1);
        assert_eq!(ring.len(), 4);
        for i in 0..4 {
            assert_eq!(ring.pop().unwrap().ts_ns, i);
        }
        assert!(ring.pop().is_none());
        assert!(ring.is_empty());
    }

    #[test]
    fn ring_reuses_slots_after_drain() {
        let ring = Ring::new(2);
        for round in 0..10u64 {
            assert!(ring.push(ev(round * 2)));
            assert!(ring.push(ev(round * 2 + 1)));
            assert_eq!(ring.pop().unwrap().ts_ns, round * 2);
            assert_eq!(ring.pop().unwrap().ts_ns, round * 2 + 1);
        }
        assert_eq!(ring.dropped(), 0);
        assert_eq!(ring.accepted(), 20);
    }

    #[test]
    fn telemetry_merges_shards_in_time_order() {
        let tel = Telemetry::new(2, 16);
        let r0 = tel.recorder(0);
        let r1 = tel.recorder(1);
        r1.record_at(Duration::from_nanos(5), 2, EventKind::SessionAdmit, 0, 0);
        r0.record_at(Duration::from_nanos(1), 1, EventKind::SessionAdmit, 0, 0);
        r0.record_at(Duration::from_nanos(9), 1, EventKind::SessionReap, 1, 0);
        let events = tel.drain();
        assert_eq!(
            events.iter().map(|e| e.ts_ns).collect::<Vec<_>>(),
            vec![1, 5, 9]
        );
        assert_eq!(events[1].shard, 1);
        assert_eq!(tel.accepted(), 3);
        assert_eq!(tel.dropped(), 0);
        assert!(tel.drain().is_empty(), "drain consumes");
    }

    #[test]
    fn standalone_recorder_round_trips() {
        let rec = Recorder::standalone(8);
        assert!(rec.record(3, EventKind::WakeEvent, 42, 0));
        let events = rec.drain();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].session, 3);
        assert_eq!(events[0].a, 42);
        assert_eq!(rec.dropped(), 0);
    }

    #[test]
    fn sampling_thins_round_events_but_keeps_lifecycle() {
        let rec = Recorder::standalone(256).sample_every(4);
        assert_eq!(rec.sample_period(), 4);
        for _ in 0..16 {
            assert!(rec.record(1, EventKind::RoundStart, 0, 0));
            assert!(rec.record(1, EventKind::SessionAdmit, 0, 0));
        }
        let events = rec.drain();
        let rounds = events
            .iter()
            .filter(|e| e.kind == EventKind::RoundStart)
            .count();
        let admits = events
            .iter()
            .filter(|e| e.kind == EventKind::SessionAdmit)
            .count();
        assert_eq!(rounds, 4, "1 in 4 round events kept");
        assert_eq!(admits, 16, "lifecycle events bypass sampling");
        let header = &events[0];
        assert_eq!(header.kind, EventKind::SampleRate, "rate stamped first");
        assert_eq!(header.a, 4);
    }

    #[test]
    fn sample_period_one_is_a_no_op() {
        let rec = Recorder::standalone(64).sample_every(0);
        assert_eq!(rec.sample_period(), 1);
        for _ in 0..5 {
            rec.record(1, EventKind::RoundStart, 0, 0);
        }
        let events = rec.drain();
        assert_eq!(events.len(), 5, "no SampleRate header, nothing thinned");
        assert!(events.iter().all(|e| e.kind == EventKind::RoundStart));
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let ring = Ring::new(0);
        assert_eq!(ring.capacity(), 1);
        assert!(ring.push(ev(1)));
        assert!(!ring.push(ev(2)));
    }
}
