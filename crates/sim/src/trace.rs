//! Execution traces and timeline rendering.
//!
//! Figures 2 and 3 of the paper are timelines: which processor or wire
//! is busy with what, over time.  The simulator records every copy and
//! transmission as a [`TraceEvent`]; [`render_timeline`] draws them as
//! ASCII gantt rows — one row per (host, lane) — reproducing the
//! figures' structure directly from simulation.

use crate::time::SimTime;

/// What kind of activity a trace event describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Lane {
    /// A processor copying a packet into its interface (cost `C`/`Ca`).
    CpuCopyIn,
    /// A processor copying a packet out of its interface.
    CpuCopyOut,
    /// The wire transmitting a frame (cost `T`/`Ta`).
    Wire,
}

impl Lane {
    fn label(&self) -> &'static str {
        match self {
            Lane::CpuCopyIn => "copy-in ",
            Lane::CpuCopyOut => "copy-out",
            Lane::Wire => "wire    ",
        }
    }
}

/// One recorded activity interval.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Activity start.
    pub start: SimTime,
    /// Activity end.
    pub end: SimTime,
    /// Which host's resource (wire events use the *sender's* id).
    pub host: usize,
    /// Which resource.
    pub lane: Lane,
    /// Short label: `D3` = data packet seq 3, `A` = acknowledgement.
    pub label: String,
}

/// Render events as an ASCII timeline.
///
/// Each (host, lane) pair occupies one row (wire rows are shared and
/// shown once); time maps linearly onto `width` columns.  Data-packet
/// activity renders as the packet's sequence digit (mod 10), ack
/// activity as `a`, producing output directly comparable to the paper's
/// Figure 3.
pub fn render_timeline(events: &[TraceEvent], host_names: &[&str], width: usize) -> String {
    if events.is_empty() {
        return "(no trace)\n".to_string();
    }
    let t_end = events
        .iter()
        .map(|e| e.end.as_nanos())
        .max()
        .expect("non-empty");
    let t_end = t_end.max(1);
    let col_of = |t: SimTime| -> usize {
        ((t.as_nanos() as u128 * (width as u128 - 1)) / t_end as u128) as usize
    };

    // Row order: host 0 copy lanes, wire, host 1 copy lanes, ...
    let mut rows: Vec<(String, Vec<char>)> = Vec::new();
    let mut row_index: std::collections::BTreeMap<(usize, Lane), usize> =
        std::collections::BTreeMap::new();
    let mut hosts: Vec<usize> = events.iter().map(|e| e.host).collect();
    hosts.sort_unstable();
    hosts.dedup();

    // Copy rows per host.
    for &h in &hosts {
        for lane in [Lane::CpuCopyIn, Lane::CpuCopyOut] {
            if events.iter().any(|e| e.host == h && e.lane == lane) {
                let name = host_names.get(h).copied().unwrap_or("host");
                row_index.insert((h, lane), rows.len());
                rows.push((format!("{name:<10} {}", lane.label()), vec![' '; width]));
            }
        }
    }
    // One shared wire row.
    let wire_row = rows.len();
    rows.push((
        format!("{:<10} {}", "ether", Lane::Wire.label()),
        vec![' '; width],
    ));

    for e in events {
        let row = match e.lane {
            Lane::Wire => wire_row,
            lane => match row_index.get(&(e.host, lane)) {
                Some(&r) => r,
                None => continue,
            },
        };
        let c0 = col_of(e.start);
        let c1 = col_of(e.end).max(c0);
        let ch = e
            .label
            .strip_prefix('D')
            .and_then(|digits| digits.chars().last())
            .unwrap_or('a');
        for c in c0..=c1.min(width - 1) {
            rows[row].1[c] = ch;
        }
    }

    let mut out = String::new();
    for (label, cells) in rows {
        out.push_str(&label);
        out.push('|');
        out.extend(cells.iter());
        out.push('\n');
    }
    out.push_str(&format!(
        "{:<19}|0{}{:.3} ms\n",
        "time",
        " ".repeat(width.saturating_sub(10)),
        SimTime(t_end).as_ms()
    ));
    out
}

/// Export simulated timelines as Chrome trace-event JSON for
/// [Perfetto](https://ui.perfetto.dev) — the interactive twin of
/// [`render_timeline`]'s ASCII gantt.
///
/// Track layout mirrors the ASCII rows: one *process* per host
/// (labelled from `host_names`) with a thread lane per copy direction,
/// plus one shared `ether` process for the wire.  Every activity
/// interval becomes a complete (`ph:"X"`) span named by its packet
/// label, so the paper's Fig. 2/3 structure — who held the CPU and the
/// wire, and when — is directly explorable.
pub fn to_chrome_trace(events: &[TraceEvent], host_names: &[&str]) -> String {
    use blast_telemetry::ChromeTraceBuilder;

    // pid 0 is the shared wire; host h gets pid h + 1.
    const WIRE_PID: u64 = 0;
    let mut b = ChromeTraceBuilder::new();
    b.process_name(WIRE_PID, "ether");
    b.thread_name(WIRE_PID, 0, "wire");
    let mut hosts: Vec<usize> = events.iter().map(|e| e.host).collect();
    hosts.sort_unstable();
    hosts.dedup();
    for &h in &hosts {
        let pid = h as u64 + 1;
        b.process_name(pid, host_names.get(h).copied().unwrap_or("host"));
        b.thread_name(pid, 1, "copy-in");
        b.thread_name(pid, 2, "copy-out");
    }
    for e in events {
        let (pid, tid) = match e.lane {
            Lane::Wire => (WIRE_PID, 0),
            Lane::CpuCopyIn => (e.host as u64 + 1, 1),
            Lane::CpuCopyOut => (e.host as u64 + 1, 2),
        };
        let ts = e.start.as_nanos() as f64 / 1e3;
        let dur = e.end.as_nanos().saturating_sub(e.start.as_nanos()) as f64 / 1e3;
        b.complete(pid, tid, &e.label, ts, dur);
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::ms;

    fn ev(start: f64, end: f64, host: usize, lane: Lane, label: &str) -> TraceEvent {
        TraceEvent {
            start: SimTime::from_ms(start),
            end: SimTime::from_ms(end),
            host,
            lane,
            label: label.to_string(),
        }
    }

    #[test]
    fn renders_rows_per_host_and_shared_wire() {
        let events = vec![
            ev(0.0, 1.35, 0, Lane::CpuCopyIn, "D0"),
            ev(1.35, 2.17, 0, Lane::Wire, "D0"),
            ev(2.17, 3.52, 1, Lane::CpuCopyOut, "D0"),
            ev(3.52, 3.69, 1, Lane::CpuCopyIn, "A"),
            ev(3.69, 3.74, 1, Lane::Wire, "A"),
            ev(3.74, 3.91, 0, Lane::CpuCopyOut, "A"),
        ];
        let s = render_timeline(&events, &["sender", "receiver"], 60);
        assert!(s.contains("sender"));
        assert!(s.contains("receiver"));
        assert!(s.contains("ether"));
        // Data packets draw their sequence digit, acks draw 'a'.
        assert!(s.contains('0'));
        assert!(s.contains('a'));
        // Exactly one wire row.
        assert_eq!(s.matches("ether").count(), 1);
    }

    #[test]
    fn empty_trace() {
        assert_eq!(render_timeline(&[], &[], 40), "(no trace)\n");
    }

    #[test]
    fn chrome_export_mirrors_the_ascii_rows() {
        let events = vec![
            ev(0.0, 1.35, 0, Lane::CpuCopyIn, "D0"),
            ev(1.35, 2.17, 0, Lane::Wire, "D0"),
            ev(2.17, 3.52, 1, Lane::CpuCopyOut, "D0"),
            ev(3.52, 3.69, 1, Lane::CpuCopyIn, "A"),
        ];
        let out = to_chrome_trace(&events, &["sender", "receiver"]);
        assert!(out.starts_with("{\"traceEvents\":["));
        // Four activity spans, all complete events with durations.
        assert_eq!(out.matches("\"ph\":\"X\"").count(), 4);
        // Process tracks: the shared wire plus both hosts.
        assert!(out.contains("\"name\":\"ether\""));
        assert!(out.contains("\"name\":\"sender\""));
        assert!(out.contains("\"name\":\"receiver\""));
        // The wire span lives on pid 0; host 0's copy-in on pid 1.
        assert!(out.contains("\"ph\":\"X\",\"pid\":0,\"tid\":0,\"ts\":1350.000"));
        assert!(out.contains("\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":0.000"));
        // 1.35 ms copy = 1350 µs duration.
        assert!(out.contains("\"dur\":1350.000"));
        assert_eq!(out.matches('{').count(), out.matches('}').count());
    }

    #[test]
    fn chrome_export_of_empty_trace_is_still_valid() {
        let out = to_chrome_trace(&[], &[]);
        assert!(out.contains("\"traceEvents\""));
        assert!(out.contains("\"name\":\"ether\""));
    }

    #[test]
    fn data_label_uses_last_digit() {
        let events = vec![ev(0.0, 1.0, 0, Lane::CpuCopyIn, "D13")];
        let s = render_timeline(&events, &["h"], 30);
        assert!(s.contains('3'));
    }

    #[test]
    fn columns_scale_with_time() {
        let events = vec![
            ev(0.0, 1.0, 0, Lane::Wire, "D0"),
            ev(9.0, 10.0, 0, Lane::Wire, "D1"),
        ];
        let s = render_timeline(&events, &["h"], 50);
        let wire_line = s.lines().find(|l| l.starts_with("ether")).unwrap();
        let first = wire_line.find('0').unwrap();
        let last = wire_line.rfind('1').unwrap();
        assert!(
            last > first + 30,
            "events 10x apart should be far apart: {wire_line}"
        );
    }

    #[test]
    fn time_axis_shows_extent() {
        let events = vec![ev(0.0, 4.08, 0, Lane::Wire, "D0")];
        let s = render_timeline(&events, &["h"], 40);
        assert!(s.contains("4.080 ms"));
    }

    #[test]
    fn lane_ordering_is_stable() {
        let _ = SimTime::ZERO + ms(1.0); // exercise helper import
        let events = vec![
            ev(0.0, 1.0, 1, Lane::CpuCopyOut, "D0"),
            ev(0.0, 1.0, 0, Lane::CpuCopyIn, "D0"),
        ];
        let s = render_timeline(&events, &["a", "b"], 30);
        let a_pos = s.find("a         ").unwrap();
        let b_pos = s.find("b         ").unwrap();
        assert!(a_pos < b_pos, "host 0 rows come first:\n{s}");
    }
}
