//! The blob store a node serves, behind a [`Store`] trait.
//!
//! This is the `blast-vkernel` file-server idea carried down to the
//! page level: the paper's motivating workload is a client that
//! "allocates a buffer big enough to contain that file", asks the
//! server for it by name, and has the whole thing moved into its
//! address space in one bulk transfer.  [`BlobStore`] is that server's
//! catalogue — named, immutable byte blobs, each pulled or pushed as
//! one blast transfer — without the surrounding IPC machinery.
//!
//! Blobs are `Arc<[u8]>` so that serving a pull never copies the
//! catalogue entry: the session's sender engine shares the allocation,
//! and a concurrent `put` under the same name simply swaps the `Arc`
//! without disturbing in-flight transfers.
//!
//! Since the node itself is sharded across reactor threads, the store
//! is accessed concurrently and its public face is the object-safe
//! [`Store`] trait ([`SharedStore`] = `Arc<dyn Store>`): the default
//! [`MemStore`] shards a `RwLock`-guarded catalogue by name hash so
//! pulls on different shards never contend, and a file-backed
//! implementation can slot in later without another API break.  All
//! store calls happen at session *boundaries* (handshake, completion) —
//! the per-packet hot path only ever touches the `Arc<[u8]>` it was
//! handed, so it stays allocation-free and lock-free.

use std::collections::BTreeMap;
use std::sync::{Arc, RwLock};

/// A named catalogue of immutable byte blobs.
#[derive(Debug, Default)]
pub struct BlobStore {
    blobs: BTreeMap<String, Arc<[u8]>>,
    /// Blobs inserted over the store's lifetime (puts, not distinct
    /// names).
    pub puts: u64,
}

impl BlobStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert (or replace) `name`.  In-flight pulls of a replaced blob
    /// keep the version they started with.
    pub fn put(&mut self, name: &str, data: impl Into<Arc<[u8]>>) {
        self.blobs.insert(name.to_string(), data.into());
        self.puts += 1;
    }

    /// Fetch `name`, sharing the allocation.
    pub fn get(&self, name: &str) -> Option<Arc<[u8]>> {
        self.blobs.get(name).cloned()
    }

    /// Whether `name` exists.
    pub fn contains(&self, name: &str) -> bool {
        self.blobs.contains_key(name)
    }

    /// Remove `name`, returning the blob if present.
    pub fn remove(&mut self, name: &str) -> Option<Arc<[u8]>> {
        self.blobs.remove(name)
    }

    /// Number of blobs stored.
    pub fn len(&self) -> usize {
        self.blobs.len()
    }

    /// True when the catalogue is empty.
    pub fn is_empty(&self) -> bool {
        self.blobs.is_empty()
    }

    /// Total payload bytes across all blobs.
    pub fn total_bytes(&self) -> usize {
        self.blobs.values().map(|b| b.len()).sum()
    }

    /// Blob names in sorted order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.blobs.keys().map(String::as_str)
    }
}

/// A blob catalogue shareable across the node's reactor shards.
///
/// Object-safe by design: the node holds a `Arc<dyn Store>` so a
/// file-backed (or tiered) implementation can replace the in-memory
/// default without touching the server.  All methods take `&self` —
/// implementations synchronise internally, and the contract mirrors
/// [`BlobStore`]: `get` shares the allocation, a `put` under an
/// existing name swaps the entry without disturbing in-flight readers.
pub trait Store: Send + Sync + std::fmt::Debug {
    /// Fetch `name`, sharing the allocation.
    fn get(&self, name: &str) -> Option<Arc<[u8]>>;

    /// Insert (or replace) `name`.
    fn put(&self, name: &str, data: Arc<[u8]>);

    /// Whether `name` exists.
    fn contains(&self, name: &str) -> bool;

    /// Remove `name`, returning the blob if present.
    fn remove(&self, name: &str) -> Option<Arc<[u8]>>;

    /// Number of blobs stored.
    fn len(&self) -> usize;

    /// True when the catalogue is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total payload bytes across all blobs.
    fn total_bytes(&self) -> usize;

    /// Blob names in sorted order.
    fn names(&self) -> Vec<String>;
}

/// How many independently locked catalogue shards [`MemStore`] keeps.
/// A small power of two: enough that concurrent sessions touching
/// different blobs practically never share a lock, cheap enough that
/// whole-store scans (`len`, `names`) stay trivial.
const STORE_SHARDS: usize = 8;

/// The default [`Store`]: an in-memory catalogue sharded by name hash.
///
/// Each shard is its own `RwLock<BlobStore>`, so reactor shards serving
/// pulls of different blobs take different read locks, and even the
/// same blob admits concurrent readers.  Store calls only happen at
/// session boundaries; the packet hot path works on the `Arc<[u8]>`
/// handed out here and never comes back to the catalogue.
#[derive(Debug)]
pub struct MemStore {
    shards: Vec<RwLock<BlobStore>>,
}

impl Default for MemStore {
    fn default() -> Self {
        MemStore {
            shards: (0..STORE_SHARDS).map(|_| RwLock::default()).collect(),
        }
    }
}

impl MemStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// FNV-1a over the blob name picks the catalogue shard.
    fn shard(&self, name: &str) -> &RwLock<BlobStore> {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.as_bytes() {
            hash ^= u64::from(*byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        &self.shards[(hash as usize) % self.shards.len()]
    }

    /// Blobs inserted over the store's lifetime (puts, not distinct
    /// names).
    pub fn puts(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.read().expect("store shard poisoned").puts)
            .sum()
    }
}

impl Store for MemStore {
    fn get(&self, name: &str) -> Option<Arc<[u8]>> {
        self.shard(name)
            .read()
            .expect("store shard poisoned")
            .get(name)
    }

    fn put(&self, name: &str, data: Arc<[u8]>) {
        self.shard(name)
            .write()
            .expect("store shard poisoned")
            .put(name, data);
    }

    fn contains(&self, name: &str) -> bool {
        self.shard(name)
            .read()
            .expect("store shard poisoned")
            .contains(name)
    }

    fn remove(&self, name: &str) -> Option<Arc<[u8]>> {
        self.shard(name)
            .write()
            .expect("store shard poisoned")
            .remove(name)
    }

    fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("store shard poisoned").len())
            .sum()
    }

    fn total_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("store shard poisoned").total_bytes())
            .sum()
    }

    fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.read()
                    .expect("store shard poisoned")
                    .names()
                    .map(str::to_string)
                    .collect::<Vec<_>>()
            })
            .collect();
        names.sort();
        names
    }
}

/// The store as shared between a running server, its shards, and its
/// owner.
pub type SharedStore = Arc<dyn Store>;

/// A fresh, empty [`SharedStore`] backed by [`MemStore`].
pub fn shared_store() -> SharedStore {
    Arc::new(MemStore::new())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_replace() {
        let mut s = BlobStore::new();
        assert!(s.is_empty());
        s.put("a", vec![1u8, 2, 3]);
        s.put("b", vec![9u8; 10]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.total_bytes(), 13);
        assert_eq!(s.get("a").unwrap().as_ref(), &[1, 2, 3]);
        assert!(s.get("missing").is_none());
        s.put("a", vec![7u8; 4]);
        assert_eq!(s.len(), 2, "replacement, not duplication");
        assert_eq!(s.get("a").unwrap().len(), 4);
        assert_eq!(s.puts, 3);
        assert_eq!(s.names().collect::<Vec<_>>(), vec!["a", "b"]);
    }

    #[test]
    fn inflight_pull_keeps_replaced_version() {
        let mut s = BlobStore::new();
        s.put("model", vec![1u8; 100]);
        let inflight = s.get("model").unwrap();
        s.put("model", vec![2u8; 50]);
        assert_eq!(inflight.len(), 100, "old Arc still alive");
        assert_eq!(s.get("model").unwrap().len(), 50);
    }

    #[test]
    fn remove_and_contains() {
        let mut s = BlobStore::new();
        s.put("x", vec![0u8; 8]);
        assert!(s.contains("x"));
        assert_eq!(s.remove("x").unwrap().len(), 8);
        assert!(!s.contains("x"));
        assert!(s.remove("x").is_none());
    }

    #[test]
    fn mem_store_mirrors_blob_store_semantics() {
        let s = MemStore::new();
        assert!(Store::is_empty(&s));
        s.put("a", vec![1u8, 2, 3].into());
        s.put("b", vec![9u8; 10].into());
        assert_eq!(Store::len(&s), 2);
        assert_eq!(s.total_bytes(), 13);
        assert_eq!(s.get("a").unwrap().as_ref(), &[1, 2, 3]);
        assert!(s.get("missing").is_none());
        s.put("a", vec![7u8; 4].into());
        assert_eq!(Store::len(&s), 2, "replacement, not duplication");
        assert_eq!(s.puts(), 3);
        assert_eq!(s.names(), vec!["a", "b"]);
        assert!(s.contains("b"));
        assert_eq!(s.remove("b").unwrap().len(), 10);
        assert!(!s.contains("b"));
    }

    #[test]
    fn mem_store_spreads_names_across_shards() {
        let s = MemStore::new();
        for i in 0..256 {
            s.put(&format!("blob-{i}"), vec![0u8; 1].into());
        }
        let occupied = s
            .shards
            .iter()
            .filter(|shard| !shard.read().unwrap().is_empty())
            .count();
        assert!(
            occupied >= STORE_SHARDS / 2,
            "FNV should reach most shards, got {occupied}/{STORE_SHARDS}"
        );
        assert_eq!(Store::len(&s), 256);
    }

    #[test]
    fn shared_store_is_a_trait_object() {
        let s: SharedStore = shared_store();
        s.put("x", vec![5u8; 5].into());
        let inflight = s.get("x").unwrap();
        s.put("x", vec![6u8; 2].into());
        assert_eq!(inflight.len(), 5, "in-flight Arc survives replacement");
        assert_eq!(s.get("x").unwrap().len(), 2);
        assert_eq!(s.names(), vec!["x"]);
    }
}
