//! One-call bulk transfers with a pre-allocation handshake.
//!
//! The paper's premise is that "the recipient has sufficient buffers
//! allocated to receive the data before the transfer takes place".
//! Over UDP that guarantee comes from a tiny handshake:
//!
//! 1. the sender transmits a `Request` describing the transfer
//!    (byte length, packet payload size, retransmission strategy) and
//!    retransmits it until echoed;
//! 2. the receiver allocates the whole buffer, echoes the `Request`,
//!    and enters the data phase — continuing to echo duplicate
//!    requests, since its echo may be lost;
//! 3. the sender blasts, per the configured strategy.
//!
//! The `Request` echo is deliberately *not* an `Ack` packet: the blast
//! sender treats positive acks as completion signals, so handshake
//! traffic must be invisible to it (the driver filters `Request`
//! packets before the engine sees them).

use std::io;
use std::time::{Duration, Instant};

use blast_core::api::EngineStats;
use blast_core::blast::{BlastReceiver, BlastSender};
use blast_core::config::ProtocolConfig;
use blast_core::engine::Engine;
use blast_core::multiblast::MultiBlastSender;
use blast_wire::header::PacketKind;
use blast_wire::packet::Datagram;

use crate::channel::{Channel, MAX_DATAGRAM};
use crate::driver::Driver;
use crate::fcs::FcsChannel;
use crate::handshake::{self, Request};

/// Outcome of a completed transfer (either side).
#[derive(Debug)]
pub struct TransferReport {
    /// The received bytes (empty for the sending side).
    pub data: Vec<u8>,
    /// Wall-clock duration of the data phase.
    pub elapsed: Duration,
    /// Engine counters.
    pub stats: EngineStats,
    /// The sender's AIMD pacing state at completion (`None` for
    /// receivers and unpaced senders) — the burst trajectory the perf
    /// harness records.
    pub pacing: Option<blast_core::PacerSnapshot>,
    /// Datagrams sent on the channel (handshake included).
    pub datagrams_sent: u64,
    /// Datagrams received on the channel.
    pub datagrams_received: u64,
    /// Malformed datagrams dropped by wire validation.
    pub malformed: u64,
}

impl TransferReport {
    /// Effective goodput in megabits per second.
    pub fn goodput_mbps(&self, bytes: usize) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            return f64::INFINITY;
        }
        (bytes * 8) as f64 / secs / 1e6
    }
}

/// Send `data` over `channel` as transfer `transfer_id`, blocking until
/// the receiver acknowledges the whole transfer.
pub fn send_data<C: Channel>(
    channel: C,
    transfer_id: u32,
    data: &[u8],
    cfg: &ProtocolConfig,
) -> io::Result<TransferReport> {
    send_impl(channel, transfer_id, data, cfg, false)
}

/// Like [`send_data`] but using multi-blast chunking (§3.1.3), for very
/// large transfers.
pub fn send_data_multiblast<C: Channel>(
    channel: C,
    transfer_id: u32,
    data: &[u8],
    cfg: &ProtocolConfig,
) -> io::Result<TransferReport> {
    send_impl(channel, transfer_id, data, cfg, true)
}

fn send_impl<C: Channel>(
    channel: C,
    transfer_id: u32,
    data: &[u8],
    cfg: &ProtocolConfig,
    multiblast: bool,
) -> io::Result<TransferReport> {
    // Every datagram travels under an Ethernet-style FCS (see
    // `crate::fcs`): corruption becomes loss, as on the paper's
    // hardware, so the engines only ever see intact packets.
    let mut channel = FcsChannel::new(channel);
    // Handshake: request until echoed.
    let request = Request::push(data.len(), cfg, multiblast);
    let reply = handshake::initiate(
        &mut channel,
        transfer_id,
        &request,
        cfg.timeout.initial().min(Duration::from_millis(200)),
        Duration::from_secs(30),
    )?;
    let handshake_sent = reply.datagrams_sent;

    // Data phase.
    let mut engine: Box<dyn Engine> = if multiblast {
        Box::new(MultiBlastSender::new(
            transfer_id,
            data.to_vec().into(),
            cfg,
        ))
    } else {
        Box::new(BlastSender::new(transfer_id, data.to_vec().into(), cfg))
    };
    let mut driver = Driver::new(channel);
    let out = driver.run(engine.as_mut())?;
    let fcs_drops = driver.into_channel().fcs_drops;
    match out.completion.result {
        Ok(_) => Ok(TransferReport {
            data: Vec::new(),
            elapsed: out.elapsed,
            stats: out.completion.stats,
            pacing: engine.pacing_snapshot(),
            datagrams_sent: out.datagrams_sent + handshake_sent,
            datagrams_received: out.datagrams_received,
            malformed: out.malformed + fcs_drops,
        }),
        Err(e) => Err(io::Error::other(format!("transfer failed: {e}"))),
    }
}

/// Wait for a transfer on `channel` and receive it to completion.
///
/// The receive buffer is allocated *before* the data phase, from the
/// handshake's length field — the paper's pre-allocation premise.  The
/// sender's packet size and strategy are adopted from the request.
pub fn recv_data<C: Channel>(channel: C, cfg: &ProtocolConfig) -> io::Result<TransferReport> {
    let mut channel = FcsChannel::new(channel);
    // Wait for a request.
    let mut buf = vec![0u8; MAX_DATAGRAM];
    let deadline = Instant::now() + Duration::from_secs(30);
    let (transfer_id, info, echo) = loop {
        if Instant::now() > deadline {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "no request received",
            ));
        }
        let Some(n) = channel.recv_timeout(&mut buf, Duration::from_millis(100))? else {
            continue;
        };
        let Ok(d) = Datagram::parse(&buf[..n]) else {
            continue;
        };
        if d.kind != PacketKind::Request {
            continue;
        }
        let Some(info) = Request::decode(d.payload) else {
            continue;
        };
        break (d.transfer_id, info, buf[..n].to_vec());
    };

    // Pre-allocate and echo.
    let mut rcfg = cfg.clone();
    info.apply_to(&mut rcfg);
    let mut engine = BlastReceiver::new(transfer_id, info.len, &rcfg);
    channel.send(&echo)?;

    let mut driver = Driver::new(channel).with_linger();
    driver.request_reply = Some(echo);
    let out = driver.run(&mut engine)?;
    let fcs_drops = driver.into_channel().fcs_drops;
    match out.completion.result {
        Ok(_) => Ok(TransferReport {
            data: engine.into_data(),
            elapsed: out.elapsed,
            stats: out.completion.stats,
            pacing: None,
            datagrams_sent: out.datagrams_sent + 1,
            datagrams_received: out.datagrams_received,
            malformed: out.malformed + fcs_drops,
        }),
        Err(e) => Err(io::Error::other(format!("receive failed: {e}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::UdpChannel;
    use crate::fault::{FaultConfig, FaultyChannel};
    use blast_core::config::RetxStrategy;

    fn cfg(ms: u64) -> ProtocolConfig {
        let mut c = ProtocolConfig::default();
        c.timeout = Duration::from_millis(ms).into();
        c.max_retries = 100_000;
        c
    }

    fn payload(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i.wrapping_mul(97) % 256) as u8).collect()
    }

    #[test]
    fn clean_loopback_transfer() {
        let (a, b) = UdpChannel::pair().unwrap();
        let c = cfg(15);
        let data = payload(200_000);
        let data2 = data.clone();
        let c2 = c.clone();
        let rx = std::thread::spawn(move || recv_data(b, &c2).unwrap());
        let tx = send_data(a, 42, &data, &c).unwrap();
        let report = rx.join().unwrap();
        assert_eq!(report.data, data2);
        assert!(tx.stats.data_packets_sent >= 196);
        assert!(report.goodput_mbps(data2.len()) > 1.0);
    }

    #[test]
    fn lossy_transfer_recovers_all_strategies() {
        for strategy in RetxStrategy::ALL {
            let (a, b) = UdpChannel::pair().unwrap();
            let mut c = cfg(10);
            c.strategy = strategy;
            let data = payload(60_000);
            let data2 = data.clone();
            let c2 = c.clone();
            // 10 % loss on the sender side only (data packets).
            let faulty = FaultyChannel::new(a, FaultConfig::loss(0.10), 99);
            let rx = std::thread::spawn(move || recv_data(b, &c2).unwrap());
            let tx = send_data(faulty, 1, &data, &c).unwrap();
            let report = rx.join().unwrap();
            assert_eq!(report.data, data2, "{strategy}");
            assert!(
                tx.stats.data_packets_retransmitted > 0,
                "{strategy}: loss must cause retransmission"
            );
        }
    }

    #[test]
    fn chaos_transfer_is_still_correct() {
        // Loss + duplication + reordering + corruption on both sides.
        let (a, b) = UdpChannel::pair().unwrap();
        let c = cfg(10);
        let data = payload(40_000);
        let data2 = data.clone();
        let c2 = c.clone();
        let fa = FaultyChannel::new(a, FaultConfig::chaos(0.05), 7);
        let fb = FaultyChannel::new(b, FaultConfig::chaos(0.05), 8);
        let rx = std::thread::spawn(move || recv_data(fb, &c2).unwrap());
        let _tx = send_data(fa, 9, &data, &c).unwrap();
        let report = rx.join().unwrap();
        assert_eq!(report.data, data2);
    }

    #[test]
    fn corruption_is_detected_not_delivered() {
        let (a, b) = UdpChannel::pair().unwrap();
        let c = cfg(10);
        let data = payload(30_000);
        let data2 = data.clone();
        let c2 = c.clone();
        let fa = FaultyChannel::new(
            a,
            FaultConfig {
                corrupt: 0.2,
                ..FaultConfig::none()
            },
            3,
        );
        let rx = std::thread::spawn(move || recv_data(b, &c2).unwrap());
        let _tx = send_data(fa, 2, &data, &c).unwrap();
        let report = rx.join().unwrap();
        assert_eq!(
            report.data, data2,
            "corrupted packets must never corrupt the payload"
        );
        assert!(
            report.malformed > 0,
            "some corruption should have been caught on receive"
        );
    }

    #[test]
    fn multiblast_transfer() {
        let (a, b) = UdpChannel::pair().unwrap();
        let mut c = cfg(15);
        c.multiblast_chunk = 16;
        let data = payload(300_000);
        let data2 = data.clone();
        let c2 = c.clone();
        let rx = std::thread::spawn(move || recv_data(b, &c2).unwrap());
        let tx = send_data_multiblast(a, 77, &data, &c).unwrap();
        let report = rx.join().unwrap();
        assert_eq!(report.data, data2);
        // ~294 packets in chunks of 16 → ≥ 19 chunk acks.
        assert!(
            report.stats.acks_sent >= 19,
            "acks {}",
            report.stats.acks_sent
        );
        assert!(tx.elapsed > Duration::ZERO);
    }

    #[test]
    fn zero_length_transfer() {
        let (a, b) = UdpChannel::pair().unwrap();
        let c = cfg(15);
        let c2 = c.clone();
        let rx = std::thread::spawn(move || recv_data(b, &c2).unwrap());
        send_data(a, 3, &[], &c).unwrap();
        let report = rx.join().unwrap();
        assert!(report.data.is_empty());
    }
}
