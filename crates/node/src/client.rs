//! The client handle: one connection to a node, every operation on it.
//!
//! [`Client`] owns a connected, FCS-framed channel plus the protocol
//! configuration, warmed buffer pool and (optional) flight recorder
//! that every operation shares.  Construct with [`Client::connect`]
//! (real UDP) or [`Client::over`] (any [`Channel`], e.g. a
//! `FaultyChannel` in tests), tune with the fluent setters, then call
//! [`push`](Client::push) / [`pull`](Client::pull) /
//! [`stats`](Client::stats) — or orchestrate node-to-node transfers
//! with [`copy_to`](Client::copy_to), [`copy_from`](Client::copy_from)
//! and [`fan_out`](Client::fan_out).
//!
//! ```no_run
//! # fn main() -> std::io::Result<()> {
//! use blast_node::client::Client;
//! use std::time::Duration;
//!
//! let node = "127.0.0.1:4510".parse().unwrap();
//! let mut client = Client::connect(node)?
//!     .timeout(Duration::from_millis(25))
//!     .retries(64);
//! client.push("blob", b"payload")?;
//! let report = client.pull("blob")?;
//! assert_eq!(report.data, b"payload");
//! # Ok(()) }
//! ```
//!
//! Transfer ids are allocated automatically from a base derived from
//! the client's own ephemeral port, so concurrent clients against one
//! node do not collide (the node keys sessions by transfer id alone).
//! Pin the counter with [`transfer_ids_from`](Client::transfer_ids_from)
//! when a test asserts specific ids.

use std::io;
use std::net::SocketAddr;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use blast_core::blast::{BlastReceiver, BlastSender};
use blast_core::config::ProtocolConfig;
use blast_core::{AdaptiveTimeout, PacingConfig, RetxStrategy};
use blast_telemetry::Recorder;
use blast_udp::channel::{Channel, UdpChannel, MAX_DATAGRAM};
use blast_udp::copy::{errcode, BlobDigest, CopyMode, CopyMsg, CopyState, CopyStatus, CopySubmit};
use blast_udp::driver::Driver;
use blast_udp::fcs::FcsChannel;
use blast_udp::handshake::{self, Request};
use blast_udp::peer::TransferReport;
use blast_wire::header::PacketKind;
use blast_wire::packet::{Datagram, DatagramBuilder};

/// Handshake pacing: re-request at the protocol's retransmission
/// interval, capped so a long data-phase timeout does not slow the
/// handshake down.
fn retry_interval(cfg: &ProtocolConfig) -> Duration {
    cfg.timeout.initial().min(Duration::from_millis(200))
}

/// Default patience for handshakes, control queries and whole copies.
const DEFAULT_PATIENCE: Duration = Duration::from_secs(30);

/// How long a copy poll sleeps between status queries — short enough
/// that a loopback copy's `Running` phase is still observed, long
/// enough not to busy-spin the node's control plane.
const COPY_POLL: Duration = Duration::from_millis(2);

/// How many buffers the client's pool pre-fills at construction, so
/// the first push's burst does not allocate mid-flight.
const POOL_WARM: usize = 32;

/// The orchestration record of one node-to-node copy: identity,
/// outcome, digest-verification verdict, and every status the client
/// observed while polling (the per-copy progress trail).
#[derive(Debug, Clone)]
pub struct CopyReport {
    /// The copy's id (also the transfer id of the node-to-node leg).
    pub copy_id: u32,
    /// Which way the bytes flowed, from the submitted-to node's view.
    pub mode: CopyMode,
    /// The far node of the node-to-node leg.
    pub remote: SocketAddr,
    /// Terminal lifecycle state.
    pub state: CopyState,
    /// [`errcode`] detail when `state` is [`CopyState::Failed`].
    pub error: u8,
    /// Bytes the copy moved.
    pub bytes: u64,
    /// CRC-32 of the moved blob, as reported by the submitted-to node.
    pub crc32: u32,
    /// Wall-clock time from submit to terminal status.
    pub elapsed: Duration,
    /// Whether the far node's digest matched the source's length and
    /// CRC-32 — the end-to-end byte-verification verdict.
    pub verified: bool,
    /// Every status observed, submit acknowledgement through terminal.
    pub progress: Vec<CopyStatus>,
}

/// A connection to one node: channel, configuration and telemetry in
/// one handle.  See the [module docs](self) for the usual flow.
#[derive(Debug)]
pub struct Client<C: Channel = UdpChannel> {
    channel: FcsChannel<C>,
    cfg: ProtocolConfig,
    patience: Duration,
    recorder: Option<Recorder>,
    local: Option<SocketAddr>,
    next_id: u32,
    nonce: u32,
}

impl Client<UdpChannel> {
    /// Connect to `node` from an ephemeral local port.  The local
    /// socket matches the node's address family (a v4 socket cannot
    /// reach a v6 node, nor vice versa).
    pub fn connect(node: SocketAddr) -> io::Result<Self> {
        let local: SocketAddr = if node.is_ipv4() {
            "0.0.0.0:0".parse().expect("literal addr")
        } else {
            "[::]:0".parse().expect("literal addr")
        };
        let channel = UdpChannel::connect(local, node)?;
        let local = channel.local_addr().ok();
        let mut client = Client::over(channel);
        client.local = local;
        // Seed the transfer-id counter from our own ephemeral port:
        // the node demuxes sessions by transfer id alone, so two
        // clients must not hand it the same id.  The port is unique
        // per live client on a host; the low 16 bits count within it.
        if let Some(addr) = local {
            client.next_id = (u32::from(addr.port()) << 16) | 1;
        }
        Ok(client)
    }
}

impl<C: Channel> Client<C> {
    /// Wrap an already-connected channel (tests interpose
    /// `FaultyChannel` here to exercise retransmission).  Transfer ids
    /// count from 1; pin with
    /// [`transfer_ids_from`](Client::transfer_ids_from) if they might
    /// collide with another client of the same node.
    pub fn over(channel: C) -> Self {
        let cfg = default_config();
        cfg.pool.warm(POOL_WARM);
        Client {
            channel: FcsChannel::new(channel),
            cfg,
            patience: DEFAULT_PATIENCE,
            recorder: None,
            local: None,
            next_id: 1,
            nonce: 0,
        }
    }

    /// Set the data-phase retransmission timeout.
    pub fn timeout(mut self, timeout: Duration) -> Self {
        self.cfg.timeout = timeout.into();
        self
    }

    /// Set the adaptive-timeout policy wholesale (seed, bounds,
    /// backoff) instead of just its initial value.
    pub fn adaptive_timeout(mut self, timeout: AdaptiveTimeout) -> Self {
        self.cfg.timeout = timeout;
        self
    }

    /// Set the per-transfer retransmission budget.
    pub fn retries(mut self, max_retries: u32) -> Self {
        self.cfg.max_retries = max_retries;
        self
    }

    /// Set the burst pacing policy.
    pub fn pacing(mut self, pacing: PacingConfig) -> Self {
        self.cfg.pacing = pacing;
        self
    }

    /// Set the retransmission strategy the handshake proposes.
    pub fn strategy(mut self, strategy: RetxStrategy) -> Self {
        self.cfg.strategy = strategy;
        self
    }

    /// Replace the whole protocol configuration (the fine-grained
    /// setters cover the common knobs; this covers the rest).
    pub fn config(mut self, cfg: ProtocolConfig) -> Self {
        cfg.pool.warm(POOL_WARM);
        self.cfg = cfg;
        self
    }

    /// Bound how long handshakes, control queries and whole copies may
    /// take before erroring `TimedOut` (default 30 s).
    pub fn patience(mut self, patience: Duration) -> Self {
        self.patience = patience;
        self
    }

    /// Attach a flight recorder: engines and the channel's I/O backend
    /// trace into it, and copy submits carry its epoch so remote spans
    /// line up with local ones in one Perfetto view.
    pub fn recorder(mut self, recorder: Recorder) -> Self {
        self.channel.set_recorder(recorder.clone());
        self.recorder = Some(recorder);
        self
    }

    /// Pin the transfer-id counter (tests that assert specific ids;
    /// see the [module docs](self) on why the default is derived from
    /// the local port).
    pub fn transfer_ids_from(mut self, first_id: u32) -> Self {
        self.next_id = first_id;
        self
    }

    /// The protocol configuration operations will use.
    pub fn protocol(&self) -> &ProtocolConfig {
        &self.cfg
    }

    /// The local socket address (known for [`Client::connect`]
    /// clients; `None` when wrapped [`over`](Client::over) an opaque
    /// channel).
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.local
    }

    fn alloc_id(&mut self) -> u32 {
        let id = self.next_id;
        self.next_id = self.next_id.wrapping_add(1);
        id
    }

    /// Store `data` on the node as the named blob `name`, blocking
    /// until the node acknowledges the whole transfer.
    pub fn push(&mut self, name: &str, data: &[u8]) -> io::Result<TransferReport> {
        let transfer_id = self.alloc_id();
        let request = Request::push(data.len(), &self.cfg, false).with_name(name);
        let reply = handshake::initiate(
            &mut self.channel,
            transfer_id,
            &request,
            retry_interval(&self.cfg),
            self.patience,
        )?;

        let mut engine = BlastSender::new(transfer_id, data.to_vec().into(), &self.cfg);
        let drops_before = self.channel.fcs_drops;
        let mut driver = Driver::new(&mut self.channel);
        if let Some(rec) = &self.recorder {
            driver = driver.with_recorder(rec.clone());
        }
        let out = driver.run(&mut engine)?;
        drop(driver);
        let fcs_drops = self.channel.fcs_drops - drops_before;
        match out.completion.result {
            Ok(_) => Ok(TransferReport {
                data: Vec::new(),
                elapsed: out.elapsed,
                stats: out.completion.stats,
                pacing: engine.pacing_snapshot(),
                datagrams_sent: out.datagrams_sent + reply.datagrams_sent,
                datagrams_received: out.datagrams_received,
                malformed: out.malformed + fcs_drops,
            }),
            Err(e) => Err(io::Error::other(format!("push failed: {e}"))),
        }
    }

    /// Fetch the named blob `name` from the node.  The blob's size
    /// comes back in the handshake echo; the receive buffer is
    /// pre-allocated from it before the data phase (the paper's
    /// premise).
    ///
    /// Errors with `NotFound` if the node does not have the blob.
    pub fn pull(&mut self, name: &str) -> io::Result<TransferReport> {
        let transfer_id = self.alloc_id();
        let request = Request::pull(name, &self.cfg);
        let reply = handshake::initiate(
            &mut self.channel,
            transfer_id,
            &request,
            retry_interval(&self.cfg),
            self.patience,
        )?;

        let mut engine = BlastReceiver::new(transfer_id, reply.echoed.len, &self.cfg);
        // The linger window is a quiet window (traffic restarts it):
        // make it comfortably longer than the node's
        // tail-retransmission interval so the driver stays for as many
        // re-ack rounds as the node needs.  Paying that full window on
        // every clean pull would cap relayed-copy throughput (each
        // relay leg is one pull + one push), so loss-free runs exit on
        // a much shorter clean window instead.
        let linger = (self.cfg.timeout.initial() * 4).max(Duration::from_millis(100));
        let clean = (self.cfg.timeout.initial() / 4)
            .clamp(Duration::from_millis(5), Duration::from_millis(25));
        let drops_before = self.channel.fcs_drops;
        let mut driver = Driver::new(&mut self.channel)
            .with_linger_for(linger)
            .with_clean_linger_for(clean);
        if let Some(rec) = &self.recorder {
            driver = driver.with_recorder(rec.clone());
        }
        let out = driver.run(&mut engine)?;
        drop(driver);
        let fcs_drops = self.channel.fcs_drops - drops_before;
        match out.completion.result {
            Ok(_) => Ok(TransferReport {
                data: engine.into_data(),
                elapsed: out.elapsed,
                stats: out.completion.stats,
                pacing: None,
                datagrams_sent: out.datagrams_sent + reply.datagrams_sent,
                datagrams_received: out.datagrams_received,
                malformed: out.malformed + fcs_drops,
            }),
            Err(e) => Err(io::Error::other(format!("pull failed: {e}"))),
        }
    }

    /// Ask the node for a live metrics snapshot (the `Stats` control
    /// verb): the merged `NodeMetrics` summary plus one line per shard
    /// — the remote twin of `NodeHandle::metrics().summary()`.  The
    /// query datagram is retransmitted until the reply arrives or the
    /// client's patience runs out, so it survives the same loss the
    /// data plane does.
    pub fn stats(&mut self) -> io::Result<String> {
        let mut query = [0u8; blast_wire::HEADER_LEN];
        let n = DatagramBuilder::new(0)
            .build_stats(&mut query, 0, &[])
            .expect("empty stats query fits");
        let deadline = Instant::now() + self.patience;
        let mut buf = vec![0u8; MAX_DATAGRAM];
        loop {
            self.channel.send(&query[..n])?;
            let now = Instant::now();
            if now >= deadline {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "stats query timed out",
                ));
            }
            let wait = (deadline - now).min(Duration::from_millis(100));
            if let Some(got) = self.channel.recv_timeout(&mut buf, wait)? {
                if let Ok(dgram) = Datagram::parse(&buf[..got]) {
                    if dgram.kind == PacketKind::Stats {
                        return Ok(String::from_utf8_lossy(dgram.payload).into_owned());
                    }
                }
            }
        }
    }

    /// Ask the node whether it holds `name`, and for its length and
    /// CRC-32 if so — the verification primitive behind
    /// [`copy_to`](Client::copy_to)'s `verified` verdict, usable on
    /// its own to audit a replica.
    pub fn digest(&mut self, name: &str) -> io::Result<BlobDigest> {
        let deadline = Instant::now() + self.patience;
        let msg = CopyMsg::Digest { name: name.into() };
        match self.copy_rpc(0, &msg, deadline)? {
            CopyMsg::DigestReply(d) => Ok(d),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("node answered digest with {other:?}"),
            )),
        }
    }

    /// One control-plane round trip: send `msg` on a `Copy` datagram
    /// under `copy_id`, retransmit until a reply echoes this request's
    /// nonce, return the decoded reply.  Stale replies (earlier
    /// nonces, other copies) are skipped, not misread.
    fn copy_rpc(&mut self, copy_id: u32, msg: &CopyMsg, deadline: Instant) -> io::Result<CopyMsg> {
        self.nonce = self.nonce.wrapping_add(1);
        let nonce = self.nonce;
        let payload = msg.encode();
        let mut query = vec![0u8; blast_wire::HEADER_LEN + payload.len()];
        let n = DatagramBuilder::new(copy_id)
            .build_copy(&mut query, nonce, &payload)
            .expect("control message fits a datagram");
        let interval = retry_interval(&self.cfg);
        let mut buf = vec![0u8; MAX_DATAGRAM];
        loop {
            self.channel.send(&query[..n])?;
            let sent_at = Instant::now();
            if sent_at >= deadline {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "copy control query timed out",
                ));
            }
            // Drain replies until this request's echo, the retransmit
            // interval, or the overall deadline — whichever first.
            loop {
                let now = Instant::now();
                let budget = (deadline.min(sent_at + interval)).saturating_duration_since(now);
                if budget.is_zero() {
                    break;
                }
                let Some(got) = self.channel.recv_timeout(&mut buf, budget)? else {
                    break;
                };
                let Ok(dgram) = Datagram::parse(&buf[..got]) else {
                    continue;
                };
                if dgram.kind != PacketKind::Copy
                    || dgram.transfer_id != copy_id
                    || dgram.seq != nonce
                {
                    continue;
                }
                if let Some(reply) = CopyMsg::decode(dgram.payload) {
                    return Ok(reply);
                }
            }
        }
    }

    /// [`copy_rpc`](Client::copy_rpc), expecting a status reply.
    fn copy_status(
        &mut self,
        copy_id: u32,
        msg: &CopyMsg,
        deadline: Instant,
    ) -> io::Result<CopyStatus> {
        match self.copy_rpc(copy_id, msg, deadline)? {
            CopyMsg::Status(st) => Ok(st),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("node answered copy query with {other:?}"),
            )),
        }
    }

    /// The client's trace epoch as Unix nanoseconds, for carrying in a
    /// copy submit (0 = no telemetry).
    fn epoch_ns(&self) -> u64 {
        let Some(rec) = &self.recorder else { return 0 };
        let since_epoch = rec.epoch().elapsed().as_nanos();
        SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|now| now.as_nanos().saturating_sub(since_epoch) as u64)
            .unwrap_or(0)
    }
}

impl Client<UdpChannel> {
    /// Order the connected node to push its blob `name` directly to
    /// the node at `dest`, poll until the copy finishes, then
    /// digest-verify the replica at `dest`.  The bytes never pass
    /// through this client — it only orchestrates.
    ///
    /// Errors map the node's failure code: `NotFound` when the node
    /// lacks the blob, `WouldBlock` when it is at copy capacity,
    /// `TimedOut`/`Other` for transfer failures.
    pub fn copy_to(&mut self, name: &str, dest: SocketAddr) -> io::Result<CopyReport> {
        self.copy(name, CopyMode::Push, dest)
    }

    /// Order the connected node to fetch blob `name` directly from the
    /// node at `source` into its own store, then digest-verify what it
    /// stored against the source's digest.
    pub fn copy_from(&mut self, name: &str, source: SocketAddr) -> io::Result<CopyReport> {
        self.copy(name, CopyMode::Pull, source)
    }

    /// Replicate blob `name` from the connected node to every node in
    /// `replicas` (1 → M fan-out): submit all copies up front so the
    /// legs run concurrently, poll round-robin until each reaches a
    /// terminal state, digest-verify every replica.  Returns one
    /// [`CopyReport`] per replica, in `replicas` order; a failed
    /// replica yields its failure state rather than erroring the
    /// whole call.
    pub fn fan_out(&mut self, name: &str, replicas: &[SocketAddr]) -> io::Result<Vec<CopyReport>> {
        let started = Instant::now();
        let deadline = started + self.patience;
        let epoch_ns = self.epoch_ns();

        struct Leg {
            copy_id: u32,
            remote: SocketAddr,
            progress: Vec<CopyStatus>,
            last: CopyStatus,
        }
        let mut legs: Vec<Leg> = Vec::with_capacity(replicas.len());
        for &remote in replicas {
            let copy_id = self.alloc_id();
            let submit = CopyMsg::Submit(CopySubmit {
                mode: CopyMode::Push,
                remote,
                epoch_ns,
                name: name.to_string(),
            });
            let st = self.copy_status(copy_id, &submit, deadline)?;
            legs.push(Leg {
                copy_id,
                remote,
                progress: vec![st],
                last: st,
            });
        }

        loop {
            let mut settled = true;
            for leg in &mut legs {
                if leg.last.state.is_terminal() {
                    continue;
                }
                settled = false;
                let st = self.copy_status(leg.copy_id, &CopyMsg::Query, deadline)?;
                leg.progress.push(st);
                leg.last = st;
            }
            if settled {
                break;
            }
            if Instant::now() >= deadline {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "fan-out did not settle in time",
                ));
            }
            std::thread::sleep(COPY_POLL);
        }

        let elapsed = started.elapsed();
        legs.into_iter()
            .map(|leg| {
                let verified = leg.last.state == CopyState::Done
                    && verify_replica(leg.remote, name, &leg.last, self.patience)?;
                Ok(CopyReport {
                    copy_id: leg.copy_id,
                    mode: CopyMode::Push,
                    remote: leg.remote,
                    state: leg.last.state,
                    error: leg.last.error,
                    bytes: leg.last.bytes_total,
                    crc32: leg.last.crc32,
                    elapsed,
                    verified,
                    progress: leg.progress,
                })
            })
            .collect()
    }

    fn copy(&mut self, name: &str, mode: CopyMode, remote: SocketAddr) -> io::Result<CopyReport> {
        let copy_id = self.alloc_id();
        let started = Instant::now();
        let deadline = started + self.patience;
        let submit = CopyMsg::Submit(CopySubmit {
            mode,
            remote,
            epoch_ns: self.epoch_ns(),
            name: name.to_string(),
        });
        let mut progress = Vec::new();
        let mut st = self.copy_status(copy_id, &submit, deadline)?;
        progress.push(st);
        while !st.state.is_terminal() {
            if Instant::now() >= deadline {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "copy did not finish in time",
                ));
            }
            std::thread::sleep(COPY_POLL);
            st = self.copy_status(copy_id, &CopyMsg::Query, deadline)?;
            progress.push(st);
        }
        match st.state {
            CopyState::Done => {}
            CopyState::Failed => {
                let kind = match st.error {
                    errcode::NOT_FOUND => io::ErrorKind::NotFound,
                    errcode::BUSY => io::ErrorKind::WouldBlock,
                    errcode::HANDSHAKE_TIMEOUT => io::ErrorKind::TimedOut,
                    _ => io::ErrorKind::Other,
                };
                return Err(io::Error::new(
                    kind,
                    format!("copy failed: {}", errcode::label(st.error)),
                ));
            }
            _ => {
                return Err(io::Error::other(
                    "node no longer knows the copy (reaped before terminal status)",
                ));
            }
        }
        // End-to-end verification: ask the *far* node (the replica for
        // pushes, the source for pulls) for its digest and compare
        // with the status the submitted-to node reported.
        let verified = verify_replica(remote, name, &st, self.patience)?;
        Ok(CopyReport {
            copy_id,
            mode,
            remote,
            state: st.state,
            error: st.error,
            bytes: st.bytes_total,
            crc32: st.crc32,
            elapsed: started.elapsed(),
            verified,
            progress,
        })
    }
}

/// Digest blob `name` at `node` and compare against the copy status
/// `st` the other end reported: found, same length, same CRC-32.
fn verify_replica(
    node: SocketAddr,
    name: &str,
    st: &CopyStatus,
    patience: Duration,
) -> io::Result<bool> {
    let mut probe = Client::connect(node)?.patience(patience);
    let digest = probe.digest(name)?;
    Ok(digest.found && digest.len == st.bytes_total && digest.crc32 == st.crc32)
}

/// The default client configuration: the node's LAN-tuned transmission
/// control (adaptive timeout seeded for LAN round trips, paced bursts)
/// rather than the paper's 173 ms `To(D)` — same reasoning as
/// `NodeConfig::default`.
fn default_config() -> ProtocolConfig {
    let mut cfg = ProtocolConfig::default();
    cfg.timeout = AdaptiveTimeout::lan();
    cfg.pacing = PacingConfig::lan();
    cfg.max_retries = 1000;
    cfg
}
