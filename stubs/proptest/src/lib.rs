//! Offline in-tree shim for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace uses: the
//! [`proptest!`] macro with `name in strategy` bindings and an optional
//! `#![proptest_config(..)]` header, `prop_assert!`-family macros,
//! [`arbitrary::any`], integer-range strategies, tuple strategies,
//! [`strategy::Strategy::prop_map`], [`prop_oneof!`],
//! [`collection::vec`]/[`collection::btree_set`], [`option::of`] and
//! [`sample::Index`].
//!
//! Differences from the real crate, by design (see `stubs/README.md`):
//! every case's seed derives from the test name and case index, so
//! failures reproduce exactly across runs; there is no shrinking and no
//! failure-persistence file.  The default case count is 64,
//! overridable with the `PROPTEST_CASES` environment variable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod rng;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// The glob-importable API surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Mirror of `proptest::prelude::prop`: the crate's strategy
    /// modules under a short alias.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
        pub use crate::sample;
    }
}

/// Defines deterministic property tests.
///
/// Supported grammar (the subset the workspace uses):
///
/// ```text
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]   // optional
///     #[test]
///     fn name(arg in strategy, arg2 in strategy2) { body }
///     ...
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            (<$crate::test_runner::Config as ::core::default::Default>::default())
            $($rest)*
        }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_fns {
    ( ($config:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:ident in $strategy:expr ),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                let mut runner = $crate::test_runner::TestRunner::new(config);
                runner.run_named(::core::stringify!($name), |__proptest_rng| {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(
                            &($strategy),
                            __proptest_rng,
                        );
                    )+
                    $body
                });
            }
        )*
    };
}

/// Picks one of several strategies per generated value, mirroring
/// `proptest::prop_oneof!`.  Arms are either bare strategies (equal
/// weight) or `weight => strategy` pairs.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::union_arm($weight, $strategy)),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::union_arm(1, $strategy)),+
        ])
    };
}

/// Fails the current test case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            panic!($($fmt)+);
        }
    };
}

/// Fails the current test case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left == right, $($fmt)+);
    }};
}

/// Fails the current test case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `left != right`\n  both: `{:?}`",
            left
        );
    }};
}
