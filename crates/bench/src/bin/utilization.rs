//! §2.1.3 — network utilization of blast transfers.
//!
//! "Note that the utilization of the network, even when using a blast
//! protocol, is still significantly below 100 percent … for the 64
//! kilobyte transfer shown in Table 2, the network utilization is only
//! 38 percent."  The processors, not the wire, are the bottleneck —
//! the observation that frames the paper's copy-cost analysis.

use blast_analytic::{CostModel, ErrorFree};
use blast_bench::{run_transfer, Proto};
use blast_core::config::RetxStrategy;
use blast_sim::SimConfig;
use blast_stats::Table;

fn main() {
    let ef = ErrorFree::new(CostModel::standalone_sun());
    let mut t = Table::new(&["size", "u model", "u sim", "u dbl model", "u dbl sim"])
        .with_title("Network utilization of blast transfers (single vs double buffered)");

    for kb in [1usize, 4, 16, 64, 256] {
        let n = kb as u64;
        let bytes = kb * 1024;
        let single = run_transfer(
            Proto::Blast(RetxStrategy::GoBackN),
            bytes,
            SimConfig::standalone(),
            None,
        );
        let double = run_transfer(
            Proto::BlastDouble,
            bytes,
            SimConfig::double_buffered(),
            None,
        );
        t.row(&[
            &format!("{kb} KB"),
            &format!("{:.1} %", ef.utilization(n) * 100.0),
            &format!("{:.1} %", single.report.utilization() * 100.0),
            &format!("{:.1} %", ef.utilization_double_buffered(n) * 100.0),
            &format!("{:.1} %", double.report.utilization() * 100.0),
        ]);
    }
    println!("{}", t.render());
    println!(
        "asymptote (single-buffered): T/(C+T) = {:.1} % — the paper's \"only 38 percent\".",
        0.82 / 2.17 * 100.0
    );
    println!(
        "\"memory and bus bandwidth are the critical factors\" (§2.1.3): a faster\n\
         copy path, not a faster network, is what would raise utilization."
    );

    // Demonstrate exactly that: halve the copy costs and re-measure.
    let fast = CostModel {
        c_data: 0.675,
        c_ack: 0.085,
        ..CostModel::standalone_sun()
    };
    let ef_fast = ErrorFree::new(fast);
    println!();
    println!(
        "with copy costs halved (a 2x faster block move): u(64 KB) = {:.1} % vs {:.1} %",
        ef_fast.utilization(64) * 100.0,
        ef.utilization(64) * 100.0
    );
}
