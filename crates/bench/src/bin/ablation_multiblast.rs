//! Ablation A2 — multi-blast chunking for very large transfers
//! (§3.1.3: "for such very large sizes, we suggest the use of multiple
//! blasts").
//!
//! A 1 MB transfer (1024 packets — the "remote file system dump" scale
//! the paper mentions) with chunk sizes from 32 packets up to one
//! single mega-blast, across error rates.  Chunking costs extra acks
//! when the network is clean but caps the damage of a loss when it is
//! not: the crossover is the experiment's point.

use blast_bench::payload;
use blast_core::blast::BlastReceiver;
use blast_core::config::ProtocolConfig;
use blast_core::engine::Engine;
use blast_core::multiblast::MultiBlastSender;
use blast_sim::{LossModel, SimConfig, Simulator};
use blast_stats::{OnlineStats, Table};

fn measure(chunk: u32, p_n: f64, trials: u64) -> (f64, f64) {
    let data = payload(1024 * 1024);
    let mut elapsed = OnlineStats::new();
    for t in 0..trials {
        let seed = blast_stats::experiment::splitmix64(0x3AB ^ t ^ u64::from(chunk) << 32);
        let sim_cfg = SimConfig::vkernel().with_loss(LossModel::iid(p_n), seed);
        let mut sim = Simulator::new(sim_cfg);
        let a = sim.add_host("sender");
        let b = sim.add_host("receiver");
        let mut cfg = ProtocolConfig::default().with_multiblast_chunk(chunk);
        cfg.max_retries = 1_000_000;
        // Timeout sized to one chunk's blast time.
        let chunk_ms = chunk as f64 * 2.65 + 3.22;
        cfg.timeout = std::time::Duration::from_nanos((chunk_ms * 1e6) as u64).into();
        let sender: Box<dyn Engine> = Box::new(MultiBlastSender::new(1, data.clone(), &cfg));
        sim.attach(a, b, sender);
        sim.attach(b, a, Box::new(BlastReceiver::new(1, data.len(), &cfg)));
        let report = sim.run();
        if let Some(c) = report.completions.get(&(a, 1)) {
            if c.info.is_success() {
                elapsed.push(c.at.as_ms());
            }
        }
    }
    (elapsed.mean(), elapsed.population_stddev())
}

fn main() {
    let trials = 40;
    println!("Ablation: multi-blast chunk size, 1 MB transfer (1024 packets), go-back-n\n");
    let chunks = [32u32, 64, 128, 256, 1024];
    for p_n in [0.0, 1e-4, 1e-3, 1e-2] {
        let mut t = Table::new(&["chunk (pkts)", "mean (ms)", "sigma (ms)", "vs best"])
            .with_title(&format!("p_n = {p_n:.0e}"));
        let results: Vec<(u32, f64, f64)> = chunks
            .iter()
            .map(|&c| {
                let trials = if p_n == 0.0 { 1 } else { trials };
                let (m, s) = measure(c, p_n, trials);
                (c, m, s)
            })
            .collect();
        let best = results.iter().map(|r| r.1).fold(f64::INFINITY, f64::min);
        for (c, m, s) in results {
            t.row(&[
                &(if c == 1024 {
                    "1024 (single)".to_string()
                } else {
                    c.to_string()
                }),
                &format!("{m:.1}"),
                &format!("{s:.1}"),
                &format!("{:+.1} %", (m / best - 1.0) * 100.0),
            ]);
        }
        println!("{}", t.render());
    }
    println!(
        "expected shape: error-free favours the single blast (fewest acks); as p_n\n\
         grows, moderate chunks win because each loss only re-solicits one chunk\n\
         and the per-chunk timeout is small."
    );
}
