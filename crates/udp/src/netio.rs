//! Pluggable syscall backends: batched submission/completion I/O.
//!
//! The measured bottleneck behind ROADMAP's single-session goodput item
//! was never the protocol — it was the syscall bill.  A paced 32-packet
//! burst cost 32 `sendto(2)` crossings, every receive cost a
//! `setsockopt(SO_RCVTIMEO)` *plus* a `recvfrom(2)`, and sub-millisecond
//! pace gaps could not be waited at all (socket timeouts round up to a
//! scheduler tick), so the driver yield-spun through them.  This module
//! replaces all of that with a [`NetIo`] backend the channel, driver and
//! node reactor share:
//!
//! * **Batched** (Linux): a burst is staged into pre-allocated slots and
//!   submitted with one `sendmmsg(2)`; a drain pulls up to a whole batch
//!   of datagrams with one `recvmmsg(2)`; and waits are event-driven —
//!   an `epoll(7)` instance watching the socket and a `timerfd(2)` armed
//!   at the precise deadline, so a 500 µs pace gap blocks for 500 µs,
//!   not a scheduler tick and not a spin.  The FFI is audited extern-C
//!   following the [`crate::sockopt`] precedent (crate `deny(unsafe_code)`,
//!   module-level allow, hardcoded asm-generic constants, so only the
//!   mainstream Linux targets take this path).
//! * **Segmentation offload** (Linux, runtime-probed): batching
//!   amortised the *syscall*, but every datagram still traversed the
//!   kernel stack individually.  At socket setup the batched backend
//!   probes `UDP_SEGMENT`/`UDP_GRO`; where supported, the staging
//!   layer coalesces same-destination equal-size datagrams from one
//!   flush into ~64 KB super-datagrams carrying a `UDP_SEGMENT`
//!   control message (segment size = the framed packet length, tail
//!   runt allowed — see [`crate::gso`]), and the receive path drains
//!   GRO-coalesced buffers and splits them back into per-datagram
//!   views without copying or allocating.  Hosts whose kernels refuse
//!   the probe degrade silently to the plain batched path.
//! * **Portable** (everything else, or forced): one syscall per
//!   datagram and coarse `SO_RCVTIMEO` waits as the last resort —
//!   exactly the pre-batching behaviour, kept as a living fallback.
//!
//! Set `BLAST_NETIO=portable` to force the fallback on Linux, or
//! `BLAST_NETIO=batched` to keep the batched backend but leave
//! segmentation offload off (CI runs the perf harness under several
//! modes and prints the deltas).  [`set_offload_enabled`] is the same
//! offload switch for callers that cannot set an environment variable
//! (the perf harness's GSO-on/off axis).

use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::time::Duration;
#[cfg(netio_batched)]
use std::time::Instant;

use blast_core::PacingConfig;
use blast_telemetry::{EventKind, Recorder};

/// Datagrams a single `sendmmsg`/`recvmmsg` submission can carry.  A
/// full AIMD-grown blast burst (256 packets) flushes in a handful of
/// kernel crossings instead of 256.
pub const BATCH: usize = 32;

/// Per-slot buffer capacity: the largest channel datagram plus the FCS
/// trailer, with headroom.
const SLOT_CAP: usize = crate::channel::MAX_DATAGRAM + 8;

/// `ENOBUFS`: no stable `io::ErrorKind`, matched by raw value (same as
/// the node's historical send-drop handling).
const ENOBUFS: i32 = 105;

/// Counters describing how the backend spent its syscalls.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct NetIoStats {
    /// Datagrams handed to the kernel.
    pub datagrams_sent: u64,
    /// `sendmmsg` submissions (or single sends in portable mode) —
    /// `datagrams_sent / send_batches` is the amortisation factor.
    pub send_batches: u64,
    /// Datagrams the kernel dropped at submission (full buffer, peer
    /// unreachable) — loss the protocols recover from.
    pub send_drops: u64,
    /// Datagrams pulled off the socket.
    pub datagrams_received: u64,
    /// `recvmmsg` completions (or single receives in portable mode).
    pub recv_batches: u64,
    /// Event-driven waits that ended because the socket went readable.
    pub wakeups: u64,
    /// Waits that expired at their deadline instead.
    pub timeouts: u64,
    /// GSO super-datagrams submitted (send slots carrying ≥ 2
    /// segments under one `UDP_SEGMENT` control message).
    pub gso_super_datagrams: u64,
    /// Datagrams that travelled inside those super-datagrams —
    /// `gso_segments / gso_super_datagrams` is the send coalescing
    /// factor.
    pub gso_segments: u64,
    /// GRO-coalesced reads drained (receives that carried ≥ 2
    /// datagrams in one buffer).
    pub gro_super_datagrams: u64,
    /// Datagrams split back out of those reads.
    pub gro_segments: u64,
}

/// Which backend a [`NetIo`] is running.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// `sendmmsg`/`recvmmsg` with epoll/timerfd waits.
    Batched,
    /// One syscall per datagram, `SO_RCVTIMEO` waits.
    Portable,
}

impl BackendKind {
    /// Stable lowercase name for logs and perf JSON.
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Batched => "batched",
            BackendKind::Portable => "portable",
        }
    }
}

/// Outcome of the `UDP_SEGMENT`/`UDP_GRO` probe for one socket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OffloadState {
    /// Portable backend: segmentation offload does not apply.
    Portable,
    /// Offload was switched off before the probe ran
    /// (`BLAST_NETIO=batched` or [`set_offload_enabled`]`(false)`).
    Disabled,
    /// The probe ran and the kernel refused both options.
    Unsupported,
    /// `UDP_SEGMENT` send coalescing only (pre-5.0 kernels).
    Gso,
    /// `UDP_GRO` receive coalescing only.
    Gro,
    /// Both offloads active.
    GsoGro,
}

impl OffloadState {
    /// Stable lowercase name for logs and perf JSON.
    pub fn name(self) -> &'static str {
        match self {
            OffloadState::Portable => "portable",
            OffloadState::Disabled => "disabled",
            OffloadState::Unsupported => "unsupported",
            OffloadState::Gso => "gso",
            OffloadState::Gro => "gro",
            OffloadState::GsoGro => "gso+gro",
        }
    }

    /// True when sends may coalesce under `UDP_SEGMENT`.
    pub fn gso(self) -> bool {
        matches!(self, OffloadState::Gso | OffloadState::GsoGro)
    }

    /// True when receives may arrive GRO-coalesced.
    pub fn gro(self) -> bool {
        matches!(self, OffloadState::Gro | OffloadState::GsoGro)
    }
}

/// A pluggable I/O backend for one UDP socket.
///
/// Two usage modes share the type:
///
/// * **connected** ([`NetIo::connected`]): the socket is connected;
///   callers use [`queue`](NetIo::queue)/[`flush`](NetIo::flush) and
///   the blocking [`recv`](NetIo::recv).
/// * **reactor** ([`NetIo::reactor`]): the socket is unconnected and
///   non-blocking; callers use [`queue_to`](NetIo::queue_to),
///   [`fill`](NetIo::fill)/[`pop_into`](NetIo::pop_into) and the
///   non-consuming [`wait`](NetIo::wait).
#[derive(Debug)]
pub struct NetIo {
    imp: Impl,
    /// Syscall accounting, exposed for node metrics and the perf JSON.
    pub stats: NetIoStats,
    /// Flight recorder: batch submissions, wait outcomes and kernel
    /// send-drops become trace events (session track 0).
    recorder: Option<Recorder>,
}

#[derive(Debug)]
enum Impl {
    // Boxed: the batched backend carries its fixed-size length/address
    // tables inline and would otherwise dwarf the portable variant.
    #[cfg(netio_batched)]
    Batched(Box<batched::BatchedIo>),
    Portable(PortableIo),
}

impl NetIo {
    /// Backend for a connected socket, auto-selected: batched where
    /// available (puts the socket into non-blocking mode), portable
    /// otherwise or when `BLAST_NETIO=portable` forces the fallback.
    /// Infallible: any batched-setup failure silently degrades to the
    /// portable backend, which needs no setup.
    pub fn connected(socket: &UdpSocket) -> NetIo {
        Self::select(socket, false)
    }

    /// Backend for an unconnected reactor socket (the `blast-node`
    /// event loop).  The socket is put into non-blocking mode either
    /// way — the reactor contract.
    pub fn reactor(socket: &UdpSocket) -> NetIo {
        let _ = socket.set_nonblocking(true);
        Self::select(socket, true)
    }

    fn select(socket: &UdpSocket, reactor: bool) -> NetIo {
        if !forced_portable() {
            if let Some(io) = Self::try_batched(socket) {
                return io;
            }
        }
        if !reactor {
            // A half-finished batched setup (epoll/timerfd creation can
            // fail at the fd limit) leaves the socket non-blocking,
            // which would turn the portable backend's SO_RCVTIMEO waits
            // into a busy-poll; restore blocking mode for the connected
            // fallback.  Reactor sockets stay non-blocking by contract.
            let _ = socket.set_nonblocking(false);
        }
        NetIo::portable(reactor)
    }

    #[cfg(netio_batched)]
    fn try_batched(socket: &UdpSocket) -> Option<NetIo> {
        Self::try_batched_with(socket, offload_requested())
    }

    #[cfg(netio_batched)]
    fn try_batched_with(socket: &UdpSocket, offload: bool) -> Option<NetIo> {
        let imp = batched::BatchedIo::new(socket, offload).ok()?;
        Some(NetIo {
            imp: Impl::Batched(Box::new(imp)),
            stats: NetIoStats::default(),
            recorder: None,
        })
    }

    #[cfg(not(netio_batched))]
    fn try_batched(_socket: &UdpSocket) -> Option<NetIo> {
        None
    }

    /// The portable backend, unconditionally.
    pub fn portable(reactor: bool) -> NetIo {
        NetIo {
            imp: Impl::Portable(PortableIo::new(reactor)),
            stats: NetIoStats::default(),
            recorder: None,
        }
    }

    /// Attach a flight recorder.  Afterwards every batch submission
    /// ([`EventKind::BatchSubmit`]: a = datagrams, b = syscalls), wait
    /// outcome ([`EventKind::WakeEvent`] / [`EventKind::WakeTimeout`]),
    /// kernel send-drop ([`EventKind::SendDrop`]) and offload
    /// coalescing delta ([`EventKind::GsoSubmit`] /
    /// [`EventKind::GroReceive`]) is traced on session track 0 of the
    /// recorder's shard.  Batched backends log their probe outcome
    /// once up front ([`EventKind::OffloadProbe`]: a = GSO supported,
    /// b = GRO supported).
    pub fn set_recorder(&mut self, recorder: Recorder) {
        if self.is_batched() {
            let state = self.offload();
            recorder.record(
                0,
                EventKind::OffloadProbe,
                u64::from(state.gso()),
                u64::from(state.gro()),
            );
        }
        self.recorder = Some(recorder);
    }

    /// Emit trace events for whatever the counters say happened since
    /// `before`.  Diffing the public stats keeps the two backends free
    /// of trace plumbing: one site per public entry point.
    fn trace_delta(&self, before: &NetIoStats) {
        let Some(rec) = &self.recorder else { return };
        let s = &self.stats;
        if s.datagrams_sent > before.datagrams_sent {
            rec.record(
                0,
                EventKind::BatchSubmit,
                s.datagrams_sent - before.datagrams_sent,
                s.send_batches - before.send_batches,
            );
        }
        if s.send_drops > before.send_drops {
            rec.record(0, EventKind::SendDrop, s.send_drops - before.send_drops, 0);
        }
        if s.wakeups > before.wakeups {
            rec.record(0, EventKind::WakeEvent, s.wakeups - before.wakeups, 0);
        }
        if s.timeouts > before.timeouts {
            rec.record(0, EventKind::WakeTimeout, s.timeouts - before.timeouts, 0);
        }
        if s.gso_segments > before.gso_segments {
            rec.record(
                0,
                EventKind::GsoSubmit,
                s.gso_segments - before.gso_segments,
                s.gso_super_datagrams - before.gso_super_datagrams,
            );
        }
        if s.gro_segments > before.gro_segments {
            rec.record(
                0,
                EventKind::GroReceive,
                s.gro_segments - before.gro_segments,
                s.gro_super_datagrams - before.gro_super_datagrams,
            );
        }
    }

    /// Which backend this instance runs.
    pub fn backend(&self) -> BackendKind {
        match &self.imp {
            #[cfg(netio_batched)]
            Impl::Batched(_) => BackendKind::Batched,
            Impl::Portable(_) => BackendKind::Portable,
        }
    }

    /// True when the batched backend is compiled in and selected.
    pub fn is_batched(&self) -> bool {
        self.backend() == BackendKind::Batched
    }

    /// The segmentation-offload probe outcome for this instance.
    pub fn offload(&self) -> OffloadState {
        match &self.imp {
            #[cfg(netio_batched)]
            Impl::Batched(b) => b.offload_state(),
            Impl::Portable(_) => OffloadState::Portable,
        }
    }

    /// Stage one datagram on a connected socket for a batched flush
    /// (portable mode sends it immediately).  A full batch flushes
    /// itself.
    pub fn queue(&mut self, socket: &UdpSocket, frame: &[u8]) -> io::Result<()> {
        self.queue_to(socket, frame, None)
    }

    /// Stage one datagram, optionally addressed (reactor mode).
    pub fn queue_to(
        &mut self,
        socket: &UdpSocket,
        frame: &[u8],
        to: Option<SocketAddr>,
    ) -> io::Result<()> {
        let before = self.stats;
        let result = match &mut self.imp {
            #[cfg(netio_batched)]
            Impl::Batched(b) => {
                if b.send_full() {
                    b.flush(socket, &mut self.stats)?;
                }
                b.stage(frame, to);
                Ok(())
            }
            Impl::Portable(p) => p.send_now(socket, frame, to, &mut self.stats),
        };
        self.trace_delta(&before);
        result
    }

    /// Put every staged datagram on the wire in as few syscalls as the
    /// backend can manage.  A no-op with nothing staged.
    pub fn flush(&mut self, socket: &UdpSocket) -> io::Result<()> {
        let before = self.stats;
        let result = match &mut self.imp {
            #[cfg(netio_batched)]
            Impl::Batched(b) => b.flush(socket, &mut self.stats),
            Impl::Portable(_) => Ok(()),
        };
        self.trace_delta(&before);
        result
    }

    /// Receive one datagram on a connected socket within `timeout`
    /// (`Ok(None)` on expiry).  Batched mode drains a whole `recvmmsg`
    /// batch per kernel crossing and pops from it on subsequent calls;
    /// waits block on epoll + timerfd at the exact deadline.  Portable
    /// mode is a classic `SO_RCVTIMEO` receive with the
    /// [`PacingConfig::MIN_WAIT`] floor.
    pub fn recv(
        &mut self,
        socket: &UdpSocket,
        buf: &mut [u8],
        timeout: Duration,
    ) -> io::Result<Option<usize>> {
        let before = self.stats;
        let result = match &mut self.imp {
            #[cfg(netio_batched)]
            Impl::Batched(b) => {
                let deadline = Instant::now() + timeout;
                loop {
                    if let Some((n, _)) = b.pop_into(buf) {
                        break Ok(Some(n));
                    }
                    if b.fill(socket, &mut self.stats)? > 0 {
                        continue;
                    }
                    let now = Instant::now();
                    if now >= deadline {
                        self.stats.timeouts += 1;
                        break Ok(None);
                    }
                    if !b.wait(deadline - now, &mut self.stats)? {
                        break Ok(None);
                    }
                }
            }
            Impl::Portable(p) => p.recv(socket, buf, timeout, &mut self.stats),
        };
        self.trace_delta(&before);
        result
    }

    /// Non-blocking reactor drain: pull up to a batch of datagrams off
    /// the socket into the backend's slots.  Returns how many arrived
    /// (0 when the socket is dry).  Call when [`pop_into`] runs out.
    ///
    /// [`pop_into`]: NetIo::pop_into
    pub fn fill(&mut self, socket: &UdpSocket) -> io::Result<usize> {
        match &mut self.imp {
            #[cfg(netio_batched)]
            Impl::Batched(b) => b.fill(socket, &mut self.stats),
            Impl::Portable(p) => p.fill(socket, &mut self.stats),
        }
    }

    /// Take a copy of the counters (for delta accounting around a
    /// reactor tick).
    pub fn stats_snapshot(&self) -> NetIoStats {
        self.stats
    }

    /// Pop one previously-[`fill`](NetIo::fill)ed datagram into `buf`,
    /// with the sender's address when the socket is unconnected.
    pub fn pop_into(&mut self, buf: &mut [u8]) -> Option<(usize, Option<SocketAddr>)> {
        match &mut self.imp {
            #[cfg(netio_batched)]
            Impl::Batched(b) => b.pop_into(buf),
            Impl::Portable(p) => p.pop_into(buf),
        }
    }

    /// Block until the socket is readable or `timeout` elapses; `true`
    /// means readable.  Batched mode waits on epoll + timerfd with
    /// sub-millisecond fidelity.  Portable reactor mode can only sleep
    /// (clamped to a millisecond) and conservatively reports a timeout;
    /// the caller's next [`fill`](NetIo::fill) discovers any traffic.
    pub fn wait(&mut self, timeout: Duration) -> io::Result<bool> {
        let before = self.stats;
        let result = match &mut self.imp {
            #[cfg(netio_batched)]
            Impl::Batched(b) => b.wait(timeout, &mut self.stats),
            Impl::Portable(p) => p.wait(timeout, &mut self.stats),
        };
        self.trace_delta(&before);
        result
    }
}

/// What did the operator force through `BLAST_NETIO`?
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ForcedMode {
    /// No override: batched where available, offload where probed.
    Auto,
    /// `portable` / `fallback`: the single-syscall backend.
    Portable,
    /// `batched`: the batched backend with segmentation offload off.
    BatchedPlain,
}

/// The `BLAST_NETIO` override, read once per process (channels are
/// built per session; an env lookup per construction would be a
/// per-session allocation for a process-constant answer).
fn forced_mode() -> ForcedMode {
    static FORCED: std::sync::OnceLock<ForcedMode> = std::sync::OnceLock::new();
    *FORCED.get_or_init(|| {
        match std::env::var("BLAST_NETIO")
            .map(|v| v.to_ascii_lowercase())
            .as_deref()
        {
            Ok("portable") | Ok("fallback") => ForcedMode::Portable,
            Ok("batched") => ForcedMode::BatchedPlain,
            _ => ForcedMode::Auto,
        }
    })
}

fn forced_portable() -> bool {
    forced_mode() == ForcedMode::Portable
}

/// Process-wide segmentation-offload switch, default on.  See
/// [`set_offload_enabled`].
static OFFLOAD_ENABLED: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(true);

/// Allow or forbid `UDP_SEGMENT`/`UDP_GRO` offload for backends built
/// *after* the call (existing instances keep their probed state).
/// This is the programmatic twin of `BLAST_NETIO=batched`, used by the
/// perf harness to run a GSO-on/off axis inside one process; normal
/// callers never need it.
pub fn set_offload_enabled(enabled: bool) {
    OFFLOAD_ENABLED.store(enabled, std::sync::atomic::Ordering::Relaxed);
}

/// May a newly built batched backend probe for offload support?
fn offload_requested() -> bool {
    forced_mode() != ForcedMode::BatchedPlain
        && OFFLOAD_ENABLED.load(std::sync::atomic::Ordering::Relaxed)
}

/// Would sending fail in a way the blast protocols treat as loss, not
/// as channel failure?  (Peer's ICMP unreachable, full send buffer.)
fn is_send_drop(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::ConnectionRefused | io::ErrorKind::WouldBlock | io::ErrorKind::OutOfMemory
    ) || e.raw_os_error() == Some(ENOBUFS)
}

/// The single-syscall fallback backend: current everywhere, fast
/// nowhere, correct always.
#[derive(Debug)]
struct PortableIo {
    /// One-datagram receive slot for reactor mode.
    slot: Vec<u8>,
    slot_len: usize,
    slot_addr: Option<SocketAddr>,
    slot_full: bool,
    reactor: bool,
}

impl PortableIo {
    fn new(reactor: bool) -> PortableIo {
        PortableIo {
            slot: if reactor {
                vec![0u8; SLOT_CAP]
            } else {
                Vec::new()
            },
            slot_len: 0,
            slot_addr: None,
            slot_full: false,
            reactor,
        }
    }

    fn send_now(
        &mut self,
        socket: &UdpSocket,
        frame: &[u8],
        to: Option<SocketAddr>,
        stats: &mut NetIoStats,
    ) -> io::Result<()> {
        let result = match to {
            Some(addr) => socket.send_to(frame, addr).map(|_| ()),
            None => socket.send(frame).map(|_| ()),
        };
        match result {
            Ok(()) => {
                stats.datagrams_sent += 1;
                stats.send_batches += 1;
                Ok(())
            }
            Err(e) if is_send_drop(&e) => {
                stats.send_drops += 1;
                Ok(())
            }
            Err(e) => Err(e),
        }
    }

    fn recv(
        &mut self,
        socket: &UdpSocket,
        buf: &mut [u8],
        timeout: Duration,
        stats: &mut NetIoStats,
    ) -> io::Result<Option<usize>> {
        // `SO_RCVTIMEO` as the last resort: `Some(ZERO)` is an error to
        // `std`, and the floor keeps paced senders' inter-burst gaps
        // from being rounded up into scheduler noise more than the
        // kernel already insists on.
        let t = timeout.max(PacingConfig::MIN_WAIT);
        socket.set_read_timeout(Some(t))?;
        match socket.recv(buf) {
            Ok(n) => {
                stats.datagrams_received += 1;
                stats.recv_batches += 1;
                stats.wakeups += 1;
                Ok(Some(n))
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                stats.timeouts += 1;
                Ok(None)
            }
            // A queued ICMP unreachable from our own earlier send: a
            // timeout slice with nothing delivered, not a failure.
            Err(e) if e.kind() == io::ErrorKind::ConnectionRefused => Ok(None),
            Err(e) => Err(e),
        }
    }

    fn fill(&mut self, socket: &UdpSocket, stats: &mut NetIoStats) -> io::Result<usize> {
        debug_assert!(self.reactor, "fill() is a reactor-mode call");
        if self.slot_full {
            return Ok(0);
        }
        loop {
            match socket.recv_from(&mut self.slot) {
                Ok((n, peer)) => {
                    self.slot_len = n;
                    self.slot_addr = Some(peer);
                    self.slot_full = true;
                    stats.datagrams_received += 1;
                    stats.recv_batches += 1;
                    return Ok(1);
                }
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    return Ok(0)
                }
                // Queued ICMP unreachable for a departed peer: consume
                // it and keep draining.
                Err(e) if e.kind() == io::ErrorKind::ConnectionRefused => continue,
                Err(e) => return Err(e),
            }
        }
    }

    fn pop_into(&mut self, buf: &mut [u8]) -> Option<(usize, Option<SocketAddr>)> {
        if !self.slot_full {
            return None;
        }
        self.slot_full = false;
        let n = self.slot_len.min(buf.len());
        buf[..n].copy_from_slice(&self.slot[..n]);
        Some((n, self.slot_addr))
    }

    fn wait(&mut self, timeout: Duration, stats: &mut NetIoStats) -> io::Result<bool> {
        // No selector in `std`: sleep, bounded so arriving traffic is
        // discovered within a millisecond (the pre-backend node park).
        std::thread::sleep(timeout.clamp(PacingConfig::MIN_WAIT, Duration::from_millis(1)));
        stats.timeouts += 1;
        Ok(false)
    }
}

#[cfg(netio_batched)]
#[allow(unsafe_code)]
mod batched {
    //! The Linux batched backend: audited extern-C FFI over
    //! `sendmmsg`/`recvmmsg`/`epoll`/`timerfd`, mirroring the
    //! `sockopt` precedent.  Every pointer handed to the kernel points
    //! into storage owned by this module for the duration of the call
    //! (slot buffers, stack-local header arrays), and nothing returned
    //! by the kernel is interpreted beyond the documented out-fields.

    use std::io;
    use std::net::{Ipv4Addr, Ipv6Addr, SocketAddr, UdpSocket};
    use std::os::fd::AsRawFd;
    use std::time::Duration;

    use super::{is_send_drop, NetIoStats, OffloadState, BATCH, SLOT_CAP};
    use crate::gso;

    // Linked via std's libc dependency; declared here because the
    // workspace builds offline with no `libc` crate available.
    extern "C" {
        fn sendmmsg(fd: i32, msgvec: *mut MMsgHdr, vlen: u32, flags: i32) -> i32;
        fn recvmmsg(
            fd: i32,
            msgvec: *mut MMsgHdr,
            vlen: u32,
            flags: i32,
            timeout: *mut TimeSpec,
        ) -> i32;
        fn setsockopt(
            fd: i32,
            level: i32,
            optname: i32,
            optval: *const core::ffi::c_void,
            optlen: u32,
        ) -> i32;
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn timerfd_create(clockid: i32, flags: i32) -> i32;
        fn timerfd_settime(
            fd: i32,
            flags: i32,
            new_value: *const ITimerSpec,
            old_value: *mut ITimerSpec,
        ) -> i32;
        fn read(fd: i32, buf: *mut core::ffi::c_void, count: usize) -> isize;
        fn close(fd: i32) -> i32;
    }

    const EPOLL_CLOEXEC: i32 = 0x80000;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLLIN: u32 = 0x001;
    const CLOCK_MONOTONIC: i32 = 1;
    const TFD_NONBLOCK: i32 = 0o4000;
    const TFD_CLOEXEC: i32 = 0o2000000;
    const AF_INET: u16 = 2;
    const AF_INET6: u16 = 10;
    /// `sockaddr_storage` size: holds any address family.
    const SS_SIZE: usize = 128;
    const SOL_UDP: i32 = 17;
    const UDP_SEGMENT: i32 = 103;
    const UDP_GRO: i32 = 104;
    /// `cmsghdr` bytes on 64-bit Linux (`CMSG_ALIGN(sizeof(cmsghdr))`).
    const CMSG_HDR: usize = 16;
    /// Per-slot control-message capacity: one int-bearing cmsg,
    /// `CMSG_SPACE(sizeof(int))`.
    const CTRL_CAP: usize = 24;
    /// GRO read slots: fewer, larger buffers, so one coalesced read
    /// can carry up to ~64 KB while the slab stays the same size as
    /// the non-GRO ring (8 × 64 KB ≈ 32 × 16 KB).
    const GRO_BATCH: usize = 8;
    /// Capacity of one GRO read slot: the largest buffer the kernel
    /// will coalesce into (the UDP payload ceiling, rounded up).
    const GRO_SLOT_CAP: usize = 65_536;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct IoVec {
        base: *mut core::ffi::c_void,
        len: usize,
    }

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct MsgHdr {
        msg_name: *mut core::ffi::c_void,
        msg_namelen: u32,
        msg_iov: *mut IoVec,
        msg_iovlen: usize,
        msg_control: *mut core::ffi::c_void,
        msg_controllen: usize,
        msg_flags: i32,
    }

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct MMsgHdr {
        hdr: MsgHdr,
        len: u32,
    }

    // `epoll_event` is packed on x86-64 (a kernel ABI quirk) and
    // naturally aligned everywhere else.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct TimeSpec {
        sec: i64,
        nsec: i64,
    }

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct ITimerSpec {
        interval: TimeSpec,
        value: TimeSpec,
    }

    const ZERO_IOV: IoVec = IoVec {
        base: std::ptr::null_mut(),
        len: 0,
    };

    const ZERO_MSG: MMsgHdr = MMsgHdr {
        hdr: MsgHdr {
            msg_name: std::ptr::null_mut(),
            msg_namelen: 0,
            msg_iov: std::ptr::null_mut(),
            msg_iovlen: 0,
            msg_control: std::ptr::null_mut(),
            msg_controllen: 0,
            msg_flags: 0,
        },
        len: 0,
    };

    /// Owned raw descriptor, closed on drop.
    #[derive(Debug)]
    struct Fd(i32);

    impl Drop for Fd {
        fn drop(&mut self) {
            // SAFETY: the descriptor was created by this module and is
            // closed exactly once.
            unsafe {
                close(self.0);
            }
        }
    }

    /// Staged outbound super-datagrams: one contiguous arena
    /// (`BATCH × SLOT_CAP` bytes) carved into up to `BATCH`
    /// variable-length slots, plus pre-allocated address and
    /// control-message slabs, so building a backend costs a fixed
    /// handful of allocations — channels are constructed per session,
    /// and construction cost shows up directly in the perf harness's
    /// allocs-per-datagram figure.  With offload active a slot is a
    /// [`gso::Run`] of same-destination equal-size datagrams packed
    /// back to back (the kernel re-segments them at `seg_sizes`);
    /// without it every slot holds exactly one datagram, which is the
    /// pre-offload layout.  Pointer-free, so the backend stays `Send`;
    /// the kernel-facing header arrays are rebuilt on the stack for
    /// each syscall.
    #[derive(Debug)]
    struct SendRing {
        data: Vec<u8>,
        ctrl: Vec<u8>,
        addrs: Vec<u8>,
        offs: [usize; BATCH],
        lens: [usize; BATCH],
        seg_sizes: [usize; BATCH],
        seg_counts: [u32; BATCH],
        addr_lens: [u32; BATCH],
        /// Used slots; `run` mirrors the last one while it may still
        /// accept segments.
        slots: usize,
        /// Arena bytes consumed by the staged slots.
        used: usize,
        run: gso::Run,
    }

    impl SendRing {
        fn new() -> SendRing {
            SendRing {
                data: vec![0u8; BATCH * SLOT_CAP],
                ctrl: vec![0u8; BATCH * CTRL_CAP],
                addrs: vec![0u8; BATCH * SS_SIZE],
                offs: [0; BATCH],
                lens: [0; BATCH],
                seg_sizes: [0; BATCH],
                seg_counts: [0; BATCH],
                addr_lens: [0; BATCH],
                slots: 0,
                used: 0,
                run: closed_run(),
            }
        }

        fn addr(&self, i: usize) -> &[u8] {
            &self.addrs[i * SS_SIZE..(i + 1) * SS_SIZE]
        }

        fn addr_mut(&mut self, i: usize) -> &mut [u8] {
            &mut self.addrs[i * SS_SIZE..(i + 1) * SS_SIZE]
        }
    }

    /// A run that accepts nothing (the ring's initial state).
    fn closed_run() -> gso::Run {
        let mut run = gso::Run::start(0);
        run.close();
        run
    }

    /// Write the `UDP_SEGMENT` control message for one super-datagram
    /// into its control slot.  The kernel insists on exactly
    /// `CMSG_LEN(sizeof(__u16))`.
    fn write_segment_cmsg(ctrl: &mut [u8], seg_size: usize) {
        let cmsg_len: usize = CMSG_HDR + 2;
        ctrl[0..8].copy_from_slice(&cmsg_len.to_ne_bytes());
        ctrl[8..12].copy_from_slice(&SOL_UDP.to_ne_bytes());
        ctrl[12..16].copy_from_slice(&UDP_SEGMENT.to_ne_bytes());
        ctrl[16..18].copy_from_slice(&(seg_size as u16).to_ne_bytes());
        ctrl[18..CTRL_CAP].fill(0);
    }

    /// Read the `UDP_GRO` segment size out of a receive control
    /// buffer; 0 when the read was not coalesced.  Single-cmsg parse:
    /// `UDP_GRO` is the only option enabled on the socket, so the
    /// first header is the only candidate.
    fn parse_gro_cmsg(ctrl: &[u8], controllen: usize) -> usize {
        if controllen < CMSG_HDR + 4 || controllen > ctrl.len() {
            return 0;
        }
        let mut word = [0u8; 8];
        word.copy_from_slice(&ctrl[0..8]);
        let cmsg_len = usize::from_ne_bytes(word);
        let mut half = [0u8; 4];
        half.copy_from_slice(&ctrl[8..12]);
        let level = i32::from_ne_bytes(half);
        half.copy_from_slice(&ctrl[12..16]);
        let ty = i32::from_ne_bytes(half);
        if level != SOL_UDP || ty != UDP_GRO || cmsg_len < CMSG_HDR + 4 {
            return 0;
        }
        half.copy_from_slice(&ctrl[16..20]);
        i32::from_ne_bytes(half).max(0) as usize
    }

    /// Probe `UDP_SEGMENT` (set to 0 — no per-socket default, but the
    /// option must exist) and `UDP_GRO` (enabled and left on: plain
    /// datagrams still arrive normally).  A kernel without the options
    /// answers `ENOPROTOOPT` and the backend degrades silently.
    fn probe_offload(fd: i32) -> (bool, bool) {
        let zero: i32 = 0;
        let one: i32 = 1;
        // SAFETY: plain setsockopt calls with stack-local ints of the
        // stated length; results are checked.
        let gso =
            unsafe { setsockopt(fd, SOL_UDP, UDP_SEGMENT, (&zero as *const i32).cast(), 4) } == 0;
        let gro = unsafe { setsockopt(fd, SOL_UDP, UDP_GRO, (&one as *const i32).cast(), 4) } == 0;
        (gso, gro)
    }

    /// Did the kernel reject the submission in a way specific to GSO
    /// super-datagrams (`EINVAL`: segment exceeds the route MTU;
    /// `EIO`: the device path refused the offload)?
    fn is_gso_rejection(e: &io::Error) -> bool {
        matches!(e.raw_os_error(), Some(22) | Some(5))
    }

    /// Filled inbound slots.  With GRO active the ring trades slot
    /// count for slot size ([`GRO_BATCH`] × [`GRO_SLOT_CAP`]) so one
    /// read can carry a whole coalesced super-datagram; `seg_sizes`
    /// records each slot's `UDP_GRO` segment size (0 = plain) for
    /// [`BatchedIo::pop_into`] to split against.
    #[derive(Debug)]
    struct RecvRing {
        data: Vec<u8>,
        ctrl: Vec<u8>,
        addrs: Vec<u8>,
        lens: [usize; BATCH],
        seg_sizes: [usize; BATCH],
        addr_lens: [u32; BATCH],
        slot_cap: usize,
        slot_count: usize,
    }

    impl RecvRing {
        fn new(gro: bool) -> RecvRing {
            let (slot_count, slot_cap) = if gro {
                (GRO_BATCH, GRO_SLOT_CAP)
            } else {
                (BATCH, SLOT_CAP)
            };
            RecvRing {
                data: vec![0u8; slot_count * slot_cap],
                ctrl: vec![0u8; slot_count * CTRL_CAP],
                addrs: vec![0u8; slot_count * SS_SIZE],
                lens: [0; BATCH],
                seg_sizes: [0; BATCH],
                addr_lens: [0; BATCH],
                slot_cap,
                slot_count,
            }
        }

        fn buf(&self, i: usize) -> &[u8] {
            &self.data[i * self.slot_cap..(i + 1) * self.slot_cap]
        }

        fn addr(&self, i: usize) -> &[u8] {
            &self.addrs[i * SS_SIZE..(i + 1) * SS_SIZE]
        }

        fn ctrl(&self, i: usize) -> &[u8] {
            &self.ctrl[i * CTRL_CAP..(i + 1) * CTRL_CAP]
        }
    }

    /// Encode a socket address as a kernel `sockaddr`, returning its
    /// length.
    fn encode_addr(addr: &SocketAddr, out: &mut [u8]) -> u32 {
        match addr {
            SocketAddr::V4(a) => {
                out[0..2].copy_from_slice(&AF_INET.to_ne_bytes());
                out[2..4].copy_from_slice(&a.port().to_be_bytes());
                out[4..8].copy_from_slice(&a.ip().octets());
                out[8..16].fill(0);
                16
            }
            SocketAddr::V6(a) => {
                out[0..2].copy_from_slice(&AF_INET6.to_ne_bytes());
                out[2..4].copy_from_slice(&a.port().to_be_bytes());
                out[4..8].copy_from_slice(&a.flowinfo().to_be_bytes());
                out[8..24].copy_from_slice(&a.ip().octets());
                out[24..28].copy_from_slice(&a.scope_id().to_ne_bytes());
                28
            }
        }
    }

    /// Decode a kernel `sockaddr` back into a socket address.
    fn decode_addr(buf: &[u8], len: u32) -> Option<SocketAddr> {
        if len < 8 {
            return None;
        }
        let family = u16::from_ne_bytes([buf[0], buf[1]]);
        let port = u16::from_be_bytes([buf[2], buf[3]]);
        match family {
            AF_INET => {
                let ip = Ipv4Addr::new(buf[4], buf[5], buf[6], buf[7]);
                Some(SocketAddr::from((ip, port)))
            }
            AF_INET6 if len >= 28 => {
                let mut octets = [0u8; 16];
                octets.copy_from_slice(&buf[8..24]);
                let flowinfo = u32::from_be_bytes([buf[4], buf[5], buf[6], buf[7]]);
                let scope = u32::from_ne_bytes([buf[24], buf[25], buf[26], buf[27]]);
                Some(SocketAddr::V6(std::net::SocketAddrV6::new(
                    Ipv6Addr::from(octets),
                    port,
                    flowinfo,
                    scope,
                )))
            }
            _ => None,
        }
    }

    fn timespec(d: Duration) -> TimeSpec {
        TimeSpec {
            sec: d.as_secs() as i64,
            nsec: i64::from(d.subsec_nanos()),
        }
    }

    /// The batched backend for one socket.
    #[derive(Debug)]
    pub(super) struct BatchedIo {
        epoll: Fd,
        timer: Fd,
        sock_fd: i32,
        send: SendRing,
        recv: RecvRing,
        recv_head: usize,
        recv_len: usize,
        /// Byte offset of the next segment inside the slot at
        /// `recv_head` (a GRO read splits across several pops).
        recv_seg_off: usize,
        /// Send coalescing active.  Starts as the probe outcome; a
        /// route-level rejection (`EINVAL`/`EIO` on a super-datagram)
        /// clears it at runtime.
        gso_send: bool,
        /// `UDP_GRO` accepted on the socket: reads may be coalesced.
        gro_recv: bool,
        state: OffloadState,
    }

    impl BatchedIo {
        pub(super) fn new(socket: &UdpSocket, offload: bool) -> io::Result<BatchedIo> {
            socket.set_nonblocking(true)?;
            let sock_fd = socket.as_raw_fd();
            let (gso_send, gro_recv) = if offload {
                probe_offload(sock_fd)
            } else {
                (false, false)
            };
            let state = match (offload, gso_send, gro_recv) {
                (false, ..) => OffloadState::Disabled,
                (true, true, true) => OffloadState::GsoGro,
                (true, true, false) => OffloadState::Gso,
                (true, false, true) => OffloadState::Gro,
                (true, false, false) => OffloadState::Unsupported,
            };
            // SAFETY: plain descriptor-creating syscalls; results are
            // checked and owned by `Fd` guards.
            let ep = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if ep < 0 {
                return Err(io::Error::last_os_error());
            }
            let epoll = Fd(ep);
            let tf = unsafe { timerfd_create(CLOCK_MONOTONIC, TFD_NONBLOCK | TFD_CLOEXEC) };
            if tf < 0 {
                return Err(io::Error::last_os_error());
            }
            let timer = Fd(tf);
            for (fd, tag) in [(sock_fd, 0u64), (timer.0, 1u64)] {
                let mut ev = EpollEvent {
                    events: EPOLLIN,
                    data: tag,
                };
                // SAFETY: `epoll.0`, `fd` are live descriptors; `ev` is
                // a stack-local the kernel only reads.
                let rc = unsafe { epoll_ctl(epoll.0, EPOLL_CTL_ADD, fd, &mut ev) };
                if rc != 0 {
                    return Err(io::Error::last_os_error());
                }
            }
            Ok(BatchedIo {
                epoll,
                timer,
                sock_fd,
                send: SendRing::new(),
                recv: RecvRing::new(gro_recv),
                recv_head: 0,
                recv_len: 0,
                recv_seg_off: 0,
                gso_send,
                gro_recv,
                state,
            })
        }

        pub(super) fn offload_state(&self) -> OffloadState {
            self.state
        }

        pub(super) fn send_full(&self) -> bool {
            // Full when no slot is free or the arena cannot take a
            // worst-case datagram as a fresh slot.
            self.send.slots == BATCH || self.send.data.len() - self.send.used < SLOT_CAP
        }

        /// Copy one datagram into the staging arena: appended to the
        /// open [`gso::Run`] when coalescing applies (same
        /// destination, equal size, within the kernel ceilings),
        /// otherwise opening a new slot.
        pub(super) fn stage(&mut self, frame: &[u8], to: Option<SocketAddr>) {
            debug_assert!(!self.send_full(), "flush before staging into a full batch");
            debug_assert!(frame.len() <= SLOT_CAP, "datagram exceeds slot capacity");
            let n = frame.len().min(SLOT_CAP);
            let mut addr_buf = [0u8; SS_SIZE];
            let addr_len = match to {
                Some(addr) => encode_addr(&addr, &mut addr_buf),
                None => 0,
            };
            let s = &mut self.send;
            if self.gso_send && s.slots > 0 {
                let i = s.slots - 1;
                let same_dest = s.addr_lens[i] == addr_len
                    && s.addr(i)[..addr_len as usize] == addr_buf[..addr_len as usize];
                let budget = s.data.len() - s.offs[i];
                if same_dest && s.run.try_append(n, budget) {
                    let at = s.offs[i] + s.lens[i];
                    s.data[at..at + n].copy_from_slice(&frame[..n]);
                    s.lens[i] += n;
                    s.seg_counts[i] += 1;
                    s.used += n;
                    return;
                }
            }
            let i = s.slots;
            let off = s.used;
            s.offs[i] = off;
            s.data[off..off + n].copy_from_slice(&frame[..n]);
            s.lens[i] = n;
            s.seg_sizes[i] = n;
            s.seg_counts[i] = 1;
            s.addr_lens[i] = addr_len;
            if addr_len > 0 {
                s.addr_mut(i)[..addr_len as usize].copy_from_slice(&addr_buf[..addr_len as usize]);
            }
            s.run = if self.gso_send {
                gso::Run::start(n)
            } else {
                closed_run()
            };
            s.slots += 1;
            s.used += n;
        }

        /// Submit every staged slot: one `sendmmsg` per `BATCH` slots,
        /// coalesced slots carrying their `UDP_SEGMENT` control
        /// message, with loss-like submission failures counted as
        /// drops (the protocols retransmit) rather than surfaced as
        /// errors.
        pub(super) fn flush(
            &mut self,
            _socket: &UdpSocket,
            stats: &mut NetIoStats,
        ) -> io::Result<()> {
            let n = self.send.slots;
            if n == 0 {
                return Ok(());
            }
            self.send.slots = 0;
            self.send.used = 0;
            self.send.run.close();
            let mut done = 0usize;
            // Pending ICMP errors from earlier sends surface as
            // `ECONNREFUSED` with nothing submitted; each retry consumes
            // one, so the budget bounds a pathological error queue.
            let mut refused_budget = n + 4;
            while done < n {
                let count = n - done;
                let mut iovs = [ZERO_IOV; BATCH];
                let mut hdrs = [ZERO_MSG; BATCH];
                let data_ptr = self.send.data.as_mut_ptr();
                let addr_ptr = self.send.addrs.as_mut_ptr();
                let ctrl_ptr = self.send.ctrl.as_mut_ptr();
                for i in 0..count {
                    let slot = done + i;
                    iovs[i] = IoVec {
                        // SAFETY: in-bounds offsets into the send arena
                        // (`offs`/`lens` were bounds-checked by
                        // `stage`).
                        base: unsafe { data_ptr.add(self.send.offs[slot]) }.cast(),
                        len: self.send.lens[slot],
                    };
                    hdrs[i].hdr.msg_iov = &mut iovs[i];
                    hdrs[i].hdr.msg_iovlen = 1;
                    if self.send.addr_lens[slot] > 0 {
                        hdrs[i].hdr.msg_name = unsafe { addr_ptr.add(slot * SS_SIZE) }.cast();
                        hdrs[i].hdr.msg_namelen = self.send.addr_lens[slot];
                    }
                    if self.send.seg_counts[slot] > 1 {
                        let seg = self.send.seg_sizes[slot];
                        write_segment_cmsg(
                            &mut self.send.ctrl[slot * CTRL_CAP..(slot + 1) * CTRL_CAP],
                            seg,
                        );
                        hdrs[i].hdr.msg_control = unsafe { ctrl_ptr.add(slot * CTRL_CAP) }.cast();
                        hdrs[i].hdr.msg_controllen = CTRL_CAP;
                    }
                }
                // SAFETY: `hdrs[..count]` reference iovecs, buffers and
                // control slots that outlive the call; the kernel
                // writes only the documented `len`/`msg_flags`
                // out-fields.
                let rc = unsafe { sendmmsg(self.sock_fd, hdrs.as_mut_ptr(), count as u32, 0) };
                if rc > 0 {
                    for slot in done..done + rc as usize {
                        let segs = u64::from(self.send.seg_counts[slot]);
                        stats.datagrams_sent += segs;
                        if segs > 1 {
                            stats.gso_super_datagrams += 1;
                            stats.gso_segments += segs;
                        }
                    }
                    done += rc as usize;
                    stats.send_batches += 1;
                    continue;
                }
                let err = io::Error::last_os_error();
                match err.kind() {
                    io::ErrorKind::Interrupted => continue,
                    io::ErrorKind::ConnectionRefused if refused_budget > 0 => {
                        refused_budget -= 1;
                        continue;
                    }
                    _ if self.send.seg_counts[done] > 1 && is_gso_rejection(&err) => {
                        // The route rejected a super-datagram (segment
                        // larger than the path MTU, or the probe lied).
                        // Stop coalescing on this socket and resend the
                        // remaining slots as individual datagrams —
                        // nothing was submitted, so nothing duplicates.
                        self.gso_send = false;
                        return self.flush_split(done, n, stats);
                    }
                    _ if is_send_drop(&err) => {
                        for slot in done..n {
                            stats.send_drops += u64::from(self.send.seg_counts[slot]);
                        }
                        return Ok(());
                    }
                    _ => return Err(err),
                }
            }
            Ok(())
        }

        /// De-coalescing fallback for [`flush`](BatchedIo::flush):
        /// submit the slots in `from..n` segment by segment, as the
        /// pre-offload path would have.
        fn flush_split(&mut self, from: usize, n: usize, stats: &mut NetIoStats) -> io::Result<()> {
            for slot in from..n {
                let base = self.send.offs[slot];
                let seg_size = if self.send.seg_counts[slot] > 1 {
                    self.send.seg_sizes[slot]
                } else {
                    0
                };
                let mut segs = [(0usize, 0usize); gso::MAX_SEGMENTS as usize];
                let mut count = 0usize;
                let mut off = 0usize;
                for len in gso::split(self.send.lens[slot], seg_size) {
                    segs[count] = (base + off, len);
                    off += len;
                    count += 1;
                }
                let mut done = 0usize;
                let mut refused_budget = count + 4;
                while done < count {
                    let take = (count - done).min(BATCH);
                    let mut iovs = [ZERO_IOV; BATCH];
                    let mut hdrs = [ZERO_MSG; BATCH];
                    let data_ptr = self.send.data.as_mut_ptr();
                    let addr_ptr = self.send.addrs.as_mut_ptr();
                    for i in 0..take {
                        let (seg_off, seg_len) = segs[done + i];
                        iovs[i] = IoVec {
                            // SAFETY: segment offsets stay inside the
                            // slot's arena range.
                            base: unsafe { data_ptr.add(seg_off) }.cast(),
                            len: seg_len,
                        };
                        hdrs[i].hdr.msg_iov = &mut iovs[i];
                        hdrs[i].hdr.msg_iovlen = 1;
                        if self.send.addr_lens[slot] > 0 {
                            hdrs[i].hdr.msg_name = unsafe { addr_ptr.add(slot * SS_SIZE) }.cast();
                            hdrs[i].hdr.msg_namelen = self.send.addr_lens[slot];
                        }
                    }
                    // SAFETY: as in `flush`.
                    let rc = unsafe { sendmmsg(self.sock_fd, hdrs.as_mut_ptr(), take as u32, 0) };
                    if rc > 0 {
                        done += rc as usize;
                        stats.datagrams_sent += rc as u64;
                        stats.send_batches += 1;
                        continue;
                    }
                    let err = io::Error::last_os_error();
                    match err.kind() {
                        io::ErrorKind::Interrupted => continue,
                        io::ErrorKind::ConnectionRefused if refused_budget > 0 => {
                            refused_budget -= 1;
                            continue;
                        }
                        _ if is_send_drop(&err) => {
                            stats.send_drops += (count - done) as u64;
                            for later in slot + 1..n {
                                stats.send_drops += u64::from(self.send.seg_counts[later]);
                            }
                            return Ok(());
                        }
                        _ => return Err(err),
                    }
                }
            }
            Ok(())
        }

        /// Drain up to a ring of datagrams off the socket in one
        /// `recvmmsg` (GRO-coalesced reads count every datagram they
        /// carry).  Non-blocking; returns how many datagrams arrived.
        pub(super) fn fill(
            &mut self,
            _socket: &UdpSocket,
            stats: &mut NetIoStats,
        ) -> io::Result<usize> {
            debug_assert!(self.recv_head >= self.recv_len, "fill over undrained batch");
            let mut refused_budget = 16;
            let slots = self.recv.slot_count;
            loop {
                let mut iovs = [ZERO_IOV; BATCH];
                let mut hdrs = [ZERO_MSG; BATCH];
                let data_ptr = self.recv.data.as_mut_ptr();
                let addr_ptr = self.recv.addrs.as_mut_ptr();
                let ctrl_ptr = self.recv.ctrl.as_mut_ptr();
                for i in 0..slots {
                    iovs[i] = IoVec {
                        // SAFETY: in-bounds offsets into the recv slabs.
                        base: unsafe { data_ptr.add(i * self.recv.slot_cap) }.cast(),
                        len: self.recv.slot_cap,
                    };
                    hdrs[i].hdr.msg_iov = &mut iovs[i];
                    hdrs[i].hdr.msg_iovlen = 1;
                    hdrs[i].hdr.msg_name = unsafe { addr_ptr.add(i * SS_SIZE) }.cast();
                    hdrs[i].hdr.msg_namelen = SS_SIZE as u32;
                    if self.gro_recv {
                        hdrs[i].hdr.msg_control = unsafe { ctrl_ptr.add(i * CTRL_CAP) }.cast();
                        hdrs[i].hdr.msg_controllen = CTRL_CAP;
                    }
                }
                // SAFETY: as in `flush`; the kernel fills buffers,
                // address and control storage owned by `self.recv` and
                // reports per-message lengths in the headers.
                let rc = unsafe {
                    recvmmsg(
                        self.sock_fd,
                        hdrs.as_mut_ptr(),
                        slots as u32,
                        0,
                        std::ptr::null_mut(),
                    )
                };
                if rc > 0 {
                    let got = rc as usize;
                    let mut datagrams = 0u64;
                    for (i, hdr) in hdrs.iter().enumerate().take(got) {
                        let len = (hdr.len as usize).min(self.recv.slot_cap);
                        self.recv.lens[i] = len;
                        self.recv.addr_lens[i] = hdr.hdr.msg_namelen;
                        let seg = if self.gro_recv {
                            parse_gro_cmsg(self.recv.ctrl(i), hdr.hdr.msg_controllen)
                        } else {
                            0
                        };
                        self.recv.seg_sizes[i] = seg;
                        if seg > 0 && len > seg {
                            let count = gso::split(len, seg).count() as u64;
                            stats.gro_super_datagrams += 1;
                            stats.gro_segments += count;
                            datagrams += count;
                        } else {
                            datagrams += 1;
                        }
                    }
                    self.recv_head = 0;
                    self.recv_len = got;
                    self.recv_seg_off = 0;
                    stats.datagrams_received += datagrams;
                    stats.recv_batches += 1;
                    return Ok(datagrams as usize);
                }
                let err = io::Error::last_os_error();
                match err.kind() {
                    io::ErrorKind::WouldBlock => return Ok(0),
                    io::ErrorKind::Interrupted => continue,
                    // A queued ICMP unreachable from an earlier send:
                    // consume and keep draining, boundedly.
                    io::ErrorKind::ConnectionRefused if refused_budget > 0 => {
                        refused_budget -= 1;
                        continue;
                    }
                    io::ErrorKind::ConnectionRefused => return Ok(0),
                    _ => return Err(err),
                }
            }
        }

        /// Pop one filled datagram into `buf`.  A GRO-coalesced slot
        /// yields one segment per call — a view into the slot at the
        /// running segment offset, so the split costs no copy beyond
        /// the one every pop already makes and no allocation at all.
        pub(super) fn pop_into(&mut self, buf: &mut [u8]) -> Option<(usize, Option<SocketAddr>)> {
            loop {
                if self.recv_head >= self.recv_len {
                    return None;
                }
                let i = self.recv_head;
                let total = self.recv.lens[i];
                let off = self.recv_seg_off;
                if off >= total {
                    if off == 0 && total == 0 {
                        // A zero-length datagram is still one datagram.
                        self.recv_head += 1;
                        let addr = decode_addr(self.recv.addr(i), self.recv.addr_lens[i]);
                        return Some((0, addr));
                    }
                    self.recv_head += 1;
                    self.recv_seg_off = 0;
                    continue;
                }
                let seg = self.recv.seg_sizes[i];
                let want = if seg == 0 {
                    total - off
                } else {
                    seg.min(total - off)
                };
                let n = want.min(buf.len());
                buf[..n].copy_from_slice(&self.recv.buf(i)[off..off + n]);
                self.recv_seg_off = off + want;
                let addr = decode_addr(self.recv.addr(i), self.recv.addr_lens[i]);
                return Some((n, addr));
            }
        }

        /// Block until the socket is readable or `timeout` elapses.
        /// The deadline rides a one-shot timerfd, so sub-millisecond
        /// pace gaps wait exactly as long as they should — this is the
        /// wait that replaced the driver's yield-spin.
        pub(super) fn wait(
            &mut self,
            timeout: Duration,
            stats: &mut NetIoStats,
        ) -> io::Result<bool> {
            // A zero it_value disarms the timer; clamp to one tick so a
            // zero/near-zero timeout still fires immediately.
            let spec = ITimerSpec {
                interval: TimeSpec { sec: 0, nsec: 0 },
                value: timespec(timeout.max(Duration::from_nanos(1))),
            };
            // SAFETY: `timer` is live; `spec` is stack-local and only
            // read.  Re-arming also clears any stale expiration.
            let rc = unsafe { timerfd_settime(self.timer.0, 0, &spec, std::ptr::null_mut()) };
            if rc != 0 {
                return Err(io::Error::last_os_error());
            }
            loop {
                let mut events = [EpollEvent { events: 0, data: 0 }; 4];
                // SAFETY: the kernel writes at most 4 events into the
                // stack-local array.
                let rc = unsafe { epoll_wait(self.epoll.0, events.as_mut_ptr(), 4, -1) };
                if rc < 0 {
                    let err = io::Error::last_os_error();
                    if err.kind() == io::ErrorKind::Interrupted {
                        continue;
                    }
                    return Err(err);
                }
                let mut readable = false;
                let mut expired = false;
                for ev in events.iter().take(rc as usize) {
                    match ev.data {
                        0 => readable = true,
                        _ => expired = true,
                    }
                }
                if expired {
                    // Drain the expiration count so the timerfd goes
                    // quiet until re-armed.
                    let mut ticks = 0u64;
                    // SAFETY: reads 8 bytes into a stack-local u64, the
                    // timerfd read contract.
                    unsafe {
                        read(self.timer.0, (&mut ticks as *mut u64).cast(), 8);
                    }
                }
                if readable {
                    stats.wakeups += 1;
                    return Ok(true);
                }
                if expired {
                    stats.timeouts += 1;
                    return Ok(false);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (UdpSocket, UdpSocket) {
        let a = UdpSocket::bind("127.0.0.1:0").unwrap();
        let b = UdpSocket::bind("127.0.0.1:0").unwrap();
        let a_addr = a.local_addr().unwrap();
        let b_addr = b.local_addr().unwrap();
        a.connect(b_addr).unwrap();
        b.connect(a_addr).unwrap();
        (a, b)
    }

    fn roundtrip(mut tx: NetIo, mut rx: NetIo, a: &UdpSocket, b: &UdpSocket) {
        // Stage a whole burst, flush once, receive every datagram.
        for i in 0..10u8 {
            tx.queue(a, &[i; 100]).unwrap();
        }
        tx.flush(a).unwrap();
        let mut buf = [0u8; 256];
        for i in 0..10u8 {
            let n = rx
                .recv(b, &mut buf, Duration::from_secs(2))
                .unwrap()
                .expect("datagram arrives");
            assert_eq!(&buf[..n], &[i; 100][..], "order preserved");
        }
        assert_eq!(tx.stats.datagrams_sent, 10);
        assert_eq!(rx.stats.datagrams_received, 10);
        assert!(
            tx.stats.send_batches <= 10,
            "batching never exceeds one syscall per datagram"
        );
    }

    #[test]
    fn connected_roundtrip_auto_backend() {
        let (a, b) = pair();
        let tx = NetIo::connected(&a);
        let rx = NetIo::connected(&b);
        roundtrip(tx, rx, &a, &b);
    }

    #[test]
    fn connected_roundtrip_portable_backend() {
        let (a, b) = pair();
        let tx = NetIo::portable(false);
        let rx = NetIo::portable(false);
        assert_eq!(tx.backend(), BackendKind::Portable);
        roundtrip(tx, rx, &a, &b);
    }

    #[cfg(netio_batched)]
    #[test]
    fn batched_backend_amortises_syscalls() {
        let (a, b) = pair();
        let mut tx = NetIo::connected(&a);
        let mut rx = NetIo::connected(&b);
        assert!(tx.is_batched(), "Linux builds select the batched backend");
        for i in 0..(BATCH as u8) {
            tx.queue(&a, &[i; 64]).unwrap();
        }
        tx.flush(&a).unwrap();
        assert_eq!(tx.stats.send_batches, 1, "one sendmmsg for a full batch");
        let mut buf = [0u8; 128];
        for _ in 0..BATCH {
            rx.recv(&b, &mut buf, Duration::from_secs(2))
                .unwrap()
                .expect("datagram arrives");
        }
        assert!(
            rx.stats.recv_batches < BATCH as u64,
            "recvmmsg drained multiple datagrams per crossing ({} batches)",
            rx.stats.recv_batches
        );
    }

    #[cfg(netio_batched)]
    #[test]
    fn batched_wait_has_submillisecond_fidelity() {
        let (a, _b) = pair();
        let mut io = NetIo::connected(&a);
        assert!(io.is_batched());
        let t0 = Instant::now();
        let readable = io.wait(Duration::from_micros(500)).unwrap();
        let waited = t0.elapsed();
        assert!(!readable, "nothing was sent");
        assert!(
            waited >= Duration::from_micros(400),
            "returned early: {waited:?}"
        );
        assert!(
            waited < Duration::from_millis(10),
            "a 500 µs wait must not round up to a scheduler tick: {waited:?}"
        );
        assert_eq!(io.stats.timeouts, 1);
    }

    #[cfg(netio_batched)]
    #[test]
    fn batched_wait_wakes_on_traffic() {
        let (a, b) = pair();
        let mut rx = NetIo::connected(&b);
        a.send(b"ping").unwrap();
        let readable = rx.wait(Duration::from_secs(2)).unwrap();
        assert!(readable, "pending datagram must wake the waiter");
        assert_eq!(rx.stats.wakeups, 1);
        let mut buf = [0u8; 16];
        let n = rx.recv(&b, &mut buf, Duration::from_secs(1)).unwrap();
        assert_eq!(n, Some(4));
    }

    #[test]
    fn reactor_mode_carries_peer_addresses() {
        let server = UdpSocket::bind("127.0.0.1:0").unwrap();
        let server_addr = server.local_addr().unwrap();
        let mut io = NetIo::reactor(&server);
        let client = UdpSocket::bind("127.0.0.1:0").unwrap();
        client.send_to(b"hello", server_addr).unwrap();
        let mut buf = [0u8; 64];
        // Wait (event-driven or sleep), then drain.
        let mut got = None;
        for _ in 0..2000 {
            if let Some(popped) = io.pop_into(&mut buf) {
                got = Some(popped);
                break;
            }
            if io.fill(&server).unwrap() > 0 {
                continue;
            }
            io.wait(Duration::from_millis(1)).unwrap();
        }
        let (n, peer) = got.expect("datagram arrives");
        assert_eq!(&buf[..n], b"hello");
        assert_eq!(peer, Some(client.local_addr().unwrap()));
        // Reply through the queued send path.
        io.queue_to(&server, b"world", peer).unwrap();
        io.flush(&server).unwrap();
        let mut rbuf = [0u8; 16];
        client
            .set_read_timeout(Some(Duration::from_secs(2)))
            .unwrap();
        let (n, from) = client.recv_from(&mut rbuf).unwrap();
        assert_eq!(&rbuf[..n], b"world");
        assert_eq!(from, server_addr);
    }

    #[test]
    fn env_override_forces_portable() {
        // The env var is read at construction; spawn-free check via the
        // selector with the variable set for this process would race
        // other tests, so assert the parsing path indirectly: portable
        // construction always honours the request.
        let io = NetIo::portable(false);
        assert_eq!(io.backend().name(), "portable");
        assert_eq!(BackendKind::Batched.name(), "batched");
    }

    #[test]
    fn send_drop_classification() {
        assert!(is_send_drop(&io::Error::from(
            io::ErrorKind::ConnectionRefused
        )));
        assert!(is_send_drop(&io::Error::from(io::ErrorKind::WouldBlock)));
        assert!(is_send_drop(&io::Error::from_raw_os_error(ENOBUFS)));
        assert!(!is_send_drop(&io::Error::from(
            io::ErrorKind::PermissionDenied
        )));
    }

    #[test]
    fn portable_backend_reports_offload_not_applicable() {
        let io = NetIo::portable(false);
        assert_eq!(io.offload(), OffloadState::Portable);
        assert_eq!(OffloadState::GsoGro.name(), "gso+gro");
        assert_eq!(OffloadState::Unsupported.name(), "unsupported");
        assert!(OffloadState::GsoGro.gso() && OffloadState::GsoGro.gro());
        assert!(!OffloadState::Disabled.gso() && !OffloadState::Disabled.gro());
    }

    /// Batched backend with offload explicitly on/off, bypassing the
    /// process-global switch (tests run concurrently; flipping the
    /// global here would race other tests' constructions).
    #[cfg(netio_batched)]
    fn batched_with(socket: &UdpSocket, offload: bool) -> NetIo {
        NetIo::try_batched_with(socket, offload).expect("batched backend")
    }

    #[cfg(netio_batched)]
    #[test]
    fn disabled_offload_never_coalesces() {
        let (a, b) = pair();
        let mut tx = batched_with(&a, false);
        let mut rx = batched_with(&b, false);
        assert_eq!(tx.offload(), OffloadState::Disabled);
        for i in 0..10u8 {
            tx.queue(&a, &[i; 100]).unwrap();
        }
        tx.flush(&a).unwrap();
        assert_eq!(tx.stats.datagrams_sent, 10);
        assert_eq!(tx.stats.gso_super_datagrams, 0, "no coalescing when off");
        let mut buf = [0u8; 256];
        for i in 0..10u8 {
            let n = rx
                .recv(&b, &mut buf, Duration::from_secs(2))
                .unwrap()
                .expect("datagram arrives");
            assert_eq!(&buf[..n], &[i; 100][..]);
        }
    }

    #[cfg(netio_batched)]
    #[test]
    fn gso_coalesces_equal_size_bursts() {
        let (a, b) = pair();
        let mut tx = batched_with(&a, true);
        let mut rx = batched_with(&b, true);
        if !tx.offload().gso() {
            eprintln!(
                "kernel lacks UDP_SEGMENT ({}); skipping",
                tx.offload().name()
            );
            return;
        }
        for i in 0..(BATCH as u8) {
            tx.queue(&a, &[i; 256]).unwrap();
        }
        tx.flush(&a).unwrap();
        assert_eq!(tx.stats.datagrams_sent, BATCH as u64, "logical count kept");
        assert_eq!(tx.stats.gso_super_datagrams, 1, "whole burst in one slot");
        assert_eq!(tx.stats.gso_segments, BATCH as u64);
        assert_eq!(tx.stats.send_batches, 1);
        let mut buf = [0u8; 512];
        for i in 0..(BATCH as u8) {
            let n = rx
                .recv(&b, &mut buf, Duration::from_secs(2))
                .unwrap()
                .expect("datagram arrives");
            assert_eq!(&buf[..n], &[i; 256][..], "boundaries and order preserved");
        }
        assert_eq!(rx.stats.datagrams_received, BATCH as u64);
    }

    #[cfg(netio_batched)]
    #[test]
    fn gso_tail_runt_joins_and_larger_frame_splits() {
        let (a, b) = pair();
        let mut tx = batched_with(&a, true);
        let mut rx = batched_with(&b, true);
        if !tx.offload().gso() {
            return;
        }
        // Two equal frames, a runt (joins as tail and closes the run),
        // then a larger frame that must open a new slot.
        let frames: [&[u8]; 4] = [&[1; 300], &[2; 300], &[3; 120], &[4; 400]];
        for f in frames {
            tx.queue(&a, f).unwrap();
        }
        tx.flush(&a).unwrap();
        assert_eq!(tx.stats.datagrams_sent, 4);
        assert_eq!(tx.stats.gso_super_datagrams, 1);
        assert_eq!(tx.stats.gso_segments, 3, "runt rode the super-datagram");
        let mut buf = [0u8; 512];
        for f in frames {
            let n = rx
                .recv(&b, &mut buf, Duration::from_secs(2))
                .unwrap()
                .expect("datagram arrives");
            assert_eq!(&buf[..n], f, "sizes survive the segmentation round-trip");
        }
    }

    #[cfg(netio_batched)]
    #[test]
    fn different_destinations_never_share_a_super_datagram() {
        let server = UdpSocket::bind("127.0.0.1:0").unwrap();
        let mut io = NetIo::try_batched_with(&server, true).expect("batched backend");
        if !io.offload().gso() {
            return;
        }
        let c1 = UdpSocket::bind("127.0.0.1:0").unwrap();
        let c2 = UdpSocket::bind("127.0.0.1:0").unwrap();
        let d1 = Some(c1.local_addr().unwrap());
        let d2 = Some(c2.local_addr().unwrap());
        // Interleaved destinations with equal sizes: every datagram
        // must open its own slot.
        for _ in 0..4 {
            io.queue_to(&server, &[7u8; 200], d1).unwrap();
            io.queue_to(&server, &[9u8; 200], d2).unwrap();
        }
        io.flush(&server).unwrap();
        assert_eq!(io.stats.datagrams_sent, 8);
        assert_eq!(io.stats.gso_super_datagrams, 0, "no cross-peer coalescing");
        for (sock, byte) in [(&c1, 7u8), (&c2, 9u8)] {
            sock.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
            let mut buf = [0u8; 256];
            for _ in 0..4 {
                let n = sock.recv(&mut buf).unwrap();
                assert_eq!(&buf[..n], &[byte; 200][..]);
            }
        }
    }
}
