//! Socket-buffer tuning: grow `SO_RCVBUF` so a blast round fits.
//!
//! ROADMAP's measured bottleneck: a full blast round (≈ 256 KB at
//! 1400-byte payloads) dumped into a default-sized UDP receive buffer
//! (≈ 208 KB on Linux) loses its tail packets to the kernel before the
//! application ever sees them — the modern incarnation of the paper's
//! §3 *interface errors*, where "the receiver has no buffer available
//! for an incoming packet".  The paper's fix was more interface
//! buffers; ours is the same: ask the kernel for a bigger receive
//! queue at socket setup.
//!
//! `std::net::UdpSocket` exposes no buffer-size API, so on Linux this
//! module calls `setsockopt(2)`/`getsockopt(2)` directly through the
//! already-linked C library.  This is the crate's one sanctioned use of
//! `unsafe` (mirroring the `blast-counting-alloc` precedent): two
//! audited FFI calls on a valid file descriptor with stack-local
//! buffers, nothing else.  On other platforms the functions are no-ops
//! that report `Unsupported`; callers treat the whole thing as
//! best-effort — a socket with a small buffer still works, it just
//! drops more.
//!
//! The module also owns [`bind_reuseport`], the sharded node's socket
//! factory: `SO_REUSEPORT` must be set *before* `bind(2)`, which std's
//! bind-then-configure API cannot express, so the whole
//! socket/setsockopt/bind sequence runs through the same audited FFI
//! surface and the finished descriptor is handed to `UdpSocket` via
//! `FromRawFd`.  Every socket bound this way to the same address joins
//! one kernel group; the kernel's 4-tuple hash then distributes
//! incoming datagrams across the group, pinning each remote endpoint
//! to exactly one member socket.

use std::io;
use std::net::{SocketAddr, UdpSocket};

/// Receive-buffer request for blast workloads: 4 MiB comfortably holds
/// several concurrent 256 KB rounds.  The kernel clamps the effective
/// size to `net.core.rmem_max`; [`set_recv_buffer`] reports what was
/// actually granted.
pub const BLAST_RECV_BUFFER: usize = 4 * 1024 * 1024;

// The hardcoded option constants below are the asm-generic values;
// MIPS and SPARC kernels use different ones (SOL_SOCKET = 0xffff), so
// those architectures take the unsupported fallback rather than poking
// the wrong socket level.
#[cfg(all(
    target_os = "linux",
    not(any(
        target_arch = "mips",
        target_arch = "mips64",
        target_arch = "sparc",
        target_arch = "sparc64"
    ))
))]
#[allow(unsafe_code)]
mod imp {
    use std::io;
    use std::net::{SocketAddr, UdpSocket};
    use std::os::fd::{AsRawFd, FromRawFd};

    // Linked via std's libc dependency; declared here because the
    // workspace builds offline with no `libc` crate available.
    extern "C" {
        fn setsockopt(
            fd: i32,
            level: i32,
            name: i32,
            value: *const core::ffi::c_void,
            len: u32,
        ) -> i32;
        fn getsockopt(
            fd: i32,
            level: i32,
            name: i32,
            value: *mut core::ffi::c_void,
            len: *mut u32,
        ) -> i32;
        fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
        fn bind(fd: i32, addr: *const core::ffi::c_void, len: u32) -> i32;
        fn close(fd: i32) -> i32;
    }

    const SOL_SOCKET: i32 = 1;
    const SO_SNDBUF: i32 = 7;
    const SO_RCVBUF: i32 = 8;
    const SO_REUSEPORT: i32 = 15;
    const AF_INET: u16 = 2;
    const AF_INET6: u16 = 10;
    const SOCK_DGRAM: i32 = 2;
    const SOCK_CLOEXEC: i32 = 0o2000000;

    fn set_buffer(socket: &UdpSocket, option: i32, bytes: usize) -> io::Result<usize> {
        let fd = socket.as_raw_fd();
        let request: i32 = bytes.min(i32::MAX as usize) as i32;
        // SAFETY: `fd` is a live descriptor owned by `socket` for the
        // duration of the call; the value pointer/length describe a
        // stack-local i32.
        let rc = unsafe {
            setsockopt(
                fd,
                SOL_SOCKET,
                option,
                (&request as *const i32).cast(),
                std::mem::size_of::<i32>() as u32,
            )
        };
        if rc != 0 {
            return Err(io::Error::last_os_error());
        }
        buffer(socket, option)
    }

    fn buffer(socket: &UdpSocket, option: i32) -> io::Result<usize> {
        let fd = socket.as_raw_fd();
        let mut granted: i32 = 0;
        let mut len = std::mem::size_of::<i32>() as u32;
        // SAFETY: as above; the kernel writes at most `len` bytes into
        // the stack-local i32.
        let rc = unsafe {
            getsockopt(
                fd,
                SOL_SOCKET,
                option,
                (&mut granted as *mut i32).cast(),
                &mut len,
            )
        };
        if rc != 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(granted.max(0) as usize)
    }

    pub fn set_recv_buffer(socket: &UdpSocket, bytes: usize) -> io::Result<usize> {
        set_buffer(socket, SO_RCVBUF, bytes)
    }

    pub fn recv_buffer(socket: &UdpSocket) -> io::Result<usize> {
        buffer(socket, SO_RCVBUF)
    }

    pub fn set_send_buffer(socket: &UdpSocket, bytes: usize) -> io::Result<usize> {
        set_buffer(socket, SO_SNDBUF, bytes)
    }

    pub fn send_buffer(socket: &UdpSocket) -> io::Result<usize> {
        buffer(socket, SO_SNDBUF)
    }

    /// Encode a socket address as a kernel `sockaddr`, returning its
    /// length (same layout the batched netio backend uses).
    fn encode_addr(addr: &SocketAddr, out: &mut [u8; 28]) -> u32 {
        match addr {
            SocketAddr::V4(a) => {
                out[0..2].copy_from_slice(&AF_INET.to_ne_bytes());
                out[2..4].copy_from_slice(&a.port().to_be_bytes());
                out[4..8].copy_from_slice(&a.ip().octets());
                out[8..16].fill(0);
                16
            }
            SocketAddr::V6(a) => {
                out[0..2].copy_from_slice(&AF_INET6.to_ne_bytes());
                out[2..4].copy_from_slice(&a.port().to_be_bytes());
                out[4..8].copy_from_slice(&a.flowinfo().to_be_bytes());
                out[8..24].copy_from_slice(&a.ip().octets());
                out[24..28].copy_from_slice(&a.scope_id().to_ne_bytes());
                28
            }
        }
    }

    pub fn reuseport_supported() -> bool {
        true
    }

    pub fn bind_reuseport(addr: SocketAddr) -> io::Result<UdpSocket> {
        let domain = match addr {
            SocketAddr::V4(_) => i32::from(AF_INET),
            SocketAddr::V6(_) => i32::from(AF_INET6),
        };
        // SAFETY: plain syscall; a negative return is checked before the
        // descriptor is used.
        let fd = unsafe { socket(domain, SOCK_DGRAM | SOCK_CLOEXEC, 0) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        // From here on the raw fd must be closed on every error path;
        // wrap each step so a failure releases it exactly once.
        let configure = || -> io::Result<()> {
            let one: i32 = 1;
            // SAFETY: `fd` is the live descriptor created above; the
            // value pointer/length describe a stack-local i32.
            let rc = unsafe {
                setsockopt(
                    fd,
                    SOL_SOCKET,
                    SO_REUSEPORT,
                    (&one as *const i32).cast(),
                    std::mem::size_of::<i32>() as u32,
                )
            };
            if rc != 0 {
                return Err(io::Error::last_os_error());
            }
            let mut raw = [0u8; 28];
            let len = encode_addr(&addr, &mut raw);
            // SAFETY: the pointer/length describe the stack-local
            // encoded sockaddr, valid for the duration of the call.
            let rc = unsafe { bind(fd, raw.as_ptr().cast(), len) };
            if rc != 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        };
        match configure() {
            Ok(()) => {
                // SAFETY: `fd` is a freshly created, successfully bound
                // UDP socket owned by nothing else; ownership transfers
                // to the returned `UdpSocket`.
                Ok(unsafe { UdpSocket::from_raw_fd(fd) })
            }
            Err(err) => {
                // SAFETY: `fd` is live and owned here; closing it once
                // on the error path is the only release.
                unsafe { close(fd) };
                Err(err)
            }
        }
    }
}

#[cfg(not(all(
    target_os = "linux",
    not(any(
        target_arch = "mips",
        target_arch = "mips64",
        target_arch = "sparc",
        target_arch = "sparc64"
    ))
)))]
mod imp {
    use std::io;
    use std::net::{SocketAddr, UdpSocket};

    pub fn set_recv_buffer(_socket: &UdpSocket, _bytes: usize) -> io::Result<usize> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "SO_RCVBUF tuning is only implemented on Linux",
        ))
    }

    pub fn recv_buffer(_socket: &UdpSocket) -> io::Result<usize> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "SO_RCVBUF inspection is only implemented on Linux",
        ))
    }

    pub fn set_send_buffer(_socket: &UdpSocket, _bytes: usize) -> io::Result<usize> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "SO_SNDBUF tuning is only implemented on Linux",
        ))
    }

    pub fn send_buffer(_socket: &UdpSocket) -> io::Result<usize> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "SO_SNDBUF inspection is only implemented on Linux",
        ))
    }

    pub fn reuseport_supported() -> bool {
        false
    }

    pub fn bind_reuseport(_addr: SocketAddr) -> io::Result<UdpSocket> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "SO_REUSEPORT socket groups are only implemented on Linux",
        ))
    }
}

/// Ask the kernel for a `bytes`-sized receive buffer and return what it
/// granted (Linux doubles the request for bookkeeping and clamps it to
/// `net.core.rmem_max`).  `Unsupported` on non-Linux platforms.
pub fn set_recv_buffer(socket: &UdpSocket, bytes: usize) -> io::Result<usize> {
    imp::set_recv_buffer(socket, bytes)
}

/// The socket's current receive-buffer size, as the kernel reports it.
pub fn recv_buffer(socket: &UdpSocket) -> io::Result<usize> {
    imp::recv_buffer(socket)
}

/// Ask the kernel for a `bytes`-sized send buffer and return what it
/// granted (clamped to `net.core.wmem_max`).  `Unsupported` on
/// non-Linux platforms.
pub fn set_send_buffer(socket: &UdpSocket, bytes: usize) -> io::Result<usize> {
    imp::set_send_buffer(socket, bytes)
}

/// The socket's current send-buffer size, as the kernel reports it.
pub fn send_buffer(socket: &UdpSocket) -> io::Result<usize> {
    imp::send_buffer(socket)
}

/// Best-effort variant of [`set_recv_buffer`] for socket setup paths:
/// failures (permissions, platform) are swallowed — the socket still
/// works, it just keeps the default queue depth.
pub fn grow_recv_buffer(socket: &UdpSocket) {
    let _ = set_recv_buffer(socket, BLAST_RECV_BUFFER);
}

/// Grow both socket buffers (best effort): the receive queue so a blast
/// round does not spill, and the send queue so a whole batched
/// `sendmmsg` burst (an AIMD-grown round can reach 256 × 1400 bytes)
/// submits without `ENOBUFS` drops.
pub fn grow_buffers(socket: &UdpSocket) {
    let _ = set_recv_buffer(socket, BLAST_RECV_BUFFER);
    let _ = set_send_buffer(socket, BLAST_RECV_BUFFER);
}

/// Whether this platform can bind `SO_REUSEPORT` socket groups.
///
/// `false` means [`bind_reuseport`] always reports `Unsupported` and a
/// sharded node should fall back to a single reactor.
pub fn reuseport_supported() -> bool {
    imp::reuseport_supported()
}

/// Bind a UDP socket with `SO_REUSEPORT` set *before* `bind(2)`.
///
/// Binding N sockets this way to the same address forms one kernel
/// group: the 4-tuple hash spreads remote endpoints across the members,
/// and every datagram from a given remote socket keeps landing on the
/// same member — which is exactly the session-affinity a sharded node
/// needs.  The first member may bind port 0; later members must reuse
/// the concrete port it was assigned (read it back via `local_addr`).
///
/// Returns `Unsupported` on platforms without `SO_REUSEPORT` groups
/// (non-Linux, plus the MIPS/SPARC sockopt-constant exceptions).
pub fn bind_reuseport(addr: SocketAddr) -> io::Result<UdpSocket> {
    imp::bind_reuseport(addr)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg(all(
        target_os = "linux",
        not(any(
            target_arch = "mips",
            target_arch = "mips64",
            target_arch = "sparc",
            target_arch = "sparc64"
        ))
    ))]
    fn grow_and_read_back() {
        let socket = UdpSocket::bind("127.0.0.1:0").unwrap();
        let before = recv_buffer(&socket).unwrap();
        assert!(before > 0);
        let granted = set_recv_buffer(&socket, BLAST_RECV_BUFFER).unwrap();
        // The kernel may clamp to rmem_max, but it never grants zero,
        // and it must not *shrink* the buffer below the old size when
        // asked for more.
        assert!(granted > 0);
        assert!(granted >= before.min(BLAST_RECV_BUFFER));
        assert_eq!(recv_buffer(&socket).unwrap(), granted);
    }

    #[test]
    #[cfg(all(
        target_os = "linux",
        not(any(
            target_arch = "mips",
            target_arch = "mips64",
            target_arch = "sparc",
            target_arch = "sparc64"
        ))
    ))]
    fn grow_and_read_back_send_buffer() {
        let socket = UdpSocket::bind("127.0.0.1:0").unwrap();
        let before = send_buffer(&socket).unwrap();
        assert!(before > 0);
        let granted = set_send_buffer(&socket, BLAST_RECV_BUFFER).unwrap();
        assert!(granted > 0);
        assert!(granted >= before.min(BLAST_RECV_BUFFER));
        assert_eq!(send_buffer(&socket).unwrap(), granted);
    }

    #[test]
    fn grow_recv_buffer_is_infallible() {
        let socket = UdpSocket::bind("127.0.0.1:0").unwrap();
        grow_recv_buffer(&socket); // must not panic anywhere
        grow_buffers(&socket);
    }

    #[test]
    #[cfg(all(
        target_os = "linux",
        not(any(
            target_arch = "mips",
            target_arch = "mips64",
            target_arch = "sparc",
            target_arch = "sparc64"
        ))
    ))]
    fn reuseport_group_shares_one_port() {
        assert!(reuseport_supported());
        let first = bind_reuseport("127.0.0.1:0".parse().unwrap()).unwrap();
        let addr = first.local_addr().unwrap();
        assert_ne!(addr.port(), 0);
        // Three more members on the very same address: only possible
        // because every member set SO_REUSEPORT before bind.
        let rest: Vec<UdpSocket> = (0..3).map(|_| bind_reuseport(addr).unwrap()).collect();
        for member in &rest {
            assert_eq!(member.local_addr().unwrap(), addr);
        }
        // A plain (non-reuseport) bind to the same port must still be
        // refused — the group does not leak the port to outsiders.
        assert!(UdpSocket::bind(addr).is_err());
        // The group members behave as normal UDP sockets.
        let probe = UdpSocket::bind("127.0.0.1:0").unwrap();
        probe.send_to(b"ping", addr).unwrap();
        let mut buf = [0u8; 8];
        let mut delivered = false;
        for member in std::iter::once(&first).chain(&rest) {
            member
                .set_read_timeout(Some(std::time::Duration::from_millis(40)))
                .unwrap();
            if let Ok((n, from)) = member.recv_from(&mut buf) {
                assert_eq!(&buf[..n], b"ping");
                assert_eq!(from, probe.local_addr().unwrap());
                delivered = true;
                break;
            }
        }
        assert!(delivered, "the datagram must land on one group member");
    }

    #[test]
    #[cfg(all(
        target_os = "linux",
        not(any(
            target_arch = "mips",
            target_arch = "mips64",
            target_arch = "sparc",
            target_arch = "sparc64"
        ))
    ))]
    fn reuseport_ipv6_binds() {
        let first = bind_reuseport("[::1]:0".parse().unwrap()).unwrap();
        let addr = first.local_addr().unwrap();
        let second = bind_reuseport(addr).unwrap();
        assert_eq!(second.local_addr().unwrap(), addr);
    }

    #[test]
    #[cfg(not(all(
        target_os = "linux",
        not(any(
            target_arch = "mips",
            target_arch = "mips64",
            target_arch = "sparc",
            target_arch = "sparc64"
        ))
    )))]
    fn reuseport_reports_unsupported() {
        assert!(!reuseport_supported());
        let err = bind_reuseport("127.0.0.1:0".parse().unwrap()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Unsupported);
    }
}
