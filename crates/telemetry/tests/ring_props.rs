//! Property tests for the flight-recorder ring: whatever sequence of
//! pushes and pops a shard performs, the ring never holds more than its
//! capacity, drains in FIFO order, and accounts for every event it was
//! offered — `offered == drained + buffered + dropped` exactly.

use blast_telemetry::{EventKind, Ring, TraceEvent};
use proptest::prelude::*;

fn ev(ts: u64) -> TraceEvent {
    TraceEvent {
        ts_ns: ts,
        session: (ts % 7) as u32,
        shard: (ts % 3) as u16,
        kind: EventKind::ALL[(ts % EventKind::ALL.len() as u64) as usize],
        a: ts.wrapping_mul(31),
        b: ts.wrapping_mul(17),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Push/pop in arbitrary interleavings: the occupancy never exceeds
    /// capacity and the drop counter is exactly the number of rejected
    /// offers.
    #[test]
    fn capacity_bound_and_exact_drop_accounting(
        capacity in 1usize..32,
        ops in proptest::collection::vec(any::<bool>(), 0..512),
    ) {
        let ring = Ring::new(capacity);
        let mut offered = 0u64;
        let mut drained = 0u64;
        let mut buffered = 0u64;
        for &is_push in &ops {
            if is_push {
                offered += 1;
                let expect_accept = buffered < capacity as u64;
                let accepted = ring.push(ev(offered));
                prop_assert_eq!(accepted, expect_accept);
                if accepted {
                    buffered += 1;
                }
            } else if ring.pop().is_some() {
                drained += 1;
                buffered -= 1;
            }
            prop_assert!(ring.len() <= capacity);
            prop_assert_eq!(ring.len() as u64, buffered);
        }
        // Drain the remainder and reconcile the books.
        while ring.pop().is_some() {
            drained += 1;
        }
        prop_assert_eq!(offered, drained + ring.dropped());
        prop_assert_eq!(ring.accepted(), drained);
        prop_assert!(ring.is_empty());
    }

    /// Accepted events come back out in exactly the order they went in,
    /// payloads intact, across wrap-arounds.
    #[test]
    fn fifo_order_survives_wraparound(
        capacity in 1usize..16,
        rounds in 1usize..20,
    ) {
        let ring = Ring::new(capacity);
        let mut next_in = 0u64;
        let mut next_out = 0u64;
        for round in 0..rounds {
            // Overfill by one every other round to exercise the drop path
            // between wraps.
            let n = capacity + (round % 2);
            for _ in 0..n {
                if ring.push(ev(next_in)) {
                    next_in += 1;
                }
            }
            while let Some(got) = ring.pop() {
                prop_assert_eq!(got, ev(next_out));
                next_out += 1;
            }
            prop_assert_eq!(next_in, next_out);
        }
    }

    /// A full ring drops the *offered* event, never overwrites a
    /// buffered one: after overflow, the retained window is the oldest
    /// `capacity` unconsumed events.
    #[test]
    fn overflow_preserves_oldest(
        capacity in 1usize..16,
        extra in 1usize..16,
    ) {
        let ring = Ring::new(capacity);
        for i in 0..(capacity + extra) as u64 {
            ring.push(ev(i));
        }
        prop_assert_eq!(ring.dropped(), extra as u64);
        for i in 0..capacity as u64 {
            prop_assert_eq!(ring.pop(), Some(ev(i)));
        }
        prop_assert_eq!(ring.pop(), None);
    }
}
