//! Confidence intervals for trial means.

use crate::online::OnlineStats;

/// A two-sided confidence interval around a sample mean.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Point estimate.
    pub mean: f64,
    /// Half-width of the interval.
    pub half_width: f64,
    /// Confidence level used (e.g. 0.95).
    pub level: f64,
}

impl ConfidenceInterval {
    /// 95 % confidence interval for the mean of `stats` using a
    /// Student-t critical value (normal approximation above 30 d.o.f.).
    pub fn for_mean(stats: &OnlineStats) -> Self {
        Self::for_mean_at(stats, 0.95)
    }

    /// Confidence interval at a given level (0.90, 0.95 or 0.99).
    pub fn for_mean_at(stats: &OnlineStats, level: f64) -> Self {
        let n = stats.count();
        let t = t_critical(n.saturating_sub(1), level);
        ConfidenceInterval {
            mean: stats.mean(),
            half_width: t * stats.standard_error(),
            level,
        }
    }

    /// Lower bound.
    pub fn lo(&self) -> f64 {
        self.mean - self.half_width
    }

    /// Upper bound.
    pub fn hi(&self) -> f64 {
        self.mean + self.half_width
    }

    /// Whether `x` falls within the interval.
    pub fn contains(&self, x: f64) -> bool {
        x >= self.lo() && x <= self.hi()
    }
}

impl std::fmt::Display for ConfidenceInterval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.4} ± {:.4} ({}%)",
            self.mean,
            self.half_width,
            self.level * 100.0
        )
    }
}

/// Two-sided Student-t critical values.  Table for small d.o.f.; the
/// normal quantile beyond.  Accurate to ~1 % — plenty for experiment
/// reporting.
fn t_critical(dof: u64, level: f64) -> f64 {
    // Columns: 90 %, 95 %, 99 %.
    const TABLE: [(u64, [f64; 3]); 14] = [
        (1, [6.314, 12.706, 63.657]),
        (2, [2.920, 4.303, 9.925]),
        (3, [2.353, 3.182, 5.841]),
        (4, [2.132, 2.776, 4.604]),
        (5, [2.015, 2.571, 4.032]),
        (6, [1.943, 2.447, 3.707]),
        (7, [1.895, 2.365, 3.499]),
        (8, [1.860, 2.306, 3.355]),
        (9, [1.833, 2.262, 3.250]),
        (10, [1.812, 2.228, 3.169]),
        (15, [1.753, 2.131, 2.947]),
        (20, [1.725, 2.086, 2.845]),
        (30, [1.697, 2.042, 2.750]),
        (60, [1.671, 2.000, 2.660]),
    ];
    let col = if level >= 0.99 {
        2
    } else if level >= 0.95 {
        1
    } else {
        0
    };
    if dof == 0 {
        return TABLE[0].1[col];
    }
    for &(d, row) in TABLE.iter() {
        if dof <= d {
            return row[col];
        }
    }
    // Normal quantiles for the asymptotic case.
    [1.645, 1.960, 2.576][col]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_narrows_with_samples() {
        let narrow: OnlineStats = (0..10_000).map(|i| (i % 7) as f64).collect();
        let wide: OnlineStats = (0..10).map(|i| (i % 7) as f64).collect();
        let ci_n = ConfidenceInterval::for_mean(&narrow);
        let ci_w = ConfidenceInterval::for_mean(&wide);
        assert!(ci_n.half_width < ci_w.half_width);
        assert!(ci_n.contains(narrow.mean()));
    }

    #[test]
    fn critical_values_monotone_in_level() {
        for dof in [1, 5, 25, 1000] {
            assert!(t_critical(dof, 0.90) < t_critical(dof, 0.95));
            assert!(t_critical(dof, 0.95) < t_critical(dof, 0.99));
        }
    }

    #[test]
    fn critical_values_decrease_with_dof() {
        assert!(t_critical(1, 0.95) > t_critical(10, 0.95));
        assert!(t_critical(10, 0.95) > t_critical(1000, 0.95));
        assert!((t_critical(10_000, 0.95) - 1.960).abs() < 1e-9);
    }

    #[test]
    fn bounds_and_contains() {
        let s: OnlineStats = [9.0, 10.0, 11.0, 10.0].into_iter().collect();
        let ci = ConfidenceInterval::for_mean_at(&s, 0.95);
        assert!(ci.lo() < 10.0 && 10.0 < ci.hi());
        assert!(ci.contains(10.0));
        assert!(!ci.contains(10.0 + ci.half_width * 2.0));
        assert!(ci.to_string().contains('±'));
    }

    #[test]
    fn known_small_sample_half_width() {
        // n = 4, sample sd = 0.8165, se = 0.4082, t(3, 95 %) = 3.182.
        let s: OnlineStats = [9.0, 10.0, 11.0, 10.0].into_iter().collect();
        let ci = ConfidenceInterval::for_mean_at(&s, 0.95);
        assert!((ci.half_width - 3.182 * s.standard_error()).abs() < 1e-12);
    }
}
