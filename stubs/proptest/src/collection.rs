//! Collection strategies: `vec` and `btree_set`, plus [`SizeRange`].

use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

use crate::rng::TestRng;
use crate::strategy::Strategy;

/// An inclusive range of collection sizes, mirroring
/// `proptest::collection::SizeRange`.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl SizeRange {
    fn pick(self, rng: &mut TestRng) -> usize {
        let span = (self.max - self.min) as u64;
        self.min + rng.below(span + 1) as usize
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Generates a `Vec` whose length falls in `size` with elements drawn
/// from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// The strategy returned by [`vec()`].
#[derive(Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generates a `BTreeSet` with *up to* `size` distinct elements drawn
/// from `element`.
///
/// Like the real proptest, the set can come out smaller than the
/// requested size when the element domain is narrow; this shim bounds
/// the retry effort instead of tracking domain cardinality.
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// The strategy returned by [`btree_set`].
#[derive(Debug)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let target = self.size.pick(rng);
        let mut set = BTreeSet::new();
        let mut attempts = 0usize;
        while set.len() < target && attempts < target.saturating_mul(20) + 32 {
            set.insert(self.element.generate(rng));
            attempts += 1;
        }
        set
    }
}
