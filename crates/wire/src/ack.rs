//! Acknowledgement payload encodings.
//!
//! §3.2 of the paper distinguishes four retransmission strategies for the
//! blast protocol, which differ in what the acknowledgement to the last
//! packet says:
//!
//! 1. *full retransmission, no NACK* — only a positive ack exists; the
//!    sender times out otherwise;
//! 2. *full retransmission with NACK* — the receiver of the last packet
//!    reports failure without details;
//! 3. *partial (go-back-n) retransmission* — "the acknowledgement to the
//!    last packet indicates which is the first of the D−1 unreliably
//!    transmitted packets that was not received";
//! 4. *selective retransmission* — the ack indicates "which of the D−1
//!    unreliably transmitted packets did not get to their destination",
//!    i.e. a set of missing packets, encoded here as a bitmap.
//!
//! All four are carried as the payload of a
//! [`PacketKind::Ack`](crate::header::PacketKind::Ack) packet.  Stop-and-wait and
//! sliding-window per-packet acks use [`AckPayload::Positive`] with the
//! acked sequence number.

use core::fmt;

use crate::error::{WireError, WireResult};

/// Discriminant tags on the wire.
mod tag {
    pub const POSITIVE: u8 = 1;
    pub const NACK_FULL: u8 = 2;
    pub const NACK_FIRST_MISSING: u8 = 3;
    pub const NACK_BITMAP: u8 = 4;
}

/// A compact bitmap of packet sequence numbers, used by the selective
/// retransmission NACK to report the set of missing packets.
///
/// Bit `i` refers to sequence number `base + i`; a **set** bit means the
/// packet is *missing* and must be retransmitted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitmap {
    base: u32,
    nbits: u16,
    bits: Vec<u8>,
}

impl Bitmap {
    /// Maximum number of bits a single bitmap can carry.
    ///
    /// Bounded so the NACK always fits in the paper's 64-byte
    /// acknowledgement packet budget minus headers would be nice, but
    /// selective NACKs for large transfers legitimately need more; we cap
    /// at one Ethernet payload.
    pub const MAX_BITS: u16 = 8 * 1024;

    /// Create an empty (all-received) bitmap covering
    /// `[base, base+nbits)`.
    pub fn new(base: u32, nbits: u16) -> Self {
        Bitmap {
            base,
            nbits,
            bits: vec![0; (nbits as usize).div_ceil(8)],
        }
    }

    /// Build a bitmap from an iterator of missing sequence numbers.
    ///
    /// `base` should be the smallest missing sequence number (or 0);
    /// sequence numbers outside `[base, base + nbits)` are rejected.
    pub fn from_missing<I: IntoIterator<Item = u32>>(
        base: u32,
        nbits: u16,
        missing: I,
    ) -> WireResult<Self> {
        let mut bm = Bitmap::new(base, nbits);
        for seq in missing {
            bm.set_missing(seq)?;
        }
        Ok(bm)
    }

    /// First sequence number covered.
    pub fn base(&self) -> u32 {
        self.base
    }

    /// Number of sequence numbers covered.
    pub fn nbits(&self) -> u16 {
        self.nbits
    }

    /// Mark `seq` missing.
    pub fn set_missing(&mut self, seq: u32) -> WireResult<()> {
        let idx = self.index_of(seq)?;
        self.bits[idx / 8] |= 1 << (idx % 8);
        Ok(())
    }

    /// Whether `seq` is marked missing.  Sequence numbers outside the
    /// covered range are reported as not missing.
    pub fn is_missing(&self, seq: u32) -> bool {
        match self.index_of(seq) {
            Ok(idx) => self.bits[idx / 8] & (1 << (idx % 8)) != 0,
            Err(_) => false,
        }
    }

    /// Iterate over the missing sequence numbers in increasing order.
    pub fn missing(&self) -> impl Iterator<Item = u32> + '_ {
        (0..u32::from(self.nbits))
            .filter(move |i| self.bits[(*i / 8) as usize] & (1 << (i % 8)) != 0)
            .map(move |i| self.base + i)
    }

    /// Number of missing sequence numbers.
    pub fn count_missing(&self) -> usize {
        self.bits.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// True when no packet is marked missing.
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&b| b == 0)
    }

    fn index_of(&self, seq: u32) -> WireResult<usize> {
        if seq < self.base || seq - self.base >= u32::from(self.nbits) {
            return Err(WireError::BadField {
                field: "bitmap seq",
            });
        }
        Ok((seq - self.base) as usize)
    }

    fn encoded_len(&self) -> usize {
        4 + 2 + self.bits.len()
    }
}

/// The payload of an acknowledgement packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AckPayload {
    /// Positive acknowledgement.  `acked` is the sequence number being
    /// acknowledged: the single packet for stop-and-wait/sliding-window
    /// acks, or the last packet's sequence number for a whole-blast ack.
    Positive {
        /// Sequence number acknowledged.
        acked: u32,
    },
    /// Negative acknowledgement carrying no detail: "retransmit
    /// everything" (strategy 2).
    NackFull,
    /// Negative acknowledgement carrying the first missing sequence
    /// number: "retransmit from here" (go-back-n, strategy 3).
    NackFirstMissing {
        /// The first sequence number not received.
        first_missing: u32,
    },
    /// Negative acknowledgement carrying the full set of missing packets
    /// (selective retransmission, strategy 4).
    NackBitmap(Bitmap),
}

impl AckPayload {
    /// Upper bound on [`encoded_len`](Self::encoded_len) over every
    /// variant — the stack/scratch buffer size that always suffices for
    /// in-place encoding (a full-width bitmap NACK plus its header).
    pub const MAX_ENCODED_LEN: usize = 1 + 4 + 2 + (Bitmap::MAX_BITS as usize) / 8;

    /// Number of bytes [`encode`](Self::encode) will write.
    pub fn encoded_len(&self) -> usize {
        match self {
            AckPayload::Positive { .. } => 1 + 4,
            AckPayload::NackFull => 1,
            AckPayload::NackFirstMissing { .. } => 1 + 4,
            AckPayload::NackBitmap(bm) => 1 + bm.encoded_len(),
        }
    }

    /// Serialize into `buf`, returning the number of bytes written.
    pub fn encode(&self, buf: &mut [u8]) -> WireResult<usize> {
        let need = self.encoded_len();
        if buf.len() < need {
            return Err(WireError::Truncated {
                needed: need,
                got: buf.len(),
            });
        }
        match self {
            AckPayload::Positive { acked } => {
                buf[0] = tag::POSITIVE;
                buf[1..5].copy_from_slice(&acked.to_be_bytes());
            }
            AckPayload::NackFull => {
                buf[0] = tag::NACK_FULL;
            }
            AckPayload::NackFirstMissing { first_missing } => {
                buf[0] = tag::NACK_FIRST_MISSING;
                buf[1..5].copy_from_slice(&first_missing.to_be_bytes());
            }
            AckPayload::NackBitmap(bm) => {
                buf[0] = tag::NACK_BITMAP;
                buf[1..5].copy_from_slice(&bm.base.to_be_bytes());
                buf[5..7].copy_from_slice(&bm.nbits.to_be_bytes());
                buf[7..7 + bm.bits.len()].copy_from_slice(&bm.bits);
            }
        }
        Ok(need)
    }

    /// Parse from the payload of an ack packet.
    pub fn decode(buf: &[u8]) -> WireResult<Self> {
        let (&tag_byte, rest) = buf
            .split_first()
            .ok_or(WireError::Truncated { needed: 1, got: 0 })?;
        match tag_byte {
            tag::POSITIVE => {
                let acked = read_u32(rest)?;
                Ok(AckPayload::Positive { acked })
            }
            tag::NACK_FULL => Ok(AckPayload::NackFull),
            tag::NACK_FIRST_MISSING => {
                let first_missing = read_u32(rest)?;
                Ok(AckPayload::NackFirstMissing { first_missing })
            }
            tag::NACK_BITMAP => {
                if rest.len() < 6 {
                    return Err(WireError::Truncated {
                        needed: 7,
                        got: buf.len(),
                    });
                }
                let base = u32::from_be_bytes([rest[0], rest[1], rest[2], rest[3]]);
                let nbits = u16::from_be_bytes([rest[4], rest[5]]);
                if nbits > Bitmap::MAX_BITS {
                    return Err(WireError::BadField {
                        field: "bitmap nbits",
                    });
                }
                let nbytes = (nbits as usize).div_ceil(8);
                let body = &rest[6..];
                if body.len() < nbytes {
                    return Err(WireError::Truncated {
                        needed: 7 + nbytes,
                        got: buf.len(),
                    });
                }
                let bits = body[..nbytes].to_vec();
                // Trailing bits beyond nbits must be zero so that the
                // encoding is canonical.
                if nbits % 8 != 0 {
                    let last = bits[nbytes - 1];
                    let mask = !((1u16 << (nbits % 8)) - 1) as u8;
                    if last & mask != 0 {
                        return Err(WireError::BadField {
                            field: "bitmap padding",
                        });
                    }
                }
                Ok(AckPayload::NackBitmap(Bitmap { base, nbits, bits }))
            }
            _ => Err(WireError::BadAck),
        }
    }

    /// True for any of the negative forms.
    pub fn is_nack(&self) -> bool {
        !matches!(self, AckPayload::Positive { .. })
    }
}

fn read_u32(buf: &[u8]) -> WireResult<u32> {
    if buf.len() < 4 {
        return Err(WireError::Truncated {
            needed: 4,
            got: buf.len(),
        });
    }
    Ok(u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]))
}

impl fmt::Display for AckPayload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AckPayload::Positive { acked } => write!(f, "ACK({acked})"),
            AckPayload::NackFull => write!(f, "NACK(full)"),
            AckPayload::NackFirstMissing { first_missing } => {
                write!(f, "NACK(from {first_missing})")
            }
            AckPayload::NackBitmap(bm) => {
                write!(f, "NACK({} missing of {})", bm.count_missing(), bm.nbits())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(p: &AckPayload) -> AckPayload {
        let mut buf = vec![0u8; p.encoded_len()];
        let n = p.encode(&mut buf).unwrap();
        assert_eq!(n, buf.len());
        AckPayload::decode(&buf).unwrap()
    }

    #[test]
    fn positive_roundtrip() {
        let p = AckPayload::Positive { acked: 63 };
        assert_eq!(roundtrip(&p), p);
        assert!(!p.is_nack());
        assert_eq!(p.to_string(), "ACK(63)");
    }

    #[test]
    fn nack_full_roundtrip() {
        let p = AckPayload::NackFull;
        assert_eq!(roundtrip(&p), p);
        assert!(p.is_nack());
        assert_eq!(p.encoded_len(), 1);
    }

    #[test]
    fn nack_first_missing_roundtrip() {
        let p = AckPayload::NackFirstMissing { first_missing: 17 };
        assert_eq!(roundtrip(&p), p);
        assert!(p.is_nack());
        assert!(p.to_string().contains("17"));
    }

    #[test]
    fn nack_bitmap_roundtrip() {
        let bm = Bitmap::from_missing(0, 64, [0, 7, 8, 17, 63]).unwrap();
        let p = AckPayload::NackBitmap(bm.clone());
        let back = roundtrip(&p);
        assert_eq!(back, p);
        if let AckPayload::NackBitmap(b) = back {
            assert_eq!(b.missing().collect::<Vec<_>>(), vec![0, 7, 8, 17, 63]);
            assert_eq!(b.count_missing(), 5);
        } else {
            panic!("wrong variant");
        }
    }

    #[test]
    fn bitmap_non_byte_aligned() {
        let bm = Bitmap::from_missing(10, 13, [10, 22]).unwrap();
        let p = AckPayload::NackBitmap(bm);
        let back = roundtrip(&p);
        if let AckPayload::NackBitmap(b) = back {
            assert!(b.is_missing(10));
            assert!(b.is_missing(22));
            assert!(!b.is_missing(11));
            assert!(!b.is_missing(23)); // out of range
            assert!(!b.is_missing(9)); // below base
        } else {
            panic!("wrong variant");
        }
    }

    #[test]
    fn bitmap_rejects_out_of_range() {
        let mut bm = Bitmap::new(5, 8);
        assert!(bm.set_missing(4).is_err());
        assert!(bm.set_missing(13).is_err());
        assert!(bm.set_missing(5).is_ok());
        assert!(bm.set_missing(12).is_ok());
    }

    #[test]
    fn bitmap_empty_and_count() {
        let bm = Bitmap::new(0, 32);
        assert!(bm.is_empty());
        assert_eq!(bm.count_missing(), 0);
        assert_eq!(bm.missing().count(), 0);
        let bm = Bitmap::from_missing(0, 32, 0..32).unwrap();
        assert_eq!(bm.count_missing(), 32);
    }

    #[test]
    fn decode_rejects_truncated() {
        assert!(AckPayload::decode(&[]).is_err());
        assert!(AckPayload::decode(&[tag::POSITIVE]).is_err());
        assert!(AckPayload::decode(&[tag::POSITIVE, 0, 0]).is_err());
        assert!(AckPayload::decode(&[tag::NACK_FIRST_MISSING, 1]).is_err());
        assert!(AckPayload::decode(&[tag::NACK_BITMAP, 0, 0, 0, 0]).is_err());
        // Bitmap that claims more bits than bytes present.
        assert!(AckPayload::decode(&[tag::NACK_BITMAP, 0, 0, 0, 0, 0, 16, 0xff]).is_err());
    }

    #[test]
    fn decode_rejects_unknown_tag() {
        assert_eq!(AckPayload::decode(&[0x7f]).unwrap_err(), WireError::BadAck);
    }

    #[test]
    fn decode_rejects_nbits_overflow() {
        let mut buf = vec![tag::NACK_BITMAP, 0, 0, 0, 0];
        buf.extend_from_slice(&(Bitmap::MAX_BITS + 1).to_be_bytes());
        buf.extend_from_slice(&vec![0; 2000]);
        assert!(matches!(
            AckPayload::decode(&buf).unwrap_err(),
            WireError::BadField {
                field: "bitmap nbits"
            }
        ));
    }

    #[test]
    fn decode_rejects_nonzero_padding_bits() {
        // 5 bits covered, but a bit beyond bit 4 set in the final byte.
        let buf = vec![tag::NACK_BITMAP, 0, 0, 0, 0, 0, 5, 0b0010_0000];
        assert!(matches!(
            AckPayload::decode(&buf).unwrap_err(),
            WireError::BadField {
                field: "bitmap padding"
            }
        ));
        // Same covered bits with clean padding parses.
        let buf = vec![tag::NACK_BITMAP, 0, 0, 0, 0, 0, 5, 0b0001_0001];
        assert!(AckPayload::decode(&buf).is_ok());
    }

    #[test]
    fn encode_rejects_short_buffer() {
        let p = AckPayload::Positive { acked: 1 };
        let mut buf = [0u8; 2];
        assert!(p.encode(&mut buf).is_err());
    }
}
