//! # blast-node — a concurrent blast transfer server over UDP
//!
//! The paper's engines move one transfer at a time; this crate serves
//! many at once through one socket, which is how modern bulk-transfer
//! services scale: a single node multiplexing many simultaneous
//! sessions, judged on aggregate concurrent throughput.
//!
//! * [`server`] — the node: a single-threaded event loop over a
//!   non-blocking `std::net::UdpSocket`, a timer wheel keyed by
//!   `(session, TimerToken)`, a session table fed by the `blast-udp`
//!   pre-allocation handshake, and a `blast_core::Demux` routing
//!   datagrams to per-session sans-I/O engines (any of the four
//!   retransmission strategies, in either direction);
//! * [`store`] — the in-memory named-blob catalogue the node serves —
//!   the `blast-vkernel` file-server semantics at the page level;
//! * [`client`] — one-call `push_blob` / `pull_blob` against a node;
//! * [`metrics`] — per-session reports and aggregate `blast-stats`
//!   accumulators.
//!
//! ## Example (server thread + two clients)
//!
//! ```
//! use std::time::Duration;
//! use blast_core::ProtocolConfig;
//! use blast_node::server::{NodeConfig, NodeServer};
//! use blast_node::client;
//!
//! let node = NodeServer::bind(NodeConfig::default()).unwrap().spawn().unwrap();
//! let mut cfg = ProtocolConfig::default();
//! cfg.timeout = Duration::from_millis(20).into();
//!
//! let data: Vec<u8> = (0..50_000u32).map(|i| i as u8).collect();
//! client::push_blob(client::connect(node.addr()).unwrap(), 1, "blob", &data, &cfg).unwrap();
//! let pulled = client::pull_blob(client::connect(node.addr()).unwrap(), 2, "blob", &cfg).unwrap();
//! assert_eq!(pulled.data, data);
//!
//! let server = node.shutdown().unwrap();
//! assert_eq!(server.metrics().sessions_completed, 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod metrics;
pub mod server;
pub mod store;

pub use client::{pull_blob, push_blob};
pub use metrics::{NodeMetrics, SessionReport};
pub use server::{NodeConfig, NodeHandle, NodeServer};
pub use store::{shared_store, BlobStore, SharedStore};
