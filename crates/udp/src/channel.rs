//! Datagram channels.

use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::time::Duration;

use blast_telemetry::Recorder;

use crate::netio::{BackendKind, NetIo, NetIoStats, OffloadState};

/// Largest datagram the drivers will send or receive.  Loopback UDP
/// carries much more than Ethernet; we keep a generous bound so large
/// packet-payload configurations still work.
pub const MAX_DATAGRAM: usize = 16 * 1024;

/// An unreliable datagram channel — the substrate the blast protocols
/// assume: datagrams may be lost, duplicated or reordered, never
/// corrupted silently (checksums convert corruption into loss).
pub trait Channel {
    /// Send one datagram.
    fn send(&mut self, buf: &[u8]) -> io::Result<()>;

    /// Receive one datagram into `buf` within `timeout`.
    /// Returns `Ok(None)` on timeout.
    fn recv_timeout(&mut self, buf: &mut [u8], timeout: Duration) -> io::Result<Option<usize>>;

    /// Stage one datagram for a batched [`flush`](Channel::flush).
    ///
    /// Channels with a batching backend queue the bytes and submit the
    /// whole burst in one kernel crossing; the default sends
    /// immediately, so wrappers and test channels stay correct without
    /// opting in.  Staged datagrams are delivered in staging order,
    /// and a direct [`send`](Channel::send) flushes anything staged
    /// first, so ordering is never violated.
    fn stage(&mut self, buf: &[u8]) -> io::Result<()> {
        self.send(buf)
    }

    /// Put every staged datagram on the wire.  Default: no-op (nothing
    /// queues).
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }

    /// Attach a flight recorder to the channel's I/O backend, for
    /// channels that trace syscall activity.  Wrappers should forward;
    /// the default discards the handle so test channels stay trivial.
    fn set_recorder(&mut self, _recorder: Recorder) {}
}

/// A mutable reference is itself a [`Channel`], so long-lived owners
/// (the `blast-node` `Client` handle) can lend their channel to a
/// by-value consumer (`Driver::new`) without giving it up.
impl<C: Channel + ?Sized> Channel for &mut C {
    fn send(&mut self, buf: &[u8]) -> io::Result<()> {
        (**self).send(buf)
    }

    fn recv_timeout(&mut self, buf: &mut [u8], timeout: Duration) -> io::Result<Option<usize>> {
        (**self).recv_timeout(buf, timeout)
    }

    fn stage(&mut self, buf: &[u8]) -> io::Result<()> {
        (**self).stage(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        (**self).flush()
    }

    fn set_recorder(&mut self, recorder: Recorder) {
        (**self).set_recorder(recorder)
    }
}

/// A connected UDP socket as a [`Channel`], running on a pluggable
/// [`NetIo`] backend: batched `sendmmsg`/`recvmmsg` submission with
/// event-driven (epoll + timerfd) waits on Linux, single-syscall
/// portable I/O elsewhere (or when `BLAST_NETIO=portable` forces it).
#[derive(Debug)]
pub struct UdpChannel {
    socket: UdpSocket,
    io: NetIo,
}

impl UdpChannel {
    /// Bind to `local` and connect to `remote`.  Both socket buffers
    /// are grown (best effort) so a whole blast round queues in the
    /// kernel instead of spilling — see [`crate::sockopt`].
    pub fn connect(local: SocketAddr, remote: SocketAddr) -> io::Result<Self> {
        let socket = UdpSocket::bind(local)?;
        crate::sockopt::grow_buffers(&socket);
        socket.connect(remote)?;
        Ok(Self::from_socket(socket))
    }

    /// Wrap an already-connected socket.
    pub fn from_socket(socket: UdpSocket) -> Self {
        let io = NetIo::connected(&socket);
        UdpChannel { socket, io }
    }

    /// Create a connected loopback pair on ephemeral ports — the
    /// test/example workhorse.
    pub fn pair() -> io::Result<(UdpChannel, UdpChannel)> {
        let a = UdpSocket::bind("127.0.0.1:0")?;
        let b = UdpSocket::bind("127.0.0.1:0")?;
        crate::sockopt::grow_buffers(&a);
        crate::sockopt::grow_buffers(&b);
        let a_addr = a.local_addr()?;
        let b_addr = b.local_addr()?;
        a.connect(b_addr)?;
        b.connect(a_addr)?;
        Ok((Self::from_socket(a), Self::from_socket(b)))
    }

    /// The local address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.socket.local_addr()
    }

    /// Which [`NetIo`] backend this channel runs.
    pub fn backend(&self) -> BackendKind {
        self.io.backend()
    }

    /// The backend's syscall counters.
    pub fn io_stats(&self) -> NetIoStats {
        self.io.stats
    }

    /// The segmentation-offload probe outcome for this channel's
    /// backend (see [`OffloadState`]).
    pub fn offload(&self) -> OffloadState {
        self.io.offload()
    }
}

impl Channel for UdpChannel {
    fn send(&mut self, buf: &[u8]) -> io::Result<()> {
        debug_assert!(buf.len() <= MAX_DATAGRAM, "datagram too large");
        // Queue-then-flush keeps ordering with any staged burst; drops
        // (peer's ICMP unreachable, full buffer) are loss, not failure,
        // and are counted in the backend stats.
        self.io.queue(&self.socket, buf)?;
        self.io.flush(&self.socket)
    }

    fn stage(&mut self, buf: &[u8]) -> io::Result<()> {
        debug_assert!(buf.len() <= MAX_DATAGRAM, "datagram too large");
        self.io.queue(&self.socket, buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.io.flush(&self.socket)
    }

    fn recv_timeout(&mut self, buf: &mut [u8], timeout: Duration) -> io::Result<Option<usize>> {
        self.io.recv(&self.socket, buf, timeout)
    }

    fn set_recorder(&mut self, recorder: Recorder) {
        self.io.set_recorder(recorder);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_roundtrips_datagrams() {
        let (mut a, mut b) = UdpChannel::pair().unwrap();
        a.send(b"hello").unwrap();
        let mut buf = [0u8; 64];
        let n = b
            .recv_timeout(&mut buf, Duration::from_secs(1))
            .unwrap()
            .unwrap();
        assert_eq!(&buf[..n], b"hello");

        b.send(b"world").unwrap();
        let n = a
            .recv_timeout(&mut buf, Duration::from_secs(1))
            .unwrap()
            .unwrap();
        assert_eq!(&buf[..n], b"world");
    }

    #[test]
    fn recv_times_out_cleanly() {
        let (mut a, _b) = UdpChannel::pair().unwrap();
        let mut buf = [0u8; 16];
        let got = a.recv_timeout(&mut buf, Duration::from_millis(5)).unwrap();
        assert_eq!(got, None);
    }

    #[test]
    fn datagram_boundaries_preserved() {
        let (mut a, mut b) = UdpChannel::pair().unwrap();
        a.send(b"one").unwrap();
        a.send(b"two").unwrap();
        let mut buf = [0u8; 64];
        let n = b
            .recv_timeout(&mut buf, Duration::from_secs(1))
            .unwrap()
            .unwrap();
        assert_eq!(n, 3);
        let n = b
            .recv_timeout(&mut buf, Duration::from_secs(1))
            .unwrap()
            .unwrap();
        assert_eq!(n, 3);
    }

    #[test]
    fn large_datagrams_within_bound() {
        let (mut a, mut b) = UdpChannel::pair().unwrap();
        let big = vec![0xa5u8; 8 * 1024];
        a.send(&big).unwrap();
        let mut buf = vec![0u8; MAX_DATAGRAM];
        let n = b
            .recv_timeout(&mut buf, Duration::from_secs(1))
            .unwrap()
            .unwrap();
        assert_eq!(n, big.len());
        assert_eq!(&buf[..n], &big[..]);
    }

    #[test]
    fn staged_burst_flushes_in_order() {
        let (mut a, mut b) = UdpChannel::pair().unwrap();
        for i in 0..40u8 {
            a.stage(&[i; 32]).unwrap();
        }
        a.flush().unwrap();
        let mut buf = [0u8; 64];
        for i in 0..40u8 {
            let n = b
                .recv_timeout(&mut buf, Duration::from_secs(1))
                .unwrap()
                .unwrap();
            assert_eq!(&buf[..n], &[i; 32][..], "staging order preserved");
        }
        assert_eq!(a.io_stats().datagrams_sent, 40);
    }

    #[test]
    fn direct_send_flushes_staged_first() {
        let (mut a, mut b) = UdpChannel::pair().unwrap();
        a.stage(b"first").unwrap();
        a.send(b"second").unwrap();
        let mut buf = [0u8; 16];
        let n = b
            .recv_timeout(&mut buf, Duration::from_secs(1))
            .unwrap()
            .unwrap();
        assert_eq!(&buf[..n], b"first");
        let n = b
            .recv_timeout(&mut buf, Duration::from_secs(1))
            .unwrap()
            .unwrap();
        assert_eq!(&buf[..n], b"second");
    }
}
