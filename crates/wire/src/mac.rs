//! Ethernet MAC addresses and EtherType values.
//!
//! The paper's transfers run between two SUN workstations identified by
//! their 3-Com interface station addresses; the standalone experiments
//! use raw Ethernet data-link framing with nothing above it (§2.1.1).

use core::fmt;
use core::str::FromStr;

use crate::error::WireError;

/// A 48-bit IEEE 802 MAC address.
///
/// ```
/// use blast_wire::mac::MacAddr;
/// let a: MacAddr = "02:60:8c:00:00:01".parse().unwrap();
/// assert_eq!(a.to_string(), "02:60:8c:00:00:01");
/// assert!(a.is_local());
/// assert!(!a.is_multicast());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address, `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);

    /// An all-zero address, used as "unset".
    pub const ZERO: MacAddr = MacAddr([0; 6]);

    /// Construct from the raw six octets.
    pub const fn new(octets: [u8; 6]) -> Self {
        MacAddr(octets)
    }

    /// A deterministic locally-administered unicast address derived from a
    /// small host index; used by the simulator and tests to label hosts.
    ///
    /// The 3-Com OUI was `02:60:8c`; we reuse it (with the local bit set,
    /// as original 3-Com cards did) for period flavour.
    pub const fn station(index: u16) -> Self {
        MacAddr([0x02, 0x60, 0x8c, 0x00, (index >> 8) as u8, index as u8])
    }

    /// Parse from a byte slice of length ≥ 6.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, WireError> {
        if bytes.len() < 6 {
            return Err(WireError::Truncated {
                needed: 6,
                got: bytes.len(),
            });
        }
        let mut octets = [0u8; 6];
        octets.copy_from_slice(&bytes[..6]);
        Ok(MacAddr(octets))
    }

    /// The raw octets.
    pub const fn octets(&self) -> [u8; 6] {
        self.0
    }

    /// True if this is the broadcast address.
    pub fn is_broadcast(&self) -> bool {
        *self == Self::BROADCAST
    }

    /// True if the group (multicast) bit is set.
    pub fn is_multicast(&self) -> bool {
        self.0[0] & 0x01 != 0
    }

    /// True for unicast (neither multicast nor broadcast).
    pub fn is_unicast(&self) -> bool {
        !self.is_multicast()
    }

    /// True if the locally-administered bit is set.
    pub fn is_local(&self) -> bool {
        self.0[0] & 0x02 != 0
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = &self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            o[0], o[1], o[2], o[3], o[4], o[5]
        )
    }
}

impl fmt::Debug for MacAddr {
    // Forward to `Display`: keeps trace output readable.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl FromStr for MacAddr {
    type Err = WireError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut octets = [0u8; 6];
        let mut count = 0;
        for part in s.split(&[':', '-'][..]) {
            if count == 6 {
                return Err(WireError::BadField { field: "mac" });
            }
            octets[count] =
                u8::from_str_radix(part, 16).map_err(|_| WireError::BadField { field: "mac" })?;
            count += 1;
        }
        if count != 6 {
            return Err(WireError::BadField { field: "mac" });
        }
        Ok(MacAddr(octets))
    }
}

impl From<[u8; 6]> for MacAddr {
    fn from(octets: [u8; 6]) -> Self {
        MacAddr(octets)
    }
}

/// The 16-bit EtherType field of an Ethernet II frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EtherType(pub u16);

impl EtherType {
    /// EtherType we register for blast transport frames.
    ///
    /// Experimental/private EtherTypes live above 0x8000; `0xB1A5` reads
    /// as "BLAS(t)".
    pub const BLAST: EtherType = EtherType(0xB1A5);

    /// IPv4, for interoperability tests of the frame parser.
    pub const IPV4: EtherType = EtherType(0x0800);

    /// ARP, for interoperability tests of the frame parser.
    pub const ARP: EtherType = EtherType(0x0806);

    /// The raw value.
    pub const fn raw(&self) -> u16 {
        self.0
    }
}

impl fmt::Display for EtherType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            EtherType::BLAST => write!(f, "BLAST"),
            EtherType::IPV4 => write!(f, "IPv4"),
            EtherType::ARP => write!(f, "ARP"),
            EtherType(other) => write!(f, "{other:#06x}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn station_addresses_are_distinct_local_unicast() {
        let a = MacAddr::station(1);
        let b = MacAddr::station(2);
        let c = MacAddr::station(0x1234);
        assert_ne!(a, b);
        assert_ne!(b, c);
        for m in [a, b, c] {
            assert!(m.is_unicast());
            assert!(m.is_local());
            assert!(!m.is_broadcast());
        }
        assert_eq!(c.octets()[4], 0x12);
        assert_eq!(c.octets()[5], 0x34);
    }

    #[test]
    fn broadcast_properties() {
        assert!(MacAddr::BROADCAST.is_broadcast());
        assert!(MacAddr::BROADCAST.is_multicast());
        assert!(!MacAddr::BROADCAST.is_unicast());
    }

    #[test]
    fn parse_and_display_roundtrip() {
        for s in [
            "02:60:8c:00:00:01",
            "ff:ff:ff:ff:ff:ff",
            "00:00:00:00:00:00",
        ] {
            let m: MacAddr = s.parse().unwrap();
            assert_eq!(m.to_string(), s);
        }
        // Dash-separated also accepted.
        let m: MacAddr = "02-60-8c-00-00-01".parse().unwrap();
        assert_eq!(m, MacAddr::station(1));
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!("".parse::<MacAddr>().is_err());
        assert!("02:60:8c:00:00".parse::<MacAddr>().is_err());
        assert!("02:60:8c:00:00:01:02".parse::<MacAddr>().is_err());
        assert!("02:60:8c:00:00:zz".parse::<MacAddr>().is_err());
        assert!("hello".parse::<MacAddr>().is_err());
    }

    #[test]
    fn from_bytes_requires_six() {
        assert!(MacAddr::from_bytes(&[1, 2, 3]).is_err());
        let m = MacAddr::from_bytes(&[1, 2, 3, 4, 5, 6, 7]).unwrap();
        assert_eq!(m.octets(), [1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn ethertype_display() {
        assert_eq!(EtherType::BLAST.to_string(), "BLAST");
        assert_eq!(EtherType::IPV4.to_string(), "IPv4");
        assert_eq!(EtherType::ARP.to_string(), "ARP");
        assert_eq!(EtherType(0x88cc).to_string(), "0x88cc");
    }

    #[test]
    fn debug_matches_display() {
        let m = MacAddr::station(3);
        assert_eq!(format!("{m:?}"), m.to_string());
    }
}
