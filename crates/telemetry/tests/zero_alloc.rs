//! The tentpole claim, proven: recording a flight-recorder event in
//! steady state performs **exactly zero** heap allocations — in the
//! normal case, on the overflow/drop path, and through the sans-I/O
//! `record_at` door the engines use.  Draining is the reader's business
//! and may allocate; that is asserted too so the counter is known live.
//!
//! One `#[test]` on purpose: the allocation counter is process-global,
//! and a sibling test on another thread would pollute the window.

use std::time::Duration;

use blast_counting_alloc::{allocations, CountingAlloc};
use blast_telemetry::{EventKind, Telemetry};

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn record_path_allocates_exactly_zero() {
    // All construction — rings, recorder handles — happens up front;
    // that is the one-time cost the reactor pays before serving.
    let tel = Telemetry::new(2, 1024);
    let rec = tel.recorder(0);
    let other = tel.recorder(1);

    // Warm-up: one event through each path, then drain, so anything
    // lazily initialised is behind us.
    rec.record(1, EventKind::RoundStart, 0, 64);
    other.record_at(Duration::from_micros(5), 2, EventKind::StatusSend, 1, 0);
    let warm = tel.drain();
    assert_eq!(warm.len(), 2);

    // Steady state: a full ring's worth of wall-clock records plus a
    // full ring's worth of engine-clock records, across every kind.
    let before = allocations();
    for i in 0..1024u64 {
        let kind = EventKind::ALL[(i % EventKind::ALL.len() as u64) as usize];
        assert!(rec.record(1, kind, i, i * 2));
    }
    for i in 0..1024u64 {
        let kind = EventKind::ALL[(i % EventKind::ALL.len() as u64) as usize];
        assert!(other.record_at(Duration::from_nanos(i), 2, kind, i, 0));
    }
    assert_eq!(
        allocations() - before,
        0,
        "recording an event must not allocate"
    );

    // The overflow path is just as clean: both rings are now full, so
    // every further offer is counted and dropped without touching the
    // heap.
    let before = allocations();
    for i in 0..512u64 {
        assert!(!rec.record(1, EventKind::ShardTick, i, 0));
        assert!(!other.record(2, EventKind::ShardTick, i, 0));
    }
    assert_eq!(
        allocations() - before,
        0,
        "the drop path must not allocate either"
    );
    assert_eq!(tel.dropped(), 1024);

    // Sanity that the counter is live: the drain (reader side, off the
    // packet path) is allowed to allocate and visibly does.
    let before = allocations();
    let events = tel.drain();
    assert!(
        allocations() - before > 0,
        "the counting allocator must observe the drain's buffer"
    );
    assert_eq!(events.len(), 2048);
    assert_eq!(tel.accepted(), 2050, "2 warm-up + 2048 steady-state");
}
