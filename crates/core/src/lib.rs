//! # blast-core — sans-I/O engines for large data transfers
//!
//! This crate implements the three protocol classes analyzed in
//! *W. Zwaenepoel, "Protocols for Large Data Transfers over Local
//! Networks", SIGCOMM 1985*, plus the four blast retransmission
//! strategies of §3.2:
//!
//! | Protocol | Module | Paper section |
//! |---|---|---|
//! | stop-and-wait | [`saw`] | §2.1, Fig. 3.a |
//! | sliding window | [`window`] | §2.1, Fig. 3.c |
//! | blast | [`blast`] | §2.1, Fig. 3.b, §3 |
//! | multi-blast | [`multiblast`] | §3.1.3 ("use of multiple blasts") |
//!
//! Blast retransmission strategies ([`config::RetxStrategy`]):
//!
//! 1. full retransmission on error, no negative acknowledgement;
//! 2. full retransmission with a NACK after the last packet;
//! 3. retransmission from the first packet not received (go-back-n) —
//!    the paper's recommended strategy;
//! 4. selective retransmission of exactly the packets not received.
//!
//! ## Sans-I/O design
//!
//! Engines are *pure state machines*: they receive parsed datagrams and
//! timer expirations, and emit [`api::Action`]s (transmit, set/cancel
//! timer, complete).  They never touch sockets or clocks.  The same
//! engine code runs:
//!
//! * under the discrete-event simulator (`blast-sim`) to reproduce the
//!   paper's measurements, where "transmit" costs simulated processor
//!   copy time `C` into the network interface;
//! * over real UDP sockets (`blast-udp`);
//! * directly in unit/property tests via [`harness`].
//!
//! This mirrors the paper's protocol structure: the V kernel protocol is
//! "implemented at the network interrupt level", i.e. it *is* a reactive
//! state machine driven by packet arrival and timer interrupts.
//!
//! ## Assumptions inherited from the paper
//!
//! * The receiver has buffers for the whole transfer allocated before the
//!   transfer starts ([`rxbuf::RxBuffer`] is created up front; data
//!   packets are copied straight into their final position, no
//!   reassembly queues).
//! * Sender and receiver are matched in speed (no flow control beyond
//!   the optional sliding-window limit; the paper's window "never
//!   closes").
//! * Errors are packet *losses*: corrupted packets are dropped by the
//!   wire layer's checksums, exactly as the Ethernet FCS dropped them in
//!   1985 (see `blast-wire`).
//!
//! ## Quick example
//!
//! ```
//! use blast_core::config::ProtocolConfig;
//! use blast_core::blast::{BlastSender, BlastReceiver};
//! use blast_core::harness::{Harness, LossPlan};
//!
//! let config = ProtocolConfig::default();
//! let data: Vec<u8> = (0..10_000u32).map(|i| i as u8).collect();
//! let sender = BlastSender::new(1, data.clone().into(), &config);
//! let receiver = BlastReceiver::new(1, data.len(), &config);
//!
//! let mut h = Harness::new(sender, receiver, LossPlan::perfect());
//! let outcome = h.run().expect("transfer completes");
//! assert_eq!(h.received_data(), &data[..]);
//! assert_eq!(outcome.sender.data_packets_sent, 10); // 10 × 1 KiB packets
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod blast;
pub mod config;
pub mod control;
pub mod demux;
pub mod engine;
pub mod error;
pub mod harness;
pub mod multiblast;
pub mod pool;
pub mod rxbuf;
pub mod saw;
pub mod txdata;
pub mod window;

pub use api::{Action, CompletionInfo, EngineStats, Outcome, TimerToken};
pub use config::{ProtocolConfig, ProtocolKind, RetxStrategy};
pub use control::{
    AdaptiveTimeout, DeliveryRateEstimator, Pacer, PacerSnapshot, PacingConfig, RttEstimator,
    PACE_TIMER, RATE_WINDOW, RTT_WINDOW,
};
pub use engine::Engine;
pub use error::{CoreError, CoreResult};
pub use pool::{BufferPool, PooledBuf};
