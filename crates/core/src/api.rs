//! The action vocabulary engines use to talk to their driver, plus
//! completion bookkeeping.

use core::fmt;
use std::time::Duration;

use crate::error::CoreError;
use crate::pool::PooledBuf;

/// Identifies a timer within one engine.
///
/// Tokens are engine-scoped: the driver keys pending timers by
/// `(engine, token)`.  Setting a timer with a token that is already
/// pending **replaces** it; cancelling a non-pending token is a no-op.
/// Stop-and-wait and blast engines use a single token; the sliding-window
/// sender uses one token per in-flight packet (its sequence number).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TimerToken(pub u64);

/// One instruction from an engine to its driver.
///
/// The driver executes actions *in order*.  Order matters: the paper's
/// cost model charges processor copy time per transmitted packet, so the
/// simulator turns each `Transmit` into "occupy the CPU for `C`, then
/// hand the frame to the interface" in emission order, which is exactly
/// how the measured SUN code behaved (copy loop, then start transmit).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Hand a complete transport datagram (header + payload, as produced
    /// by `blast_wire::DatagramBuilder`) to the network.
    ///
    /// The bytes ride in a [`PooledBuf`]: engines build packets in
    /// buffers checked out of the shared [`crate::pool::BufferPool`],
    /// and the driver dropping the executed action checks the buffer
    /// back in — the steady-state packet loop allocates nothing.
    Transmit(PooledBuf),
    /// Arm (or re-arm) the timer `token` to fire after `after`.
    SetTimer {
        /// Engine-scoped timer identity.
        token: TimerToken,
        /// Relative expiry.
        after: Duration,
    },
    /// Cancel the timer `token` if pending.
    CancelTimer {
        /// Engine-scoped timer identity.
        token: TimerToken,
    },
    /// The engine has finished, successfully or not.  No further actions
    /// will be emitted; the driver may drop the engine.
    Complete(Box<CompletionInfo>),
}

impl Action {
    /// Convenience: the transmitted bytes if this is a `Transmit`.
    pub fn as_transmit(&self) -> Option<&[u8]> {
        match self {
            Action::Transmit(bytes) => Some(bytes),
            _ => None,
        }
    }
}

/// Sink for engine actions.
///
/// A plain `Vec<Action>` implements this; drivers that want to avoid the
/// intermediate vector can implement it directly.
pub trait ActionSink {
    /// Receive one action.
    fn push_action(&mut self, action: Action);
}

impl ActionSink for Vec<Action> {
    fn push_action(&mut self, action: Action) {
        self.push(action);
    }
}

/// Statistics one engine accumulated over its lifetime.
///
/// These are what the paper's experiments count: total packets placed on
/// the wire (each costs `C` or `Ca` of processor copy time plus `T` or
/// `Ta` of transmission time), how many of those were retransmissions,
/// and how many retransmission rounds (timeout or NACK triggered) the
/// transfer needed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Data packets transmitted, including retransmissions.
    pub data_packets_sent: u64,
    /// Data packets that were retransmissions.
    pub data_packets_retransmitted: u64,
    /// Acknowledgement packets transmitted (positive and negative).
    pub acks_sent: u64,
    /// Negative acknowledgements among `acks_sent`.
    pub nacks_sent: u64,
    /// Data packets received and newly placed in the buffer.
    pub data_packets_received: u64,
    /// Data packets received that were duplicates of already-placed data.
    pub duplicate_packets_received: u64,
    /// Acknowledgements received (positive and negative).
    pub acks_received: u64,
    /// Retransmission rounds: how many times the sender reacted to a
    /// timeout or NACK by sending more data (0 for an error-free run).
    pub retransmission_rounds: u64,
    /// Timer expirations the engine acted on.
    pub timeouts: u64,
}

impl EngineStats {
    /// Merge another engine's counters into this one (used by multiblast
    /// to aggregate per-chunk stats).
    pub fn absorb(&mut self, other: &EngineStats) {
        self.data_packets_sent += other.data_packets_sent;
        self.data_packets_retransmitted += other.data_packets_retransmitted;
        self.acks_sent += other.acks_sent;
        self.nacks_sent += other.nacks_sent;
        self.data_packets_received += other.data_packets_received;
        self.duplicate_packets_received += other.duplicate_packets_received;
        self.acks_received += other.acks_received;
        self.retransmission_rounds += other.retransmission_rounds;
        self.timeouts += other.timeouts;
    }
}

/// Why and how an engine finished.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompletionInfo {
    /// `Ok(bytes_transferred)` on success, the failure otherwise.
    pub result: Result<usize, CoreError>,
    /// Counters accumulated over the engine's lifetime.
    pub stats: EngineStats,
}

impl CompletionInfo {
    /// Successful completion of `bytes` bytes.
    pub fn success(bytes: usize, stats: EngineStats) -> Self {
        CompletionInfo {
            result: Ok(bytes),
            stats,
        }
    }

    /// Failed completion.
    pub fn failure(err: CoreError, stats: EngineStats) -> Self {
        CompletionInfo {
            result: Err(err),
            stats,
        }
    }

    /// True if the transfer succeeded.
    pub fn is_success(&self) -> bool {
        self.result.is_ok()
    }
}

impl fmt::Display for CompletionInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.result {
            Ok(bytes) => write!(
                f,
                "ok: {} bytes, {} data pkts ({} retx), {} rounds",
                bytes,
                self.stats.data_packets_sent,
                self.stats.data_packets_retransmitted,
                self.stats.retransmission_rounds
            ),
            Err(e) => write!(f, "failed: {e}"),
        }
    }
}

/// The pair of completions a full transfer produces, as reported by test
/// harnesses and drivers that run both ends.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outcome {
    /// Sender-side counters.
    pub sender: EngineStats,
    /// Receiver-side counters.
    pub receiver: EngineStats,
    /// Bytes delivered.
    pub bytes: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn action_as_transmit() {
        let a = Action::Transmit(vec![1, 2, 3].into());
        assert_eq!(a.as_transmit(), Some(&[1u8, 2, 3][..]));
        let a = Action::CancelTimer {
            token: TimerToken(0),
        };
        assert_eq!(a.as_transmit(), None);
    }

    #[test]
    fn vec_is_an_action_sink() {
        let mut v: Vec<Action> = Vec::new();
        v.push_action(Action::SetTimer {
            token: TimerToken(3),
            after: Duration::from_millis(5),
        });
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn stats_absorb_sums_everything() {
        let mut a = EngineStats {
            data_packets_sent: 1,
            data_packets_retransmitted: 2,
            acks_sent: 3,
            nacks_sent: 4,
            data_packets_received: 5,
            duplicate_packets_received: 6,
            acks_received: 7,
            retransmission_rounds: 8,
            timeouts: 9,
        };
        let b = a;
        a.absorb(&b);
        assert_eq!(a.data_packets_sent, 2);
        assert_eq!(a.data_packets_retransmitted, 4);
        assert_eq!(a.acks_sent, 6);
        assert_eq!(a.nacks_sent, 8);
        assert_eq!(a.data_packets_received, 10);
        assert_eq!(a.duplicate_packets_received, 12);
        assert_eq!(a.acks_received, 14);
        assert_eq!(a.retransmission_rounds, 16);
        assert_eq!(a.timeouts, 18);
    }

    #[test]
    fn completion_display() {
        let ok = CompletionInfo::success(1024, EngineStats::default());
        assert!(ok.to_string().contains("1024 bytes"));
        assert!(ok.is_success());
        let bad = CompletionInfo::failure(CoreError::Cancelled, EngineStats::default());
        assert!(bad.to_string().contains("cancelled"));
        assert!(!bad.is_success());
    }
}
