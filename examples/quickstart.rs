//! Quickstart: transfer a buffer with the blast protocol, three ways.
//!
//! 1. Through the virtual-time correctness harness (pure engines).
//! 2. Through the calibrated 1985 simulator (paper timings).
//! 3. Over real UDP loopback (actual wall-clock).
//!
//! Run with: `cargo run --release --example quickstart`

use std::time::Duration;

use blastlan::core::blast::{BlastReceiver, BlastSender};
use blastlan::core::harness::{Harness, LossPlan};
use blastlan::core::ProtocolConfig;
use blastlan::sim::{SimConfig, Simulator};
use blastlan::udp::channel::UdpChannel;
use blastlan::udp::peer::{recv_data, send_data};

fn main() {
    let data: Vec<u8> = (0..64 * 1024).map(|i| (i % 251) as u8).collect();
    println!(
        "transferring {} KB with the blast protocol (go-back-n)\n",
        data.len() / 1024
    );

    // 1. Virtual-time harness with 1 % injected loss.
    let cfg = ProtocolConfig::default();
    let mut h = Harness::new(
        BlastSender::new(1, data.clone().into(), &cfg),
        BlastReceiver::new(1, data.len(), &cfg),
        LossPlan::random(42, 1, 100),
    );
    let outcome = h.run().expect("transfer completes");
    assert_eq!(h.received_data(), &data[..]);
    println!("[harness]   delivered intact under 1 % loss:");
    println!(
        "            {} data packets sent, {} retransmitted, {} wire packets dropped",
        outcome.sender.data_packets_sent, outcome.sender.data_packets_retransmitted, h.dropped
    );

    // 2. The 1985 testbed: SUN workstations, 3-Com interfaces, 10 Mbit
    //    Ethernet, error-free.
    let mut sim = Simulator::new(SimConfig::standalone());
    let a = sim.add_host("sun-1");
    let b = sim.add_host("sun-2");
    sim.attach(
        a,
        b,
        Box::new(BlastSender::new(1, data.clone().into(), &cfg)),
    );
    sim.attach(b, a, Box::new(BlastReceiver::new(1, data.len(), &cfg)));
    let report = sim.run();
    println!(
        "[simulator] 64 KB on the paper's hardware: {:.2} ms (paper's Table 1 value: 141 ms)",
        report.elapsed_ms(a, 1).unwrap()
    );
    println!(
        "            network utilization {:.1} %",
        report.utilization() * 100.0
    );

    // 3. Real UDP over loopback.
    let (ca, cb) = UdpChannel::pair().unwrap();
    let mut ucfg = ProtocolConfig::default();
    ucfg.timeout = Duration::from_millis(25).into();
    let ucfg2 = ucfg.clone();
    let rx = std::thread::spawn(move || recv_data(cb, &ucfg2).unwrap());
    let tx = send_data(ca, 7, &data, &ucfg).unwrap();
    let report = rx.join().unwrap();
    assert_eq!(report.data, data);
    println!(
        "[udp]       real loopback transfer: {:.2} ms, {:.0} Mbit/s goodput",
        tx.elapsed.as_secs_f64() * 1e3,
        report.goodput_mbps(data.len())
    );
    println!("\n(the 1985 Ethernet carried it at ~3.7 Mbit/s; same protocol, same engine)");
}
