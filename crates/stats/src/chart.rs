//! ASCII line charts, for regenerating the paper's figures in a
//! terminal.
//!
//! Figures 4–6 of the paper are line charts (elapsed time vs transfer
//! size; expected time and standard deviation vs error rate on a log-x
//! axis).  [`Chart`] renders multiple named series onto a character
//! grid, interpolating between data points column-by-column so curves
//! read as curves.

/// A multi-series line chart.
///
/// ```
/// use blast_stats::Chart;
/// let mut c = Chart::new("demo", 40, 10);
/// c.series("linear", (0..10).map(|i| (i as f64, i as f64)).collect());
/// let s = c.render();
/// assert!(s.contains("demo"));
/// assert!(s.contains("a = linear"));
/// ```
#[derive(Debug, Clone)]
pub struct Chart {
    title: String,
    width: usize,
    height: usize,
    x_log: bool,
    y_log: bool,
    x_label: String,
    y_label: String,
    series: Vec<(String, Vec<(f64, f64)>)>,
}

impl Chart {
    /// New chart with a plot area of `width × height` characters.
    pub fn new(title: &str, width: usize, height: usize) -> Self {
        Chart {
            title: title.to_string(),
            width: width.max(16),
            height: height.max(4),
            x_log: false,
            y_log: false,
            x_label: String::new(),
            y_label: String::new(),
            series: Vec::new(),
        }
    }

    /// Use a logarithmic x axis (the error-rate axis of Figures 5/6).
    pub fn log_x(mut self) -> Self {
        self.x_log = true;
        self
    }

    /// Use a logarithmic y axis.
    pub fn log_y(mut self) -> Self {
        self.y_log = true;
        self
    }

    /// Set the axis labels.
    pub fn labels(mut self, x: &str, y: &str) -> Self {
        self.x_label = x.to_string();
        self.y_label = y.to_string();
        self
    }

    /// Add a named series.  Points with non-finite or (on log axes)
    /// non-positive coordinates are skipped.
    pub fn series(&mut self, name: &str, mut points: Vec<(f64, f64)>) {
        points.retain(|(x, y)| {
            x.is_finite() && y.is_finite() && (!self.x_log || *x > 0.0) && (!self.y_log || *y > 0.0)
        });
        points.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite by retain"));
        self.series.push((name.to_string(), points));
    }

    fn tx(&self, x: f64) -> f64 {
        if self.x_log {
            x.ln()
        } else {
            x
        }
    }

    fn ty(&self, y: f64) -> f64 {
        if self.y_log {
            y.ln()
        } else {
            y
        }
    }

    /// Render the chart to a string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.title);
        out.push('\n');
        let all: Vec<(f64, f64)> = self
            .series
            .iter()
            .flat_map(|(_, pts)| pts.iter().copied())
            .collect();
        if all.is_empty() {
            out.push_str("(no data)\n");
            return out;
        }
        let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
        for &(x, y) in &all {
            x_min = x_min.min(self.tx(x));
            x_max = x_max.max(self.tx(x));
            y_min = y_min.min(self.ty(y));
            y_max = y_max.max(self.ty(y));
        }
        if (x_max - x_min).abs() < 1e-12 {
            x_max = x_min + 1.0;
        }
        if (y_max - y_min).abs() < 1e-12 {
            y_max = y_min + 1.0;
        }

        let mut grid = vec![vec![' '; self.width]; self.height];
        for (si, (_, pts)) in self.series.iter().enumerate() {
            let marker = (b'a' + (si % 26) as u8) as char;
            if pts.is_empty() {
                continue;
            }
            if pts.len() == 1 {
                self.plot(&mut grid, pts[0], marker, x_min, x_max, y_min, y_max);
                continue;
            }
            // Column-wise interpolation in transformed space.  The row
            // index is data-dependent, so `grid` cannot be walked with
            // an iterator here.
            #[allow(clippy::needless_range_loop)]
            for col in 0..self.width {
                let x_t = x_min + (x_max - x_min) * col as f64 / (self.width - 1) as f64;
                let Some(y_t) = interpolate(pts, x_t, |v| self.tx(v), |v| self.ty(v)) else {
                    continue;
                };
                let row = self.row_of(y_t, y_min, y_max);
                grid[row][col] = marker;
            }
        }

        // Y axis with three tick labels.
        let y_disp = |t: f64| if self.y_log { t.exp() } else { t };
        let top_label = fmt_axis(y_disp(y_max));
        let mid_label = fmt_axis(y_disp((y_min + y_max) / 2.0));
        let bot_label = fmt_axis(y_disp(y_min));
        let label_w = top_label.len().max(mid_label.len()).max(bot_label.len());
        for (r, row) in grid.iter().enumerate() {
            let label = if r == 0 {
                &top_label
            } else if r == self.height / 2 {
                &mid_label
            } else if r == self.height - 1 {
                &bot_label
            } else {
                ""
            };
            out.push_str(&format!("{label:>label_w$} |"));
            out.extend(row.iter());
            out.push('\n');
        }
        // X axis.
        out.push_str(&format!("{:>label_w$} +{}\n", "", "-".repeat(self.width)));
        let x_disp = |t: f64| if self.x_log { t.exp() } else { t };
        let left = fmt_axis(x_disp(x_min));
        let right = fmt_axis(x_disp(x_max));
        let gap = self.width.saturating_sub(left.len() + right.len());
        out.push_str(&format!(
            "{:>label_w$}  {left}{}{right}\n",
            "",
            " ".repeat(gap)
        ));
        if !self.x_label.is_empty() || !self.y_label.is_empty() {
            out.push_str(&format!(
                "{:>label_w$}  x: {}   y: {}\n",
                "", self.x_label, self.y_label
            ));
        }
        for (si, (name, _)) in self.series.iter().enumerate() {
            let marker = (b'a' + (si % 26) as u8) as char;
            out.push_str(&format!("{:>label_w$}  {marker} = {name}\n", ""));
        }
        out
    }

    fn row_of(&self, y_t: f64, y_min: f64, y_max: f64) -> usize {
        let frac = (y_t - y_min) / (y_max - y_min);
        let r = ((1.0 - frac) * (self.height - 1) as f64).round();
        (r as isize).clamp(0, self.height as isize - 1) as usize
    }

    #[allow(clippy::too_many_arguments)]
    fn plot(
        &self,
        grid: &mut [Vec<char>],
        p: (f64, f64),
        marker: char,
        x_min: f64,
        x_max: f64,
        y_min: f64,
        y_max: f64,
    ) {
        let x_t = self.tx(p.0);
        let y_t = self.ty(p.1);
        let col = (((x_t - x_min) / (x_max - x_min)) * (self.width - 1) as f64).round();
        let col = (col as isize).clamp(0, self.width as isize - 1) as usize;
        let row = self.row_of(y_t, y_min, y_max);
        grid[row][col] = marker;
    }
}

/// Format an axis tick value: plain decimal in the comfortable range,
/// scientific notation for very small/large magnitudes (log axes).
fn fmt_axis(v: f64) -> String {
    let a = v.abs();
    if v != 0.0 && !(1e-2..1e5).contains(&a) {
        format!("{v:.1e}")
    } else {
        format!("{v:.4}")
    }
}

/// Interpolate `y` (transformed) at transformed-x `x_t` along the
/// piecewise-linear curve through `pts`; `None` outside the domain.
fn interpolate(
    pts: &[(f64, f64)],
    x_t: f64,
    tx: impl Fn(f64) -> f64,
    ty: impl Fn(f64) -> f64,
) -> Option<f64> {
    let first = tx(pts.first()?.0);
    let last = tx(pts.last()?.0);
    if x_t < first - 1e-12 || x_t > last + 1e-12 {
        return None;
    }
    for w in pts.windows(2) {
        let (x0, y0) = (tx(w[0].0), ty(w[0].1));
        let (x1, y1) = (tx(w[1].0), ty(w[1].1));
        if x_t <= x1 + 1e-12 {
            if (x1 - x0).abs() < 1e-12 {
                return Some(y1);
            }
            let f = ((x_t - x0) / (x1 - x0)).clamp(0.0, 1.0);
            return Some(y0 + (y1 - y0) * f);
        }
    }
    Some(ty(pts.last().expect("non-empty").1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_two_series_with_legend() {
        let mut c = Chart::new("Figure: demo", 40, 12).labels("N", "ms");
        c.series(
            "slow",
            (1..=10).map(|i| (i as f64, 2.0 * i as f64)).collect(),
        );
        c.series("fast", (1..=10).map(|i| (i as f64, i as f64)).collect());
        let s = c.render();
        assert!(s.contains("Figure: demo"));
        assert!(s.contains("a = slow"));
        assert!(s.contains("b = fast"));
        assert!(s.contains("x: N"));
        // Both markers appear in the plot area.
        assert!(s.contains('a') && s.contains('b'));
    }

    #[test]
    fn log_x_positions_decades_evenly() {
        let mut c = Chart::new("t", 31, 5).log_x();
        c.series("s", vec![(1e-6, 1.0), (1e-4, 1.0), (1e-2, 1.0)]);
        let s = c.render();
        // A flat series on log-x spans the full width on one row.
        let data_row = s.lines().find(|l| l.contains('a')).unwrap();
        let count = data_row.matches('a').count();
        assert!(count >= 29, "interpolation should fill the row: {count}");
    }

    #[test]
    fn empty_chart_is_graceful() {
        let c = Chart::new("empty", 30, 8);
        assert!(c.render().contains("(no data)"));
    }

    #[test]
    fn nonpositive_points_dropped_on_log_axes() {
        let mut c = Chart::new("t", 20, 5).log_x().log_y();
        c.series(
            "s",
            vec![
                (0.0, 1.0),
                (-1.0, 2.0),
                (1.0, 0.0),
                (1.0, 1.0),
                (10.0, 10.0),
            ],
        );
        let s = c.render();
        assert!(s.contains('a'));
    }

    #[test]
    fn single_point_series_plots() {
        let mut c = Chart::new("t", 20, 5);
        c.series("dot", vec![(5.0, 5.0)]);
        assert!(c.render().contains('a'));
    }

    #[test]
    fn monotone_series_renders_monotone_rows() {
        let mut c = Chart::new("t", 30, 10);
        c.series("inc", (0..30).map(|i| (i as f64, i as f64)).collect());
        let s = c.render();
        // First data line (top) should contain the marker near the right.
        let lines: Vec<&str> = s.lines().filter(|l| l.contains('|')).collect();
        let top_pos = lines.first().unwrap().rfind('a').unwrap();
        let bot_pos = lines.last().unwrap().find('a').unwrap();
        assert!(
            top_pos > bot_pos,
            "increasing series: top-right vs bottom-left"
        );
    }

    #[test]
    fn axis_bounds_render_values() {
        let mut c = Chart::new("t", 30, 6);
        c.series("s", vec![(2.0, 10.0), (4.0, 20.0)]);
        let s = c.render();
        assert!(s.contains("2.0000"));
        assert!(s.contains("4.0000"));
        assert!(s.contains("20.0000"));
    }
}
