//! The pre-allocated receive buffer.
//!
//! Central to the paper's protocol definition: "the recipient has
//! sufficient buffers allocated to receive the data prior to the
//! transfer" (§2), which is what lets the kernel "move data … from the
//! network interface of the receiving machine into the destination
//! address space … without an intermediate copy".  [`RxBuffer`] is that
//! destination address space: data packets land at `offset` directly,
//! and a bitmap tracks which packets have arrived — the same bitmap the
//! selective-retransmission NACK reports (§3.2.3).

use blast_wire::ack::Bitmap;

use crate::error::{CoreError, CoreResult};

/// A pre-allocated receive buffer with per-packet arrival tracking.
#[derive(Debug, Clone)]
pub struct RxBuffer {
    buf: Vec<u8>,
    received: Vec<bool>,
    received_count: u32,
    total: u32,
    packet_payload: usize,
}

impl RxBuffer {
    /// Allocate a buffer for a transfer of `bytes` bytes carried in
    /// `packet_payload`-byte packets.
    ///
    /// # Panics
    /// Panics if `packet_payload` is zero.
    pub fn new(bytes: usize, packet_payload: usize) -> Self {
        assert!(packet_payload > 0, "packet_payload must be positive");
        let total = if bytes == 0 {
            1
        } else {
            bytes.div_ceil(packet_payload) as u32
        };
        RxBuffer {
            buf: vec![0; bytes],
            received: vec![false; total as usize],
            received_count: 0,
            total,
            packet_payload,
        }
    }

    /// Total number of packets expected (`D` in the paper).
    pub fn total_packets(&self) -> u32 {
        self.total
    }

    /// Number of distinct packets received so far.
    pub fn received_packets(&self) -> u32 {
        self.received_count
    }

    /// Total bytes the transfer will occupy.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if the transfer is zero bytes long.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// True once every packet has arrived.
    pub fn is_complete(&self) -> bool {
        self.received_count == self.total
    }

    /// Whether packet `seq` has arrived.
    pub fn has(&self, seq: u32) -> bool {
        self.received.get(seq as usize).copied().unwrap_or(false)
    }

    /// Expected payload length of packet `seq`.
    pub fn expected_len(&self, seq: u32) -> usize {
        let start = seq as usize * self.packet_payload;
        self.buf
            .len()
            .saturating_sub(start)
            .min(self.packet_payload)
    }

    /// Place the payload of packet `seq` at byte `offset`.
    ///
    /// Returns `Ok(true)` if the packet was new, `Ok(false)` for an
    /// exact duplicate (already placed), and an error if the packet
    /// contradicts the transfer geometry — wrong offset, wrong length,
    /// or a sequence number beyond the pre-allocated buffer.  Geometry
    /// errors matter: the buffer was sized before the transfer began, so
    /// a mismatched packet belongs to some other (or corrupt) transfer
    /// and must not scribble over the caller's memory.
    pub fn place(&mut self, seq: u32, offset: usize, payload: &[u8]) -> CoreResult<bool> {
        if seq >= self.total {
            return Err(CoreError::GeometryMismatch {
                what: "sequence beyond buffer",
            });
        }
        if offset != seq as usize * self.packet_payload {
            return Err(CoreError::GeometryMismatch {
                what: "offset does not match sequence",
            });
        }
        if payload.len() != self.expected_len(seq) {
            return Err(CoreError::GeometryMismatch {
                what: "payload length mismatch",
            });
        }
        if self.received[seq as usize] {
            return Ok(false);
        }
        self.buf[offset..offset + payload.len()].copy_from_slice(payload);
        self.received[seq as usize] = true;
        self.received_count += 1;
        Ok(true)
    }

    /// The first packet not yet received at or below `upto`
    /// (inclusive), if any — what a go-back-n NACK reports in response
    /// to a round-ending packet `upto`.
    pub fn first_missing_upto(&self, upto: u32) -> Option<u32> {
        let end = (upto as usize + 1).min(self.total as usize);
        (0..end).find(|&i| !self.received[i]).map(|i| i as u32)
    }

    /// The first packet not yet received overall, if any.
    pub fn first_missing(&self) -> Option<u32> {
        self.first_missing_upto(self.total.saturating_sub(1))
    }

    /// Build the selective-retransmission bitmap of missing packets in
    /// `[0, upto]`, based at the first missing sequence.  Returns `None`
    /// when nothing is missing in that range.
    pub fn missing_bitmap_upto(&self, upto: u32) -> Option<Bitmap> {
        let first = self.first_missing_upto(upto)?;
        let end = (upto as usize + 1).min(self.total as usize) as u32;
        let span = end - first;
        let nbits = span.min(u32::from(Bitmap::MAX_BITS)) as u16;
        let missing = (first..first + u32::from(nbits)).filter(|&s| !self.received[s as usize]);
        let bm = Bitmap::from_missing(first, nbits, missing)
            .expect("sequences within bitmap range by construction");
        Some(bm)
    }

    /// Borrow the received data.  Only meaningful once
    /// [`is_complete`](Self::is_complete) — holes are zero-filled.
    pub fn data(&self) -> &[u8] {
        &self.buf
    }

    /// Consume the buffer, returning the received data.
    pub fn into_data(self) -> Vec<u8> {
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(seq: u32, len: usize) -> Vec<u8> {
        (0..len).map(|i| (seq as usize + i) as u8).collect()
    }

    #[test]
    fn in_order_fill_completes() {
        let mut rx = RxBuffer::new(4096, 1024);
        assert_eq!(rx.total_packets(), 4);
        for seq in 0..4u32 {
            assert!(!rx.is_complete());
            let p = payload(seq, 1024);
            assert!(rx.place(seq, seq as usize * 1024, &p).unwrap());
        }
        assert!(rx.is_complete());
        assert_eq!(rx.received_packets(), 4);
        assert_eq!(&rx.data()[1024..1028], &payload(1, 4)[..]);
    }

    #[test]
    fn out_of_order_fill_completes() {
        let mut rx = RxBuffer::new(3000, 1024);
        assert_eq!(rx.total_packets(), 3);
        for seq in [2u32, 0, 1] {
            let len = rx.expected_len(seq);
            let p = payload(seq, len);
            assert!(rx.place(seq, seq as usize * 1024, &p).unwrap());
        }
        assert!(rx.is_complete());
    }

    #[test]
    fn duplicates_are_idempotent() {
        let mut rx = RxBuffer::new(2048, 1024);
        let p = payload(0, 1024);
        assert!(rx.place(0, 0, &p).unwrap());
        assert!(!rx.place(0, 0, &p).unwrap());
        assert_eq!(rx.received_packets(), 1);
    }

    #[test]
    fn short_final_packet_geometry() {
        let mut rx = RxBuffer::new(2500, 1024);
        assert_eq!(rx.expected_len(0), 1024);
        assert_eq!(rx.expected_len(2), 452);
        // Wrong length for the final packet is rejected.
        assert!(rx.place(2, 2048, &payload(2, 1024)).is_err());
        assert!(rx.place(2, 2048, &payload(2, 452)).is_ok());
    }

    #[test]
    fn geometry_violations_rejected() {
        let mut rx = RxBuffer::new(4096, 1024);
        // seq out of range
        assert!(matches!(
            rx.place(4, 4096, &payload(4, 1024)),
            Err(CoreError::GeometryMismatch { .. })
        ));
        // offset inconsistent with seq
        assert!(rx.place(1, 0, &payload(1, 1024)).is_err());
        // wrong payload length
        assert!(rx.place(0, 0, &payload(0, 1023)).is_err());
        // nothing was placed
        assert_eq!(rx.received_packets(), 0);
    }

    #[test]
    fn first_missing_tracks_holes() {
        let mut rx = RxBuffer::new(5 * 1024, 1024);
        assert_eq!(rx.first_missing(), Some(0));
        rx.place(0, 0, &payload(0, 1024)).unwrap();
        rx.place(2, 2048, &payload(2, 1024)).unwrap();
        assert_eq!(rx.first_missing(), Some(1));
        assert_eq!(rx.first_missing_upto(0), None);
        assert_eq!(rx.first_missing_upto(1), Some(1));
        rx.place(1, 1024, &payload(1, 1024)).unwrap();
        assert_eq!(rx.first_missing(), Some(3));
        rx.place(3, 3072, &payload(3, 1024)).unwrap();
        rx.place(4, 4096, &payload(4, 1024)).unwrap();
        assert_eq!(rx.first_missing(), None);
    }

    #[test]
    fn missing_bitmap_reports_exact_set() {
        let mut rx = RxBuffer::new(8 * 1024, 1024);
        for seq in [0u32, 1, 3, 5, 7] {
            rx.place(seq, seq as usize * 1024, &payload(seq, 1024))
                .unwrap();
        }
        let bm = rx.missing_bitmap_upto(7).unwrap();
        assert_eq!(bm.base(), 2);
        assert_eq!(bm.missing().collect::<Vec<_>>(), vec![2, 4, 6]);
        // Range-limited query.
        let bm = rx.missing_bitmap_upto(4).unwrap();
        assert_eq!(bm.missing().collect::<Vec<_>>(), vec![2, 4]);
    }

    #[test]
    fn missing_bitmap_none_when_complete_range() {
        let mut rx = RxBuffer::new(2048, 1024);
        rx.place(0, 0, &payload(0, 1024)).unwrap();
        assert!(rx.missing_bitmap_upto(0).is_none());
        assert!(rx.missing_bitmap_upto(1).is_some());
    }

    #[test]
    fn zero_byte_transfer() {
        let mut rx = RxBuffer::new(0, 1024);
        assert!(rx.is_empty());
        assert_eq!(rx.total_packets(), 1);
        assert_eq!(rx.expected_len(0), 0);
        assert!(!rx.is_complete());
        assert!(rx.place(0, 0, &[]).unwrap());
        assert!(rx.is_complete());
        assert!(rx.into_data().is_empty());
    }

    #[test]
    fn has_is_bounds_safe() {
        let rx = RxBuffer::new(1024, 1024);
        assert!(!rx.has(0));
        assert!(!rx.has(99));
    }
}
