//! Pluggable syscall backends: batched submission/completion I/O.
//!
//! The measured bottleneck behind ROADMAP's single-session goodput item
//! was never the protocol — it was the syscall bill.  A paced 32-packet
//! burst cost 32 `sendto(2)` crossings, every receive cost a
//! `setsockopt(SO_RCVTIMEO)` *plus* a `recvfrom(2)`, and sub-millisecond
//! pace gaps could not be waited at all (socket timeouts round up to a
//! scheduler tick), so the driver yield-spun through them.  This module
//! replaces all of that with a [`NetIo`] backend the channel, driver and
//! node reactor share:
//!
//! * **Batched** (Linux): a burst is staged into pre-allocated slots and
//!   submitted with one `sendmmsg(2)`; a drain pulls up to a whole batch
//!   of datagrams with one `recvmmsg(2)`; and waits are event-driven —
//!   an `epoll(7)` instance watching the socket and a `timerfd(2)` armed
//!   at the precise deadline, so a 500 µs pace gap blocks for 500 µs,
//!   not a scheduler tick and not a spin.  The FFI is audited extern-C
//!   following the [`crate::sockopt`] precedent (crate `deny(unsafe_code)`,
//!   module-level allow, hardcoded asm-generic constants, so only the
//!   mainstream Linux targets take this path).
//! * **Portable** (everything else, or forced): one syscall per
//!   datagram and coarse `SO_RCVTIMEO` waits as the last resort —
//!   exactly the pre-batching behaviour, kept as a living fallback.
//!
//! Set `BLAST_NETIO=portable` to force the fallback on Linux (CI runs
//! the perf harness under both and prints the delta).

use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::time::Duration;
#[cfg(netio_batched)]
use std::time::Instant;

use blast_core::PacingConfig;
use blast_telemetry::{EventKind, Recorder};

/// Datagrams a single `sendmmsg`/`recvmmsg` submission can carry.  A
/// full AIMD-grown blast burst (256 packets) flushes in a handful of
/// kernel crossings instead of 256.
pub const BATCH: usize = 32;

/// Per-slot buffer capacity: the largest channel datagram plus the FCS
/// trailer, with headroom.
const SLOT_CAP: usize = crate::channel::MAX_DATAGRAM + 8;

/// `ENOBUFS`: no stable `io::ErrorKind`, matched by raw value (same as
/// the node's historical send-drop handling).
const ENOBUFS: i32 = 105;

/// Counters describing how the backend spent its syscalls.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct NetIoStats {
    /// Datagrams handed to the kernel.
    pub datagrams_sent: u64,
    /// `sendmmsg` submissions (or single sends in portable mode) —
    /// `datagrams_sent / send_batches` is the amortisation factor.
    pub send_batches: u64,
    /// Datagrams the kernel dropped at submission (full buffer, peer
    /// unreachable) — loss the protocols recover from.
    pub send_drops: u64,
    /// Datagrams pulled off the socket.
    pub datagrams_received: u64,
    /// `recvmmsg` completions (or single receives in portable mode).
    pub recv_batches: u64,
    /// Event-driven waits that ended because the socket went readable.
    pub wakeups: u64,
    /// Waits that expired at their deadline instead.
    pub timeouts: u64,
}

/// Which backend a [`NetIo`] is running.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// `sendmmsg`/`recvmmsg` with epoll/timerfd waits.
    Batched,
    /// One syscall per datagram, `SO_RCVTIMEO` waits.
    Portable,
}

impl BackendKind {
    /// Stable lowercase name for logs and perf JSON.
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Batched => "batched",
            BackendKind::Portable => "portable",
        }
    }
}

/// A pluggable I/O backend for one UDP socket.
///
/// Two usage modes share the type:
///
/// * **connected** ([`NetIo::connected`]): the socket is connected;
///   callers use [`queue`](NetIo::queue)/[`flush`](NetIo::flush) and
///   the blocking [`recv`](NetIo::recv).
/// * **reactor** ([`NetIo::reactor`]): the socket is unconnected and
///   non-blocking; callers use [`queue_to`](NetIo::queue_to),
///   [`fill`](NetIo::fill)/[`pop_into`](NetIo::pop_into) and the
///   non-consuming [`wait`](NetIo::wait).
#[derive(Debug)]
pub struct NetIo {
    imp: Impl,
    /// Syscall accounting, exposed for node metrics and the perf JSON.
    pub stats: NetIoStats,
    /// Flight recorder: batch submissions, wait outcomes and kernel
    /// send-drops become trace events (session track 0).
    recorder: Option<Recorder>,
}

#[derive(Debug)]
enum Impl {
    // Boxed: the batched backend carries its fixed-size length/address
    // tables inline and would otherwise dwarf the portable variant.
    #[cfg(netio_batched)]
    Batched(Box<batched::BatchedIo>),
    Portable(PortableIo),
}

impl NetIo {
    /// Backend for a connected socket, auto-selected: batched where
    /// available (puts the socket into non-blocking mode), portable
    /// otherwise or when `BLAST_NETIO=portable` forces the fallback.
    /// Infallible: any batched-setup failure silently degrades to the
    /// portable backend, which needs no setup.
    pub fn connected(socket: &UdpSocket) -> NetIo {
        Self::select(socket, false)
    }

    /// Backend for an unconnected reactor socket (the `blast-node`
    /// event loop).  The socket is put into non-blocking mode either
    /// way — the reactor contract.
    pub fn reactor(socket: &UdpSocket) -> NetIo {
        let _ = socket.set_nonblocking(true);
        Self::select(socket, true)
    }

    fn select(socket: &UdpSocket, reactor: bool) -> NetIo {
        if !forced_portable() {
            if let Some(io) = Self::try_batched(socket) {
                return io;
            }
        }
        if !reactor {
            // A half-finished batched setup (epoll/timerfd creation can
            // fail at the fd limit) leaves the socket non-blocking,
            // which would turn the portable backend's SO_RCVTIMEO waits
            // into a busy-poll; restore blocking mode for the connected
            // fallback.  Reactor sockets stay non-blocking by contract.
            let _ = socket.set_nonblocking(false);
        }
        NetIo::portable(reactor)
    }

    #[cfg(netio_batched)]
    fn try_batched(socket: &UdpSocket) -> Option<NetIo> {
        let imp = batched::BatchedIo::new(socket).ok()?;
        Some(NetIo {
            imp: Impl::Batched(Box::new(imp)),
            stats: NetIoStats::default(),
            recorder: None,
        })
    }

    #[cfg(not(netio_batched))]
    fn try_batched(_socket: &UdpSocket) -> Option<NetIo> {
        None
    }

    /// The portable backend, unconditionally.
    pub fn portable(reactor: bool) -> NetIo {
        NetIo {
            imp: Impl::Portable(PortableIo::new(reactor)),
            stats: NetIoStats::default(),
            recorder: None,
        }
    }

    /// Attach a flight recorder.  Afterwards every batch submission
    /// ([`EventKind::BatchSubmit`]: a = datagrams, b = syscalls), wait
    /// outcome ([`EventKind::WakeEvent`] / [`EventKind::WakeTimeout`])
    /// and kernel send-drop ([`EventKind::SendDrop`]) is traced on
    /// session track 0 of the recorder's shard.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = Some(recorder);
    }

    /// Emit trace events for whatever the counters say happened since
    /// `before`.  Diffing the public stats keeps the two backends free
    /// of trace plumbing: one site per public entry point.
    fn trace_delta(&self, before: &NetIoStats) {
        let Some(rec) = &self.recorder else { return };
        let s = &self.stats;
        if s.datagrams_sent > before.datagrams_sent {
            rec.record(
                0,
                EventKind::BatchSubmit,
                s.datagrams_sent - before.datagrams_sent,
                s.send_batches - before.send_batches,
            );
        }
        if s.send_drops > before.send_drops {
            rec.record(0, EventKind::SendDrop, s.send_drops - before.send_drops, 0);
        }
        if s.wakeups > before.wakeups {
            rec.record(0, EventKind::WakeEvent, s.wakeups - before.wakeups, 0);
        }
        if s.timeouts > before.timeouts {
            rec.record(0, EventKind::WakeTimeout, s.timeouts - before.timeouts, 0);
        }
    }

    /// Which backend this instance runs.
    pub fn backend(&self) -> BackendKind {
        match &self.imp {
            #[cfg(netio_batched)]
            Impl::Batched(_) => BackendKind::Batched,
            Impl::Portable(_) => BackendKind::Portable,
        }
    }

    /// True when the batched backend is compiled in and selected.
    pub fn is_batched(&self) -> bool {
        self.backend() == BackendKind::Batched
    }

    /// Stage one datagram on a connected socket for a batched flush
    /// (portable mode sends it immediately).  A full batch flushes
    /// itself.
    pub fn queue(&mut self, socket: &UdpSocket, frame: &[u8]) -> io::Result<()> {
        self.queue_to(socket, frame, None)
    }

    /// Stage one datagram, optionally addressed (reactor mode).
    pub fn queue_to(
        &mut self,
        socket: &UdpSocket,
        frame: &[u8],
        to: Option<SocketAddr>,
    ) -> io::Result<()> {
        let before = self.stats;
        let result = match &mut self.imp {
            #[cfg(netio_batched)]
            Impl::Batched(b) => {
                if b.send_full() {
                    b.flush(socket, &mut self.stats)?;
                }
                b.stage(frame, to);
                Ok(())
            }
            Impl::Portable(p) => p.send_now(socket, frame, to, &mut self.stats),
        };
        self.trace_delta(&before);
        result
    }

    /// Put every staged datagram on the wire in as few syscalls as the
    /// backend can manage.  A no-op with nothing staged.
    pub fn flush(&mut self, socket: &UdpSocket) -> io::Result<()> {
        let before = self.stats;
        let result = match &mut self.imp {
            #[cfg(netio_batched)]
            Impl::Batched(b) => b.flush(socket, &mut self.stats),
            Impl::Portable(_) => Ok(()),
        };
        self.trace_delta(&before);
        result
    }

    /// Receive one datagram on a connected socket within `timeout`
    /// (`Ok(None)` on expiry).  Batched mode drains a whole `recvmmsg`
    /// batch per kernel crossing and pops from it on subsequent calls;
    /// waits block on epoll + timerfd at the exact deadline.  Portable
    /// mode is a classic `SO_RCVTIMEO` receive with the
    /// [`PacingConfig::MIN_WAIT`] floor.
    pub fn recv(
        &mut self,
        socket: &UdpSocket,
        buf: &mut [u8],
        timeout: Duration,
    ) -> io::Result<Option<usize>> {
        let before = self.stats;
        let result = match &mut self.imp {
            #[cfg(netio_batched)]
            Impl::Batched(b) => {
                let deadline = Instant::now() + timeout;
                loop {
                    if let Some((n, _)) = b.pop_into(buf) {
                        break Ok(Some(n));
                    }
                    if b.fill(socket, &mut self.stats)? > 0 {
                        continue;
                    }
                    let now = Instant::now();
                    if now >= deadline {
                        self.stats.timeouts += 1;
                        break Ok(None);
                    }
                    if !b.wait(deadline - now, &mut self.stats)? {
                        break Ok(None);
                    }
                }
            }
            Impl::Portable(p) => p.recv(socket, buf, timeout, &mut self.stats),
        };
        self.trace_delta(&before);
        result
    }

    /// Non-blocking reactor drain: pull up to a batch of datagrams off
    /// the socket into the backend's slots.  Returns how many arrived
    /// (0 when the socket is dry).  Call when [`pop_into`] runs out.
    ///
    /// [`pop_into`]: NetIo::pop_into
    pub fn fill(&mut self, socket: &UdpSocket) -> io::Result<usize> {
        match &mut self.imp {
            #[cfg(netio_batched)]
            Impl::Batched(b) => b.fill(socket, &mut self.stats),
            Impl::Portable(p) => p.fill(socket, &mut self.stats),
        }
    }

    /// Take a copy of the counters (for delta accounting around a
    /// reactor tick).
    pub fn stats_snapshot(&self) -> NetIoStats {
        self.stats
    }

    /// Pop one previously-[`fill`](NetIo::fill)ed datagram into `buf`,
    /// with the sender's address when the socket is unconnected.
    pub fn pop_into(&mut self, buf: &mut [u8]) -> Option<(usize, Option<SocketAddr>)> {
        match &mut self.imp {
            #[cfg(netio_batched)]
            Impl::Batched(b) => b.pop_into(buf),
            Impl::Portable(p) => p.pop_into(buf),
        }
    }

    /// Block until the socket is readable or `timeout` elapses; `true`
    /// means readable.  Batched mode waits on epoll + timerfd with
    /// sub-millisecond fidelity.  Portable reactor mode can only sleep
    /// (clamped to a millisecond) and conservatively reports a timeout;
    /// the caller's next [`fill`](NetIo::fill) discovers any traffic.
    pub fn wait(&mut self, timeout: Duration) -> io::Result<bool> {
        let before = self.stats;
        let result = match &mut self.imp {
            #[cfg(netio_batched)]
            Impl::Batched(b) => b.wait(timeout, &mut self.stats),
            Impl::Portable(p) => p.wait(timeout, &mut self.stats),
        };
        self.trace_delta(&before);
        result
    }
}

/// Did the operator force the portable backend?  Read once per process
/// (channels are built per session; an env lookup per construction
/// would be a per-session allocation for a process-constant answer).
fn forced_portable() -> bool {
    static FORCED: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *FORCED.get_or_init(|| {
        std::env::var("BLAST_NETIO")
            .map(|v| {
                let v = v.to_ascii_lowercase();
                v == "portable" || v == "fallback"
            })
            .unwrap_or(false)
    })
}

/// Would sending fail in a way the blast protocols treat as loss, not
/// as channel failure?  (Peer's ICMP unreachable, full send buffer.)
fn is_send_drop(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::ConnectionRefused | io::ErrorKind::WouldBlock | io::ErrorKind::OutOfMemory
    ) || e.raw_os_error() == Some(ENOBUFS)
}

/// The single-syscall fallback backend: current everywhere, fast
/// nowhere, correct always.
#[derive(Debug)]
struct PortableIo {
    /// One-datagram receive slot for reactor mode.
    slot: Vec<u8>,
    slot_len: usize,
    slot_addr: Option<SocketAddr>,
    slot_full: bool,
    reactor: bool,
}

impl PortableIo {
    fn new(reactor: bool) -> PortableIo {
        PortableIo {
            slot: if reactor {
                vec![0u8; SLOT_CAP]
            } else {
                Vec::new()
            },
            slot_len: 0,
            slot_addr: None,
            slot_full: false,
            reactor,
        }
    }

    fn send_now(
        &mut self,
        socket: &UdpSocket,
        frame: &[u8],
        to: Option<SocketAddr>,
        stats: &mut NetIoStats,
    ) -> io::Result<()> {
        let result = match to {
            Some(addr) => socket.send_to(frame, addr).map(|_| ()),
            None => socket.send(frame).map(|_| ()),
        };
        match result {
            Ok(()) => {
                stats.datagrams_sent += 1;
                stats.send_batches += 1;
                Ok(())
            }
            Err(e) if is_send_drop(&e) => {
                stats.send_drops += 1;
                Ok(())
            }
            Err(e) => Err(e),
        }
    }

    fn recv(
        &mut self,
        socket: &UdpSocket,
        buf: &mut [u8],
        timeout: Duration,
        stats: &mut NetIoStats,
    ) -> io::Result<Option<usize>> {
        // `SO_RCVTIMEO` as the last resort: `Some(ZERO)` is an error to
        // `std`, and the floor keeps paced senders' inter-burst gaps
        // from being rounded up into scheduler noise more than the
        // kernel already insists on.
        let t = timeout.max(PacingConfig::MIN_WAIT);
        socket.set_read_timeout(Some(t))?;
        match socket.recv(buf) {
            Ok(n) => {
                stats.datagrams_received += 1;
                stats.recv_batches += 1;
                stats.wakeups += 1;
                Ok(Some(n))
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                stats.timeouts += 1;
                Ok(None)
            }
            // A queued ICMP unreachable from our own earlier send: a
            // timeout slice with nothing delivered, not a failure.
            Err(e) if e.kind() == io::ErrorKind::ConnectionRefused => Ok(None),
            Err(e) => Err(e),
        }
    }

    fn fill(&mut self, socket: &UdpSocket, stats: &mut NetIoStats) -> io::Result<usize> {
        debug_assert!(self.reactor, "fill() is a reactor-mode call");
        if self.slot_full {
            return Ok(0);
        }
        loop {
            match socket.recv_from(&mut self.slot) {
                Ok((n, peer)) => {
                    self.slot_len = n;
                    self.slot_addr = Some(peer);
                    self.slot_full = true;
                    stats.datagrams_received += 1;
                    stats.recv_batches += 1;
                    return Ok(1);
                }
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    return Ok(0)
                }
                // Queued ICMP unreachable for a departed peer: consume
                // it and keep draining.
                Err(e) if e.kind() == io::ErrorKind::ConnectionRefused => continue,
                Err(e) => return Err(e),
            }
        }
    }

    fn pop_into(&mut self, buf: &mut [u8]) -> Option<(usize, Option<SocketAddr>)> {
        if !self.slot_full {
            return None;
        }
        self.slot_full = false;
        let n = self.slot_len.min(buf.len());
        buf[..n].copy_from_slice(&self.slot[..n]);
        Some((n, self.slot_addr))
    }

    fn wait(&mut self, timeout: Duration, stats: &mut NetIoStats) -> io::Result<bool> {
        // No selector in `std`: sleep, bounded so arriving traffic is
        // discovered within a millisecond (the pre-backend node park).
        std::thread::sleep(timeout.clamp(PacingConfig::MIN_WAIT, Duration::from_millis(1)));
        stats.timeouts += 1;
        Ok(false)
    }
}

#[cfg(netio_batched)]
#[allow(unsafe_code)]
mod batched {
    //! The Linux batched backend: audited extern-C FFI over
    //! `sendmmsg`/`recvmmsg`/`epoll`/`timerfd`, mirroring the
    //! `sockopt` precedent.  Every pointer handed to the kernel points
    //! into storage owned by this module for the duration of the call
    //! (slot buffers, stack-local header arrays), and nothing returned
    //! by the kernel is interpreted beyond the documented out-fields.

    use std::io;
    use std::net::{Ipv4Addr, Ipv6Addr, SocketAddr, UdpSocket};
    use std::os::fd::AsRawFd;
    use std::time::Duration;

    use super::{is_send_drop, NetIoStats, BATCH, SLOT_CAP};

    // Linked via std's libc dependency; declared here because the
    // workspace builds offline with no `libc` crate available.
    extern "C" {
        fn sendmmsg(fd: i32, msgvec: *mut MMsgHdr, vlen: u32, flags: i32) -> i32;
        fn recvmmsg(
            fd: i32,
            msgvec: *mut MMsgHdr,
            vlen: u32,
            flags: i32,
            timeout: *mut TimeSpec,
        ) -> i32;
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn timerfd_create(clockid: i32, flags: i32) -> i32;
        fn timerfd_settime(
            fd: i32,
            flags: i32,
            new_value: *const ITimerSpec,
            old_value: *mut ITimerSpec,
        ) -> i32;
        fn read(fd: i32, buf: *mut core::ffi::c_void, count: usize) -> isize;
        fn close(fd: i32) -> i32;
    }

    const EPOLL_CLOEXEC: i32 = 0x80000;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLLIN: u32 = 0x001;
    const CLOCK_MONOTONIC: i32 = 1;
    const TFD_NONBLOCK: i32 = 0o4000;
    const TFD_CLOEXEC: i32 = 0o2000000;
    const AF_INET: u16 = 2;
    const AF_INET6: u16 = 10;
    /// `sockaddr_storage` size: holds any address family.
    const SS_SIZE: usize = 128;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct IoVec {
        base: *mut core::ffi::c_void,
        len: usize,
    }

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct MsgHdr {
        msg_name: *mut core::ffi::c_void,
        msg_namelen: u32,
        msg_iov: *mut IoVec,
        msg_iovlen: usize,
        msg_control: *mut core::ffi::c_void,
        msg_controllen: usize,
        msg_flags: i32,
    }

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct MMsgHdr {
        hdr: MsgHdr,
        len: u32,
    }

    // `epoll_event` is packed on x86-64 (a kernel ABI quirk) and
    // naturally aligned everywhere else.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct TimeSpec {
        sec: i64,
        nsec: i64,
    }

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct ITimerSpec {
        interval: TimeSpec,
        value: TimeSpec,
    }

    const ZERO_IOV: IoVec = IoVec {
        base: std::ptr::null_mut(),
        len: 0,
    };

    const ZERO_MSG: MMsgHdr = MMsgHdr {
        hdr: MsgHdr {
            msg_name: std::ptr::null_mut(),
            msg_namelen: 0,
            msg_iov: std::ptr::null_mut(),
            msg_iovlen: 0,
            msg_control: std::ptr::null_mut(),
            msg_controllen: 0,
            msg_flags: 0,
        },
        len: 0,
    };

    /// Owned raw descriptor, closed on drop.
    #[derive(Debug)]
    struct Fd(i32);

    impl Drop for Fd {
        fn drop(&mut self) {
            // SAFETY: the descriptor was created by this module and is
            // closed exactly once.
            unsafe {
                close(self.0);
            }
        }
    }

    /// A batch of pre-allocated datagram slots: one contiguous buffer
    /// slab (`BATCH × SLOT_CAP`) plus one address slab, so building a
    /// backend costs two allocations, not two per slot — channels are
    /// constructed per session, and construction cost shows up directly
    /// in the perf harness's allocs-per-datagram figure.  Pointer-free,
    /// so the backend stays `Send`; the kernel-facing header arrays are
    /// rebuilt on the stack for each syscall.
    #[derive(Debug)]
    struct Ring {
        data: Vec<u8>,
        addrs: Vec<u8>,
        lens: [usize; BATCH],
        addr_lens: [u32; BATCH],
    }

    impl Ring {
        fn new() -> Ring {
            Ring {
                data: vec![0u8; BATCH * SLOT_CAP],
                addrs: vec![0u8; BATCH * SS_SIZE],
                lens: [0; BATCH],
                addr_lens: [0; BATCH],
            }
        }

        fn buf(&self, i: usize) -> &[u8] {
            &self.data[i * SLOT_CAP..(i + 1) * SLOT_CAP]
        }

        fn buf_mut(&mut self, i: usize) -> &mut [u8] {
            &mut self.data[i * SLOT_CAP..(i + 1) * SLOT_CAP]
        }

        fn addr(&self, i: usize) -> &[u8] {
            &self.addrs[i * SS_SIZE..(i + 1) * SS_SIZE]
        }

        fn addr_mut(&mut self, i: usize) -> &mut [u8] {
            &mut self.addrs[i * SS_SIZE..(i + 1) * SS_SIZE]
        }
    }

    /// Encode a socket address as a kernel `sockaddr`, returning its
    /// length.
    fn encode_addr(addr: &SocketAddr, out: &mut [u8]) -> u32 {
        match addr {
            SocketAddr::V4(a) => {
                out[0..2].copy_from_slice(&AF_INET.to_ne_bytes());
                out[2..4].copy_from_slice(&a.port().to_be_bytes());
                out[4..8].copy_from_slice(&a.ip().octets());
                out[8..16].fill(0);
                16
            }
            SocketAddr::V6(a) => {
                out[0..2].copy_from_slice(&AF_INET6.to_ne_bytes());
                out[2..4].copy_from_slice(&a.port().to_be_bytes());
                out[4..8].copy_from_slice(&a.flowinfo().to_be_bytes());
                out[8..24].copy_from_slice(&a.ip().octets());
                out[24..28].copy_from_slice(&a.scope_id().to_ne_bytes());
                28
            }
        }
    }

    /// Decode a kernel `sockaddr` back into a socket address.
    fn decode_addr(buf: &[u8], len: u32) -> Option<SocketAddr> {
        if len < 8 {
            return None;
        }
        let family = u16::from_ne_bytes([buf[0], buf[1]]);
        let port = u16::from_be_bytes([buf[2], buf[3]]);
        match family {
            AF_INET => {
                let ip = Ipv4Addr::new(buf[4], buf[5], buf[6], buf[7]);
                Some(SocketAddr::from((ip, port)))
            }
            AF_INET6 if len >= 28 => {
                let mut octets = [0u8; 16];
                octets.copy_from_slice(&buf[8..24]);
                let flowinfo = u32::from_be_bytes([buf[4], buf[5], buf[6], buf[7]]);
                let scope = u32::from_ne_bytes([buf[24], buf[25], buf[26], buf[27]]);
                Some(SocketAddr::V6(std::net::SocketAddrV6::new(
                    Ipv6Addr::from(octets),
                    port,
                    flowinfo,
                    scope,
                )))
            }
            _ => None,
        }
    }

    fn timespec(d: Duration) -> TimeSpec {
        TimeSpec {
            sec: d.as_secs() as i64,
            nsec: i64::from(d.subsec_nanos()),
        }
    }

    /// The batched backend for one socket.
    #[derive(Debug)]
    pub(super) struct BatchedIo {
        epoll: Fd,
        timer: Fd,
        sock_fd: i32,
        send: Ring,
        send_len: usize,
        recv: Ring,
        recv_head: usize,
        recv_len: usize,
    }

    impl BatchedIo {
        pub(super) fn new(socket: &UdpSocket) -> io::Result<BatchedIo> {
            socket.set_nonblocking(true)?;
            let sock_fd = socket.as_raw_fd();
            // SAFETY: plain descriptor-creating syscalls; results are
            // checked and owned by `Fd` guards.
            let ep = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if ep < 0 {
                return Err(io::Error::last_os_error());
            }
            let epoll = Fd(ep);
            let tf = unsafe { timerfd_create(CLOCK_MONOTONIC, TFD_NONBLOCK | TFD_CLOEXEC) };
            if tf < 0 {
                return Err(io::Error::last_os_error());
            }
            let timer = Fd(tf);
            for (fd, tag) in [(sock_fd, 0u64), (timer.0, 1u64)] {
                let mut ev = EpollEvent {
                    events: EPOLLIN,
                    data: tag,
                };
                // SAFETY: `epoll.0`, `fd` are live descriptors; `ev` is
                // a stack-local the kernel only reads.
                let rc = unsafe { epoll_ctl(epoll.0, EPOLL_CTL_ADD, fd, &mut ev) };
                if rc != 0 {
                    return Err(io::Error::last_os_error());
                }
            }
            Ok(BatchedIo {
                epoll,
                timer,
                sock_fd,
                send: Ring::new(),
                send_len: 0,
                recv: Ring::new(),
                recv_head: 0,
                recv_len: 0,
            })
        }

        pub(super) fn send_full(&self) -> bool {
            self.send_len == BATCH
        }

        /// Copy one datagram into the next free send slot.
        pub(super) fn stage(&mut self, frame: &[u8], to: Option<SocketAddr>) {
            debug_assert!(
                self.send_len < BATCH,
                "flush before staging into a full batch"
            );
            debug_assert!(frame.len() <= SLOT_CAP, "datagram exceeds slot capacity");
            let i = self.send_len;
            let n = frame.len().min(SLOT_CAP);
            self.send.buf_mut(i)[..n].copy_from_slice(&frame[..n]);
            self.send.lens[i] = n;
            self.send.addr_lens[i] = match to {
                Some(addr) => encode_addr(&addr, self.send.addr_mut(i)),
                None => 0,
            };
            self.send_len += 1;
        }

        /// Submit every staged datagram: one `sendmmsg` per `BATCH`
        /// slots, with loss-like submission failures counted as drops
        /// (the protocols retransmit) rather than surfaced as errors.
        pub(super) fn flush(
            &mut self,
            _socket: &UdpSocket,
            stats: &mut NetIoStats,
        ) -> io::Result<()> {
            let n = self.send_len;
            if n == 0 {
                return Ok(());
            }
            self.send_len = 0;
            let mut done = 0usize;
            // Pending ICMP errors from earlier sends surface as
            // `ECONNREFUSED` with nothing submitted; each retry consumes
            // one, so the budget bounds a pathological error queue.
            let mut refused_budget = n + 4;
            while done < n {
                let count = n - done;
                let mut iovs = [ZERO_IOV; BATCH];
                let mut hdrs = [ZERO_MSG; BATCH];
                let data_ptr = self.send.data.as_mut_ptr();
                let addr_ptr = self.send.addrs.as_mut_ptr();
                for i in 0..count {
                    let slot = done + i;
                    iovs[i] = IoVec {
                        // SAFETY: in-bounds offsets into the send slabs
                        // (slot < BATCH by construction).
                        base: unsafe { data_ptr.add(slot * SLOT_CAP) }.cast(),
                        len: self.send.lens[slot],
                    };
                    hdrs[i].hdr.msg_iov = &mut iovs[i];
                    hdrs[i].hdr.msg_iovlen = 1;
                    if self.send.addr_lens[slot] > 0 {
                        hdrs[i].hdr.msg_name = unsafe { addr_ptr.add(slot * SS_SIZE) }.cast();
                        hdrs[i].hdr.msg_namelen = self.send.addr_lens[slot];
                    }
                }
                // SAFETY: `hdrs[..count]` reference iovecs and buffers
                // that outlive the call; the kernel writes only the
                // documented `len`/`msg_flags` out-fields.
                let rc = unsafe { sendmmsg(self.sock_fd, hdrs.as_mut_ptr(), count as u32, 0) };
                if rc > 0 {
                    done += rc as usize;
                    stats.datagrams_sent += rc as u64;
                    stats.send_batches += 1;
                    continue;
                }
                let err = io::Error::last_os_error();
                match err.kind() {
                    io::ErrorKind::Interrupted => continue,
                    io::ErrorKind::ConnectionRefused if refused_budget > 0 => {
                        refused_budget -= 1;
                        continue;
                    }
                    _ if is_send_drop(&err) => {
                        stats.send_drops += (n - done) as u64;
                        return Ok(());
                    }
                    _ => return Err(err),
                }
            }
            Ok(())
        }

        /// Drain up to a batch of datagrams off the socket in one
        /// `recvmmsg`.  Non-blocking; returns how many arrived.
        pub(super) fn fill(
            &mut self,
            _socket: &UdpSocket,
            stats: &mut NetIoStats,
        ) -> io::Result<usize> {
            debug_assert!(self.recv_head >= self.recv_len, "fill over undrained batch");
            let mut refused_budget = 16;
            loop {
                let mut iovs = [ZERO_IOV; BATCH];
                let mut hdrs = [ZERO_MSG; BATCH];
                let data_ptr = self.recv.data.as_mut_ptr();
                let addr_ptr = self.recv.addrs.as_mut_ptr();
                for (i, iov) in iovs.iter_mut().enumerate() {
                    *iov = IoVec {
                        // SAFETY: in-bounds offsets into the recv slabs.
                        base: unsafe { data_ptr.add(i * SLOT_CAP) }.cast(),
                        len: SLOT_CAP,
                    };
                    hdrs[i].hdr.msg_iov = iov;
                    hdrs[i].hdr.msg_iovlen = 1;
                    hdrs[i].hdr.msg_name = unsafe { addr_ptr.add(i * SS_SIZE) }.cast();
                    hdrs[i].hdr.msg_namelen = SS_SIZE as u32;
                }
                // SAFETY: as in `flush`; the kernel fills buffers and
                // address storage owned by `self.recv` and reports
                // per-message lengths in the headers.
                let rc = unsafe {
                    recvmmsg(
                        self.sock_fd,
                        hdrs.as_mut_ptr(),
                        BATCH as u32,
                        0,
                        std::ptr::null_mut(),
                    )
                };
                if rc > 0 {
                    let got = rc as usize;
                    for (i, hdr) in hdrs.iter().enumerate().take(got) {
                        self.recv.lens[i] = (hdr.len as usize).min(SLOT_CAP);
                        self.recv.addr_lens[i] = hdr.hdr.msg_namelen;
                    }
                    self.recv_head = 0;
                    self.recv_len = got;
                    stats.datagrams_received += got as u64;
                    stats.recv_batches += 1;
                    return Ok(got);
                }
                let err = io::Error::last_os_error();
                match err.kind() {
                    io::ErrorKind::WouldBlock => return Ok(0),
                    io::ErrorKind::Interrupted => continue,
                    // A queued ICMP unreachable from an earlier send:
                    // consume and keep draining, boundedly.
                    io::ErrorKind::ConnectionRefused if refused_budget > 0 => {
                        refused_budget -= 1;
                        continue;
                    }
                    io::ErrorKind::ConnectionRefused => return Ok(0),
                    _ => return Err(err),
                }
            }
        }

        /// Pop one filled datagram into `buf`.
        pub(super) fn pop_into(&mut self, buf: &mut [u8]) -> Option<(usize, Option<SocketAddr>)> {
            if self.recv_head >= self.recv_len {
                return None;
            }
            let i = self.recv_head;
            self.recv_head += 1;
            let n = self.recv.lens[i].min(buf.len());
            buf[..n].copy_from_slice(&self.recv.buf(i)[..n]);
            Some((n, decode_addr(self.recv.addr(i), self.recv.addr_lens[i])))
        }

        /// Block until the socket is readable or `timeout` elapses.
        /// The deadline rides a one-shot timerfd, so sub-millisecond
        /// pace gaps wait exactly as long as they should — this is the
        /// wait that replaced the driver's yield-spin.
        pub(super) fn wait(
            &mut self,
            timeout: Duration,
            stats: &mut NetIoStats,
        ) -> io::Result<bool> {
            // A zero it_value disarms the timer; clamp to one tick so a
            // zero/near-zero timeout still fires immediately.
            let spec = ITimerSpec {
                interval: TimeSpec { sec: 0, nsec: 0 },
                value: timespec(timeout.max(Duration::from_nanos(1))),
            };
            // SAFETY: `timer` is live; `spec` is stack-local and only
            // read.  Re-arming also clears any stale expiration.
            let rc = unsafe { timerfd_settime(self.timer.0, 0, &spec, std::ptr::null_mut()) };
            if rc != 0 {
                return Err(io::Error::last_os_error());
            }
            loop {
                let mut events = [EpollEvent { events: 0, data: 0 }; 4];
                // SAFETY: the kernel writes at most 4 events into the
                // stack-local array.
                let rc = unsafe { epoll_wait(self.epoll.0, events.as_mut_ptr(), 4, -1) };
                if rc < 0 {
                    let err = io::Error::last_os_error();
                    if err.kind() == io::ErrorKind::Interrupted {
                        continue;
                    }
                    return Err(err);
                }
                let mut readable = false;
                let mut expired = false;
                for ev in events.iter().take(rc as usize) {
                    match ev.data {
                        0 => readable = true,
                        _ => expired = true,
                    }
                }
                if expired {
                    // Drain the expiration count so the timerfd goes
                    // quiet until re-armed.
                    let mut ticks = 0u64;
                    // SAFETY: reads 8 bytes into a stack-local u64, the
                    // timerfd read contract.
                    unsafe {
                        read(self.timer.0, (&mut ticks as *mut u64).cast(), 8);
                    }
                }
                if readable {
                    stats.wakeups += 1;
                    return Ok(true);
                }
                if expired {
                    stats.timeouts += 1;
                    return Ok(false);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (UdpSocket, UdpSocket) {
        let a = UdpSocket::bind("127.0.0.1:0").unwrap();
        let b = UdpSocket::bind("127.0.0.1:0").unwrap();
        let a_addr = a.local_addr().unwrap();
        let b_addr = b.local_addr().unwrap();
        a.connect(b_addr).unwrap();
        b.connect(a_addr).unwrap();
        (a, b)
    }

    fn roundtrip(mut tx: NetIo, mut rx: NetIo, a: &UdpSocket, b: &UdpSocket) {
        // Stage a whole burst, flush once, receive every datagram.
        for i in 0..10u8 {
            tx.queue(a, &[i; 100]).unwrap();
        }
        tx.flush(a).unwrap();
        let mut buf = [0u8; 256];
        for i in 0..10u8 {
            let n = rx
                .recv(b, &mut buf, Duration::from_secs(2))
                .unwrap()
                .expect("datagram arrives");
            assert_eq!(&buf[..n], &[i; 100][..], "order preserved");
        }
        assert_eq!(tx.stats.datagrams_sent, 10);
        assert_eq!(rx.stats.datagrams_received, 10);
        assert!(
            tx.stats.send_batches <= 10,
            "batching never exceeds one syscall per datagram"
        );
    }

    #[test]
    fn connected_roundtrip_auto_backend() {
        let (a, b) = pair();
        let tx = NetIo::connected(&a);
        let rx = NetIo::connected(&b);
        roundtrip(tx, rx, &a, &b);
    }

    #[test]
    fn connected_roundtrip_portable_backend() {
        let (a, b) = pair();
        let tx = NetIo::portable(false);
        let rx = NetIo::portable(false);
        assert_eq!(tx.backend(), BackendKind::Portable);
        roundtrip(tx, rx, &a, &b);
    }

    #[cfg(netio_batched)]
    #[test]
    fn batched_backend_amortises_syscalls() {
        let (a, b) = pair();
        let mut tx = NetIo::connected(&a);
        let mut rx = NetIo::connected(&b);
        assert!(tx.is_batched(), "Linux builds select the batched backend");
        for i in 0..(BATCH as u8) {
            tx.queue(&a, &[i; 64]).unwrap();
        }
        tx.flush(&a).unwrap();
        assert_eq!(tx.stats.send_batches, 1, "one sendmmsg for a full batch");
        let mut buf = [0u8; 128];
        for _ in 0..BATCH {
            rx.recv(&b, &mut buf, Duration::from_secs(2))
                .unwrap()
                .expect("datagram arrives");
        }
        assert!(
            rx.stats.recv_batches < BATCH as u64,
            "recvmmsg drained multiple datagrams per crossing ({} batches)",
            rx.stats.recv_batches
        );
    }

    #[cfg(netio_batched)]
    #[test]
    fn batched_wait_has_submillisecond_fidelity() {
        let (a, _b) = pair();
        let mut io = NetIo::connected(&a);
        assert!(io.is_batched());
        let t0 = Instant::now();
        let readable = io.wait(Duration::from_micros(500)).unwrap();
        let waited = t0.elapsed();
        assert!(!readable, "nothing was sent");
        assert!(
            waited >= Duration::from_micros(400),
            "returned early: {waited:?}"
        );
        assert!(
            waited < Duration::from_millis(10),
            "a 500 µs wait must not round up to a scheduler tick: {waited:?}"
        );
        assert_eq!(io.stats.timeouts, 1);
    }

    #[cfg(netio_batched)]
    #[test]
    fn batched_wait_wakes_on_traffic() {
        let (a, b) = pair();
        let mut rx = NetIo::connected(&b);
        a.send(b"ping").unwrap();
        let readable = rx.wait(Duration::from_secs(2)).unwrap();
        assert!(readable, "pending datagram must wake the waiter");
        assert_eq!(rx.stats.wakeups, 1);
        let mut buf = [0u8; 16];
        let n = rx.recv(&b, &mut buf, Duration::from_secs(1)).unwrap();
        assert_eq!(n, Some(4));
    }

    #[test]
    fn reactor_mode_carries_peer_addresses() {
        let server = UdpSocket::bind("127.0.0.1:0").unwrap();
        let server_addr = server.local_addr().unwrap();
        let mut io = NetIo::reactor(&server);
        let client = UdpSocket::bind("127.0.0.1:0").unwrap();
        client.send_to(b"hello", server_addr).unwrap();
        let mut buf = [0u8; 64];
        // Wait (event-driven or sleep), then drain.
        let mut got = None;
        for _ in 0..2000 {
            if let Some(popped) = io.pop_into(&mut buf) {
                got = Some(popped);
                break;
            }
            if io.fill(&server).unwrap() > 0 {
                continue;
            }
            io.wait(Duration::from_millis(1)).unwrap();
        }
        let (n, peer) = got.expect("datagram arrives");
        assert_eq!(&buf[..n], b"hello");
        assert_eq!(peer, Some(client.local_addr().unwrap()));
        // Reply through the queued send path.
        io.queue_to(&server, b"world", peer).unwrap();
        io.flush(&server).unwrap();
        let mut rbuf = [0u8; 16];
        client
            .set_read_timeout(Some(Duration::from_secs(2)))
            .unwrap();
        let (n, from) = client.recv_from(&mut rbuf).unwrap();
        assert_eq!(&rbuf[..n], b"world");
        assert_eq!(from, server_addr);
    }

    #[test]
    fn env_override_forces_portable() {
        // The env var is read at construction; spawn-free check via the
        // selector with the variable set for this process would race
        // other tests, so assert the parsing path indirectly: portable
        // construction always honours the request.
        let io = NetIo::portable(false);
        assert_eq!(io.backend().name(), "portable");
        assert_eq!(BackendKind::Batched.name(), "batched");
    }

    #[test]
    fn send_drop_classification() {
        assert!(is_send_drop(&io::Error::from(
            io::ErrorKind::ConnectionRefused
        )));
        assert!(is_send_drop(&io::Error::from(io::ErrorKind::WouldBlock)));
        assert!(is_send_drop(&io::Error::from_raw_os_error(ENOBUFS)));
        assert!(!is_send_drop(&io::Error::from(
            io::ErrorKind::PermissionDenied
        )));
    }
}
