//! The sliding-window protocol (§2.1, Figure 3.c of the paper).
//!
//! "With sliding window protocols every packet is individually
//! acknowledged but the sender continues to transmit data without
//! waiting for an acknowledgement.  In typical sliding window protocols,
//! the sender is silenced when the window 'closes'.  Here we assume that
//! the window is large enough so that it never gets closed."
//!
//! [`WindowSender`] supports both regimes: `window: None` reproduces the
//! paper's never-closing window, `Some(w)` bounds the packets in flight
//! (useful as an ablation: with `w = 1` the protocol degenerates to
//! stop-and-wait, which a test below verifies).
//!
//! The receive side is identical to stop-and-wait —
//! [`WindowReceiver`] is a re-export of [`crate::saw::SawReceiver`].

use std::sync::Arc;

use blast_wire::ack::AckPayload;
use blast_wire::header::PacketKind;
use blast_wire::packet::{Datagram, DatagramBuilder};

use std::time::Duration;

use crate::api::{Action, ActionSink, CompletionInfo, EngineStats, TimerToken};
use crate::config::ProtocolConfig;
use crate::control::{Pacer, RttEstimator, PACE_TIMER};
use crate::engine::{Engine, Finish};
use crate::error::CoreError;
use crate::pool::BufferPool;
use crate::txdata::TxData;

/// Sliding-window receiver: identical to the stop-and-wait receiver.
pub type WindowReceiver = crate::saw::SawReceiver;

/// Sliding-window sender.
#[derive(Debug)]
pub struct WindowSender {
    transfer_id: u32,
    tx: TxData,
    builder: DatagramBuilder,
    /// Retransmission-timeout source: fixed `Tr` or Jacobson/Karn.
    rto: RttEstimator,
    pacer: Pacer,
    max_retries: u32,
    window: Option<u32>,
    /// Next sequence never yet transmitted.
    next_unsent: u32,
    /// Per-packet "acknowledged" flags.
    acked: Vec<bool>,
    acked_count: u32,
    /// Per-packet retransmission attempts.
    attempts: Vec<u32>,
    /// Per-packet first-transmission time (Karn: each packet is
    /// individually acknowledged, so each untroubled packet is one RTT
    /// sample).
    sent_at: Vec<Duration>,
    /// Driver clock (see [`Engine::set_now`]).
    now: Duration,
    /// Pacing tokens left in the current burst (`u32::MAX` unpaced).
    /// Only the pace timer refills them — arriving acks may open the
    /// window, but not the throttle, or pacing would leak.
    burst_left: u32,
    /// A pace timer is armed and will refill `burst_left` (guards
    /// against re-arming, which would push the deadline out forever
    /// under a steady ack stream).
    pace_pending: bool,
    /// Retransmissions awaiting burst tokens — timer-driven resends go
    /// through the same throttle as fresh packets, or a batch of
    /// simultaneous expirations would re-create the very burst overrun
    /// pacing exists to prevent.
    retx_queue: Vec<u32>,
    /// Karn backoff epoch: per-packet timers armed together expire
    /// together, and each expiry must not double the shared RTO again
    /// — only the first timeout of an epoch backs off.
    backoff_barrier: Duration,
    /// Rate-sample epoch start: per-packet acks are too fine-grained to
    /// feed the delivery-rate estimator one at a time, so deliveries are
    /// aggregated over roughly one smoothed RTT and folded in as a
    /// single sample when the epoch closes.
    epoch_started_at: Duration,
    /// Cleanly-acked packets in the current rate epoch.
    epoch_packets: u32,
    /// Bytes those packets carried.
    epoch_bytes: u64,
    /// The sender ran out of fresh data during this epoch with the pipe
    /// underfilled — its measured rate reflects the application, not
    /// the path, and must not raise the windowed max.
    epoch_app_limited: bool,
    pool: BufferPool,
    stats: EngineStats,
    finish: Finish,
}

impl WindowSender {
    /// Create a sender for `data` on transfer `transfer_id`.
    pub fn new(transfer_id: u32, data: Arc<[u8]>, config: &ProtocolConfig) -> Self {
        let tx = TxData::new(data, config.packet_payload);
        let total = tx.total_packets() as usize;
        let pacer = Pacer::new(config.pacing);
        WindowSender {
            transfer_id,
            tx,
            builder: DatagramBuilder::new(transfer_id).kernel(config.kernel_flag),
            rto: RttEstimator::new(&config.timeout),
            max_retries: config.max_retries,
            window: config.window,
            next_unsent: 0,
            acked: vec![false; total],
            acked_count: 0,
            attempts: vec![0; total],
            sent_at: vec![Duration::ZERO; total],
            now: Duration::ZERO,
            burst_left: pacer.burst_budget(),
            pacer,
            pace_pending: false,
            // Sized up front: queueing a retransmission never allocates.
            retx_queue: Vec::with_capacity(total),
            backoff_barrier: Duration::ZERO,
            epoch_started_at: Duration::ZERO,
            epoch_packets: 0,
            epoch_bytes: 0,
            epoch_app_limited: false,
            pool: config.pool.clone(),
            stats: EngineStats::default(),
            finish: Finish::default(),
        }
    }

    /// The retransmission timeout currently in force.
    pub fn current_rto(&self) -> Duration {
        self.rto.rto()
    }

    fn in_flight(&self) -> u32 {
        // Packets transmitted at least once and not yet acked.
        (0..self.next_unsent)
            .filter(|&s| !self.acked[s as usize])
            .count() as u32
    }

    fn window_open(&self) -> bool {
        match self.window {
            None => true,
            Some(w) => self.in_flight() < w,
        }
    }

    fn transmit(&mut self, seq: u32, sink: &mut dyn ActionSink) {
        let payload = self.tx.payload_of(seq);
        let mut buf = self
            .pool
            .checkout_sized(blast_wire::HEADER_LEN + payload.len());
        let round = self.attempts[seq as usize] as u16;
        let len = self
            .builder
            .build_reliable_data(
                &mut buf,
                seq,
                self.tx.total_packets(),
                self.tx.offset_of(seq) as u32,
                payload,
                round,
            )
            .expect("buffer sized for payload");
        buf.truncate(len);
        self.stats.data_packets_sent += 1;
        if round > 0 {
            self.stats.data_packets_retransmitted += 1;
        } else {
            self.sent_at[seq as usize] = self.now;
        }
        sink.push_action(Action::Transmit(buf));
        sink.push_action(Action::SetTimer {
            token: TimerToken(u64::from(seq)),
            after: self.rto.rto(),
        });
    }

    /// Send fresh packets while the window allows, a pacer burst at a
    /// time: when the burst tokens run out mid-fill, the engine arms
    /// [`PACE_TIMER`] and resumes on its expiry with a fresh burst.
    fn fill_window(&mut self, sink: &mut dyn ActionSink) {
        while self.next_unsent < self.tx.total_packets() && self.window_open() {
            if self.burst_left == 0 {
                if !self.pace_pending {
                    self.pace_pending = true;
                    sink.push_action(Action::SetTimer {
                        token: PACE_TIMER,
                        after: self.pacer.gap(),
                    });
                }
                return;
            }
            self.burst_left -= 1;
            let seq = self.next_unsent;
            self.next_unsent += 1;
            self.transmit(seq, sink);
        }
    }

    /// Emit queued retransmissions while burst tokens last; anything
    /// left waits for the next pace tick.  Packets acked while queued
    /// are skipped.
    fn drain_retx(&mut self, sink: &mut dyn ActionSink) {
        let mut taken = 0;
        while taken < self.retx_queue.len() && self.burst_left > 0 {
            let seq = self.retx_queue[taken];
            taken += 1;
            if self.acked[seq as usize] {
                continue;
            }
            self.burst_left -= 1;
            self.transmit(seq, sink);
        }
        self.retx_queue.drain(..taken);
        if !self.retx_queue.is_empty() && !self.pace_pending {
            self.pace_pending = true;
            sink.push_action(Action::SetTimer {
                token: PACE_TIMER,
                after: self.pacer.gap(),
            });
        }
    }

    /// Fold one cleanly-acked packet into the current rate epoch and
    /// close the epoch — one estimator sample — once it spans a
    /// smoothed RTT (the first clean RTT before the estimator warms up).
    fn note_delivery(&mut self, seq: u32, rtt: Duration) {
        self.epoch_packets += 1;
        self.epoch_bytes += self.tx.payload_of(seq).len() as u64;
        if self.next_unsent == self.tx.total_packets()
            && self.in_flight() < self.pacer.burst_budget()
        {
            self.epoch_app_limited = true;
        }
        let elapsed = self.now.saturating_sub(self.epoch_started_at);
        if elapsed >= self.rto.srtt().unwrap_or(rtt) {
            self.pacer.on_rate_sample(
                self.epoch_packets,
                self.epoch_bytes,
                elapsed,
                self.epoch_app_limited,
            );
            self.epoch_started_at = self.now;
            self.epoch_packets = 0;
            self.epoch_bytes = 0;
            self.epoch_app_limited = false;
        }
    }
}

impl Engine for WindowSender {
    fn start(&mut self, sink: &mut dyn ActionSink) {
        self.epoch_started_at = self.now;
        self.fill_window(sink);
    }

    fn set_now(&mut self, now: Duration) {
        self.now = now;
    }

    fn on_datagram(&mut self, dgram: &Datagram<'_>, sink: &mut dyn ActionSink) {
        if self.finish.is_finished() || dgram.kind != PacketKind::Ack {
            return;
        }
        let Some(AckPayload::Positive { acked }) = &dgram.ack else {
            return;
        };
        let seq = *acked;
        if seq >= self.tx.total_packets() || self.acked[seq as usize] || seq >= self.next_unsent {
            // Duplicate or nonsensical ack.
            return;
        }
        self.stats.acks_received += 1;
        if self.attempts[seq as usize] == 0 {
            // Karn: never-retransmitted packets yield clean RTT samples,
            // and only those acks count toward the delivery-rate epoch.
            let rtt = self.now.saturating_sub(self.sent_at[seq as usize]);
            self.rto.sample(rtt);
            self.note_delivery(seq, rtt);
        }
        self.acked[seq as usize] = true;
        self.acked_count += 1;
        sink.push_action(Action::CancelTimer {
            token: TimerToken(u64::from(seq)),
        });
        if self.acked_count == self.tx.total_packets() {
            let stats = self.stats;
            self.finish
                .complete(sink, CompletionInfo::success(self.tx.len(), stats));
        } else {
            self.fill_window(sink);
        }
    }

    fn on_timer(&mut self, token: TimerToken, sink: &mut dyn ActionSink) {
        if self.finish.is_finished() {
            return;
        }
        if token == PACE_TIMER {
            // The gap elapsed: refill the burst tokens and resume —
            // queued retransmissions first (they are oldest), then
            // fresh window fill.
            self.pace_pending = false;
            self.burst_left = self.pacer.burst_budget();
            self.drain_retx(sink);
            self.fill_window(sink);
            return;
        }
        // Every other token is a per-packet retransmission timer keyed
        // by sequence number (always < 2³²; anything larger is foreign).
        let Ok(seq) = u32::try_from(token.0) else {
            return;
        };
        if seq >= self.tx.total_packets() || self.acked[seq as usize] {
            return; // stale timer
        }
        self.stats.timeouts += 1;
        // Karn backoff, once per loss epoch: sibling timers armed with
        // the same RTO expire together, and 32 simultaneous expirations
        // must double the RTO once, not 2³²-fold.  The barrier spans
        // the old RTO, so a genuinely later timeout (after the backed-off
        // rearm) still backs off again.
        if self.now >= self.backoff_barrier {
            self.backoff_barrier = self.now + self.rto.rto();
            self.rto.backoff();
            // One loss epoch = one congestion response: the pacer halves
            // its burst (and, rate-based, snaps the rate cap down) once,
            // however many sibling timers fire in the same tick.
            self.pacer.on_loss();
        }
        if self.attempts[seq as usize] >= self.max_retries {
            let stats = self.stats;
            self.finish.complete(
                sink,
                CompletionInfo::failure(
                    CoreError::RetriesExhausted {
                        retries: self.max_retries,
                    },
                    stats,
                ),
            );
            return;
        }
        self.attempts[seq as usize] += 1;
        self.stats.retransmission_rounds += 1;
        // Retransmissions honour the pacer too: consume a token now or
        // queue for the next pace tick.
        if self.burst_left > 0 {
            self.burst_left -= 1;
            self.transmit(seq, sink);
        } else {
            self.retx_queue.push(seq);
            if !self.pace_pending {
                self.pace_pending = true;
                sink.push_action(Action::SetTimer {
                    token: PACE_TIMER,
                    after: self.pacer.gap(),
                });
            }
        }
    }

    fn is_finished(&self) -> bool {
        self.finish.is_finished()
    }

    fn stats(&self) -> EngineStats {
        self.stats
    }

    fn transfer_id(&self) -> u32 {
        self.transfer_id
    }

    fn pacing_snapshot(&self) -> Option<crate::control::PacerSnapshot> {
        (self.pacer.enabled() || self.pacer.has_rate_samples()).then(|| self.pacer.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::saw::SawReceiver;

    fn data(n: usize) -> Arc<[u8]> {
        (0..n)
            .map(|i| (i * 7 % 251) as u8)
            .collect::<Vec<u8>>()
            .into()
    }

    fn feed(engine: &mut dyn Engine, packet: &[u8]) -> Vec<Action> {
        let d = Datagram::parse(packet).unwrap();
        let mut out = Vec::new();
        engine.on_datagram(&d, &mut out);
        out
    }

    #[test]
    fn unbounded_window_blasts_all_packets_up_front() {
        let cfg = ProtocolConfig::default();
        let mut s = WindowSender::new(1, data(8 * 1024), &cfg);
        let mut actions = Vec::new();
        s.start(&mut actions);
        let transmits = actions.iter().filter(|a| a.as_transmit().is_some()).count();
        assert_eq!(transmits, 8, "the paper's window never closes");
        // Every packet got its own timer.
        let timers = actions
            .iter()
            .filter(|a| matches!(a, Action::SetTimer { .. }))
            .count();
        assert_eq!(timers, 8);
    }

    #[test]
    fn bounded_window_limits_flight() {
        let cfg = ProtocolConfig::default().with_window(Some(3));
        let mut s = WindowSender::new(1, data(8 * 1024), &cfg);
        let mut actions = Vec::new();
        s.start(&mut actions);
        assert_eq!(
            actions.iter().filter(|a| a.as_transmit().is_some()).count(),
            3
        );

        // Ack seq 0: exactly one new packet (seq 3) goes out.
        let b = DatagramBuilder::new(1);
        let mut buf = vec![0u8; 64];
        let len = b
            .build_ack(&mut buf, 8, &AckPayload::Positive { acked: 0 })
            .unwrap();
        let out = feed(&mut s, &buf[..len]);
        let sent: Vec<u32> = out
            .iter()
            .filter_map(|a| a.as_transmit())
            .map(|p| Datagram::parse(p).unwrap().seq)
            .collect();
        assert_eq!(sent, vec![3]);
    }

    #[test]
    fn window_of_one_is_stop_and_wait() {
        let cfg = ProtocolConfig::default().with_window(Some(1));
        let payload = data(4 * 1024);
        let mut s = WindowSender::new(1, payload.clone(), &cfg);
        let mut r = SawReceiver::new(1, payload.len(), &cfg);
        let mut actions = Vec::new();
        s.start(&mut actions);
        let mut safety = 0;
        while !s.is_finished() {
            safety += 1;
            assert!(safety < 64);
            let pkts: Vec<&[u8]> = actions.iter().filter_map(Action::as_transmit).collect();
            assert_eq!(pkts.len(), 1, "window=1 must behave like stop-and-wait");
            let r_out = feed(&mut r, pkts[0]);
            let ack = r_out.iter().find_map(Action::as_transmit).unwrap();
            actions = feed(&mut s, ack);
        }
        assert!(r.is_finished());
        assert_eq!(r.data(), &payload[..]);
    }

    #[test]
    fn out_of_order_acks_complete_transfer() {
        let cfg = ProtocolConfig::default();
        let payload = data(4 * 1024);
        let mut s = WindowSender::new(1, payload.clone(), &cfg);
        let mut actions = Vec::new();
        s.start(&mut actions);
        let b = DatagramBuilder::new(1);
        let mut buf = vec![0u8; 64];
        for seq in [3u32, 1, 0, 2] {
            assert!(!s.is_finished());
            let len = b
                .build_ack(&mut buf, 4, &AckPayload::Positive { acked: seq })
                .unwrap();
            feed(&mut s, &buf[..len]);
        }
        assert!(s.is_finished());
        assert_eq!(s.stats().acks_received, 4);
    }

    #[test]
    fn duplicate_acks_ignored() {
        let cfg = ProtocolConfig::default();
        let mut s = WindowSender::new(1, data(4 * 1024), &cfg);
        let mut actions = Vec::new();
        s.start(&mut actions);
        let b = DatagramBuilder::new(1);
        let mut buf = vec![0u8; 64];
        let len = b
            .build_ack(&mut buf, 4, &AckPayload::Positive { acked: 2 })
            .unwrap();
        feed(&mut s, &buf[..len]);
        feed(&mut s, &buf[..len]);
        assert_eq!(s.stats().acks_received, 1);
        // Ack beyond what was sent is ignored too.
        let len = b
            .build_ack(&mut buf, 4, &AckPayload::Positive { acked: 9 })
            .unwrap();
        feed(&mut s, &buf[..len]);
        assert_eq!(s.stats().acks_received, 1);
    }

    #[test]
    fn per_packet_timeout_retransmits_only_that_packet() {
        let cfg = ProtocolConfig::default();
        let mut s = WindowSender::new(1, data(4 * 1024), &cfg);
        let mut actions = Vec::new();
        s.start(&mut actions);
        let mut out = Vec::new();
        s.on_timer(TimerToken(2), &mut out);
        let sent: Vec<u32> = out
            .iter()
            .filter_map(|a| a.as_transmit())
            .map(|p| Datagram::parse(p).unwrap().seq)
            .collect();
        assert_eq!(sent, vec![2]);
        assert_eq!(s.stats().data_packets_retransmitted, 1);
        // Round counter on the retransmission.
        let rt = out.iter().find_map(|a| a.as_transmit()).unwrap();
        assert_eq!(Datagram::parse(rt).unwrap().round, 1);
    }

    #[test]
    fn simultaneous_timeouts_back_off_once_per_epoch() {
        use crate::control::AdaptiveTimeout;
        let cfg = ProtocolConfig::default().with_timeout(AdaptiveTimeout::Adaptive {
            initial: Duration::from_millis(25),
            min: Duration::from_millis(2),
            max: Duration::from_secs(2),
        });
        let mut s = WindowSender::new(1, data(4 * 1024), &cfg);
        let mut actions = Vec::new();
        s.set_now(Duration::ZERO);
        s.start(&mut actions);
        // All four per-packet timers were armed with the same 25 ms RTO
        // and expire in the same tick: the shared estimator must double
        // once, not 2⁴-fold.
        s.set_now(Duration::from_millis(25));
        let mut out = Vec::new();
        for seq in 0..4u64 {
            s.on_timer(TimerToken(seq), &mut out);
        }
        assert_eq!(s.stats().timeouts, 4);
        assert_eq!(
            s.current_rto(),
            Duration::from_millis(50),
            "one loss epoch = one backoff"
        );
        // A later epoch (after the backed-off rearm) backs off again.
        s.set_now(Duration::from_millis(80));
        let mut out = Vec::new();
        s.on_timer(TimerToken(0), &mut out);
        assert_eq!(s.current_rto(), Duration::from_millis(100));
    }

    #[test]
    fn retransmissions_honour_the_pacer() {
        use crate::control::{PacingConfig, PACE_TIMER};
        let cfg =
            ProtocolConfig::default().with_pacing(PacingConfig::new(2, Duration::from_millis(1)));
        let mut s = WindowSender::new(1, data(4 * 1024), &cfg);
        let mut actions = Vec::new();
        s.start(&mut actions);
        // Burst of 2 sent, tokens exhausted, pace pending.
        assert_eq!(
            actions.iter().filter(|a| a.as_transmit().is_some()).count(),
            2
        );
        // Both sent packets time out while the tokens are spent: the
        // resends must queue, not burst past the throttle.
        let mut out = Vec::new();
        s.on_timer(TimerToken(0), &mut out);
        s.on_timer(TimerToken(1), &mut out);
        assert_eq!(
            out.iter().filter(|a| a.as_transmit().is_some()).count(),
            0,
            "token-less retransmissions wait for the pace tick"
        );
        assert_eq!(s.stats().timeouts, 2, "the timeouts themselves counted");
        // The pace tick refills tokens and drains the queue first.
        let mut out = Vec::new();
        s.on_timer(PACE_TIMER, &mut out);
        let resent: Vec<u32> = out
            .iter()
            .filter_map(|a| a.as_transmit())
            .map(|p| Datagram::parse(p).unwrap().seq)
            .collect();
        assert_eq!(resent, vec![0, 1], "oldest retransmissions first");
        assert_eq!(s.stats().data_packets_retransmitted, 2);
    }

    #[test]
    fn stale_timer_after_ack_is_ignored() {
        let cfg = ProtocolConfig::default();
        let mut s = WindowSender::new(1, data(2 * 1024), &cfg);
        let mut actions = Vec::new();
        s.start(&mut actions);
        let b = DatagramBuilder::new(1);
        let mut buf = vec![0u8; 64];
        let len = b
            .build_ack(&mut buf, 2, &AckPayload::Positive { acked: 0 })
            .unwrap();
        feed(&mut s, &buf[..len]);
        let mut out = Vec::new();
        s.on_timer(TimerToken(0), &mut out);
        assert!(out.is_empty(), "timer for an acked packet must be inert");
        assert_eq!(s.stats().timeouts, 0);
    }

    #[test]
    fn retries_exhaust_to_failure() {
        let mut cfg = ProtocolConfig::default();
        cfg.max_retries = 2;
        let mut s = WindowSender::new(1, data(1024), &cfg);
        let mut actions = Vec::new();
        s.start(&mut actions);
        for _ in 0..2 {
            let mut out = Vec::new();
            s.on_timer(TimerToken(0), &mut out);
        }
        let mut out = Vec::new();
        s.on_timer(TimerToken(0), &mut out);
        assert!(s.is_finished());
        match &out[..] {
            [Action::Complete(info)] => {
                assert!(matches!(
                    info.result,
                    Err(CoreError::RetriesExhausted { .. })
                ));
            }
            other => panic!("{other:?}"),
        }
    }
}
