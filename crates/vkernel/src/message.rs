//! V-kernel messages.
//!
//! V messages are short and fixed-size — 32 bytes — by design: "short
//! fixed-length messages … with data transfer operations for moving
//! larger amounts of data" (Cheriton & Zwaenepoel, SOSP '83).  The
//! 32-byte message carries the request; bulk data always moves via
//! `MoveTo`/`MoveFrom`.

use crate::process::Pid;

/// Bytes of user payload in a V message.
pub const MESSAGE_BYTES: usize = 32;

/// What a message asks for (the first payload byte, by convention of
/// this implementation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MessageKind {
    /// Plain data message; meaning is application-defined.
    Data,
    /// Request to read a file (payload carries the name) — the file
    /// server protocol of §2.
    ReadFile,
    /// Request to write a file.
    WriteFile,
    /// Reply carrying a status code.
    Reply,
}

impl MessageKind {
    fn to_byte(self) -> u8 {
        match self {
            MessageKind::Data => 0,
            MessageKind::ReadFile => 1,
            MessageKind::WriteFile => 2,
            MessageKind::Reply => 3,
        }
    }

    fn from_byte(b: u8) -> MessageKind {
        match b {
            1 => MessageKind::ReadFile,
            2 => MessageKind::WriteFile,
            3 => MessageKind::Reply,
            _ => MessageKind::Data,
        }
    }
}

/// A 32-byte V message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VMessage {
    /// Sending process (filled by the kernel on delivery).
    pub sender: Pid,
    bytes: [u8; MESSAGE_BYTES],
}

impl VMessage {
    /// Build a message of `kind` whose remaining 31 bytes start with
    /// `payload` (truncated if longer).
    pub fn new(kind: MessageKind, payload: &[u8]) -> Self {
        let mut bytes = [0u8; MESSAGE_BYTES];
        bytes[0] = kind.to_byte();
        let n = payload.len().min(MESSAGE_BYTES - 1);
        bytes[1..1 + n].copy_from_slice(&payload[..n]);
        VMessage {
            sender: Pid(0),
            bytes,
        }
    }

    /// The message kind.
    pub fn kind(&self) -> MessageKind {
        MessageKind::from_byte(self.bytes[0])
    }

    /// The 31 payload bytes after the kind byte.
    pub fn payload(&self) -> &[u8] {
        &self.bytes[1..]
    }

    /// Payload as a string, up to the first NUL — convenient for file
    /// names.
    pub fn payload_str(&self) -> &str {
        let p = self.payload();
        let end = p.iter().position(|&b| b == 0).unwrap_or(p.len());
        std::str::from_utf8(&p[..end]).unwrap_or("")
    }

    /// The raw 32 bytes.
    pub fn as_bytes(&self) -> &[u8; MESSAGE_BYTES] {
        &self.bytes
    }

    /// Stamp the sender (kernel-internal).
    pub(crate) fn with_sender(mut self, sender: Pid) -> Self {
        self.sender = sender;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_roundtrip() {
        for kind in [
            MessageKind::Data,
            MessageKind::ReadFile,
            MessageKind::WriteFile,
            MessageKind::Reply,
        ] {
            let m = VMessage::new(kind, b"x");
            assert_eq!(m.kind(), kind);
        }
        assert_eq!(MessageKind::from_byte(99), MessageKind::Data);
    }

    #[test]
    fn payload_truncated_to_31_bytes() {
        let long = [7u8; 64];
        let m = VMessage::new(MessageKind::Data, &long);
        assert_eq!(m.payload().len(), 31);
        assert!(m.payload().iter().all(|&b| b == 7));
    }

    #[test]
    fn payload_str_stops_at_nul() {
        let m = VMessage::new(MessageKind::ReadFile, b"/etc/motd");
        assert_eq!(m.payload_str(), "/etc/motd");
        let m = VMessage::new(MessageKind::Data, &[]);
        assert_eq!(m.payload_str(), "");
    }

    #[test]
    fn message_is_exactly_32_bytes() {
        let m = VMessage::new(MessageKind::Data, b"abc");
        assert_eq!(m.as_bytes().len(), MESSAGE_BYTES);
        assert_eq!(m.as_bytes()[0], 0);
        assert_eq!(&m.as_bytes()[1..4], b"abc");
    }

    #[test]
    fn sender_stamped_by_kernel() {
        let m = VMessage::new(MessageKind::Data, b"").with_sender(Pid(42));
        assert_eq!(m.sender, Pid(42));
    }
}
