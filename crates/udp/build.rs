//! Declares the `netio_batched` cfg: the batched syscall backend
//! (`sendmmsg`/`recvmmsg` + epoll/timerfd in `src/netio.rs`) is
//! compiled only where its hardcoded kernel ABI constants and struct
//! layouts are known-good — mainstream 64-bit Linux.  Everywhere else
//! the portable single-syscall backend is the only one built.

fn main() {
    println!("cargo::rustc-check-cfg=cfg(netio_batched)");
    let os = std::env::var("CARGO_CFG_TARGET_OS").unwrap_or_default();
    let arch = std::env::var("CARGO_CFG_TARGET_ARCH").unwrap_or_default();
    if os == "linux" && (arch == "x86_64" || arch == "aarch64") {
        println!("cargo::rustc-cfg=netio_batched");
    }
}
