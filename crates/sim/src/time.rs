//! Simulated time: nanosecond-resolution instants.
//!
//! The paper's constants are milliseconds with two decimal digits; we
//! carry nanoseconds so that the closed-form model and the simulator can
//! be compared for *exact* equality (the strongest validation this
//! workspace performs — see `tests/model_vs_sim.rs`).

use core::fmt;
use core::ops::{Add, AddAssign, Sub};
use std::time::Duration;

/// An instant in simulated time (nanoseconds since simulation start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from a millisecond quantity (the paper's unit).
    /// Rounds to the nearest nanosecond.
    pub fn from_ms(ms: f64) -> Self {
        SimTime((ms * 1e6).round() as u64)
    }

    /// This instant as fractional milliseconds.
    pub fn as_ms(&self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// This instant as a `Duration` since the epoch.
    pub fn as_duration(&self) -> Duration {
        Duration::from_nanos(self.0)
    }

    /// Nanoseconds since the epoch.
    pub fn as_nanos(&self) -> u64 {
        self.0
    }

    /// Saturating difference.
    pub fn since(&self, earlier: SimTime) -> Duration {
        Duration::from_nanos(self.0.saturating_sub(earlier.0))
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0 + rhs.as_nanos() as u64)
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.as_nanos() as u64;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;
    fn sub(self, rhs: SimTime) -> Duration {
        Duration::from_nanos(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_ms())
    }
}

/// Convert a millisecond quantity to a `Duration`, rounding to the
/// nearest nanosecond.
pub fn ms(ms: f64) -> Duration {
    Duration::from_nanos((ms * 1e6).round() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ms_roundtrip() {
        let t = SimTime::from_ms(1.35);
        assert_eq!(t.as_nanos(), 1_350_000);
        assert!((t.as_ms() - 1.35).abs() < 1e-12);
        assert_eq!(ms(0.82), Duration::from_micros(820));
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_ms(1.0) + ms(0.5);
        assert_eq!(t, SimTime::from_ms(1.5));
        assert_eq!(t - SimTime::from_ms(1.0), Duration::from_micros(500));
        assert_eq!(
            SimTime::from_ms(1.0).since(SimTime::from_ms(2.0)),
            Duration::ZERO
        );
        let mut u = SimTime::ZERO;
        u += ms(2.0);
        assert_eq!(u, SimTime::from_ms(2.0));
    }

    #[test]
    fn ordering_and_display() {
        assert!(SimTime::from_ms(1.0) < SimTime::from_ms(1.001));
        assert_eq!(SimTime::from_ms(4.08).to_string(), "4.080ms");
    }

    #[test]
    fn paper_constants_are_exact() {
        // The Table 2 constants must round-trip exactly at ns
        // resolution, or the model-vs-sim equality tests would wobble.
        for c in [1.35, 0.17, 0.82, 0.05, 0.01, 1.83, 0.67] {
            let t = SimTime::from_ms(c);
            assert_eq!(t.as_ms(), c);
        }
    }
}
