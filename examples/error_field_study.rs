//! A compact field study of the paper's §3: how the four blast
//! retransmission strategies behave as the network degrades, using the
//! full protocol engines over the calibrated simulator.
//!
//! Usage: `cargo run --release --example error_field_study -- [trials]`

use blastlan::analytic::{CostModel, ErrorFree};
use blastlan::core::blast::{BlastReceiver, BlastSender};
use blastlan::core::config::{ProtocolConfig, RetxStrategy};
use blastlan::sim::{LossModel, SimConfig, Simulator};
use blastlan::stats::OnlineStats;

fn measure(strategy: RetxStrategy, p_n: f64, trials: u64) -> OnlineStats {
    let t0_d = ErrorFree::new(CostModel::vkernel_sun()).blast(64);
    let data: Vec<u8> = (0..64 * 1024).map(|i| (i % 251) as u8).collect();
    let mut stats = OnlineStats::new();
    for t in 0..trials {
        let seed = 0xF1E1D ^ (t.wrapping_mul(0x9E3779B97F4A7C15));
        let mut sim = Simulator::new(SimConfig::vkernel().with_loss(LossModel::iid(p_n), seed));
        let a = sim.add_host("a");
        let b = sim.add_host("b");
        let mut cfg = ProtocolConfig::default().with_strategy(strategy);
        cfg.max_retries = 1_000_000;
        cfg.timeout = std::time::Duration::from_nanos((t0_d * 1e6) as u64).into();
        sim.attach(
            a,
            b,
            Box::new(BlastSender::new(1, data.clone().into(), &cfg)),
        );
        sim.attach(b, a, Box::new(BlastReceiver::new(1, data.len(), &cfg)));
        let report = sim.run();
        if let Some(ms) = report.elapsed_ms(a, 1) {
            stats.push(ms);
        }
    }
    stats
}

fn main() {
    let trials: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(150);
    let floor = ErrorFree::new(CostModel::vkernel_sun()).blast(64);
    println!(
        "64 KB transfers, V-kernel constants, error-free floor {floor:.1} ms, \
         {trials} trials per point\n"
    );
    println!(
        "{:<14} {:>10} {:>12} {:>12} {:>12}",
        "strategy", "p_n", "mean (ms)", "sigma (ms)", "vs floor"
    );
    for p_n in [1e-5, 1e-4, 1e-3, 1e-2] {
        for strategy in RetxStrategy::ALL {
            let s = measure(strategy, p_n, trials);
            println!(
                "{:<14} {:>10.0e} {:>12.2} {:>12.2} {:>+11.1}%",
                strategy.to_string(),
                p_n,
                s.mean(),
                s.population_stddev(),
                (s.mean() / floor - 1.0) * 100.0
            );
        }
        println!();
    }
    println!("the paper's conclusions, visible in the numbers:");
    println!(" * expected times sit on the error-free floor through the LAN regime (<=1e-4);");
    println!(" * sigma separates the strategies long before the means do;");
    println!(" * go-back-n ~ selective << full retransmission, hence §3.2.4's choice.");
}
