//! The kernel cluster: Send/Receive/Reply and MoveTo/MoveFrom.
//!
//! §2 of the paper: "the V kernel provides two operations — `MoveTo`
//! and `MoveFrom` — which allow one process to move an arbitrary amount
//! of data from its address space into the address space of another
//! process, or vice versa.  Both operations are network transparent."
//!
//! * **Local** moves copy directly between address spaces — "the fact
//!   that the client's buffer is already allocated allows the kernel to
//!   move the data from the source to the destination address space
//!   without an intermediate copy".
//! * **Remote** moves run the go-back-n blast engines of `blast-core`
//!   over the calibrated `blast-sim` network with the V-kernel cost
//!   constants (Table 3: `C = 1.83 ms`, `Ca = 0.67 ms`), and report the
//!   simulated elapsed time.
//!
//! The cluster accumulates a logical clock across operations, so a
//! workload's total simulated time (e.g. the file-server read of the
//! worked example) falls out directly.

use std::collections::HashMap;

use blast_core::api::EngineStats;
use blast_core::blast::{BlastReceiver, BlastSender};
use blast_core::config::ProtocolConfig;
use blast_core::error::CoreError;
use blast_sim::{LossModel, SimConfig, Simulator};

use crate::message::VMessage;
use crate::process::{Pid, Process, ProcessState};
use crate::space::{SegmentId, Space};

/// Errors from kernel operations.
#[derive(Debug, Clone, PartialEq)]
pub enum VKernelError {
    /// No such process.
    UnknownProcess(Pid),
    /// No such segment in the process's space.
    UnknownSegment(Pid, SegmentId),
    /// Destination segment length differs from the source's — the
    /// receive buffer must be pre-allocated at the right size.
    SizeMismatch {
        /// Source bytes.
        src: usize,
        /// Destination bytes.
        dst: usize,
    },
    /// IPC state violation (e.g. `Reply` to a process not awaiting
    /// one).
    BadState(&'static str),
    /// The underlying network transfer failed.
    TransferFailed(CoreError),
}

impl std::fmt::Display for VKernelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VKernelError::UnknownProcess(p) => write!(f, "unknown process {p}"),
            VKernelError::UnknownSegment(p, s) => {
                write!(f, "unknown segment {s:?} in process {p}")
            }
            VKernelError::SizeMismatch { src, dst } => {
                write!(f, "segment size mismatch: src {src} bytes, dst {dst} bytes")
            }
            VKernelError::BadState(s) => write!(f, "IPC state violation: {s}"),
            VKernelError::TransferFailed(e) => write!(f, "transfer failed: {e}"),
        }
    }
}

impl std::error::Error for VKernelError {}

/// Result of a `MoveTo`/`MoveFrom`.
#[derive(Debug, Clone)]
pub struct MoveOutcome {
    /// Bytes moved.
    pub bytes: usize,
    /// Elapsed simulated time in milliseconds.
    pub elapsed_ms: f64,
    /// Whether the move crossed the network.
    pub remote: bool,
    /// Sender-side engine counters (zeroes for local moves).
    pub sender_stats: EngineStats,
    /// Frames lost in flight during the move.
    pub wire_losses: u64,
}

struct Kernel {
    #[allow(dead_code)] // diagnostic: kernels are addressed by index
    name: String,
    processes: HashMap<u16, Process>,
    spaces: HashMap<Pid, Space>,
    next_local: u16,
}

/// A cluster of V kernels on one simulated Ethernet.
pub struct VCluster {
    kernels: Vec<Kernel>,
    protocol: ProtocolConfig,
    loss: LossModel,
    seed: u64,
    next_transfer: u32,
    replies: HashMap<Pid, VMessage>,
    /// Accumulated simulated time across all operations (ms).
    pub clock_ms: f64,
    /// Total bulk bytes moved.
    pub bytes_moved: u64,
    /// Total messages exchanged.
    pub messages: u64,
}

impl VCluster {
    /// A cluster with no kernels; add them with
    /// [`add_kernel`](Self::add_kernel).
    pub fn new() -> Self {
        let mut protocol = ProtocolConfig::default();
        protocol.kernel_flag = true;
        VCluster {
            kernels: Vec::new(),
            protocol,
            loss: LossModel::None,
            seed: 1,
            next_transfer: 1,
            replies: HashMap::new(),
            clock_ms: 0.0,
            bytes_moved: 0,
            messages: 0,
        }
    }

    /// Inject iid loss with probability `p` into every remote
    /// operation's network.
    pub fn with_loss(mut self, p: f64, seed: u64) -> Self {
        self.loss = LossModel::iid(p);
        self.seed = seed;
        self
    }

    /// Override the protocol configuration used for bulk moves.
    pub fn with_protocol(mut self, protocol: ProtocolConfig) -> Self {
        self.protocol = protocol;
        self
    }

    /// Add a kernel (a machine on the Ethernet); returns its index.
    pub fn add_kernel(&mut self, name: &str) -> u16 {
        self.kernels.push(Kernel {
            name: name.to_string(),
            processes: HashMap::new(),
            spaces: HashMap::new(),
            next_local: 1,
        });
        (self.kernels.len() - 1) as u16
    }

    /// Create a process on kernel `kernel`.
    pub fn create_process(&mut self, kernel: u16, name: &str) -> Pid {
        let k = &mut self.kernels[kernel as usize];
        let local = k.next_local;
        k.next_local += 1;
        let pid = Pid::new(kernel, local);
        k.processes.insert(local, Process::new(pid, name));
        k.spaces.insert(pid, Space::new());
        pid
    }

    fn kernel_of(&self, pid: Pid) -> Result<&Kernel, VKernelError> {
        self.kernels
            .get(pid.kernel() as usize)
            .ok_or(VKernelError::UnknownProcess(pid))
    }

    fn process_mut(&mut self, pid: Pid) -> Result<&mut Process, VKernelError> {
        self.kernels
            .get_mut(pid.kernel() as usize)
            .and_then(|k| k.processes.get_mut(&pid.local()))
            .ok_or(VKernelError::UnknownProcess(pid))
    }

    fn space_mut(&mut self, pid: Pid) -> Result<&mut Space, VKernelError> {
        self.kernels
            .get_mut(pid.kernel() as usize)
            .and_then(|k| k.spaces.get_mut(&pid))
            .ok_or(VKernelError::UnknownProcess(pid))
    }

    /// State of a process.
    pub fn state_of(&self, pid: Pid) -> Result<ProcessState, VKernelError> {
        self.kernel_of(pid)?
            .processes
            .get(&pid.local())
            .map(|p| p.state)
            .ok_or(VKernelError::UnknownProcess(pid))
    }

    /// Register a zero-filled segment of `len` bytes in `pid`'s space —
    /// the pre-allocated receive buffer of the paper's §2.
    pub fn register_segment(&mut self, pid: Pid, len: usize) -> Result<SegmentId, VKernelError> {
        Ok(self.space_mut(pid)?.register(len))
    }

    /// Register a segment initialized with `data` (a send buffer).
    pub fn register_segment_with(
        &mut self,
        pid: Pid,
        data: &[u8],
    ) -> Result<SegmentId, VKernelError> {
        Ok(self.space_mut(pid)?.register_with(data))
    }

    /// Read a segment.
    pub fn segment(&self, pid: Pid, id: SegmentId) -> Result<&[u8], VKernelError> {
        self.kernel_of(pid)?
            .spaces
            .get(&pid)
            .and_then(|s| s.get(id))
            .ok_or(VKernelError::UnknownSegment(pid, id))
    }

    /// One-way cost of a 32-byte message packet on the V network:
    /// copy-in + transmission + copy-out of an ack-class packet.
    fn message_oneway_ms(&self) -> f64 {
        let m = blast_analytic::CostModel::vkernel_sun();
        2.0 * m.c_ack + m.t_ack + m.tau
    }

    /// V `Send`: deliver `msg` to `to`'s mailbox and block `from` until
    /// the reply.  Remote sends charge one packet of simulated time.
    pub fn send(&mut self, from: Pid, to: Pid, msg: VMessage) -> Result<(), VKernelError> {
        // Validate both ends first.
        self.process_mut(to)?;
        let sender = self.process_mut(from)?;
        if sender.state != ProcessState::Ready {
            return Err(VKernelError::BadState("Send from a blocked process"));
        }
        sender.state = ProcessState::AwaitingReply { to };
        let stamped = msg.with_sender(from);
        self.process_mut(to)?.mailbox.push_back(stamped);
        if from.kernel() != to.kernel() {
            self.clock_ms += self.message_oneway_ms();
        }
        self.messages += 1;
        Ok(())
    }

    /// V `Receive`: take the next message from `pid`'s mailbox, or
    /// block (state → `Receiving`) when none is available.
    pub fn receive(&mut self, pid: Pid) -> Result<Option<VMessage>, VKernelError> {
        let p = self.process_mut(pid)?;
        match p.mailbox.pop_front() {
            Some(m) => {
                p.state = ProcessState::Ready;
                Ok(Some(m))
            }
            None => {
                p.state = ProcessState::Receiving;
                Ok(None)
            }
        }
    }

    /// V `Reply`: unblock `to` (which must be awaiting a reply from
    /// `from`) and deposit the reply message for
    /// [`collect_reply`](Self::collect_reply).
    pub fn reply(&mut self, from: Pid, to: Pid, msg: VMessage) -> Result<(), VKernelError> {
        let target = self.process_mut(to)?;
        match target.state {
            ProcessState::AwaitingReply { to: waiting_on } if waiting_on == from => {
                target.state = ProcessState::Ready;
            }
            _ => return Err(VKernelError::BadState("Reply to a process not awaiting it")),
        }
        self.replies.insert(to, msg.with_sender(from));
        if from.kernel() != to.kernel() {
            self.clock_ms += self.message_oneway_ms();
        }
        self.messages += 1;
        Ok(())
    }

    /// Fetch the reply that unblocked `pid`'s `Send`, if any.
    pub fn collect_reply(&mut self, pid: Pid) -> Option<VMessage> {
        self.replies.remove(&pid)
    }

    /// `MoveTo`: move `src_segment` of `src` into `dst_segment` of
    /// `dst`.  The destination segment must already be registered with
    /// the same length (buffers are allocated *before* the transfer).
    pub fn move_to(
        &mut self,
        src: Pid,
        src_segment: SegmentId,
        dst: Pid,
        dst_segment: SegmentId,
    ) -> Result<MoveOutcome, VKernelError> {
        let data = self.segment(src, src_segment)?.to_vec();
        let dst_len = self
            .kernel_of(dst)?
            .spaces
            .get(&dst)
            .and_then(|s| s.len_of(dst_segment))
            .ok_or(VKernelError::UnknownSegment(dst, dst_segment))?;
        if dst_len != data.len() {
            return Err(VKernelError::SizeMismatch {
                src: data.len(),
                dst: dst_len,
            });
        }
        let outcome = if src.kernel() == dst.kernel() {
            // Local: one direct copy, no network.  Cost: proportional
            // to size at the calibrated per-byte copy rate.
            let m = blast_analytic::CostModel::vkernel_sun();
            let (_, per_byte) = m.copy_cost_line(1024, 64);
            let elapsed_ms = per_byte * data.len() as f64;
            let space = self.space_mut(dst)?;
            space
                .get_mut(dst_segment)
                .ok_or(VKernelError::UnknownSegment(dst, dst_segment))?
                .copy_from_slice(&data);
            MoveOutcome {
                bytes: data.len(),
                elapsed_ms,
                remote: false,
                sender_stats: EngineStats::default(),
                wire_losses: 0,
            }
        } else {
            self.remote_blast(&data, dst, dst_segment)?
        };
        self.clock_ms += outcome.elapsed_ms;
        self.bytes_moved += outcome.bytes as u64;
        Ok(outcome)
    }

    /// `MoveFrom`: move `src_segment` of `src` into `dst_segment` of
    /// the requesting process `requester`.  Remote moves charge one
    /// extra request packet before the blast (the data flows *towards*
    /// the requester).
    pub fn move_from(
        &mut self,
        requester: Pid,
        dst_segment: SegmentId,
        src: Pid,
        src_segment: SegmentId,
    ) -> Result<MoveOutcome, VKernelError> {
        if requester.kernel() != src.kernel() {
            self.clock_ms += self.message_oneway_ms();
        }
        self.move_to(src, src_segment, requester, dst_segment)
    }

    /// Run the blast engines over the simulated V network.
    fn remote_blast(
        &mut self,
        data: &[u8],
        dst: Pid,
        dst_segment: SegmentId,
    ) -> Result<MoveOutcome, VKernelError> {
        let transfer = self.next_transfer;
        self.next_transfer += 1;
        let sim_cfg = SimConfig::vkernel().with_loss(self.loss, self.seed ^ u64::from(transfer));
        let mut sim = Simulator::new(sim_cfg);
        let a = sim.add_host("src-kernel");
        let b = sim.add_host("dst-kernel");
        let sender = BlastSender::new(transfer, data.to_vec().into(), &self.protocol);
        let receiver = BlastReceiver::new(transfer, data.len(), &self.protocol);
        sim.attach(a, b, Box::new(sender));
        sim.attach(b, a, Box::new(receiver));
        let report = sim.run();

        let sender_completion =
            report
                .completions
                .get(&(a, transfer))
                .ok_or(VKernelError::TransferFailed(CoreError::BadState {
                    what: "sender never completed",
                }))?;
        let sender_stats = sender_completion.info.stats;
        if let Err(e) = &sender_completion.info.result {
            return Err(VKernelError::TransferFailed(e.clone()));
        }
        let elapsed_ms = sender_completion.at.as_ms();

        // Deliver the received bytes into the destination segment.  The
        // simulator ran the real engines, so the receiver's buffer holds
        // exactly `data`; we copy from the source segment (already
        // validated equal) to keep the simulator API minimal.
        let space = self.space_mut(dst)?;
        space
            .get_mut(dst_segment)
            .ok_or(VKernelError::UnknownSegment(dst, dst_segment))?
            .copy_from_slice(data);
        Ok(MoveOutcome {
            bytes: data.len(),
            elapsed_ms,
            remote: true,
            sender_stats,
            wire_losses: report.wire_losses,
        })
    }
}

impl Default for VCluster {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::MessageKind;

    fn two_kernel_cluster() -> (VCluster, Pid, Pid) {
        let mut c = VCluster::new();
        let k0 = c.add_kernel("workstation");
        let k1 = c.add_kernel("server");
        let client = c.create_process(k0, "client");
        let server = c.create_process(k1, "fs");
        (c, client, server)
    }

    #[test]
    fn send_receive_reply_cycle() {
        let (mut c, client, server) = two_kernel_cluster();
        // Server blocks in Receive first.
        assert_eq!(c.receive(server).unwrap(), None);
        assert_eq!(c.state_of(server).unwrap(), ProcessState::Receiving);

        c.send(
            client,
            server,
            VMessage::new(MessageKind::ReadFile, b"/etc/motd"),
        )
        .unwrap();
        assert_eq!(
            c.state_of(client).unwrap(),
            ProcessState::AwaitingReply { to: server }
        );

        let msg = c.receive(server).unwrap().expect("message queued");
        assert_eq!(msg.kind(), MessageKind::ReadFile);
        assert_eq!(msg.payload_str(), "/etc/motd");
        assert_eq!(msg.sender, client);

        c.reply(server, client, VMessage::new(MessageKind::Reply, b"ok"))
            .unwrap();
        assert_eq!(c.state_of(client).unwrap(), ProcessState::Ready);
        let r = c.collect_reply(client).expect("reply deposited");
        assert_eq!(r.kind(), MessageKind::Reply);
    }

    #[test]
    fn reply_without_send_is_an_error() {
        let (mut c, client, server) = two_kernel_cluster();
        let err = c
            .reply(server, client, VMessage::new(MessageKind::Reply, b""))
            .unwrap_err();
        assert!(matches!(err, VKernelError::BadState(_)));
    }

    #[test]
    fn double_send_blocked() {
        let (mut c, client, server) = two_kernel_cluster();
        c.send(client, server, VMessage::new(MessageKind::Data, b"1"))
            .unwrap();
        let err = c
            .send(client, server, VMessage::new(MessageKind::Data, b"2"))
            .unwrap_err();
        assert!(matches!(err, VKernelError::BadState(_)));
    }

    #[test]
    fn local_move_is_direct_and_cheap() {
        let mut c = VCluster::new();
        let k0 = c.add_kernel("solo");
        let a = c.create_process(k0, "a");
        let b = c.create_process(k0, "b");
        let data: Vec<u8> = (0..4096).map(|i| (i % 251) as u8).collect();
        let src = c.register_segment_with(a, &data).unwrap();
        let dst = c.register_segment(b, data.len()).unwrap();
        let out = c.move_to(a, src, b, dst).unwrap();
        assert!(!out.remote);
        assert_eq!(out.bytes, 4096);
        assert_eq!(c.segment(b, dst).unwrap(), &data[..]);
        // Local cost ≪ remote cost.
        assert!(out.elapsed_ms < 10.0, "{}", out.elapsed_ms);
        assert_eq!(out.wire_losses, 0);
    }

    #[test]
    fn remote_move_matches_table_3_timing() {
        let (mut c, client, server) = two_kernel_cluster();
        let data: Vec<u8> = (0..64 * 1024).map(|i| (i % 253) as u8).collect();
        let src = c.register_segment_with(server, &data).unwrap();
        let dst = c.register_segment(client, data.len()).unwrap();
        let out = c.move_to(server, src, client, dst).unwrap();
        assert!(out.remote);
        // Table 3: a 64 KB MoveTo ≈ 173 ms (exactly 172.82 with the
        // fitted constants).
        assert!((out.elapsed_ms - 172.82).abs() < 0.01, "{}", out.elapsed_ms);
        assert_eq!(c.segment(client, dst).unwrap(), &data[..]);
        assert_eq!(out.sender_stats.data_packets_sent, 64);
    }

    #[test]
    fn size_mismatch_rejected_before_any_transfer() {
        let (mut c, client, server) = two_kernel_cluster();
        let src = c.register_segment_with(server, &[1, 2, 3]).unwrap();
        let dst = c.register_segment(client, 5).unwrap();
        let err = c.move_to(server, src, client, dst).unwrap_err();
        assert_eq!(err, VKernelError::SizeMismatch { src: 3, dst: 5 });
        assert_eq!(c.bytes_moved, 0);
    }

    #[test]
    fn lossy_network_retransmits_but_delivers() {
        let (mut c, client, server) = two_kernel_cluster();
        c = c.with_loss(0.10, 77);
        let data: Vec<u8> = (0..64 * 1024).map(|i| (i % 249) as u8).collect();
        let src = c.register_segment_with(server, &data).unwrap();
        let dst = c.register_segment(client, data.len()).unwrap();
        let out = c.move_to(server, src, client, dst).unwrap();
        assert!(out.wire_losses > 0);
        assert!(out.sender_stats.data_packets_retransmitted > 0);
        assert_eq!(c.segment(client, dst).unwrap(), &data[..]);
    }

    #[test]
    fn clock_accumulates_across_operations() {
        let (mut c, client, server) = two_kernel_cluster();
        assert_eq!(c.clock_ms, 0.0);
        c.send(client, server, VMessage::new(MessageKind::Data, b"req"))
            .unwrap();
        let after_send = c.clock_ms;
        assert!(after_send > 0.0, "remote send must cost time");
        let data = vec![9u8; 8 * 1024];
        let src = c.register_segment_with(server, &data).unwrap();
        let dst = c.register_segment(client, data.len()).unwrap();
        c.move_to(server, src, client, dst).unwrap();
        assert!(c.clock_ms > after_send + 20.0);
        assert_eq!(c.bytes_moved, 8 * 1024);
        assert_eq!(c.messages, 1);
    }

    #[test]
    fn unknown_entities_error() {
        let (mut c, client, _) = two_kernel_cluster();
        let ghost = Pid::new(0, 99);
        assert!(matches!(
            c.send(ghost, client, VMessage::new(MessageKind::Data, b"")),
            Err(VKernelError::UnknownProcess(_))
        ));
        assert!(matches!(
            c.segment(client, SegmentId(9)),
            Err(VKernelError::UnknownSegment(..))
        ));
        assert!(matches!(
            c.state_of(Pid::new(9, 1)),
            Err(VKernelError::UnknownProcess(_))
        ));
    }

    #[test]
    fn move_from_charges_request_packet() {
        let (mut c, client, server) = two_kernel_cluster();
        let data = vec![1u8; 1024];
        let src = c.register_segment_with(server, &data).unwrap();
        let dst1 = c.register_segment(client, data.len()).unwrap();
        let out_to = c.move_to(server, src, client, dst1).unwrap();

        let mut c2 = VCluster::new();
        let k0 = c2.add_kernel("a");
        let k1 = c2.add_kernel("b");
        let client2 = c2.create_process(k0, "client");
        let server2 = c2.create_process(k1, "fs");
        let src2 = c2.register_segment_with(server2, &data).unwrap();
        let dst2 = c2.register_segment(client2, data.len()).unwrap();
        let before = c2.clock_ms;
        c2.move_from(client2, dst2, server2, src2).unwrap();
        let from_cost = c2.clock_ms - before;
        assert!(
            from_cost > out_to.elapsed_ms,
            "MoveFrom adds the request packet: {from_cost} vs {}",
            out_to.elapsed_ms
        );
    }
}
