//! Standard deviation of blast retransmission strategies — §3.2.
//!
//! §3.1.3 shows the *expected* time of even the crudest strategy is
//! near-optimal at LAN error rates; the whole argument for smarter
//! strategies is the *standard deviation*.  This module gives closed
//! forms for strategies 1 and 2; strategies 3 and 4 (go-back-n and
//! selective) are evaluated by simulation in [`crate::montecarlo`], just
//! as the paper did ("we have simulated the procedures by computer",
//! §3.2.3).
//!
//! ## Derivation note
//!
//! With iid attempt failures of probability `p_c` and constant costs the
//! number of failures `F` is geometric, so for strategy 1 (every failure
//! costs `To(D) + T_r`):
//!
//! ```text
//! σ = (To(D) + T_r) · √p_c / (1 − p_c)
//! ```
//!
//! The scanned paper prints an extra `(1+p_c)` factor inside the root;
//! the Monte-Carlo estimator in this crate confirms the form above (the
//! discrepancy does not affect any of the paper's qualitative claims —
//! for `p_c ≪ 1` the factor is ≈ 1).

use crate::cost::CostModel;
use crate::errorfree::ErrorFree;
use crate::geom;

/// Standard-deviation formulas for `D`-packet blasts at error rate
/// `p_n` with retransmission interval `t_r` (ms).
#[derive(Debug, Clone, Copy)]
pub struct StdDev {
    ef: ErrorFree,
}

/// Mean and standard deviation of a compound-geometric elapsed time:
/// `T = T₀ + Σ_{i=1..F} Xᵢ` with `F ~ Geom(p_c)` (failures before
/// success) and iid per-failure costs `Xᵢ` of mean `mx`, variance `vx`.
pub fn compound_geometric(t0: f64, p_c: f64, mx: f64, vx: f64) -> (f64, f64) {
    let ef = geom::mean_failures(p_c);
    let vf = geom::var_failures(p_c);
    let mean = t0 + ef * mx;
    let var = ef * vx + vf * mx * mx;
    (mean, var.max(0.0).sqrt())
}

impl StdDev {
    /// Build from a cost model.
    pub fn new(model: CostModel) -> Self {
        StdDev {
            ef: ErrorFree::new(model),
        }
    }

    /// The embedded error-free model.
    pub fn error_free(&self) -> &ErrorFree {
        &self.ef
    }

    /// §3.2.1 — full retransmission without NACK:
    /// `σ = (To(D) + T_r) √p_c / (1 − p_c)`.
    ///
    /// Every failure is discovered by timeout, so `T_r` multiplies the
    /// deviation — "unacceptable variations … for realistic
    /// retransmission intervals".
    pub fn full_no_nack(&self, d: u64, p_n: f64, t_r: f64) -> f64 {
        let p_c = geom::any_of(p_n, d + 1);
        if p_c >= 1.0 {
            return f64::INFINITY;
        }
        let t0 = self.ef.blast(d);
        compound_geometric(t0, p_c, t0 + t_r, 0.0).1
    }

    /// §3.2.2 — full retransmission with NACK, exact compound form.
    ///
    /// A failed attempt is *fast* (NACK received ≈ one round `To(D)`)
    /// unless the last packet or the report itself was lost, in which
    /// case it is *slow* (timeout, `To(D) + T_r`).
    pub fn full_nack(&self, d: u64, p_n: f64, t_r: f64) -> f64 {
        let p_c = geom::any_of(p_n, d + 1);
        if p_c >= 1.0 {
            return f64::INFINITY;
        }
        let t0 = self.ef.blast(d);
        // fast failure: last packet and report both delivered, some
        // earlier packet lost.
        let p_fast = (1.0 - p_n) * (1.0 - p_n) * (1.0 - (1.0 - p_n).powi(d as i32 - 1));
        let q_slow = ((p_c - p_fast) / p_c).clamp(0.0, 1.0); // P(slow | failure)
        let mx = t0 + q_slow * t_r;
        let vx = q_slow * (1.0 - q_slow) * t_r * t_r;
        compound_geometric(t0, p_c, mx, vx).1
    }

    /// §3.2.2's printed approximation, valid for `p_n ≪ 1/D`:
    /// `σ ≈ To(D) √p_c / (1 − p_c)` — "all but independent from the
    /// retransmission interval".
    pub fn full_nack_paper_approx(&self, d: u64, p_n: f64) -> f64 {
        let p_c = geom::any_of(p_n, d + 1);
        if p_c >= 1.0 {
            return f64::INFINITY;
        }
        self.ef.blast(d) * geom::stddev_failures(p_c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vkernel() -> StdDev {
        StdDev::new(CostModel::vkernel_sun())
    }

    #[test]
    fn zero_loss_zero_deviation() {
        let s = vkernel();
        assert_eq!(s.full_no_nack(64, 0.0, 173.0), 0.0);
        assert_eq!(s.full_nack(64, 0.0, 173.0), 0.0);
        assert_eq!(s.full_nack_paper_approx(64, 0.0), 0.0);
    }

    #[test]
    fn timeout_dominates_strategy_1() {
        // Figure 6's message: the no-NACK deviation scales with T_r.
        let s = vkernel();
        let small = s.full_no_nack(64, 1e-4, 173.0);
        let large = s.full_no_nack(64, 1e-4, 1730.0);
        assert!(
            large > 4.0 * small,
            "σ must grow ≈ linearly with T_r: {small} vs {large}"
        );
    }

    #[test]
    fn nack_makes_deviation_timeout_independent() {
        // "the standard deviation when using full retransmission with a
        // negative acknowledgement is all but independent from the
        // retransmission interval (for low error rates)".  Exactly: a
        // fraction ≈ 2/(D+1) of failures (lost tail or lost report)
        // still waits out T_r, so the independence is up to that term —
        // the paper's approximation assumes D ≫ 1 and drops it.
        let s = vkernel();
        let small = s.full_nack(64, 1e-4, 173.0);
        let large = s.full_nack(64, 1e-4, 1_730.0);
        assert!(large < small * 2.5, "{small} vs {large}");
        // Strategy 1 at the same 10× T_r is ≈ 10× worse; with NACK the
        // growth is bounded by the slow-failure fraction.
        let ratio_nonack = s.full_no_nack(64, 1e-4, 1_730.0) / s.full_no_nack(64, 1e-4, 173.0);
        let ratio_nack = large / small;
        assert!(ratio_nonack > 5.0, "{ratio_nonack}");
        assert!(
            ratio_nack < ratio_nonack / 2.0,
            "{ratio_nack} vs {ratio_nonack}"
        );
        // And strategy 1 is far worse than strategy 2 at any given T_r.
        assert!(s.full_no_nack(64, 1e-4, 1_730.0) > 4.0 * large);
    }

    #[test]
    fn nack_approx_agrees_with_exact_at_low_pn() {
        let s = vkernel();
        for p_n in [1e-6, 1e-5, 1e-4] {
            let exact = s.full_nack(64, p_n, 173.0);
            let approx = s.full_nack_paper_approx(64, p_n);
            let rel = (exact - approx).abs() / approx.max(1e-12);
            assert!(rel < 0.2, "p_n={p_n}: exact {exact} approx {approx}");
        }
    }

    #[test]
    fn deviation_monotone_in_pn() {
        let s = vkernel();
        let mut prev = -1.0;
        for p_n in [1e-6, 1e-5, 1e-4, 1e-3, 1e-2] {
            let sigma = s.full_nack(64, p_n, 173.0);
            assert!(sigma > prev, "p_n={p_n}");
            prev = sigma;
        }
    }

    #[test]
    fn sqrt_pn_scaling_in_flat_region() {
        // σ ∝ √p_c ≈ √((D+1)p_n): two decades of p_n ⇒ one decade of σ.
        let s = vkernel();
        let lo = s.full_nack_paper_approx(64, 1e-6);
        let hi = s.full_nack_paper_approx(64, 1e-4);
        let ratio = hi / lo;
        assert!((ratio - 10.0).abs() < 0.5, "ratio {ratio}");
    }

    #[test]
    fn compound_geometric_degenerate_cases() {
        // No failures possible: mean = t0, σ = 0.
        let (m, s) = compound_geometric(100.0, 0.0, 55.0, 10.0);
        assert_eq!(m, 100.0);
        assert_eq!(s, 0.0);
        // Constant cost: matches the closed form (T0+Tr)·√p/(1−p).
        let (_, s) = compound_geometric(100.0, 0.25, 150.0, 0.0);
        assert!((s - 150.0 * 0.5 / 0.75).abs() < 1e-12);
    }

    #[test]
    fn strategy_order_matches_figure_6() {
        // At any realistic point: no-NACK ≥ NACK (both full
        // retransmission; the NACK only removes timeout waits).
        let s = vkernel();
        for p_n in [1e-5, 1e-4, 1e-3] {
            for t_r in [173.0, 1730.0] {
                assert!(
                    s.full_no_nack(64, p_n, t_r) >= s.full_nack(64, p_n, t_r),
                    "p_n={p_n} t_r={t_r}"
                );
            }
        }
    }
}
