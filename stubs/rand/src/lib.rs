//! Offline in-tree shim for the `rand` crate (0.8-style API).
//!
//! Implements only what this workspace uses: seeded [`rngs::SmallRng`]
//! plus the [`Rng`]/[`SeedableRng`] trait surface (`gen`, `gen_range`,
//! `gen_bool`, `next_u64`).  There is deliberately no OS entropy —
//! every consumer in this repository seeds explicitly, which keeps the
//! simulations reproducible.  See `stubs/README.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A random number generator: the subset of `rand::Rng` this
/// workspace uses.
pub trait Rng {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Returns a value uniformly distributed over `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of range");
        self.gen::<f64>() < p
    }
}

/// Types that can be constructed from a seed; the subset of
/// `rand::SeedableRng` this workspace uses.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed, expanded with
    /// splitmix64 so nearby seeds give unrelated streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types sampleable uniformly over their whole domain (`Rng::gen`).
pub trait Standard {
    /// Draws one value from `rng`.
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn sample<R: Rng>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for bool {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    /// Draws one value from `rng` uniformly over the range.
    fn sample_from<R: Rng>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[allow(clippy::cast_possible_truncation)]
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[allow(clippy::cast_possible_truncation)]
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_sint {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
impl_sample_range_sint!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// The concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A small, fast, seeded generator (xoshiro256++), standing in for
    /// `rand::rngs::SmallRng`.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_is_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(0..8);
            assert!((0..8).contains(&w));
            let x = rng.gen_range(5u8..=5);
            assert_eq!(x, 5);
        }
    }

    #[test]
    fn gen_bool_edges() {
        let mut rng = SmallRng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0) || !rng.gen_bool(1.0)); // never panics
    }
}
