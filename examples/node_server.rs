//! Run a blast transfer node.
//!
//! ```bash
//! cargo run --release --example node_server -- 127.0.0.1:47611 --sessions 2 --seed demo
//! ```
//!
//! Binds the given address (default `127.0.0.1:47611`), optionally
//! seeds the store with a demo blob, serves the given number of
//! sessions (default: forever), then prints the aggregate metrics.
//! Pair it with the `node_client` example.

use blast_node::server::{NodeConfig, NodeServer};
use blast_node::shared_store;

fn main() -> std::io::Result<()> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = "127.0.0.1:47611".to_string();
    let mut sessions: Option<u64> = None;
    let mut seed: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--sessions" => sessions = it.next().and_then(|v| v.parse().ok()),
            "--seed" => seed = it.next(),
            other => addr = other.to_string(),
        }
    }

    let store = shared_store();
    if let Some(name) = &seed {
        let blob: Vec<u8> = (0..128 * 1024).map(|i| (i % 251) as u8).collect();
        store.lock().expect("store lock").put(name, blob);
        println!("seeded blob '{name}' (128 KiB)");
    }

    let mut config = NodeConfig::default();
    config.bind = addr.parse().expect("bind address like 127.0.0.1:47611");
    let mut server = NodeServer::bind_with_store(config, store)?;
    println!("blast-node listening on {}", server.local_addr()?);

    match sessions {
        Some(n) => {
            println!("serving {n} session(s), then reporting…");
            server.run_sessions(n)?;
        }
        None => {
            println!("serving forever (Ctrl-C to stop)…");
            server.run()?;
        }
    }

    println!("\n{}", server.metrics().summary());
    let store = server.store();
    let s = store.lock().expect("store lock");
    println!(
        "store: {} blob(s), {} bytes total: {:?}",
        s.len(),
        s.total_bytes(),
        s.names().collect::<Vec<_>>()
    );
    Ok(())
}
