//! Property tests for the segmentation-offload arithmetic.
//!
//! The coalescer ([`gso::Run`]) and the splitter ([`gso::split`]) are
//! inverses across the kernel: whatever a run packs into one
//! super-datagram, a GRO split with the same segment size must hand
//! back datagram-for-datagram.  These tests drive both with arbitrary
//! frame sequences and segment sizes and assert the invariants the
//! `netio` backend relies on: the kernel ceilings are never exceeded,
//! runs only ever end with a single runt, and split lengths always sum
//! back to the buffer.

use blast_udp::gso;
use proptest::prelude::*;

/// Feed `frames` through the coalescer exactly as the staging layer
/// does: each refusal starts a new run.  Returns the finished runs.
fn coalesce(frames: &[usize], budget: usize) -> Vec<gso::Run> {
    let mut runs: Vec<gso::Run> = Vec::new();
    for &len in frames {
        if let Some(run) = runs.last_mut() {
            // `budget` is the run's total byte allowance, matching the
            // staging layer's "storage from run start to arena end".
            if run.try_append(len, budget) {
                continue;
            }
        }
        runs.push(gso::Run::start(len));
    }
    runs
}

proptest! {
    /// A run of equal-size frames coalesces as far as the kernel
    /// ceilings allow, and every run splits back into the exact frame
    /// sequence it absorbed.
    #[test]
    fn equal_size_runs_coalesce_and_round_trip(
        seg in 1usize..3000,
        count in 1usize..200,
    ) {
        let frames = vec![seg; count];
        let runs = coalesce(&frames, usize::MAX);
        let mut recovered = Vec::new();
        for run in &runs {
            prop_assert!(run.segments() <= gso::MAX_SEGMENTS);
            prop_assert!(run.len() <= gso::MAX_SUPER_DATAGRAM);
            prop_assert_eq!(run.seg_size(), seg);
            let lens: Vec<usize> = if run.is_coalesced() {
                gso::split(run.len(), run.seg_size()).collect()
            } else {
                gso::split(run.len(), 0).collect()
            };
            prop_assert_eq!(lens.len() as u32, run.segments());
            recovered.extend(lens);
        }
        prop_assert_eq!(recovered, frames);
    }

    /// Arbitrary mixed-size frame sequences never violate a run
    /// invariant, and the concatenated splits reproduce the input
    /// exactly (order and lengths).
    #[test]
    fn mixed_sizes_split_correctly(
        frames in proptest::collection::vec(1usize..5000, 1..80),
    ) {
        let runs = coalesce(&frames, usize::MAX);
        let mut recovered = Vec::new();
        for run in &runs {
            prop_assert!(run.segments() <= gso::MAX_SEGMENTS);
            prop_assert!(run.len() <= gso::MAX_SUPER_DATAGRAM);
            let seg = if run.is_coalesced() { run.seg_size() } else { 0 };
            let lens: Vec<usize> = gso::split(run.len(), seg).collect();
            prop_assert_eq!(lens.len() as u32, run.segments());
            // Only the last segment of a run may be smaller than the
            // segment size — the tail-runt rule.
            for &l in &lens[..lens.len() - 1] {
                prop_assert_eq!(l, lens[0]);
            }
            prop_assert!(*lens.last().unwrap() <= lens[0]);
            recovered.extend(lens);
        }
        prop_assert_eq!(recovered, frames);
    }

    /// The splitter round-trips arbitrary (len, seg_size) pairs: the
    /// yielded lengths sum to `len`, all but the last equal `seg_size`,
    /// and the tail runt is `len % seg_size` when there is one.
    #[test]
    fn split_partitions_any_buffer(
        len in 0usize..70_000,
        seg in 0usize..70_000,
    ) {
        let lens: Vec<usize> = gso::split(len, seg).collect();
        prop_assert_eq!(lens.iter().sum::<usize>(), len);
        if seg == 0 || seg >= len {
            prop_assert_eq!(lens.len(), 1, "uncoalesced read is one datagram");
        } else {
            for &l in &lens[..lens.len() - 1] {
                prop_assert_eq!(l, seg);
            }
            let tail = *lens.last().unwrap();
            prop_assert_eq!(tail, if len % seg == 0 { seg } else { len % seg });
        }
    }

    /// A staging budget tighter than the kernel ceilings is honoured:
    /// no run ever outgrows the storage the caller has left.
    #[test]
    fn budget_caps_every_run(
        frames in proptest::collection::vec(1usize..3000, 1..60),
        budget in 1usize..20_000,
    ) {
        for run in coalesce(&frames, budget) {
            prop_assert!(
                run.segments() == 1 || run.len() <= budget,
                "coalesced run exceeded its byte budget"
            );
        }
    }
}
