//! `any::<T>()` — whole-domain generation for primitive types.

use std::marker::PhantomData;

use crate::rng::TestRng;
use crate::strategy::Strategy;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Debug)]
pub struct Any<T>(PhantomData<fn() -> T>);

/// Returns the whole-domain strategy for `T`, mirroring
/// `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Uniform over the scalar values, skipping surrogates.
        loop {
            if let Some(c) = char::from_u32((rng.next_u64() % 0x11_0000) as u32) {
                return c;
            }
        }
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}
