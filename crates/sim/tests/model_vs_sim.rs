//! **The flagship validation**: the discrete-event simulator must
//! reproduce the paper's closed-form elapsed times (§2.1.3).
//!
//! Stop-and-wait, blast and double-buffered blast match *exactly* (to
//! the nanosecond): the formulas are the pipeline structure and the
//! simulator implements that structure.  Sliding window matches within
//! a small constant: the closed form idealizes the tail of the ack
//! pipeline (the last ack's copies), while the simulator executes it;
//! the discrepancy is bounded by one ack handling time and is asserted
//! tightly below.

use std::sync::Arc;

use blast_analytic::errorfree::ErrorFree;
use blast_analytic::CostModel;
use blast_core::blast::{BlastReceiver, BlastSender};
use blast_core::saw::{SawReceiver, SawSender};
use blast_core::window::WindowSender;
use blast_core::ProtocolConfig;
use blast_sim::{SimConfig, Simulator};

fn data(n: usize) -> Arc<[u8]> {
    (0..n).map(|i| (i % 239) as u8).collect::<Vec<u8>>().into()
}

/// Run one transfer and return the sender's elapsed time in ms.
fn run_sim(
    sim_cfg: SimConfig,
    make_sender: impl Fn(&ProtocolConfig, Arc<[u8]>) -> Box<dyn blast_core::Engine>,
    saw_receiver: bool,
    bytes: usize,
    timeout_ms: u64,
) -> f64 {
    let mut sim = Simulator::new(sim_cfg);
    let a = sim.add_host("sender");
    let b = sim.add_host("receiver");
    let mut pcfg = ProtocolConfig::default();
    pcfg.timeout = std::time::Duration::from_millis(timeout_ms).into();
    let payload = data(bytes);
    sim.attach(a, b, make_sender(&pcfg, payload.clone()));
    if saw_receiver {
        sim.attach(b, a, Box::new(SawReceiver::new(1, payload.len(), &pcfg)));
    } else {
        sim.attach(b, a, Box::new(BlastReceiver::new(1, payload.len(), &pcfg)));
    }
    let report = sim.run();
    assert!(report.succeeded(a, 1), "transfer must succeed");
    assert_eq!(report.wire_losses, 0);
    report.elapsed_ms(a, 1).expect("completed")
}

const SIZES: [u64; 7] = [1, 2, 3, 4, 16, 64, 200];

#[test]
fn stop_and_wait_matches_model_exactly() {
    let ef = ErrorFree::new(CostModel::standalone_sun());
    for n in SIZES {
        let sim_ms = run_sim(
            SimConfig::standalone(),
            |cfg, d| Box::new(SawSender::new(1, d, cfg)),
            true,
            (n as usize) * 1024,
            10_000,
        );
        let model = ef.saw(n);
        assert!(
            (sim_ms - model).abs() < 1e-9,
            "N={n}: sim {sim_ms} vs model {model}"
        );
    }
}

#[test]
fn blast_matches_model_exactly() {
    let ef = ErrorFree::new(CostModel::standalone_sun());
    for n in SIZES {
        let sim_ms = run_sim(
            SimConfig::standalone(),
            |cfg, d| Box::new(BlastSender::new(1, d, cfg)),
            false,
            (n as usize) * 1024,
            100_000,
        );
        let model = ef.blast(n);
        assert!(
            (sim_ms - model).abs() < 1e-9,
            "N={n}: sim {sim_ms} vs model {model}"
        );
    }
}

#[test]
fn double_buffered_blast_matches_model_exactly() {
    let ef = ErrorFree::new(CostModel::standalone_sun());
    for n in SIZES {
        let sim_ms = run_sim(
            SimConfig::double_buffered(),
            |cfg, d| Box::new(BlastSender::new(1, d, cfg)),
            false,
            (n as usize) * 1024,
            100_000,
        );
        let model = ef.double_buffered(n);
        assert!(
            (sim_ms - model).abs() < 1e-9,
            "N={n}: sim {sim_ms} vs model {model}"
        );
    }
}

#[test]
fn double_buffered_wire_bound_branch_matches() {
    // A fast processor (C < T) exercises the other branch of T_dbl.
    let fast = CostModel {
        c_data: 0.3,
        c_ack: 0.05,
        ..CostModel::standalone_sun()
    };
    let ef = ErrorFree::new(fast);
    for n in [1u64, 2, 8, 64] {
        let sim_ms = run_sim(
            SimConfig::double_buffered().with_cost(fast),
            |cfg, d| Box::new(BlastSender::new(1, d, cfg)),
            false,
            (n as usize) * 1024,
            100_000,
        );
        let model = ef.double_buffered(n);
        assert!(
            (sim_ms - model).abs() < 1e-9,
            "N={n}: sim {sim_ms} vs model {model}"
        );
    }
}

#[test]
fn sliding_window_matches_model_within_one_ack_tail() {
    let ef = ErrorFree::new(CostModel::standalone_sun());
    for n in SIZES {
        let sim_ms = run_sim(
            SimConfig::standalone(),
            |cfg, d| Box::new(WindowSender::new(1, d, cfg)),
            true,
            (n as usize) * 1024,
            10_000,
        );
        let model = ef.sliding_window(n);
        // The model idealizes where the last few ack copies land; the
        // executable pipeline differs by a bounded constant, not a
        // per-packet term.
        let tol = 2.0 * (0.17 + 0.05) + 1e-9;
        assert!(
            (sim_ms - model).abs() < tol,
            "N={n}: sim {sim_ms} vs model {model} (tol {tol})"
        );
    }
}

#[test]
fn vkernel_costs_match_table_3() {
    let ef = ErrorFree::new(CostModel::vkernel_sun());
    for n in [1u64, 4, 16, 64] {
        let sim_ms = run_sim(
            SimConfig::vkernel(),
            |cfg, d| Box::new(BlastSender::new(1, d, cfg)),
            false,
            (n as usize) * 1024,
            100_000,
        );
        let model = ef.blast(n);
        assert!(
            (sim_ms - model).abs() < 1e-9,
            "N={n}: sim {sim_ms} vs model {model}"
        );
    }
    // And the headline Table 3 values.
    assert!((ef.blast(64) - 172.82).abs() < 0.01);
    assert!((ef.saw(1) - 5.87).abs() < 0.01);
}

#[test]
fn tau_propagates_into_both_model_and_sim() {
    let cost = CostModel::standalone_sun().with_tau(0.01);
    let ef = ErrorFree::new(cost);
    for n in [1u64, 8, 64] {
        let sim_ms = run_sim(
            SimConfig::standalone().with_cost(cost),
            |cfg, d| Box::new(BlastSender::new(1, d, cfg)),
            false,
            (n as usize) * 1024,
            100_000,
        );
        let model = ef.blast(n);
        assert!(
            (sim_ms - model).abs() < 1e-9,
            "N={n}: sim {sim_ms} vs model {model}"
        );
    }
}

#[test]
fn protocol_ordering_holds_at_every_size() {
    // Figure 4's qualitative content: SAW > SW > B > DBL for all N ≥ 2.
    for n in [2u64, 4, 8, 16, 32, 64] {
        let bytes = (n as usize) * 1024;
        let saw = run_sim(
            SimConfig::standalone(),
            |cfg, d| Box::new(SawSender::new(1, d, cfg)),
            true,
            bytes,
            10_000,
        );
        let sw = run_sim(
            SimConfig::standalone(),
            |cfg, d| Box::new(WindowSender::new(1, d, cfg)),
            true,
            bytes,
            10_000,
        );
        let b = run_sim(
            SimConfig::standalone(),
            |cfg, d| Box::new(BlastSender::new(1, d, cfg)),
            false,
            bytes,
            100_000,
        );
        let dbl = run_sim(
            SimConfig::double_buffered(),
            |cfg, d| Box::new(BlastSender::new(1, d, cfg)),
            false,
            bytes,
            100_000,
        );
        assert!(saw > sw && sw > b && b > dbl, "N={n}: {saw} {sw} {b} {dbl}");
    }
}

#[test]
fn third_transmit_buffer_buys_nothing() {
    // §2.1.3: "having a third transmission buffer does not provide any
    // further improvement over double buffering, since we assume that
    // both C and T are constant."  The simulator confirms: identical
    // elapsed times with 2 and 3 (and 8) buffers, on both the
    // copy-bound and wire-bound sides.
    for cost in [
        CostModel::standalone_sun(), // T < C (copy-bound)
        CostModel {
            c_data: 0.3,
            c_ack: 0.05,
            ..CostModel::standalone_sun()
        }, // T > C
    ] {
        let run = |buffers: usize| {
            let cfg = SimConfig {
                tx_buffers: buffers,
                busy_wait_tx: false,
                ..SimConfig::standalone().with_cost(cost)
            };
            run_sim(
                cfg,
                |c, d| Box::new(BlastSender::new(1, d, c)),
                false,
                64 * 1024,
                100_000,
            )
        };
        let two = run(2);
        let three = run(3);
        let eight = run(8);
        assert_eq!(two, three, "third buffer must not help");
        assert_eq!(two, eight, "nor any further buffering");
    }
}

#[test]
fn saw_is_about_twice_blast_at_64kb() {
    // The paper's headline: "the stop-and-wait protocol takes about
    // twice as much time as either the sliding window or the blast
    // protocol", against the naive expectation of < 10 % difference.
    let saw = run_sim(
        SimConfig::standalone(),
        |cfg, d| Box::new(SawSender::new(1, d, cfg)),
        true,
        64 * 1024,
        10_000,
    );
    let b = run_sim(
        SimConfig::standalone(),
        |cfg, d| Box::new(BlastSender::new(1, d, cfg)),
        false,
        64 * 1024,
        100_000,
    );
    let ratio = saw / b;
    assert!(ratio > 1.7 && ratio < 2.0, "ratio {ratio}");
}
