//! Property tests for the delivery-rate estimator and the rate-based
//! pacer: windowed-max agreement with a brute-force reference model
//! under insertion and expiry, min-RTT monotonicity inside the window,
//! app-limited exclusion, and pace-target bounds under arbitrary
//! interleavings of samples, losses and clean rounds.

use std::time::Duration;

use blast_core::control::{DeliveryRateEstimator, Pacer, PacingConfig, RATE_WINDOW, RTT_WINDOW};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Sample {
    packets: u32,
    bytes: u64,
    interval_us: u64,
    app_limited: bool,
}

fn sample_strategy() -> impl Strategy<Value = Sample> {
    (1u32..=512, 1u64..=1 << 20, 1u64..=1_000_000, any::<bool>()).prop_map(
        |(packets, bytes, interval_us, app_limited)| Sample {
            packets,
            bytes,
            interval_us,
            app_limited,
        },
    )
}

#[derive(Debug, Clone)]
enum Event {
    Sample(Sample),
    Loss,
    Clean,
}

proptest! {
    /// The estimator's windowed max equals a brute-force max over the
    /// last `RATE_WINDOW` non-app-limited samples — at every step, so
    /// both insertion (a new max) and expiry (the old max aging out)
    /// agree with the reference model.
    #[test]
    fn windowed_max_matches_reference_model(
        samples in proptest::collection::vec(sample_strategy(), 1..100),
    ) {
        let mut e = DeliveryRateEstimator::new();
        let mut reference: Vec<f64> = Vec::new();
        for s in &samples {
            let interval = Duration::from_micros(s.interval_us);
            e.on_sample(s.packets, s.bytes, interval, s.app_limited);
            if !s.app_limited {
                reference.push(s.bytes as f64 / interval.as_secs_f64());
                if reference.len() > RATE_WINDOW {
                    reference.remove(0);
                }
            }
            let want = reference.iter().copied().fold(0.0f64, f64::max);
            let got = e.max_rate_bps();
            let tol = want.abs() * 1e-12 + 1e-9;
            prop_assert!(
                (got - want).abs() <= tol,
                "windowed max diverged from the reference: got {got}, want {want}"
            );
        }
    }

    /// Within one window's worth of samples the min-RTT can only
    /// tighten: it never increases until expiry can evict its holder —
    /// and app-limited samples still feed it (only the *rate* window
    /// excludes them).
    #[test]
    fn min_rtt_never_increases_within_window(
        rtts_us in proptest::collection::vec(1u64..=1_000_000, 1..=RTT_WINDOW),
        app_limited in proptest::collection::vec(any::<bool>(), RTT_WINDOW),
    ) {
        let mut e = DeliveryRateEstimator::new();
        let mut best = Duration::MAX;
        for (i, &us) in rtts_us.iter().enumerate() {
            e.on_sample(1, 1024, Duration::from_micros(us), app_limited[i]);
            let got = e.min_rtt().expect("RTT recorded regardless of app-limited");
            prop_assert!(
                got <= best,
                "min-RTT rose inside the window: {best:?} -> {got:?}"
            );
            best = got;
            let want = Duration::from_micros(*rtts_us[..=i].iter().min().expect("non-empty"));
            prop_assert_eq!(got, want, "min-RTT must be the exact window minimum");
        }
    }

    /// An app-limited sample never raises the windowed-max rate, no
    /// matter how fast it claims to be: it bypasses the rate window
    /// entirely, so the max is bit-for-bit unchanged.
    #[test]
    fn app_limited_never_raises_rate(
        warm in proptest::collection::vec(sample_strategy(), 0..20),
        packets in 1u32..=1024,
        bytes in 1u64..=1 << 30,
        interval_us in 1u64..=1000,
    ) {
        let mut e = DeliveryRateEstimator::new();
        for s in &warm {
            e.on_sample(
                s.packets,
                s.bytes,
                Duration::from_micros(s.interval_us),
                s.app_limited,
            );
        }
        let before = e.max_rate_bps();
        e.on_sample(packets, bytes, Duration::from_micros(interval_us), true);
        prop_assert_eq!(
            e.max_rate_bps(),
            before,
            "an app-limited sample must leave the rate window untouched"
        );
    }

    /// Whatever interleaving of delivery samples, losses and clean
    /// rounds a rate-based pacer sees, its pace target stays inside
    /// `[min_burst, max_burst]` — in steady state, in gain-cycle
    /// probe/drain phases, and throughout AIMD loss recovery.
    #[test]
    fn rate_pace_target_respects_burst_bounds(
        events in proptest::collection::vec(
            prop_oneof![
                3 => sample_strategy().prop_map(Event::Sample),
                1 => Just(Event::Loss),
                2 => Just(Event::Clean),
            ],
            1..300,
        ),
    ) {
        let cfg = PacingConfig::rate_based(16, Duration::from_micros(100), 2, 64, 8);
        let mut p = Pacer::new(cfg);
        for ev in &events {
            match ev {
                Event::Sample(s) => p.on_rate_sample(
                    s.packets,
                    s.bytes,
                    Duration::from_micros(s.interval_us),
                    s.app_limited,
                ),
                Event::Loss => p.on_loss(),
                Event::Clean => p.on_clean_round(),
            }
            let b = p.burst_budget();
            prop_assert!(
                b >= cfg.min_burst && b <= cfg.max_burst,
                "pace target {b} escaped [{}, {}]",
                cfg.min_burst,
                cfg.max_burst
            );
            let snap = p.snapshot();
            prop_assert!(snap.burst >= cfg.min_burst && snap.burst <= cfg.max_burst);
        }
    }
}
