//! Edge-case integration tests for the engines: cross-protocol noise
//! immunity, pathological configurations, and harness behaviour that
//! the per-module unit tests don't reach.

use std::sync::Arc;
use std::time::Duration;

use blast_core::api::{Action, TimerToken};
use blast_core::blast::{BlastReceiver, BlastSender};
use blast_core::config::{ProtocolConfig, RetxStrategy};
use blast_core::engine::Engine;
use blast_core::harness::{Harness, LossPlan};
use blast_core::saw::{SawReceiver, SawSender};
use blast_core::window::WindowSender;
use blast_wire::ack::AckPayload;
use blast_wire::packet::{Datagram, DatagramBuilder};

fn data(n: usize) -> Arc<[u8]> {
    (0..n).map(|i| (i % 199) as u8).collect::<Vec<u8>>().into()
}

fn feed(engine: &mut dyn Engine, packet: &[u8]) -> Vec<Action> {
    let d = Datagram::parse(packet).unwrap();
    let mut out = Vec::new();
    engine.on_datagram(&d, &mut out);
    out
}

/// Senders must ignore data packets (their own traffic echoed back) and
/// receivers must ignore stray acks — cross-traffic cannot confuse
/// either end.
#[test]
fn engines_ignore_wrong_direction_traffic() {
    let cfg = ProtocolConfig::default();
    let b = DatagramBuilder::new(1);
    let mut buf = vec![0u8; 2048];
    let payload = vec![1u8; 1024];
    let data_len = b.build_data(&mut buf, 0, 4, 0, &payload, 0, false).unwrap();
    let data_pkt = buf[..data_len].to_vec();
    let ack_len = b
        .build_ack(&mut buf, 4, &AckPayload::Positive { acked: 3 })
        .unwrap();
    let ack_pkt = buf[..ack_len].to_vec();

    // Senders fed a data packet: no reaction.
    let mut s = BlastSender::new(1, data(4096), &cfg);
    let mut start = Vec::new();
    s.start(&mut start);
    assert!(feed(&mut s, &data_pkt).is_empty());

    let mut s = SawSender::new(1, data(4096), &cfg);
    let mut start = Vec::new();
    s.start(&mut start);
    assert!(feed(&mut s, &data_pkt).is_empty());

    let mut s = WindowSender::new(1, data(4096), &cfg);
    let mut start = Vec::new();
    s.start(&mut start);
    assert!(feed(&mut s, &data_pkt).is_empty());

    // Receivers fed an ack: no reaction.
    let mut r = BlastReceiver::new(1, 4096, &cfg);
    assert!(feed(&mut r, &ack_pkt).is_empty());
    let mut r = SawReceiver::new(1, 4096, &cfg);
    assert!(feed(&mut r, &ack_pkt).is_empty());
}

/// A finished sender must stay inert: late acks, timers and data do
/// nothing.
#[test]
fn finished_sender_is_inert() {
    let cfg = ProtocolConfig::default();
    let payload = data(2048);
    let mut s = BlastSender::new(1, payload.clone(), &cfg);
    let mut r = BlastReceiver::new(1, payload.len(), &cfg);
    let mut actions = Vec::new();
    s.start(&mut actions);
    let mut acks = Vec::new();
    for a in &actions {
        if let Some(p) = a.as_transmit() {
            for ra in feed(&mut r, p) {
                if let Some(ap) = ra.as_transmit() {
                    acks.push(ap.to_vec());
                }
            }
        }
    }
    feed(&mut s, &acks[0]);
    assert!(s.is_finished());
    // Everything after completion is ignored.
    assert!(feed(&mut s, &acks[0]).is_empty());
    let mut out = Vec::new();
    s.on_timer(TimerToken(0), &mut out);
    assert!(out.is_empty());
}

/// Tiny packets (odd payload sizes) work end to end for every protocol.
#[test]
fn odd_packet_payload_sizes() {
    for payload_size in [1usize, 7, 100, 1023, 1025] {
        let cfg = ProtocolConfig::default().with_packet_payload(payload_size);
        let bytes = payload_size * 3 + 1; // forces a short tail packet
        let payload = data(bytes);
        let mut h = Harness::new(
            BlastSender::new(1, payload.clone(), &cfg),
            BlastReceiver::new(1, bytes, &cfg),
            LossPlan::perfect(),
        );
        h.run().unwrap();
        assert_eq!(
            h.received_data(),
            &payload[..],
            "payload_size={payload_size}"
        );
    }
}

/// A very large transfer (beyond the selective bitmap's 8192-bit span)
/// still completes with the selective strategy: the sender must resend
/// the unreported tail conservatively.
#[test]
fn selective_transfer_beyond_bitmap_span() {
    let mut cfg = ProtocolConfig::default().with_strategy(RetxStrategy::Selective);
    // 16-byte packets keep the test fast while exceeding 8192 packets.
    cfg = cfg.with_packet_payload(16);
    cfg.max_retries = 100_000;
    cfg.timeout = Duration::from_millis(100).into();
    let bytes = 16 * 9000; // 9000 packets > Bitmap::MAX_BITS
    let payload = data(bytes);
    let mut h = Harness::new(
        BlastSender::new(1, payload.clone(), &cfg),
        BlastReceiver::new(1, bytes, &cfg),
        LossPlan::script(vec![3, 4000, 8999]),
    );
    h.run().unwrap();
    assert_eq!(h.received_data(), &payload[..]);
}

/// Harness latency override propagates into elapsed time.
#[test]
fn harness_latency_override() {
    let cfg = ProtocolConfig::default();
    let payload = data(1024);
    let mut h = Harness::new(
        BlastSender::new(1, payload.clone(), &cfg),
        BlastReceiver::new(1, payload.len(), &cfg),
        LossPlan::perfect(),
    )
    .with_latency(Duration::from_millis(5));
    h.run().unwrap();
    // One data + one ack, 5 ms each way.
    assert_eq!(h.sender_elapsed(), Some(Duration::from_millis(10)));
}

/// Duplicated acks from the network must not double-complete or panic
/// any sender.
#[test]
fn duplicate_final_acks_are_harmless() {
    let cfg = ProtocolConfig::default();
    let payload = data(4096);
    let mut s = BlastSender::new(1, payload.clone(), &cfg);
    let mut r = BlastReceiver::new(1, payload.len(), &cfg);
    let mut actions = Vec::new();
    s.start(&mut actions);
    let mut final_ack = None;
    for a in &actions {
        if let Some(p) = a.as_transmit() {
            for ra in feed(&mut r, p) {
                if let Some(ap) = ra.as_transmit() {
                    final_ack = Some(ap.to_vec());
                }
            }
        }
    }
    let ack = final_ack.unwrap();
    let first = feed(&mut s, &ack);
    assert!(first.iter().any(|a| matches!(a, Action::Complete(_))));
    for _ in 0..5 {
        let again = feed(&mut s, &ack);
        assert!(again.is_empty(), "duplicate final acks must be inert");
    }
}

/// Window sender with a window larger than the transfer behaves like
/// the unbounded paper mode.
#[test]
fn window_larger_than_transfer_is_unbounded() {
    let cfg_bounded = ProtocolConfig::default().with_window(Some(1000));
    let cfg_unbounded = ProtocolConfig::default();
    let payload = data(8 * 1024);
    for cfg in [cfg_bounded, cfg_unbounded] {
        let mut s = WindowSender::new(1, payload.clone(), &cfg);
        let mut actions = Vec::new();
        s.start(&mut actions);
        let sent = actions.iter().filter(|a| a.as_transmit().is_some()).count();
        assert_eq!(sent, 8, "all packets go out up front");
    }
}

/// Deterministic replay: identical seeds yield byte-identical action
/// streams across the whole harness run, including retransmissions.
#[test]
fn full_run_determinism() {
    let run = |seed: u64| {
        let mut cfg = ProtocolConfig::default();
        cfg.max_retries = 100_000;
        cfg.timeout = Duration::from_millis(20).into();
        let payload = data(32 * 1024);
        let mut h = Harness::new(
            BlastSender::new(1, payload.clone(), &cfg),
            BlastReceiver::new(1, payload.len(), &cfg),
            LossPlan::random(seed, 1, 8),
        );
        let outcome = h.run().unwrap();
        (
            outcome.sender.data_packets_sent,
            outcome.sender.retransmission_rounds,
            h.wire_count,
            h.dropped,
            h.sender_elapsed(),
        )
    };
    assert_eq!(run(1234), run(1234));
}
