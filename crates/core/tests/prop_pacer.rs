//! Property tests for the AIMD-adaptive pacer: burst-size invariants
//! over arbitrary signal sequences, strict monotonicity across lossy
//! rounds at the engine level (where the signals actually originate),
//! and bounded recovery — K clean rounds restore the burst from any
//! shrunken state.

use std::sync::Arc;
use std::time::Duration;

use blast_core::blast::BlastReceiver;
use blast_core::control::{PacerSnapshot, PacingConfig};
use blast_core::harness::{Harness, LossPlan};
use blast_core::multiblast::MultiBlastSender;
use blast_core::{Action, AdaptiveTimeout, Engine, Pacer, ProtocolConfig};
use blast_wire::ack::AckPayload;
use blast_wire::packet::{Datagram, DatagramBuilder};
use proptest::prelude::*;

const GAP: Duration = Duration::from_micros(100);

fn aimd() -> PacingConfig {
    PacingConfig::aimd(16, GAP, 2, 64, 8)
}

/// Clean rounds that restore the ceiling from the floor: the additive
/// path is `(max - min) / growth` steps, rounded up.
fn recovery_rounds(cfg: &PacingConfig) -> u32 {
    (cfg.max_burst - cfg.min_burst).div_ceil(cfg.growth)
}

proptest! {
    /// Whatever signal sequence arrives, the burst stays inside
    /// `[min_burst, max_burst]`, never grows on a loss, never shrinks
    /// on a clean round — and afterwards, K clean rounds recover the
    /// ceiling from wherever the sequence left it.
    #[test]
    fn aimd_invariants_over_arbitrary_signals(
        losses in proptest::collection::vec(any::<bool>(), 1..200),
    ) {
        let cfg = aimd();
        let mut p = Pacer::new(cfg);
        for &loss in &losses {
            let before = p.burst_budget();
            if loss {
                p.on_loss();
                prop_assert!(p.burst_budget() <= before, "loss must not grow the burst");
            } else {
                p.on_clean_round();
                prop_assert!(p.burst_budget() >= before, "clean must not shrink the burst");
            }
            let b = p.burst_budget();
            prop_assert!(b >= cfg.min_burst && b <= cfg.max_burst, "burst {b} out of bounds");
        }
        for _ in 0..recovery_rounds(&cfg) {
            p.on_clean_round();
        }
        prop_assert_eq!(
            p.burst_budget(),
            cfg.max_burst,
            "K clean rounds must recover the ceiling"
        );
        let snap = p.snapshot();
        prop_assert!(snap.min_burst_seen >= cfg.min_burst);
        prop_assert!(snap.min_burst_seen <= snap.initial_burst);
    }
}

/// Feed `engine` one datagram built by `build`.
fn feed(engine: &mut dyn Engine, build: impl FnOnce(&DatagramBuilder, &mut [u8]) -> usize) {
    let b = DatagramBuilder::new(1);
    let mut buf = vec![0u8; 256];
    let n = build(&b, &mut buf);
    let d = Datagram::parse(&buf[..n]).expect("well-formed");
    let mut sink: Vec<Action> = Vec::new();
    engine.on_datagram(&d, &mut sink);
}

fn snapshot(engine: &dyn Engine) -> PacerSnapshot {
    engine.pacing_snapshot().expect("paced sender")
}

/// Engine-level strict monotonicity: every NACK round shrinks (or
/// holds, at the floor) the burst — non-increasing across consecutive
/// lossy rounds — and the floor is never pierced.
#[test]
fn burst_is_monotone_nonincreasing_across_lossy_rounds() {
    let cfg = ProtocolConfig::default()
        .with_pacing(aimd())
        .with_multiblast_chunk(8);
    let data: Arc<[u8]> = vec![5u8; 64 * 1024].into(); // 64 packets, 8 chunks
    let mut s = MultiBlastSender::new(1, data, &cfg);
    let mut sink: Vec<Action> = Vec::new();
    s.start(&mut sink);

    let mut prev = snapshot(&s).burst;
    assert_eq!(prev, 16, "initial burst");
    for round in 0..10 {
        // A go-back-n NACK for the current chunk: a loss signal.
        feed(&mut s, |b, buf| {
            b.build_ack(buf, 64, &AckPayload::NackFirstMissing { first_missing: 0 })
                .expect("ack fits")
        });
        let now = snapshot(&s).burst;
        assert!(
            now <= prev,
            "round {round}: burst grew on loss ({prev} -> {now})"
        );
        assert!(now >= 2, "floor pierced: {now}");
        prev = now;
    }
    assert_eq!(prev, 2, "ten consecutive lossy rounds reach the floor");
    assert_eq!(snapshot(&s).min_burst_seen, 2);
}

/// Engine-level recovery: after loss drives the burst to the floor,
/// each cleanly-acknowledged chunk grows it back; within K clean
/// rounds the burst is at (or above) its initial value — and the pacer
/// carries across chunk engines, which is what makes this per-session
/// adaptation rather than per-chunk amnesia.
#[test]
fn burst_recovers_within_k_clean_rounds() {
    let pacing = aimd();
    let cfg = ProtocolConfig::default()
        .with_pacing(pacing)
        .with_multiblast_chunk(2);
    let data: Arc<[u8]> = vec![9u8; 64 * 1024].into(); // 64 packets, 32 chunks
    let mut s = MultiBlastSender::new(1, data, &cfg);
    let mut sink: Vec<Action> = Vec::new();
    s.start(&mut sink);

    // Drive to the floor with repeated NACK loss signals.
    for _ in 0..8 {
        feed(&mut s, |b, buf| {
            b.build_ack(buf, 64, &AckPayload::NackFirstMissing { first_missing: 0 })
                .expect("ack fits")
        });
    }
    assert_eq!(snapshot(&s).burst, pacing.min_burst, "at the floor");

    // Clean chunk completions: each cumulative ack closes one chunk.
    let k = recovery_rounds(&pacing);
    let mut clean = 0u32;
    while clean < k && !s.is_finished() {
        let chunk = s.current_chunk();
        feed(&mut s, |b, buf| {
            b.build_ack(
                buf,
                64,
                &AckPayload::Positive {
                    acked: (chunk + 1) * 2 - 1,
                },
            )
            .expect("ack fits")
        });
        clean += 1;
        if snapshot(&s).burst >= pacing.burst {
            break;
        }
    }
    assert!(
        snapshot(&s).burst >= pacing.burst,
        "burst {} has not recovered to {} within {} clean rounds",
        snapshot(&s).burst,
        pacing.burst,
        k
    );
}

proptest! {
    /// Harness-level composition: an AIMD-paced multiblast transfer
    /// under random iid loss still completes byte-perfect, every chunk
    /// contributes a pacing signal, and the snapshot respects the
    /// configured bounds; a loss-free run only ever grows the burst.
    #[test]
    fn aimd_paced_transfer_completes_and_respects_bounds(
        seed in any::<u64>(),
        loss in 0u32..25,
    ) {
        let pacing = aimd();
        let mut cfg = ProtocolConfig::default()
            .with_timeout(AdaptiveTimeout::Adaptive {
                initial: Duration::from_millis(5),
                min: Duration::from_millis(1),
                max: Duration::from_millis(500),
            })
            .with_pacing(pacing)
            .with_multiblast_chunk(8);
        cfg.max_retries = 100_000;
        let data: Arc<[u8]> = vec![3u8; 48 * 1024].into(); // 48 packets, 6 chunks
        let plan = if loss == 0 {
            LossPlan::perfect()
        } else {
            LossPlan::random(seed, loss, 100)
        };
        let mut h = Harness::new(
            MultiBlastSender::new(1, data.clone(), &cfg),
            BlastReceiver::new(1, data.len(), &cfg),
            plan,
        );
        h.run().expect("paced transfer completes");
        prop_assert_eq!(h.received_data(), &data[..]);
        let snap = h.sender().pacing_snapshot().expect("paced sender");
        prop_assert!(snap.burst >= pacing.min_burst && snap.burst <= pacing.max_burst);
        prop_assert!(snap.min_burst_seen <= snap.initial_burst);
        prop_assert!(
            snap.clean_rounds + snap.loss_events >= 6,
            "every chunk must signal the pacer (clean {} + loss {})",
            snap.clean_rounds,
            snap.loss_events
        );
        if loss == 0 {
            prop_assert_eq!(snap.loss_events, 0);
            prop_assert!(snap.burst >= snap.initial_burst, "clean runs only grow");
            prop_assert_eq!(snap.min_burst_seen, snap.initial_burst);
        }
    }
}
