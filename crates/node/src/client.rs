//! Client-side one-call operations against a node.
//!
//! Mirrors `blast_udp::peer` but speaks the node's named-blob dialect:
//! [`push_blob`] stores bytes under a name, [`pull_blob`] fetches a
//! named blob whose size the client learns from the handshake echo.
//! Both are generic over [`Channel`] so tests can interpose
//! `FaultyChannel` and exercise the retransmission machinery.

use std::io;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

use blast_core::blast::{BlastReceiver, BlastSender};
use blast_core::config::ProtocolConfig;
use blast_udp::channel::{Channel, UdpChannel, MAX_DATAGRAM};
use blast_udp::driver::Driver;
use blast_udp::fcs::FcsChannel;
use blast_udp::handshake::{self, Request};
use blast_udp::peer::TransferReport;
use blast_wire::header::PacketKind;
use blast_wire::packet::{Datagram, DatagramBuilder};

/// Handshake pacing: re-request at the protocol's retransmission
/// interval, capped so a long data-phase timeout does not slow the
/// handshake down.
fn retry_interval(cfg: &ProtocolConfig) -> Duration {
    cfg.timeout.initial().min(Duration::from_millis(200))
}

/// Overall handshake patience.
const HANDSHAKE_DEADLINE: Duration = Duration::from_secs(30);

/// Bind an ephemeral local port connected to `node` — the usual way to
/// get a client [`Channel`].  The local socket matches the node's
/// address family (a loopback-bound socket could not reach a LAN
/// address, nor a v4 socket a v6 node).
pub fn connect(node: SocketAddr) -> io::Result<UdpChannel> {
    let local: SocketAddr = if node.is_ipv4() {
        "0.0.0.0:0".parse().expect("literal addr")
    } else {
        "[::]:0".parse().expect("literal addr")
    };
    UdpChannel::connect(local, node)
}

/// Store `data` on the node as the named blob `name`, blocking until
/// the node acknowledges the whole transfer.
pub fn push_blob<C: Channel>(
    channel: C,
    transfer_id: u32,
    name: &str,
    data: &[u8],
    cfg: &ProtocolConfig,
) -> io::Result<TransferReport> {
    let mut channel = FcsChannel::new(channel);
    let request = Request::push(data.len(), cfg, false).with_name(name);
    let reply = handshake::initiate(
        &mut channel,
        transfer_id,
        &request,
        retry_interval(cfg),
        HANDSHAKE_DEADLINE,
    )?;

    let mut engine = BlastSender::new(transfer_id, data.to_vec().into(), cfg);
    let mut driver = Driver::new(channel);
    let out = driver.run(&mut engine)?;
    let fcs_drops = driver.into_channel().fcs_drops;
    match out.completion.result {
        Ok(_) => Ok(TransferReport {
            data: Vec::new(),
            elapsed: out.elapsed,
            stats: out.completion.stats,
            pacing: engine.pacing_snapshot(),
            datagrams_sent: out.datagrams_sent + reply.datagrams_sent,
            datagrams_received: out.datagrams_received,
            malformed: out.malformed + fcs_drops,
        }),
        Err(e) => Err(io::Error::other(format!("push failed: {e}"))),
    }
}

/// Fetch the named blob `name` from the node.  The blob's size comes
/// back in the handshake echo; the receive buffer is pre-allocated
/// from it before the data phase (the paper's premise).
///
/// Errors with `NotFound` if the node does not have the blob.
pub fn pull_blob<C: Channel>(
    channel: C,
    transfer_id: u32,
    name: &str,
    cfg: &ProtocolConfig,
) -> io::Result<TransferReport> {
    let mut channel = FcsChannel::new(channel);
    let request = Request::pull(name, cfg);
    let reply = handshake::initiate(
        &mut channel,
        transfer_id,
        &request,
        retry_interval(cfg),
        HANDSHAKE_DEADLINE,
    )?;

    let mut engine = BlastReceiver::new(transfer_id, reply.echoed.len, cfg);
    // The linger window is a quiet window (traffic restarts it): make
    // it comfortably longer than the node's tail-retransmission
    // interval so the driver stays for as many re-ack rounds as the
    // node needs, yet a clean exit costs only ~100 ms.
    let linger = (cfg.timeout.initial() * 4).max(Duration::from_millis(100));
    let mut driver = Driver::new(channel).with_linger_for(linger);
    let out = driver.run(&mut engine)?;
    let fcs_drops = driver.into_channel().fcs_drops;
    match out.completion.result {
        Ok(_) => Ok(TransferReport {
            data: engine.into_data(),
            elapsed: out.elapsed,
            stats: out.completion.stats,
            pacing: None,
            datagrams_sent: out.datagrams_sent + reply.datagrams_sent,
            datagrams_received: out.datagrams_received,
            malformed: out.malformed + fcs_drops,
        }),
        Err(e) => Err(io::Error::other(format!("pull failed: {e}"))),
    }
}

/// Ask a node for a live metrics snapshot (the `Stats` control verb).
///
/// Returns the node's text report: the merged `NodeMetrics` summary
/// plus one line per shard — the remote twin of
/// `NodeHandle::metrics().summary()`.  The query is a single datagram
/// and is retransmitted until the reply arrives or `timeout` passes,
/// so it survives the same loss the data plane does.
pub fn node_stats<C: Channel>(channel: C, timeout: Duration) -> io::Result<String> {
    let mut channel = FcsChannel::new(channel);
    let mut query = [0u8; blast_wire::HEADER_LEN];
    let n = DatagramBuilder::new(0)
        .build_stats(&mut query, 0, &[])
        .expect("empty stats query fits");
    let deadline = Instant::now() + timeout;
    let mut buf = vec![0u8; MAX_DATAGRAM];
    loop {
        channel.send(&query[..n])?;
        let now = Instant::now();
        if now >= deadline {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "stats query timed out",
            ));
        }
        let wait = (deadline - now).min(Duration::from_millis(100));
        if let Some(got) = channel.recv_timeout(&mut buf, wait)? {
            if let Ok(dgram) = Datagram::parse(&buf[..got]) {
                if dgram.kind == PacketKind::Stats {
                    return Ok(String::from_utf8_lossy(dgram.payload).into_owned());
                }
            }
        }
    }
}
