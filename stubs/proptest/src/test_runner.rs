//! The case-running loop and its configuration.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use crate::rng::{case_seed, TestRng};

/// How many cases to run, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct Config {
    /// The number of generated cases per test.
    pub cases: u32,
}

/// The default case count when neither `with_cases` nor the
/// `PROPTEST_CASES` environment variable overrides it.  (The real
/// crate defaults to 256; the shim trades depth for suite latency.)
pub const DEFAULT_CASES: u32 = 64;

impl Default for Config {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(DEFAULT_CASES);
        Config { cases }
    }
}

impl Config {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

/// Drives one property test through its cases.
#[derive(Debug)]
pub struct TestRunner {
    config: Config,
}

impl TestRunner {
    /// Builds a runner for `config`.
    pub fn new(config: Config) -> Self {
        TestRunner { config }
    }

    /// Runs `f` once per case with a deterministic per-case generator.
    ///
    /// On panic, reports the test name, case number, and seed (enough
    /// to reproduce: seeds depend only on `name` and the case index),
    /// then propagates the panic so the harness records a failure.
    pub fn run_named<F: FnMut(&mut TestRng)>(&mut self, name: &str, mut f: F) {
        for case in 0..self.config.cases {
            let seed = case_seed(name, case);
            let mut rng = TestRng::from_seed(seed);
            let result = catch_unwind(AssertUnwindSafe(|| f(&mut rng)));
            if let Err(payload) = result {
                eprintln!(
                    "proptest shim: `{name}` failed at case {case}/{} (seed {seed:#018x})",
                    self.config.cases,
                );
                resume_unwind(payload);
            }
        }
    }
}
