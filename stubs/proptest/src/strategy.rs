//! The [`Strategy`] trait and the built-in strategies for ranges.

use std::ops::{Range, RangeInclusive};

use crate::rng::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike the real proptest there is no value tree and no shrinking:
/// `generate` draws one concrete value directly.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`, mirroring
    /// `proptest::strategy::Strategy::prop_map`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }
}

/// A strategy produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.source.generate(rng))
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Weighted choice among strategies of one value type — the engine
/// behind [`prop_oneof!`](crate::prop_oneof).
pub struct Union<T> {
    arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
}

impl<T> Union<T> {
    /// Build a union from `(weight, strategy)` arms.
    pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Self {
        assert!(
            arms.iter().map(|(w, _)| u64::from(*w)).sum::<u64>() > 0,
            "prop_oneof needs at least one arm with positive weight"
        );
        Union { arms }
    }
}

/// One weighted [`Union`] arm (used by the `prop_oneof!` expansion so
/// the macro needs no unsizing cast at the call site).
pub fn union_arm<T>(
    weight: u32,
    strategy: impl Strategy<Value = T> + 'static,
) -> (u32, Box<dyn Strategy<Value = T>>) {
    (weight, Box::new(strategy))
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let total: u64 = self.arms.iter().map(|(w, _)| u64::from(*w)).sum();
        let mut pick = rng.below(total);
        for (w, s) in &self.arms {
            if pick < u64::from(*w) {
                return s.generate(rng);
            }
            pick -= u64::from(*w);
        }
        unreachable!("pick is below the total weight")
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            #[allow(clippy::cast_possible_truncation)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            #[allow(clippy::cast_possible_truncation)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span + 1) as $t)
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_range_strategy_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = u64::from((self.end as $u).wrapping_sub(self.start as $u));
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}
impl_range_strategy_signed!(i8 => u8, i16 => u16, i32 => u32);

impl Strategy for Range<i64> {
    type Value = i64;
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    fn generate(&self, rng: &mut TestRng) -> i64 {
        assert!(self.start < self.end, "empty range strategy");
        let span = (self.end as u64).wrapping_sub(self.start as u64);
        self.start.wrapping_add(rng.below(span) as i64)
    }
}
