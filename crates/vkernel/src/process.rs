//! Processes and the blocking Send/Receive/Reply state machine.
//!
//! V IPC is synchronous: `Send` blocks the sender until the receiver
//! has both `Receive`d the message and `Reply`ed to it.  This module
//! models process states explicitly (no threads — the kernel in this
//! crate is a deterministic state machine, like the engines in
//! `blast-core`).

use std::collections::VecDeque;

use crate::message::VMessage;

/// Process identifier.  The high bits encode the kernel (host) the
/// process lives on, mirroring V's logical host ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pid(pub u32);

impl Pid {
    /// Compose from a kernel index and a local index.
    pub fn new(kernel: u16, local: u16) -> Self {
        Pid((u32::from(kernel) << 16) | u32::from(local))
    }

    /// Kernel (logical host) this pid lives on.
    pub fn kernel(&self) -> u16 {
        (self.0 >> 16) as u16
    }

    /// Index within its kernel.
    pub fn local(&self) -> u16 {
        (self.0 & 0xffff) as u16
    }
}

impl std::fmt::Display for Pid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}.{}", self.kernel(), self.local())
    }
}

/// Scheduling/IPC state of a process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcessState {
    /// Runnable, not engaged in IPC.
    Ready,
    /// Blocked in `Send`, waiting for the receiver to `Reply`.
    AwaitingReply {
        /// Who must reply.
        to: Pid,
    },
    /// Blocked in `Receive`, no message available yet.
    Receiving,
}

/// A process control block.
#[derive(Debug)]
pub struct Process {
    /// The process id.
    pub pid: Pid,
    /// Human-readable name (diagnostics).
    pub name: String,
    /// Current state.
    pub state: ProcessState,
    /// Messages delivered but not yet received.
    pub mailbox: VecDeque<VMessage>,
}

impl Process {
    /// New ready process.
    pub fn new(pid: Pid, name: &str) -> Self {
        Process {
            pid,
            name: name.to_string(),
            state: ProcessState::Ready,
            mailbox: VecDeque::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::MessageKind;

    #[test]
    fn pid_packing() {
        let p = Pid::new(3, 17);
        assert_eq!(p.kernel(), 3);
        assert_eq!(p.local(), 17);
        assert_eq!(p.to_string(), "3.17");
        assert_eq!(Pid::new(0, 0).0, 0);
        assert_eq!(Pid::new(u16::MAX, u16::MAX).0, u32::MAX);
    }

    #[test]
    fn process_starts_ready_with_empty_mailbox() {
        let p = Process::new(Pid::new(0, 1), "fs");
        assert_eq!(p.state, ProcessState::Ready);
        assert!(p.mailbox.is_empty());
        assert_eq!(p.name, "fs");
    }

    #[test]
    fn mailbox_is_fifo() {
        let mut p = Process::new(Pid::new(0, 1), "x");
        p.mailbox.push_back(VMessage::new(MessageKind::Data, b"1"));
        p.mailbox.push_back(VMessage::new(MessageKind::Data, b"2"));
        assert_eq!(p.mailbox.pop_front().unwrap().payload()[0], b'1');
        assert_eq!(p.mailbox.pop_front().unwrap().payload()[0], b'2');
    }
}
