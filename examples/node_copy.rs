//! Third-party copy: tell node A to move a blob straight to node B,
//! then fan one source blob out to three replicas — the bytes never
//! cross the orchestrating client.
//!
//! ```bash
//! cargo run --release --example node_copy
//! ```
//!
//! Self-contained: starts the nodes in-process on ephemeral loopback
//! ports, pushes a source blob, then drives `copy_to` and `fan_out`
//! and prints each per-replica report.

use std::time::Duration;

use blast_node::server::NodeBuilder;
use blast_node::{Client, CopyReport, NodeHandle};

fn node() -> NodeHandle {
    NodeBuilder::new()
        .timeout(Duration::from_millis(20))
        .start()
        .expect("start node")
}

fn print_report(what: &str, r: &CopyReport) {
    println!(
        "{what}: {} {} -> {} ({} bytes, crc32 {:08x}) in {:?}, digest {}",
        r.state,
        r.mode,
        r.remote,
        r.bytes,
        r.crc32,
        r.elapsed,
        if r.verified { "verified" } else { "UNVERIFIED" },
    );
}

fn main() -> std::io::Result<()> {
    let a = node();
    let b = node();
    println!("node A on {}, node B on {}", a.addr(), b.addr());

    // Seed A with a blob through the ordinary client path.
    let data: Vec<u8> = (0..300_000usize).map(|i| (i % 251) as u8).collect();
    let mut client = Client::connect(a.addr())?.timeout(Duration::from_millis(20));
    client.push("payload", &data)?;
    println!("pushed 'payload' ({} bytes) to A", data.len());

    // The tentpole move: A blasts the blob straight at B.  The client
    // only submits the order and polls progress.
    let report = client.copy_to("payload", b.addr())?;
    print_report("copy A->B", &report);

    // Fan-out: one source, three replicas, per-replica reports.
    let replicas: Vec<NodeHandle> = (0..3).map(|_| node()).collect();
    let addrs: Vec<_> = replicas.iter().map(|r| r.addr()).collect();
    for r in client.fan_out("payload", &addrs)? {
        print_report("fan-out", &r);
    }

    // Every replica must now serve the identical bytes.
    for addr in addrs.iter().chain([b.addr()].iter()) {
        let pulled = Client::connect(*addr)?
            .timeout(Duration::from_millis(20))
            .pull("payload")?;
        assert_eq!(pulled.data, data, "replica {addr} differs from source");
    }
    println!("all {} replicas byte-verified", addrs.len() + 1);

    for r in replicas {
        r.shutdown()?;
    }
    let ma = a.shutdown()?;
    b.shutdown()?;
    println!(
        "node A copy metrics: {} requested / {} completed / {} bytes moved",
        ma.copies_requested, ma.copies_completed, ma.copy_bytes_moved
    );
    Ok(())
}
