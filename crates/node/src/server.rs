//! The node: N reactor shards on one address, many concurrent
//! transfers.
//!
//! The paper's engines move one transfer at a time; a node multiplexes
//! many.  Each reactor shard is a thread that owns one non-blocking
//! `UdpSocket` and runs the classic cycle:
//!
//! 1. fire due timers from a [`TimerWheel`] keyed by
//!    `(transfer_id, TimerToken)` — each session's engine timers plus
//!    two node-owned timers per session (linger-reap and give-up);
//! 2. drain the socket, routing `Request` packets to the handshake
//!    logic and everything else through the [`Demux`] to the owning
//!    engine;
//! 3. execute whatever actions the engines emitted (transmissions go
//!    out `send_to` the session's peer, wrapped in the FCS trailer);
//! 4. if nothing happened, park briefly — `std` has no selector, and
//!    at the timescales the paper measures (1.35 ms of processor time
//!    *per packet*) sub-millisecond parking is invisible.
//!
//! [`NodeBuilder`] scales that cycle across cores: with `shards(n)` it
//! binds `n` `SO_REUSEPORT` sockets on one address and the kernel's
//! 4-tuple hash pins every remote endpoint — hence every session — to
//! exactly one shard.  Shards share nothing on the packet path: each
//! has its own [`NetIo`] backend, timer wheel, session table, buffer
//! pool, and a plain (unlocked) [`NodeMetrics`] accumulator that it
//! publishes into a shared snapshot slot once per tick; the
//! [`NodeHandle`] merges those snapshots on read.  Only the blob store
//! is shared, and it is touched only at session boundaries.
//!
//! Sessions are created by the `Request` pre-allocation handshake from
//! `blast-udp`: a push request allocates a [`BlastReceiver`] for the
//! announced length before any data arrives (the paper's premise), a
//! pull request looks the named blob up in the
//! [`Store`](crate::store::Store) and blasts it back with the strategy
//! the client asked for.  Finished engines linger briefly — a finished
//! receiver must keep re-acking duplicates or a lost final ack strands
//! its peer (§3.2.2's tail problem) — and are then reaped from the
//! demux table.

use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use blast_core::api::{Action, CompletionInfo, TimerToken};
use blast_core::blast::{BlastReceiver, BlastSender};
use blast_core::config::ProtocolConfig;
use blast_core::demux::Demux;
use blast_core::multiblast::MultiBlastSender;
use blast_core::pool::BufferPool;
use blast_core::{AdaptiveTimeout, Engine, PacingConfig};
use blast_telemetry::{EventKind, Recorder, Telemetry};
use blast_udp::copy::{errcode, BlobDigest, CopyMode, CopyMsg, CopyState, CopyStatus, CopySubmit};
use blast_udp::fcs;
use blast_udp::handshake::{Direction, Request};
use blast_udp::netio::NetIo;
use blast_udp::sockopt;
use blast_udp::timers::TimerWheel;
use blast_wire::checksum::crc32;
use blast_wire::header::PacketKind;
use blast_wire::packet::{Datagram, DatagramBuilder};

use crate::metrics::{NodeMetrics, SessionReport, ShardReport};
use crate::store::{shared_store, SharedStore};

/// Reap a finished session's engine after the linger period.
const REAP: TimerToken = TimerToken(u64::MAX);
/// Abandon a session whose peer went silent.
const GIVE_UP: TimerToken = TimerToken(u64::MAX - 1);
/// Retransmit the outbound handshake of a third-party copy.
const COPY_HS: TimerToken = TimerToken(u64::MAX - 2);
/// Forget a terminal copy job once its status grace window passes.
const COPY_REAP: TimerToken = TimerToken(u64::MAX - 3);

/// How long a terminal copy keeps answering status queries before it is
/// reaped — the control-plane twin of the data-plane linger window: the
/// orchestrating client must be able to read the final status even if
/// its first few polls are lost.
const COPY_GRACE: Duration = Duration::from_secs(5);

/// How long a shard may sit on counter-only metric changes before
/// republishing its snapshot.  Session events (accept, finish, reject)
/// publish immediately; pure datagram counters may lag by this much.
const PUBLISH_INTERVAL: Duration = Duration::from_millis(1);

/// Tunables for one node.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// Address to bind (use port 0 for an ephemeral port).
    pub bind: SocketAddr,
    /// Reactor shards.  `1` is the classic single-threaded node; more
    /// bind an `SO_REUSEPORT` socket group so the kernel spreads
    /// sessions across threads.  Platforms without reuseport groups
    /// (non-Linux) fall back to one shard.
    pub shards: usize,
    /// Base protocol parameters for server-side engines.  Packet size,
    /// strategy and multiblast chunk are overridden per session by the
    /// client's request; timeout and retry limits are the node's.
    pub protocol: ProtocolConfig,
    /// How long a finished engine keeps answering duplicates before it
    /// is reaped (the tail-ack insurance of §3.2.2).  This is a *quiet*
    /// window: traffic for the session restarts it, so a peer still
    /// retransmitting — its copy of our final ack was lost — keeps the
    /// engine alive until it converges (bounded by
    /// [`session_timeout`](NodeConfig::session_timeout)).  Must exceed
    /// the slowest client's retransmission interval.
    pub linger: Duration,
    /// Bound on a session's total lifetime: an engine that has not
    /// completed by then is failed (peer crashed mid-transfer), and a
    /// finished engine still lingering is reaped regardless.
    pub session_timeout: Duration,
    /// Maximum concurrent sessions per shard; requests beyond it are
    /// cancelled.
    pub max_sessions: usize,
    /// Largest transfer a push request may announce.  The handshake
    /// pre-allocates the whole receive buffer from the wire-supplied
    /// length (the paper's premise), so without a bound one spoofed
    /// datagram could demand a terabyte allocation.
    pub max_transfer_bytes: usize,
}

impl Default for NodeConfig {
    fn default() -> Self {
        let mut protocol = ProtocolConfig::default();
        // Server-side transmission control: loopback/LAN round trips are
        // far below the paper's 173 ms To(D), so let the Jacobson/Karn
        // estimator find the real RTT (seeded at 25 ms), and pace blast
        // rounds so a pull does not dump a whole round into the
        // client's receive buffer in one scheduler quantum.
        protocol.timeout = blast_core::AdaptiveTimeout::lan();
        protocol.pacing = blast_core::PacingConfig::lan();
        protocol.max_retries = 1000;
        NodeConfig {
            bind: "127.0.0.1:0".parse().expect("literal addr"),
            shards: 1,
            protocol,
            linger: Duration::from_millis(250),
            session_timeout: Duration::from_secs(30),
            max_sessions: 1024,
            max_transfer_bytes: 256 * 1024 * 1024,
        }
    }
}

/// Node-side state for one transfer (the engine itself lives in the
/// demux table under the same id).
#[derive(Debug)]
struct Session {
    peer: SocketAddr,
    direction: Direction,
    name: String,
    /// The echo datagram, re-sent verbatim for duplicate requests.
    echo: Vec<u8>,
    started: Instant,
    finished: bool,
}

/// One third-party copy in flight: the node acts as a *client* toward
/// another node, reusing the same engine machinery its own clients use,
/// driven from this shard's reactor loop (no blocking thread per copy).
///
/// The outbound leg runs over its own connected ephemeral-port socket
/// rather than the shard's `SO_REUSEPORT` socket: replies from the
/// remote node must come back to *this* shard, and the kernel's 4-tuple
/// hash over the shared address would happily deliver them to a
/// sibling.  A dedicated socket makes the 4-tuple unique, at the cost
/// of the reactor polling it each tick (bounded by the 1 ms tick cap
/// while copies are active); the engine's pace/RTO timers still ride
/// the shard's exact timer machinery.
struct CopyJob {
    /// The client-chosen copy id — also the transfer id of the
    /// outbound leg, so the client's id-uniqueness discipline extends
    /// to the remote node.
    copy_id: u32,
    mode: CopyMode,
    name: String,
    state: CopyState,
    /// One of [`errcode`]'s codes once `state` is `Failed`.
    error: u8,
    bytes_total: u64,
    /// CRC-32 of the moved blob: computed up front for pushes, on
    /// completion for pulls.
    crc32: u32,
    /// Payload bytes per data packet, for the running-progress
    /// estimate.
    packet_payload: u64,
    /// The outbound engine; `None` while handshaking and after the
    /// copy settles.
    engine: Option<Box<dyn Engine>>,
    /// The copy's own connected socket; `None` for copies that failed
    /// at submit time.
    socket: Option<UdpSocket>,
    /// The source blob, held from submit until the handshake echo
    /// promotes it into a sender engine (push mode only).
    blob: Option<std::sync::Arc<[u8]>>,
    /// The framed handshake datagram, re-sent verbatim on `COPY_HS`.
    request_frame: Vec<u8>,
    started: Instant,
    retry_interval: Duration,
}

/// The status a [`CopyJob`] reports: exact when terminal, estimated
/// from engine counters while the data phase runs.
fn copy_status(job: &CopyJob) -> CopyStatus {
    let bytes_done = match job.state {
        CopyState::Done => job.bytes_total,
        CopyState::Running => job
            .engine
            .as_ref()
            .map(|e| {
                let st = e.stats();
                let pkts = match job.mode {
                    CopyMode::Push => st
                        .data_packets_sent
                        .saturating_sub(st.data_packets_retransmitted),
                    CopyMode::Pull => st.data_packets_received,
                };
                (pkts * job.packet_payload).min(job.bytes_total)
            })
            .unwrap_or(0),
        _ => 0,
    };
    CopyStatus {
        state: job.state,
        error: job.error,
        bytes_done,
        bytes_total: job.bytes_total,
        crc32: job.crc32,
    }
}

/// Bind and connect the dedicated outbound socket for one copy.
fn copy_socket(remote: SocketAddr) -> io::Result<UdpSocket> {
    let local: SocketAddr = if remote.is_ipv4() {
        "0.0.0.0:0".parse().expect("literal addr")
    } else {
        "[::]:0".parse().expect("literal addr")
    };
    let socket = UdpSocket::bind(local)?;
    socket.connect(remote)?;
    socket.set_nonblocking(true)?;
    sockopt::grow_buffers(&socket);
    Ok(socket)
}

/// One reactor shard: a socket, an event loop, and the sessions the
/// kernel's 4-tuple hash routed to it.
///
/// This is the pre-sharding `NodeServer`, unchanged in behaviour; a
/// single-shard node *is* one of these.  Construct it through
/// [`NodeBuilder`].
pub struct NodeServer {
    socket: UdpSocket,
    /// The syscall backend: batched `recvmmsg` drains and `sendmmsg`
    /// bursts with event-driven idle waits where available, the
    /// portable single-syscall fallback elsewhere.
    io: NetIo,
    config: NodeConfig,
    store: SharedStore,
    /// The shard's own accumulator: plain fields, no lock — only this
    /// reactor thread touches it, so per-datagram accounting is a bare
    /// integer increment.
    local: NodeMetrics,
    /// The published snapshot the owning [`NodeHandle`] reads.  Written
    /// by [`publish_metrics`](NodeServer::publish_metrics) at most once
    /// per tick — never from the per-datagram path.
    slot: Arc<Mutex<NodeMetrics>>,
    shutdown: Arc<AtomicBool>,
    demux: Demux,
    sessions: HashMap<u32, Session>,
    timers: TimerWheel<(u32, TimerToken)>,
    /// Outbound third-party copies this shard is driving, by copy id.
    copies: HashMap<u32, CopyJob>,
    /// Timers for the copies' engines plus the node-owned `COPY_HS`,
    /// `GIVE_UP` and `COPY_REAP` tokens.  A separate wheel: copy ids
    /// are client-chosen and may collide with local session ids.
    copy_timers: TimerWheel<(u32, TimerToken)>,
    /// Reused id scratch for the per-tick copy-socket poll.
    copy_scratch: Vec<u32>,
    /// Epoch for the engines' sans-I/O clock ([`Engine::set_now`]):
    /// every engine in the session table shares this zero point, so the
    /// adaptive RTO's round-trip samples are plain differences.
    epoch: Instant,
    /// Reused datagram receive buffer (one per shard, not one per tick).
    recv_buf: Vec<u8>,
    /// Reused FCS framing scratch for outgoing datagrams.
    frame_buf: Vec<u8>,
    /// Reused engine-action sink: taken for the duration of an engine
    /// call, drained by [`execute`](NodeServer::execute), put back.
    scratch: Vec<Action>,
    /// Session-event count (accepts, finishes, rejects) at the last
    /// publish: any change republishes immediately so waiters see
    /// session state without polling lag.
    published_events: u64,
    last_publish: Instant,
    /// The shard's flight recorder, when the node was built with
    /// telemetry.  Handed to every session engine on admission.
    recorder: Option<Recorder>,
    /// Every shard's snapshot slot (own included), so a `Stats` query
    /// landing on this shard can answer for the whole node.  Empty on
    /// single-reactor shims, where `local` is the whole node.
    peer_slots: Vec<Arc<Mutex<NodeMetrics>>>,
}

impl NodeServer {
    /// Wrap an already-bound socket in a reactor shard.
    fn with_socket(
        config: NodeConfig,
        store: SharedStore,
        socket: UdpSocket,
        shutdown: Arc<AtomicBool>,
        force_portable: bool,
    ) -> io::Result<Self> {
        socket.set_nonblocking(true)?;
        // Grow both socket queues (best effort): a node fans many
        // concurrent pushes into one socket (round-0 loss to a
        // default-sized SO_RCVBUF was the measured goodput ceiling),
        // and batched pull bursts submit whole rounds per sendmmsg.
        blast_udp::sockopt::grow_buffers(&socket);
        // The syscall backend: one recvmmsg per reactor wakeup, one
        // sendmmsg per engine burst, epoll+timerfd idle waits.
        let io = if force_portable {
            NetIo::portable(true)
        } else {
            NetIo::reactor(&socket)
        };
        // Every session's engine on this shard clones `config.protocol`,
        // so they all share this pool; pre-warm it so the first blast
        // round is already allocation free.
        config.protocol.pool.warm(64);
        let mut local = NodeMetrics::default();
        local.netio_backend = io.backend().name().to_string();
        local.netio_offload = io.offload().name().to_string();
        let slot = Arc::new(Mutex::new(local.clone()));
        Ok(NodeServer {
            socket,
            io,
            config,
            store,
            local,
            slot,
            shutdown,
            demux: Demux::new(),
            sessions: HashMap::new(),
            timers: TimerWheel::new(),
            copies: HashMap::new(),
            copy_timers: TimerWheel::new(),
            copy_scratch: Vec::new(),
            epoch: Instant::now(),
            // Sized for the largest per-datagram view the backend can
            // pop: a GRO-coalesced read's segments never exceed one
            // framed datagram, but a 64 KB buffer keeps the shard
            // correct even if a peer sends jumbo datagrams, at the cost
            // of one buffer per shard.
            recv_buf: vec![0u8; 64 * 1024],
            frame_buf: Vec::new(),
            scratch: Vec::new(),
            published_events: 0,
            last_publish: Instant::now(),
            recorder: None,
            peer_slots: Vec::new(),
        })
    }

    /// Attach the shard's flight recorder.  The recorder's epoch
    /// replaces the engine clock's zero point, so engine `record_at`
    /// stamps and the backend's wall-clock `record` stamps land on one
    /// consistent node-wide timeline.
    fn attach_recorder(&mut self, recorder: Recorder) {
        self.epoch = recorder.epoch();
        self.io.set_recorder(recorder.clone());
        self.recorder = Some(recorder);
    }

    /// The bound address clients should talk to.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.socket.local_addr()
    }

    /// The blob store this node serves.
    pub fn store(&self) -> SharedStore {
        Arc::clone(&self.store)
    }

    /// A snapshot of this shard's metrics.
    pub fn metrics(&self) -> NodeMetrics {
        self.local.clone()
    }

    /// The flag that stops [`run`](NodeServer::run) when set.
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// The snapshot slot a [`NodeHandle`] merges on read.
    fn metrics_slot(&self) -> Arc<Mutex<NodeMetrics>> {
        Arc::clone(&self.slot)
    }

    /// Run the event loop until the shutdown flag is set.
    pub fn run(&mut self) -> io::Result<()> {
        let result = self.run_inner();
        // Whatever happened, leave the final state visible to the
        // handle before the thread exits.
        self.publish_now();
        result
    }

    fn run_inner(&mut self) -> io::Result<()> {
        while !self.shutdown.load(Ordering::Relaxed) {
            self.tick()?;
        }
        Ok(())
    }

    /// Run until `n` sessions have finished (completed or failed) and
    /// every engine has been reaped — the "serve a fixed workload then
    /// report" mode the examples and CI smoke test use.
    pub fn run_sessions(&mut self, n: u64) -> io::Result<()> {
        loop {
            self.tick()?;
            if self.sessions.is_empty()
                && self.local.sessions_completed + self.local.sessions_failed >= n
            {
                break;
            }
            if self.shutdown.load(Ordering::Relaxed) {
                break;
            }
        }
        self.publish_now();
        Ok(())
    }

    /// One reactor cycle: timers, then a socket drain, then a flush of
    /// everything the engines queued, then (if idle) an event-driven
    /// wait — epoll + timerfd wakes on the first datagram or at the
    /// next timer deadline, whichever comes first (the portable
    /// fallback degrades to a bounded sleep).
    fn tick(&mut self) -> io::Result<()> {
        let now = Instant::now();
        let mut timers_fired = 0u64;
        while let Some((id, token)) = self.timers.pop_due(now) {
            timers_fired += 1;
            self.on_timer(id, token)?;
        }
        while let Some((id, token)) = self.copy_timers.pop_due(now) {
            timers_fired += 1;
            self.on_copy_timer(id, token)?;
        }
        let drained = self.drain_socket()?;
        let copied = self.poll_copies()?;
        // Only ticks that did work are traced — idle wakeups would
        // drown the ring without saying anything.
        if drained + copied > 0 || timers_fired > 0 {
            if let Some(rec) = &self.recorder {
                rec.record(
                    0,
                    EventKind::ShardTick,
                    (drained + copied) as u64,
                    timers_fired,
                );
            }
        }
        // Everything staged this tick goes out before any wait: one
        // sendmmsg carries the coalesced acks/bursts of all sessions.
        self.io.flush(&self.socket)?;
        self.sync_io_stats();
        self.publish_metrics();
        if drained == 0 && copied == 0 {
            let next = match (
                self.timers.next_deadline(),
                self.copy_timers.next_deadline(),
            ) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
            let mut park = next
                .map(|d| d.saturating_duration_since(Instant::now()))
                .unwrap_or(Duration::from_millis(5))
                .clamp(PacingConfig::MIN_WAIT, Duration::from_millis(10));
            if !self.copies.is_empty() {
                // Copy sockets are polled, not in the event wait: cap
                // the park so an incoming ack on an outbound leg waits
                // at most a millisecond.
                park = park.min(Duration::from_millis(1));
            }
            self.io.wait(park)?;
        }
        Ok(())
    }

    /// Mirror the backend's syscall counters into the shard
    /// accumulator.  The backend is the authority on what actually
    /// reached the kernel: `datagrams_sent` counts flushed submissions
    /// only, so datagrams dropped at flush are never double-booked as
    /// sent.
    fn sync_io_stats(&mut self) {
        let io = self.io.stats;
        self.local.io = io;
        self.local.datagrams_sent = io.datagrams_sent;
        self.local.send_drops = io.send_drops;
    }

    /// Session events since birth: any change means session state moved
    /// and the snapshot must refresh immediately (waiters poll it).
    fn session_events(&self) -> u64 {
        self.local.sessions_accepted
            + self.local.sessions_completed
            + self.local.sessions_failed
            + self.local.rejected_busy
            + self.local.rejected_oversize
            + self.local.pull_misses
            + self.local.collisions
            + self.local.copies_requested
            + self.local.copies_completed
            + self.local.copies_failed
    }

    /// Refresh the published snapshot: immediately on session events,
    /// at most every [`PUBLISH_INTERVAL`] for counter-only drift.  Runs
    /// once per tick, never per datagram, and in steady state (no new
    /// finished sessions) the copy reuses the slot's allocations.
    fn publish_metrics(&mut self) {
        let events = self.session_events();
        if events != self.published_events || self.last_publish.elapsed() >= PUBLISH_INTERVAL {
            self.publish_now();
            self.published_events = events;
        }
    }

    fn publish_now(&mut self) {
        self.local
            .publish_into(&mut self.slot.lock().expect("metrics slot"));
        self.last_publish = Instant::now();
    }

    /// Receive until the socket is dry (or a batch limit, so timers are
    /// never starved by a firehose).  Returns datagrams processed.
    fn drain_socket(&mut self) -> io::Result<usize> {
        // Take/put-back so the shard recycles one receive buffer for
        // its whole lifetime (`on_datagram` needs `&mut self`).
        let mut buf = std::mem::take(&mut self.recv_buf);
        let result = self.drain_socket_into(&mut buf);
        self.recv_buf = buf;
        result
    }

    fn drain_socket_into(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let mut drained = 0;
        while drained < 128 {
            // Pop from the last recvmmsg batch; refill with one kernel
            // crossing when it runs dry.
            let Some((n, peer)) = self.io.pop_into(buf) else {
                if self.io.fill(&self.socket)? == 0 {
                    break;
                }
                continue;
            };
            let Some(peer) = peer else { continue };
            drained += 1;
            self.local.datagrams_received += 1;
            let Some(body) = fcs::unframe(&buf[..n]) else {
                self.local.fcs_drops += 1;
                continue;
            };
            self.on_datagram(&buf[..body], peer)?;
        }
        Ok(drained)
    }

    fn on_datagram(&mut self, raw: &[u8], peer: SocketAddr) -> io::Result<()> {
        let Ok(dgram) = Datagram::parse(raw) else {
            self.local.malformed += 1;
            return Ok(());
        };
        if dgram.kind == PacketKind::Request {
            return self.on_request(&dgram, raw, peer);
        }
        if dgram.kind == PacketKind::Stats {
            return self.on_stats(&dgram, peer);
        }
        if dgram.kind == PacketKind::Copy {
            return self.on_copy(&dgram, peer);
        }
        let id = dgram.transfer_id;
        match self.sessions.get(&id) {
            // Only the session's peer may drive its engine.
            Some(s) if s.peer == peer => {
                let now = self.epoch.elapsed();
                let mut sink = std::mem::take(&mut self.scratch);
                if let Some(engine) = self.demux.get_mut(id) {
                    engine.set_now(now);
                    engine.on_datagram(&dgram, &mut sink);
                }
                let executed = self.execute(id, &mut sink);
                sink.clear();
                self.scratch = sink;
                executed?;
                // Traffic for a finished session means the peer has not
                // heard our final ack yet: postpone the reap so the
                // engine stays to re-answer (the linger quiet window).
                if self.sessions.get(&id).is_some_and(|s| s.finished) {
                    self.timers.arm((id, REAP), self.config.linger);
                }
                Ok(())
            }
            _ => {
                self.local.unroutable += 1;
                Ok(())
            }
        }
    }

    fn on_request(&mut self, dgram: &Datagram<'_>, raw: &[u8], peer: SocketAddr) -> io::Result<()> {
        let id = dgram.transfer_id;
        let Some(request) = Request::decode(dgram.payload) else {
            self.local.malformed += 1;
            return Ok(());
        };
        if let Some(session) = self.sessions.get(&id) {
            if session.peer == peer {
                // Duplicate request: our echo was lost; re-send it.
                let echo = session.echo.clone();
                self.send_framed(peer, &echo)?;
            } else {
                // Someone else's id: refuse rather than cross wires.
                self.local.collisions += 1;
                self.send_cancel(id, peer)?;
            }
            return Ok(());
        }
        if self.sessions.len() >= self.config.max_sessions {
            self.local.rejected_busy += 1;
            return self.send_cancel(id, peer);
        }
        // The announced length becomes an eager allocation: bound it
        // before trusting a 24-byte datagram with a terabyte.
        if request.direction == Direction::Push && request.len > self.config.max_transfer_bytes {
            self.local.rejected_oversize += 1;
            return self.send_cancel(id, peer);
        }

        let mut engine_cfg = self.config.protocol.clone();
        request.apply_to(&mut engine_cfg);
        let (engine, echo, announced): (Box<dyn Engine>, Vec<u8>, usize) = match request.direction {
            Direction::Push => {
                // Pre-allocate the whole receive buffer from the
                // announced length — the paper's premise — and echo the
                // request verbatim.
                let engine = BlastReceiver::new(id, request.len, &engine_cfg);
                (Box::new(engine), raw.to_vec(), request.len)
            }
            Direction::Pull => {
                let blob = self.store.get(&request.name);
                let Some(blob) = blob else {
                    self.local.pull_misses += 1;
                    return self.send_cancel(id, peer);
                };
                // Fill the length in before echoing: the echo is the
                // client's size announcement.
                let mut advertised = request.clone();
                advertised.len = blob.len();
                let echo = advertised.build_datagram(id);
                let announced = blob.len();
                let engine: Box<dyn Engine> = if request.multiblast_chunk > 0 {
                    Box::new(MultiBlastSender::new(id, blob, &engine_cfg))
                } else {
                    Box::new(BlastSender::new(id, blob, &engine_cfg))
                };
                (engine, echo, announced)
            }
        };

        self.local.sessions_accepted += 1;
        match request.direction {
            Direction::Push => self.local.pushes += 1,
            Direction::Pull => self.local.pulls += 1,
        }
        self.sessions.insert(
            id,
            Session {
                peer,
                direction: request.direction,
                name: request.name.clone(),
                echo: echo.clone(),
                started: Instant::now(),
                finished: false,
            },
        );
        // Echo before starting the engine so that, in order-preserving
        // conditions, the size announcement precedes round-0 data.
        self.send_framed(peer, &echo)?;
        let mut engine = engine;
        if let Some(rec) = &self.recorder {
            engine.set_recorder(rec.clone());
            let direction = match request.direction {
                Direction::Push => 0,
                Direction::Pull => 1,
            };
            rec.record(id, EventKind::SessionAdmit, direction, announced as u64);
        }
        engine.set_now(self.epoch.elapsed());
        let mut sink = std::mem::take(&mut self.scratch);
        self.demux.register(engine, &mut sink);
        self.timers.arm((id, GIVE_UP), self.config.session_timeout);
        let executed = self.execute(id, &mut sink);
        sink.clear();
        self.scratch = sink;
        executed
    }

    fn on_timer(&mut self, id: u32, token: TimerToken) -> io::Result<()> {
        match token {
            REAP => {
                self.reap(id);
                Ok(())
            }
            GIVE_UP => {
                // The hard bound on session lifetime: fail an engine
                // that never completed, and evict even a finished one
                // whose peer keeps the linger window open forever.
                let timed_out = self.sessions.get(&id).is_some_and(|s| !s.finished);
                if timed_out {
                    let info = self.demux.get(id).map(|e| {
                        CompletionInfo::failure(
                            blast_core::CoreError::BadState {
                                what: "session timed out",
                            },
                            e.stats(),
                        )
                    });
                    if let Some(info) = info {
                        self.finish_session(id, &info);
                    }
                }
                self.reap(id);
                Ok(())
            }
            _ => {
                let now = self.epoch.elapsed();
                let mut sink = std::mem::take(&mut self.scratch);
                if let Some(engine) = self.demux.get_mut(id) {
                    engine.set_now(now);
                    engine.on_timer(token, &mut sink);
                }
                let executed = self.execute(id, &mut sink);
                sink.clear();
                self.scratch = sink;
                executed
            }
        }
    }

    /// Apply one session's engine actions to the world (draining
    /// `actions`, whose capacity the caller reuses).
    fn execute(&mut self, id: u32, actions: &mut Vec<Action>) -> io::Result<()> {
        let Some(peer) = self.sessions.get(&id).map(|s| s.peer) else {
            actions.clear();
            return Ok(());
        };
        let mut completion = None;
        for action in actions.drain(..) {
            match action {
                Action::Transmit(bytes) => self.send_framed(peer, &bytes)?,
                Action::SetTimer { token, after } => self.timers.arm((id, token), after),
                Action::CancelTimer { token } => self.timers.cancel((id, token)),
                Action::Complete(info) => completion = Some(*info),
            }
        }
        if let Some(info) = completion {
            self.finish_session(id, &info);
            // Keep the engine routable through the linger window, then
            // sweep it (completed-engine reaping).
            self.timers.arm((id, REAP), self.config.linger);
        }
        Ok(())
    }

    fn finish_session(&mut self, id: u32, info: &CompletionInfo) {
        let Some(session) = self.sessions.get_mut(&id) else {
            return;
        };
        if session.finished {
            return;
        }
        session.finished = true;
        // GIVE_UP stays armed: it now bounds the linger phase.
        let ok = info.is_success();
        let bytes = *info.result.as_ref().unwrap_or(&0);
        // A completed push becomes a named blob other clients can pull.
        if ok && session.direction == Direction::Push && !session.name.is_empty() {
            if let Some(data) = self.demux.get(id).and_then(Engine::received_data) {
                self.store.put(&session.name, data.to_vec().into());
            }
        }
        let report = SessionReport {
            transfer_id: id,
            direction: session.direction,
            name: session.name.clone(),
            bytes,
            elapsed: session.started.elapsed(),
            stats: info.stats,
            // The AIMD burst trajectory, for paced sender engines: how
            // far the burst grew (or shrank) by the end of the session.
            pacing: self.demux.get(id).and_then(Engine::pacing_snapshot),
            ok,
        };
        self.local.record(report);
        if let Some(rec) = &self.recorder {
            rec.record(id, EventKind::SessionReap, u64::from(ok), bytes as u64);
        }
    }

    /// Answer a control-plane `Stats` query with a whole-node snapshot:
    /// the merged [`NodeMetrics`] summary plus one line per shard.  The
    /// query lands on whichever shard the client's 4-tuple hashes to,
    /// so shards read each other's *published* snapshots (the same ones
    /// a local [`NodeHandle`] merges) rather than anything shared on
    /// the packet path.
    fn on_stats(&mut self, dgram: &Datagram<'_>, peer: SocketAddr) -> io::Result<()> {
        // Cap the reply comfortably inside one datagram.
        const MAX_STATS_PAYLOAD: usize = 8 * 1024;
        // Publish first so the reply reflects this very tick.
        self.publish_now();
        let mut merged = NodeMetrics::default();
        let mut shard_lines = String::new();
        if self.peer_slots.is_empty() {
            merged.merge_from(&self.local);
            shard_lines.push_str(&ShardReport::from_metrics(0, &self.local).summary());
            shard_lines.push('\n');
        } else {
            for (i, slot) in self.peer_slots.iter().enumerate() {
                let m = slot.lock().expect("metrics slot");
                merged.merge_from(&m);
                shard_lines.push_str(&ShardReport::from_metrics(i, &m).summary());
                shard_lines.push('\n');
            }
        }
        let mut text = merged.summary();
        text.push('\n');
        text.push_str(&shard_lines);
        if text.len() > MAX_STATS_PAYLOAD {
            let mut cut = MAX_STATS_PAYLOAD;
            while !text.is_char_boundary(cut) {
                cut -= 1;
            }
            text.truncate(cut);
        }
        let mut buf = vec![0u8; blast_wire::HEADER_LEN + text.len()];
        let n = DatagramBuilder::new(dgram.transfer_id)
            .build_stats(&mut buf, dgram.seq, text.as_bytes())
            .expect("stats reply fits");
        self.send_framed(peer, &buf[..n])?;
        if let Some(rec) = &self.recorder {
            rec.record(0, EventKind::StatsServed, text.len() as u64, 0);
        }
        Ok(())
    }

    fn reap(&mut self, id: u32) {
        self.demux.remove(id);
        self.sessions.remove(&id);
        self.timers.forget_where(|&(session, _)| session == id);
    }

    fn send_framed(&mut self, peer: SocketAddr, datagram: &[u8]) -> io::Result<()> {
        // Frame into the shard's reused scratch, then stage into the
        // backend's batch: a whole engine burst goes out in one
        // sendmmsg when the queue fills or the tick flushes.  Loss-like
        // submission failures (peer's ICMP unreachable, full send
        // buffer) are counted as drops inside the backend — the
        // protocols recover by retransmission, so they are not server
        // failures.
        let mut framed = std::mem::take(&mut self.frame_buf);
        fcs::frame_into(datagram, &mut framed);
        let queued = self.io.queue_to(&self.socket, &framed, Some(peer));
        self.frame_buf = framed;
        queued
        // `datagrams_sent` is mirrored from the backend in
        // `sync_io_stats`: only datagrams that actually flushed count.
    }

    fn send_cancel(&mut self, id: u32, peer: SocketAddr) -> io::Result<()> {
        let mut buf = [0u8; blast_wire::HEADER_LEN];
        let n = DatagramBuilder::new(id)
            .build_cancel(&mut buf)
            .expect("cancel fits");
        self.send_framed(peer, &buf[..n])
    }

    /// Dispatch one `Copy` control datagram from an orchestrating
    /// client: submit a copy, answer a status query, or digest a blob.
    fn on_copy(&mut self, dgram: &Datagram<'_>, peer: SocketAddr) -> io::Result<()> {
        let Some(msg) = CopyMsg::decode(dgram.payload) else {
            self.local.malformed += 1;
            return Ok(());
        };
        let id = dgram.transfer_id;
        let nonce = dgram.seq;
        match msg {
            CopyMsg::Submit(submit) => self.on_copy_submit(id, nonce, submit, peer),
            CopyMsg::Query => {
                // An unknown id decodes to a terminal `Unknown` status:
                // never submitted, or already past the grace window.
                let status = self.copies.get(&id).map(copy_status).unwrap_or(CopyStatus {
                    state: CopyState::Unknown,
                    error: errcode::NONE,
                    bytes_done: 0,
                    bytes_total: 0,
                    crc32: 0,
                });
                self.send_copy_msg(id, nonce, &CopyMsg::Status(status), peer)
            }
            CopyMsg::Digest { name } => {
                let digest = match self.store.get(&name) {
                    Some(blob) => BlobDigest {
                        found: true,
                        len: blob.len() as u64,
                        crc32: crc32(&blob),
                    },
                    None => BlobDigest {
                        found: false,
                        len: 0,
                        crc32: 0,
                    },
                };
                self.send_copy_msg(id, nonce, &CopyMsg::DigestReply(digest), peer)
            }
            // Replies are node-to-client; one arriving *at* a node is
            // noise from a confused or malicious peer.
            CopyMsg::Status(_) | CopyMsg::DigestReply(_) => {
                self.local.unroutable += 1;
                Ok(())
            }
        }
    }

    /// Admit (or refuse) a copy order.  Idempotent: a duplicate submit
    /// for a known id — the client retransmitting because our reply was
    /// lost — just re-reports the current status.
    fn on_copy_submit(
        &mut self,
        id: u32,
        nonce: u32,
        submit: CopySubmit,
        peer: SocketAddr,
    ) -> io::Result<()> {
        if let Some(job) = self.copies.get(&id) {
            let status = copy_status(job);
            return self.send_copy_msg(id, nonce, &CopyMsg::Status(status), peer);
        }
        if self.copies.len() >= self.config.max_sessions {
            self.local.rejected_busy += 1;
            let status = CopyStatus {
                state: CopyState::Failed,
                error: errcode::BUSY,
                bytes_done: 0,
                bytes_total: 0,
                crc32: 0,
            };
            return self.send_copy_msg(id, nonce, &CopyMsg::Status(status), peer);
        }
        self.local.copies_requested += 1;
        if let Some(rec) = &self.recorder {
            let direction = match submit.mode {
                CopyMode::Push => 0,
                CopyMode::Pull => 1,
            };
            rec.record(
                id,
                EventKind::CopyAdmit,
                direction,
                u64::from(submit.remote.port()),
            );
            if submit.epoch_ns != 0 {
                // The client shipped its trace epoch: anchor this
                // recorder's timeline to it so one Perfetto view lines
                // the hosts up.  Both epochs land as unix nanoseconds.
                let now_unix = std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .map(|d| d.as_nanos() as u64)
                    .unwrap_or(0);
                let mine = now_unix.saturating_sub(self.epoch.elapsed().as_nanos() as u64);
                rec.record(id, EventKind::ClockAnchor, submit.epoch_ns, mine);
            }
        }
        let mut job = CopyJob {
            copy_id: id,
            mode: submit.mode,
            name: submit.name.clone(),
            state: CopyState::Handshaking,
            error: errcode::NONE,
            bytes_total: 0,
            crc32: 0,
            packet_payload: self.config.protocol.packet_payload as u64,
            engine: None,
            socket: None,
            blob: None,
            request_frame: Vec::new(),
            started: Instant::now(),
            // The client-side handshake cadence: the data-phase RTO,
            // capped so a long timeout does not slow the handshake.
            retry_interval: self
                .config
                .protocol
                .timeout
                .initial()
                .min(Duration::from_millis(200)),
        };
        let request = match submit.mode {
            CopyMode::Push => {
                let Some(blob) = self.store.get(&submit.name) else {
                    return self.refuse_copy(job, nonce, errcode::NOT_FOUND, peer);
                };
                job.bytes_total = blob.len() as u64;
                job.crc32 = crc32(&blob);
                let req =
                    Request::push(blob.len(), &self.config.protocol, false).with_name(&submit.name);
                job.blob = Some(blob);
                req
            }
            CopyMode::Pull => Request::pull(&submit.name, &self.config.protocol),
        };
        let socket = match copy_socket(submit.remote) {
            Ok(socket) => socket,
            Err(_) => return self.refuse_copy(job, nonce, errcode::TRANSFER_FAILED, peer),
        };
        job.request_frame = fcs::frame(&request.build_datagram(id));
        let _ = socket.send(&job.request_frame);
        job.socket = Some(socket);
        self.copy_timers.arm((id, COPY_HS), job.retry_interval);
        // The session-lifetime bound doubles as the copy's: an outbound
        // leg that has not settled by then is abandoned.
        self.copy_timers
            .arm((id, GIVE_UP), self.config.session_timeout);
        let status = copy_status(&job);
        self.copies.insert(id, job);
        self.send_copy_msg(id, nonce, &CopyMsg::Status(status), peer)
    }

    /// Register a copy that failed at submit time as a terminal job —
    /// queries during the grace window see `Failed` with the real error
    /// code, not an amnesiac `Unknown` — and report it to the client.
    fn refuse_copy(
        &mut self,
        mut job: CopyJob,
        nonce: u32,
        error: u8,
        peer: SocketAddr,
    ) -> io::Result<()> {
        job.state = CopyState::Failed;
        job.error = error;
        self.local.copies_failed += 1;
        if let Some(rec) = &self.recorder {
            rec.record(job.copy_id, EventKind::CopyDone, 0, 0);
        }
        self.copy_timers.arm((job.copy_id, COPY_REAP), COPY_GRACE);
        let status = copy_status(&job);
        let id = job.copy_id;
        self.copies.insert(id, job);
        self.send_copy_msg(id, nonce, &CopyMsg::Status(status), peer)
    }

    /// Stage one `Copy` reply toward the orchestrating client, echoing
    /// its request nonce in `seq`.
    fn send_copy_msg(
        &mut self,
        id: u32,
        nonce: u32,
        msg: &CopyMsg,
        peer: SocketAddr,
    ) -> io::Result<()> {
        let payload = msg.encode();
        let mut buf = vec![0u8; blast_wire::HEADER_LEN + payload.len()];
        let n = DatagramBuilder::new(id)
            .build_copy(&mut buf, nonce, &payload)
            .expect("copy reply fits");
        self.send_framed(peer, &buf[..n])
    }

    /// Drain every copy's dedicated socket.  Returns datagrams handled.
    fn poll_copies(&mut self) -> io::Result<usize> {
        if self.copies.is_empty() {
            return Ok(0);
        }
        let mut ids = std::mem::take(&mut self.copy_scratch);
        ids.clear();
        ids.extend(self.copies.keys().copied());
        let mut buf = std::mem::take(&mut self.recv_buf);
        let mut handled = 0usize;
        for &id in &ids {
            // Take the job out of the table for the duration of the
            // drain so its engine can borrow `self` mutably.
            let Some(mut job) = self.copies.remove(&id) else {
                continue;
            };
            loop {
                let n = {
                    let Some(socket) = &job.socket else { break };
                    match socket.recv(&mut buf) {
                        Ok(n) => n,
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                        // A connected UDP socket surfaces ICMP
                        // unreachable as ConnectionRefused: the remote
                        // is not up (yet).  The handshake/RTO
                        // retransmissions keep probing.
                        Err(_) => break,
                    }
                };
                handled += 1;
                match fcs::unframe(&buf[..n]) {
                    Some(body) => self.on_copy_frame(&mut job, &buf[..body])?,
                    None => self.local.fcs_drops += 1,
                }
            }
            self.copies.insert(id, job);
        }
        self.recv_buf = buf;
        self.copy_scratch = ids;
        Ok(handled)
    }

    /// One verified frame off a copy's socket: the handshake echo while
    /// handshaking, engine traffic while running.
    fn on_copy_frame(&mut self, job: &mut CopyJob, raw: &[u8]) -> io::Result<()> {
        let Ok(dgram) = Datagram::parse(raw) else {
            self.local.malformed += 1;
            return Ok(());
        };
        if dgram.transfer_id != job.copy_id {
            return Ok(());
        }
        match job.state {
            CopyState::Handshaking => match dgram.kind {
                PacketKind::Request => match Request::decode(dgram.payload) {
                    Some(echoed) => self.promote_copy(job, &echoed),
                    None => Ok(()),
                },
                // The remote refused the handshake — for a pull, it
                // does not have the blob.
                PacketKind::Cancel => {
                    self.fail_copy(job, errcode::NOT_FOUND);
                    Ok(())
                }
                // Data racing ahead of a lost echo: the remote's
                // retransmission machinery re-elicits everything once
                // our handshake retry lands.
                _ => Ok(()),
            },
            CopyState::Running => {
                if dgram.kind == PacketKind::Request {
                    // Duplicate echo; the engine must never see
                    // handshake traffic.
                    return Ok(());
                }
                let now = self.epoch.elapsed();
                let mut sink = std::mem::take(&mut self.scratch);
                if let Some(engine) = job.engine.as_mut() {
                    engine.set_now(now);
                    engine.on_datagram(&dgram, &mut sink);
                }
                let executed = self.execute_copy(job, &mut sink);
                sink.clear();
                self.scratch = sink;
                executed
            }
            // Terminal: stragglers are the remote's linger machinery.
            _ => Ok(()),
        }
    }

    /// The handshake echo arrived: build the outbound engine and start
    /// the data phase.
    fn promote_copy(&mut self, job: &mut CopyJob, echoed: &Request) -> io::Result<()> {
        let mut cfg = self.config.protocol.clone();
        echoed.apply_to(&mut cfg);
        job.packet_payload = cfg.packet_payload as u64;
        let mut engine: Box<dyn Engine> = match job.mode {
            CopyMode::Push => {
                let Some(blob) = job.blob.take() else {
                    self.fail_copy(job, errcode::TRANSFER_FAILED);
                    return Ok(());
                };
                Box::new(BlastSender::new(job.copy_id, blob, &cfg))
            }
            CopyMode::Pull => {
                // The echo is the size announcement; bound the eager
                // allocation exactly as the push handshake does.
                if echoed.len > self.config.max_transfer_bytes {
                    self.fail_copy(job, errcode::TRANSFER_FAILED);
                    return Ok(());
                }
                job.bytes_total = echoed.len as u64;
                Box::new(BlastReceiver::new(job.copy_id, echoed.len, &cfg))
            }
        };
        if let Some(rec) = &self.recorder {
            engine.set_recorder(rec.clone());
        }
        engine.set_now(self.epoch.elapsed());
        self.copy_timers.cancel((job.copy_id, COPY_HS));
        job.state = CopyState::Running;
        let mut sink = std::mem::take(&mut self.scratch);
        engine.start(&mut sink);
        job.engine = Some(engine);
        let executed = self.execute_copy(job, &mut sink);
        sink.clear();
        self.scratch = sink;
        executed
    }

    /// Apply one copy engine's actions: transmissions go out the copy's
    /// own socket, timers ride the copy wheel, completion settles.
    fn execute_copy(&mut self, job: &mut CopyJob, actions: &mut Vec<Action>) -> io::Result<()> {
        let mut completion = None;
        for action in actions.drain(..) {
            match action {
                Action::Transmit(bytes) => {
                    let mut framed = std::mem::take(&mut self.frame_buf);
                    fcs::frame_into(&bytes, &mut framed);
                    // Loss-like submission failures are recovered by
                    // retransmission, same as the session path.
                    if let Some(socket) = &job.socket {
                        let _ = socket.send(&framed);
                    }
                    self.frame_buf = framed;
                }
                Action::SetTimer { token, after } => {
                    self.copy_timers.arm((job.copy_id, token), after)
                }
                Action::CancelTimer { token } => self.copy_timers.cancel((job.copy_id, token)),
                Action::Complete(info) => completion = Some(*info),
            }
        }
        if let Some(info) = completion {
            self.settle_copy(job, &info);
        }
        Ok(())
    }

    /// The outbound engine completed: store pulled bytes, fix the
    /// digest, book the metrics, and enter the status grace window.
    fn settle_copy(&mut self, job: &mut CopyJob, info: &CompletionInfo) {
        if job.state.is_terminal() {
            return;
        }
        match &info.result {
            Ok(bytes) => {
                if job.mode == CopyMode::Pull {
                    if let Some(data) = job.engine.as_deref().and_then(Engine::received_data) {
                        job.crc32 = crc32(data);
                        job.bytes_total = data.len() as u64;
                        if !job.name.is_empty() {
                            self.store.put(&job.name, data.to_vec().into());
                        }
                    }
                }
                job.state = CopyState::Done;
                self.local.copies_completed += 1;
                self.local.copy_bytes_moved += *bytes as u64;
                if let Some(rec) = &self.recorder {
                    rec.record(job.copy_id, EventKind::CopyDone, 1, *bytes as u64);
                }
                job.engine = None;
                self.copy_timers.forget_where(|&(id, _)| id == job.copy_id);
                self.copy_timers.arm((job.copy_id, COPY_REAP), COPY_GRACE);
            }
            Err(_) => self.fail_copy(job, errcode::TRANSFER_FAILED),
        }
    }

    /// Fail a copy outside normal engine completion (handshake timeout,
    /// refused handshake, lifetime bound).
    fn fail_copy(&mut self, job: &mut CopyJob, error: u8) {
        if job.state.is_terminal() {
            return;
        }
        job.state = CopyState::Failed;
        job.error = error;
        job.engine = None;
        self.local.copies_failed += 1;
        if let Some(rec) = &self.recorder {
            rec.record(job.copy_id, EventKind::CopyDone, 0, 0);
        }
        self.copy_timers.forget_where(|&(id, _)| id == job.copy_id);
        self.copy_timers.arm((job.copy_id, COPY_REAP), COPY_GRACE);
    }

    fn on_copy_timer(&mut self, id: u32, token: TimerToken) -> io::Result<()> {
        if token == COPY_REAP {
            self.copies.remove(&id);
            self.copy_timers.forget_where(|&(cid, _)| cid == id);
            return Ok(());
        }
        let Some(mut job) = self.copies.remove(&id) else {
            return Ok(());
        };
        let executed = match token {
            COPY_HS => {
                if job.state == CopyState::Handshaking {
                    if job.started.elapsed() >= self.config.session_timeout {
                        self.fail_copy(&mut job, errcode::HANDSHAKE_TIMEOUT);
                    } else {
                        if let Some(socket) = &job.socket {
                            let _ = socket.send(&job.request_frame);
                        }
                        self.local.copy_handshake_retx += 1;
                        self.copy_timers.arm((id, COPY_HS), job.retry_interval);
                    }
                }
                Ok(())
            }
            GIVE_UP => {
                if !job.state.is_terminal() {
                    self.fail_copy(&mut job, errcode::TRANSFER_FAILED);
                }
                Ok(())
            }
            _ => {
                let now = self.epoch.elapsed();
                let mut sink = std::mem::take(&mut self.scratch);
                if let Some(engine) = job.engine.as_mut() {
                    engine.set_now(now);
                    engine.on_timer(token, &mut sink);
                }
                let executed = self.execute_copy(&mut job, &mut sink);
                sink.clear();
                self.scratch = sink;
                executed
            }
        };
        self.copies.insert(id, job);
        executed
    }
}

/// Fluent construction of a (possibly sharded) node.
///
/// The one front door to a running node: pick the address, shard
/// count, store and protocol tunables, then [`start`](NodeBuilder::start)
/// to get a [`NodeHandle`].
///
/// ```no_run
/// use blast_node::server::NodeBuilder;
///
/// let node = NodeBuilder::new()
///     .bind("127.0.0.1:0".parse().unwrap())
///     .shards(4)
///     .start()
///     .unwrap();
/// println!("listening on {} across {} shard(s)", node.addr(), node.shards());
/// # node.shutdown().unwrap();
/// ```
#[derive(Debug, Clone, Default)]
pub struct NodeBuilder {
    config: NodeConfig,
    store: Option<SharedStore>,
    portable_netio: bool,
    telemetry_capacity: Option<usize>,
}

impl NodeBuilder {
    /// A builder with [`NodeConfig::default`] settings: one shard on an
    /// ephemeral loopback port, LAN transmission control, a fresh
    /// in-memory store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Address to bind (port 0 for ephemeral).
    pub fn bind(mut self, addr: SocketAddr) -> Self {
        self.config.bind = addr;
        self
    }

    /// Reactor shards (clamped to at least 1).  More than one requires
    /// `SO_REUSEPORT` socket groups; on platforms without them the node
    /// silently falls back to a single shard — check
    /// [`NodeHandle::shards`] for the effective count.
    pub fn shards(mut self, shards: usize) -> Self {
        self.config.shards = shards.max(1);
        self
    }

    /// Serve (and fill) an existing store instead of a fresh one.
    pub fn store(mut self, store: SharedStore) -> Self {
        self.store = Some(store);
        self
    }

    /// Replace the base protocol parameters for server-side engines.
    pub fn protocol(mut self, protocol: ProtocolConfig) -> Self {
        self.config.protocol = protocol;
        self
    }

    /// Retransmission-timeout policy for server-side engines.
    pub fn timeout(mut self, timeout: impl Into<AdaptiveTimeout>) -> Self {
        self.config.protocol.timeout = timeout.into();
        self
    }

    /// Blast-round pacing for server-side sender engines.
    pub fn pacing(mut self, pacing: PacingConfig) -> Self {
        self.config.protocol.pacing = pacing;
        self
    }

    /// Per-packet retry budget for server-side engines.
    pub fn max_retries(mut self, retries: u32) -> Self {
        self.config.protocol.max_retries = retries;
        self
    }

    /// Quiet window a finished engine keeps answering duplicates.
    pub fn linger(mut self, linger: Duration) -> Self {
        self.config.linger = linger;
        self
    }

    /// Hard bound on one session's lifetime.
    pub fn session_timeout(mut self, timeout: Duration) -> Self {
        self.config.session_timeout = timeout;
        self
    }

    /// Maximum concurrent sessions per shard.
    pub fn max_sessions(mut self, sessions: usize) -> Self {
        self.config.max_sessions = sessions;
        self
    }

    /// Largest transfer a push request may announce.
    pub fn max_transfer_bytes(mut self, bytes: usize) -> Self {
        self.config.max_transfer_bytes = bytes;
        self
    }

    /// Replace the whole [`NodeConfig`] (including the shard count).
    pub fn config(mut self, config: NodeConfig) -> Self {
        self.config = config;
        self
    }

    /// Force the portable single-syscall netio backend on every shard,
    /// regardless of platform support for the batched one.
    pub fn portable_netio(mut self) -> Self {
        self.portable_netio = true;
        self
    }

    /// Enable the flight recorder: one bounded ring of `capacity`
    /// events per shard, drained through
    /// [`NodeHandle::drain_trace`].  The record path is lock-free and
    /// allocation-free; on overflow events are dropped and counted
    /// ([`NodeHandle::telemetry_dropped`]), never blocked on.
    pub fn telemetry(mut self, capacity: usize) -> Self {
        self.telemetry_capacity = Some(capacity);
        self
    }

    /// Bind the socket(s), spawn one reactor thread per shard, and
    /// return the control handle.
    ///
    /// With `shards > 1` this binds an `SO_REUSEPORT` group: the first
    /// socket may take an ephemeral port, the rest join it, and the
    /// kernel's 4-tuple hash pins each remote endpoint to one member.
    /// Platforms without reuseport groups fall back to a single shard.
    pub fn start(self) -> io::Result<NodeHandle> {
        let NodeBuilder {
            config,
            store,
            portable_netio,
            telemetry_capacity,
        } = self;
        let store = store.unwrap_or_else(shared_store);
        let shutdown = Arc::new(AtomicBool::new(false));
        let sockets = bind_shard_sockets(config.bind, config.shards.max(1))?;
        let telemetry = telemetry_capacity.map(|cap| Telemetry::new(sockets.len(), cap));
        let mut slots = Vec::with_capacity(sockets.len());
        let mut servers = Vec::with_capacity(sockets.len());
        let mut threads = Vec::with_capacity(sockets.len());
        let mut addr = None;
        for (shard, socket) in sockets.into_iter().enumerate() {
            let mut cfg = config.clone();
            if shard > 0 {
                // Every shard gets its own buffer pool: shard 0 keeps
                // the caller's (shared with whoever else holds it),
                // the rest stay thread-local so checkouts never cross
                // reactor threads.
                let pool = cfg.protocol.pool.clone();
                cfg.protocol = cfg
                    .protocol
                    .with_pool(BufferPool::new(pool.buf_capacity(), pool.max_free()));
            }
            let server = NodeServer::with_socket(
                cfg,
                Arc::clone(&store),
                socket,
                Arc::clone(&shutdown),
                portable_netio,
            )?;
            addr.get_or_insert(server.local_addr()?);
            slots.push(server.metrics_slot());
            servers.push(server);
        }
        // Second pass, once every slot exists: each shard learns all
        // the snapshot slots (so a `Stats` query answers for the whole
        // node) and gets its recorder, then moves onto its thread.
        for (shard, mut server) in servers.into_iter().enumerate() {
            server.peer_slots = slots.clone();
            if let Some(tel) = &telemetry {
                server.attach_recorder(tel.recorder(shard));
            }
            threads.push(
                std::thread::Builder::new()
                    .name(format!("blast-node-{shard}"))
                    .spawn(move || server.run())?,
            );
        }
        Ok(NodeHandle {
            addr: addr.expect("at least one shard"),
            store,
            slots,
            shutdown,
            threads,
            telemetry,
        })
    }
}

/// Bind the socket group for `shards` reactors on `bind`.
///
/// One shard means one plain socket — byte-for-byte the pre-sharding
/// node.  More go through [`sockopt::bind_reuseport`]; if the platform
/// has no reuseport groups the node degrades to one plain socket
/// rather than failing, because a single-shard node is always correct,
/// just not parallel.
fn bind_shard_sockets(bind: SocketAddr, shards: usize) -> io::Result<Vec<UdpSocket>> {
    if shards == 1 {
        return Ok(vec![UdpSocket::bind(bind)?]);
    }
    let first = match sockopt::bind_reuseport(bind) {
        Ok(socket) => socket,
        Err(e) if e.kind() == io::ErrorKind::Unsupported => {
            return Ok(vec![UdpSocket::bind(bind)?]);
        }
        Err(e) => return Err(e),
    };
    // The first member resolves port 0; the rest must name its port.
    let group_addr = first.local_addr()?;
    let mut sockets = vec![first];
    for _ in 1..shards {
        sockets.push(sockopt::bind_reuseport(group_addr)?);
    }
    Ok(sockets)
}

/// A running node: the single control surface returned by
/// [`NodeBuilder::start`].
///
/// Reads merge the per-shard snapshots into one [`NodeMetrics`] (the
/// pre-sharding shape), with [`shard_reports`](NodeHandle::shard_reports)
/// exposing the per-shard breakdown.
pub struct NodeHandle {
    addr: SocketAddr,
    store: SharedStore,
    slots: Vec<Arc<Mutex<NodeMetrics>>>,
    shutdown: Arc<AtomicBool>,
    threads: Vec<std::thread::JoinHandle<io::Result<()>>>,
    telemetry: Option<Telemetry>,
}

impl NodeHandle {
    /// The address clients should talk to (all shards share it).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The node's blob store.
    pub fn store(&self) -> SharedStore {
        Arc::clone(&self.store)
    }

    /// How many reactor shards are actually running (may be fewer than
    /// requested on platforms without `SO_REUSEPORT` groups).
    pub fn shards(&self) -> usize {
        self.slots.len()
    }

    /// The aggregate metrics: every shard's published snapshot, merged.
    pub fn metrics(&self) -> NodeMetrics {
        let mut merged = NodeMetrics::default();
        for slot in &self.slots {
            merged.merge_from(&slot.lock().expect("metrics slot"));
        }
        merged
    }

    /// The flight-recorder handle, when the node was built with
    /// [`NodeBuilder::telemetry`].
    pub fn telemetry(&self) -> Option<&Telemetry> {
        self.telemetry.as_ref()
    }

    /// Drain every shard's trace ring into one time-ordered stream
    /// (ready for `blast_telemetry::export::{jsonl, chrome_trace}`).
    /// Empty when telemetry was not enabled.
    pub fn drain_trace(&self) -> Vec<blast_telemetry::TraceEvent> {
        self.telemetry
            .as_ref()
            .map(Telemetry::drain)
            .unwrap_or_default()
    }

    /// Trace events dropped on ring overflow so far (0 without
    /// telemetry).
    pub fn telemetry_dropped(&self) -> u64 {
        self.telemetry.as_ref().map(Telemetry::dropped).unwrap_or(0)
    }

    /// The per-shard breakdown of the same snapshots: did the kernel's
    /// hash actually spread the sessions?
    pub fn shard_reports(&self) -> Vec<ShardReport> {
        self.slots
            .iter()
            .enumerate()
            .map(|(i, slot)| ShardReport::from_metrics(i, &slot.lock().expect("metrics slot")))
            .collect()
    }

    /// Block until no session is in flight on any shard (or `timeout`
    /// passes).
    ///
    /// A client can observe its transfer as complete while its final
    /// ack is still in flight to the node — the receiver side of any
    /// protocol finishes one packet before the sender side hears about
    /// it.  Callers that want every session accounted for (tests,
    /// fixed-workload examples) should drain before
    /// [`shutdown`](NodeHandle::shutdown).
    pub fn wait_idle(&self, timeout: Duration) -> bool {
        self.wait_for(timeout, |m| m.sessions_in_flight() == 0)
    }

    /// Block until `n` sessions have finished (completed or failed)
    /// across all shards and none remain in flight, or `timeout`
    /// passes.  The "serve a fixed workload then report" mode.
    pub fn wait_sessions(&self, n: u64, timeout: Duration) -> bool {
        self.wait_for(timeout, |m| {
            m.sessions_completed + m.sessions_failed >= n && m.sessions_in_flight() == 0
        })
    }

    fn wait_for(&self, timeout: Duration, done: impl Fn(&NodeMetrics) -> bool) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            if done(&self.metrics()) {
                return true;
            }
            if Instant::now() > deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    /// Stop every shard's event loop, join the threads, and return the
    /// final merged metrics.
    pub fn shutdown(self) -> io::Result<NodeMetrics> {
        self.shutdown.store(true, Ordering::Relaxed);
        let mut first_err = None;
        for thread in self.threads {
            if let Err(e) = thread.join().expect("node shard thread panicked") {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => {
                let mut merged = NodeMetrics::default();
                for slot in &self.slots {
                    merged.merge_from(&slot.lock().expect("metrics slot"));
                }
                Ok(merged)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;

    fn test_builder() -> NodeBuilder {
        NodeBuilder::new().timeout(Duration::from_millis(15))
    }

    fn client_cfg() -> ProtocolConfig {
        let mut c = ProtocolConfig::default();
        c.timeout = Duration::from_millis(15).into();
        c.max_retries = 1000;
        c
    }

    fn payload(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i.wrapping_mul(131) % 256) as u8).collect()
    }

    /// Shard snapshots refresh per reactor tick, so a client can react
    /// to a datagram a moment before the merged metrics show why it
    /// was sent; poll briefly instead of asserting on the first read.
    fn wait_metric(node: &NodeHandle, cond: impl Fn(&NodeMetrics) -> bool) -> NodeMetrics {
        let deadline = Instant::now() + Duration::from_secs(2);
        loop {
            let m = node.metrics();
            if cond(&m) || Instant::now() > deadline {
                return m;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    #[test]
    fn push_then_pull_roundtrip() {
        let node = test_builder().start().unwrap();
        assert_eq!(node.shards(), 1);
        let cfg = client_cfg();
        let data = payload(100_000);

        let mut client = Client::connect(node.addr()).unwrap().config(cfg);
        let push = client.push("hello", &data).unwrap();
        assert!(push.stats.data_packets_sent >= 98);

        let pull = client.pull("hello").unwrap();
        assert_eq!(pull.data, data);

        assert!(node.wait_idle(Duration::from_secs(5)), "tail ack drained");
        let m = node.shutdown().unwrap();
        assert_eq!(m.sessions_completed, 2);
        assert_eq!(m.pushes, 1);
        assert_eq!(m.pulls, 1);
        assert_eq!(m.bytes_received, 100_000);
        assert_eq!(m.bytes_sent, 100_000);
        assert!(m.session_goodput_mbps.mean() > 0.0);
    }

    #[test]
    fn pull_of_missing_blob_is_not_found() {
        let node = test_builder().start().unwrap();
        let cfg = client_cfg();
        let mut client = Client::connect(node.addr()).unwrap().config(cfg);
        let err = client.pull("nope").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
        let m = wait_metric(&node, |m| m.pull_misses == 1);
        assert_eq!(m.pull_misses, 1);
        assert_eq!(m.sessions_accepted, 0);
        node.shutdown().unwrap();
    }

    #[test]
    fn pre_seeded_store_serves_pulls() {
        let store = shared_store();
        store.put("seeded", payload(30_000).into());
        let node = test_builder().store(store).start().unwrap();
        let cfg = client_cfg();
        let mut client = Client::connect(node.addr()).unwrap().config(cfg);
        let pull = client.pull("seeded").unwrap();
        assert_eq!(pull.data, payload(30_000));
        node.shutdown().unwrap();
    }

    #[test]
    fn colliding_transfer_id_from_other_peer_is_cancelled() {
        let store = shared_store();
        store.put("blob", payload(200_000).into());
        let node = test_builder().store(store).start().unwrap();
        let cfg = client_cfg();
        // First client opens session 5.
        let addr = node.addr();
        let cfg2 = cfg.clone();
        let t = std::thread::spawn(move || {
            let mut client = Client::connect(addr)
                .unwrap()
                .config(cfg2)
                .transfer_ids_from(5);
            client.pull("blob").unwrap()
        });
        // Wait until the node has actually accepted session 5 before
        // contending for the id from a different peer.
        while node.metrics().sessions_accepted == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        // The contender is refused (Cancel → NotFound) while session 5
        // lives — or, if the first transfer already finished and was
        // reaped, it simply succeeds.  It must never hang or corrupt.
        let mut contender = Client::connect(addr)
            .unwrap()
            .config(cfg)
            .transfer_ids_from(5);
        match contender.pull("blob") {
            Ok(r) => assert_eq!(r.data, payload(200_000)),
            Err(e) => assert_eq!(e.kind(), io::ErrorKind::NotFound),
        }
        let first = t.join().unwrap();
        assert_eq!(first.data, payload(200_000));
        node.shutdown().unwrap();
    }

    #[test]
    fn oversized_push_announcement_is_refused() {
        let node = test_builder()
            .max_transfer_bytes(64 * 1024)
            .start()
            .unwrap();
        let ccfg = client_cfg();
        let mut client = Client::connect(node.addr()).unwrap().config(ccfg);
        let err = client.push("big", &payload(65 * 1024)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound, "cancelled, not hung");
        let m = wait_metric(&node, |m| m.rejected_oversize == 1);
        assert_eq!(m.rejected_oversize, 1);
        assert_eq!(m.sessions_accepted, 0, "no buffer was allocated");
        node.shutdown().unwrap();
    }

    #[test]
    fn session_timeout_reaps_abandoned_push() {
        let node = NodeBuilder::new()
            .timeout(Duration::from_millis(15))
            .session_timeout(Duration::from_millis(80))
            .start()
            .unwrap();
        // Open a push session by hand, then walk away: no data phase.
        let req = Request::push(50_000, &client_cfg(), false).with_name("ghost");
        let dgram = req.build_datagram(77);
        let sock = UdpSocket::bind("127.0.0.1:0").unwrap();
        sock.send_to(&fcs::frame(&dgram), node.addr()).unwrap();
        // The reactor must fail and reap the abandoned session on its
        // own timer, with no further traffic from us.
        let m = wait_metric(&node, |m| m.sessions_failed == 1);
        assert_eq!(m.sessions_accepted, 1);
        assert_eq!(m.sessions_failed, 1, "abandoned session must fail");
        assert!(node.wait_idle(Duration::from_secs(5)), "engine reaped");
        assert!(
            !node.store().contains("ghost"),
            "no blob from a failed push"
        );
        node.shutdown().unwrap();
    }

    #[test]
    fn builder_defaults_match_node_config() {
        let b = NodeBuilder::new()
            .linger(Duration::from_millis(99))
            .max_sessions(7)
            .session_timeout(Duration::from_secs(3))
            .max_retries(42)
            .pacing(PacingConfig::lan());
        assert_eq!(b.config.linger, Duration::from_millis(99));
        assert_eq!(b.config.max_sessions, 7);
        assert_eq!(b.config.session_timeout, Duration::from_secs(3));
        assert_eq!(b.config.protocol.max_retries, 42);
        assert_eq!(b.config.shards, 1);
    }

    #[test]
    fn sharded_start_accepts_sessions_on_every_requested_shard_count() {
        // On Linux this runs 2 real shards; elsewhere it falls back to
        // one — either way the node must serve correctly.
        let node = test_builder().shards(2).start().unwrap();
        assert!(node.shards() == 2 || !sockopt::reuseport_supported());
        let cfg = client_cfg();
        let data = payload(60_000);
        // Two clients, two distinct 4-tuples: the kernel may hash them
        // to different shards.
        let mut pusher = Client::connect(node.addr()).unwrap().config(cfg.clone());
        pusher.push("sharded", &data).unwrap();
        let mut puller = Client::connect(node.addr()).unwrap().config(cfg);
        let pull = puller.pull("sharded").unwrap();
        assert_eq!(pull.data, data);
        assert!(node.wait_idle(Duration::from_secs(5)));
        let reports = node.shard_reports();
        assert_eq!(reports.len(), node.shards());
        let accepted: u64 = reports.iter().map(|r| r.sessions_accepted).sum();
        assert_eq!(accepted, 2);
        let m = node.shutdown().unwrap();
        assert_eq!(m.sessions_completed, 2);
        assert_eq!(m.bytes_received, 60_000);
        assert_eq!(m.bytes_sent, 60_000);
    }

    #[test]
    fn portable_netio_override_is_honoured() {
        let node = test_builder().portable_netio().start().unwrap();
        let cfg = client_cfg();
        let mut client = Client::connect(node.addr()).unwrap().config(cfg);
        client.push("p", &payload(10_000)).unwrap();
        assert!(node.wait_idle(Duration::from_secs(5)));
        let m = node.shutdown().unwrap();
        assert_eq!(m.netio_backend, "portable");
        assert_eq!(m.netio_offload, "portable", "no offload without batching");
        assert_eq!(m.sessions_completed, 1);
    }

    #[test]
    fn wait_sessions_counts_across_shards() {
        let node = test_builder().shards(2).start().unwrap();
        let cfg = client_cfg();
        let addr = node.addr();
        let threads: Vec<_> = (0..4u32)
            .map(|i| {
                let cfg = cfg.clone();
                std::thread::spawn(move || {
                    let mut client = Client::connect(addr).unwrap().config(cfg);
                    client.push(&format!("w{i}"), &payload(20_000)).unwrap()
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert!(node.wait_sessions(4, Duration::from_secs(10)));
        let m = node.shutdown().unwrap();
        assert_eq!(m.sessions_completed, 4);
        assert_eq!(m.bytes_received, 4 * 20_000);
    }
}
