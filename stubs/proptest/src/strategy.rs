//! The [`Strategy`] trait and the built-in strategies for ranges.

use std::ops::{Range, RangeInclusive};

use crate::rng::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike the real proptest there is no value tree and no shrinking:
/// `generate` draws one concrete value directly.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            #[allow(clippy::cast_possible_truncation)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            #[allow(clippy::cast_possible_truncation)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span + 1) as $t)
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_range_strategy_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = u64::from((self.end as $u).wrapping_sub(self.start as $u));
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}
impl_range_strategy_signed!(i8 => u8, i16 => u16, i32 => u32);

impl Strategy for Range<i64> {
    type Value = i64;
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    fn generate(&self, rng: &mut TestRng) -> i64 {
        assert!(self.start < self.end, "empty range strategy");
        let span = (self.end as u64).wrapping_sub(self.start as u64);
        self.start.wrapping_add(rng.below(span) as i64)
    }
}
