//! Ethernet II framing.
//!
//! The standalone experiments of the paper (§2.1.1) are "implemented at
//! the data link layer and device level", i.e. raw Ethernet frames with
//! no further header.  This module provides a zero-copy view over such a
//! frame: destination and source station addresses, EtherType, and the
//! payload.  The frame check sequence (FCS) is *not* part of the buffer —
//! as on real hardware it is appended/verified by the interface; the
//! simulator's interface model and the UDP driver use
//! [`crate::checksum::crc32`] for the same purpose when fault injection
//! is enabled.

use core::fmt;

use crate::error::{WireError, WireResult};
use crate::mac::{EtherType, MacAddr};

/// Length of the Ethernet II header: two MAC addresses plus EtherType.
pub const ETHERNET_HEADER_LEN: usize = 14;

/// Minimum Ethernet payload (frames are padded to 64 bytes on the wire
/// including the 4-byte FCS, i.e. 46 payload bytes).
pub const MIN_ETHERNET_PAYLOAD: usize = 46;

/// Field offsets within the Ethernet header.
mod field {
    use core::ops::Range;
    pub const DST: Range<usize> = 0..6;
    pub const SRC: Range<usize> = 6..12;
    pub const ETHERTYPE: Range<usize> = 12..14;
    pub const PAYLOAD: usize = 14;
}

/// A zero-copy view of an Ethernet II frame.
///
/// Generic over the buffer type: `&[u8]` (or anything `AsRef<[u8]>`)
/// gives read access, `&mut [u8]` additionally allows emission.
///
/// ```
/// use blast_wire::frame::EthernetFrame;
/// use blast_wire::mac::{EtherType, MacAddr};
///
/// let mut buf = [0u8; 64];
/// let mut frame = EthernetFrame::new_unchecked(&mut buf[..]);
/// frame.set_dst(MacAddr::station(2));
/// frame.set_src(MacAddr::station(1));
/// frame.set_ethertype(EtherType::BLAST);
/// frame.payload_mut()[..5].copy_from_slice(b"hello");
///
/// let frame = EthernetFrame::new_checked(&buf[..]).unwrap();
/// assert_eq!(frame.dst(), MacAddr::station(2));
/// assert_eq!(frame.ethertype(), EtherType::BLAST);
/// assert_eq!(&frame.payload()[..5], b"hello");
/// ```
#[derive(Debug, Clone)]
pub struct EthernetFrame<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> EthernetFrame<T> {
    /// Wrap a buffer without length validation.
    ///
    /// Accessors will panic if the buffer is shorter than
    /// [`ETHERNET_HEADER_LEN`]; use [`new_checked`](Self::new_checked)
    /// for untrusted input.
    pub fn new_unchecked(buffer: T) -> Self {
        EthernetFrame { buffer }
    }

    /// Wrap a buffer, validating that the fixed header fits.
    pub fn new_checked(buffer: T) -> WireResult<Self> {
        let len = buffer.as_ref().len();
        if len < ETHERNET_HEADER_LEN {
            return Err(WireError::Truncated {
                needed: ETHERNET_HEADER_LEN,
                got: len,
            });
        }
        Ok(EthernetFrame { buffer })
    }

    /// Consume the view, returning the underlying buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    /// Destination station address.
    pub fn dst(&self) -> MacAddr {
        MacAddr::from_bytes(&self.buffer.as_ref()[field::DST]).expect("validated length")
    }

    /// Source station address.
    pub fn src(&self) -> MacAddr {
        MacAddr::from_bytes(&self.buffer.as_ref()[field::SRC]).expect("validated length")
    }

    /// EtherType of the encapsulated payload.
    pub fn ethertype(&self) -> EtherType {
        let b = &self.buffer.as_ref()[field::ETHERTYPE];
        EtherType(u16::from_be_bytes([b[0], b[1]]))
    }

    /// The encapsulated payload (everything after the 14-byte header).
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[field::PAYLOAD..]
    }

    /// Total frame length in bytes (header + payload), as held in the
    /// buffer.
    pub fn total_len(&self) -> usize {
        self.buffer.as_ref().len()
    }

    /// Length this frame would occupy on a real Ethernet wire: padded to
    /// the 60-byte minimum (excluding FCS) and with the 4-byte FCS, the
    /// 8-byte preamble and the 9.6 µs interframe gap *not* included.
    ///
    /// The simulator uses this to compute transmission times `T` and `Ta`
    /// consistently with the paper (1024 B data ⇒ 0.82 ms at 10 Mbit/s
    /// counts header + padding; 64 B ack ⇒ 51 µs).
    pub fn wire_len(&self) -> usize {
        self.total_len()
            .max(ETHERNET_HEADER_LEN + MIN_ETHERNET_PAYLOAD)
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> EthernetFrame<T> {
    /// Set the destination station address.
    pub fn set_dst(&mut self, addr: MacAddr) {
        self.buffer.as_mut()[field::DST].copy_from_slice(&addr.octets());
    }

    /// Set the source station address.
    pub fn set_src(&mut self, addr: MacAddr) {
        self.buffer.as_mut()[field::SRC].copy_from_slice(&addr.octets());
    }

    /// Set the EtherType.
    pub fn set_ethertype(&mut self, ethertype: EtherType) {
        self.buffer.as_mut()[field::ETHERTYPE].copy_from_slice(&ethertype.raw().to_be_bytes());
    }

    /// Mutable access to the payload region.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        &mut self.buffer.as_mut()[field::PAYLOAD..]
    }
}

impl<T: AsRef<[u8]>> fmt::Display for EthernetFrame<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "EthernetII {} -> {} type={} len={}",
            self.src(),
            self.dst(),
            self.ethertype(),
            self.total_len()
        )
    }
}

/// Compute the number of bytes a frame with `payload_len` payload bytes
/// occupies for transmission-time purposes (header + payload, padded to
/// the minimum).  Free function so cost models need not build a frame.
pub const fn frame_wire_len(payload_len: usize) -> usize {
    let raw = ETHERNET_HEADER_LEN + payload_len;
    let min = ETHERNET_HEADER_LEN + MIN_ETHERNET_PAYLOAD;
    if raw < min {
        min
    } else {
        raw
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_frame() -> Vec<u8> {
        let mut buf = vec![0u8; ETHERNET_HEADER_LEN + 32];
        let mut f = EthernetFrame::new_unchecked(&mut buf[..]);
        f.set_dst(MacAddr::station(7));
        f.set_src(MacAddr::station(3));
        f.set_ethertype(EtherType::BLAST);
        f.payload_mut().copy_from_slice(&[0xaa; 32]);
        buf
    }

    #[test]
    fn emit_parse_roundtrip() {
        let buf = sample_frame();
        let f = EthernetFrame::new_checked(&buf[..]).unwrap();
        assert_eq!(f.dst(), MacAddr::station(7));
        assert_eq!(f.src(), MacAddr::station(3));
        assert_eq!(f.ethertype(), EtherType::BLAST);
        assert_eq!(f.payload(), &[0xaa; 32][..]);
        assert_eq!(f.total_len(), 46);
    }

    #[test]
    fn checked_rejects_short_buffers() {
        for len in 0..ETHERNET_HEADER_LEN {
            let buf = vec![0u8; len];
            assert_eq!(
                EthernetFrame::new_checked(&buf[..]).unwrap_err(),
                WireError::Truncated {
                    needed: ETHERNET_HEADER_LEN,
                    got: len
                }
            );
        }
        assert!(EthernetFrame::new_checked(&[0u8; 14][..]).is_ok());
    }

    #[test]
    fn wire_len_padding() {
        // Tiny frames are padded to the 60-byte minimum (without FCS).
        assert_eq!(frame_wire_len(0), 60);
        assert_eq!(frame_wire_len(46), 60);
        assert_eq!(frame_wire_len(47), 61);
        assert_eq!(frame_wire_len(1024), 1038);
        let buf = [0u8; ETHERNET_HEADER_LEN + 4];
        let f = EthernetFrame::new_checked(&buf[..]).unwrap();
        assert_eq!(f.wire_len(), 60);
    }

    #[test]
    fn display_format() {
        let buf = sample_frame();
        let f = EthernetFrame::new_checked(&buf[..]).unwrap();
        let s = f.to_string();
        assert!(s.contains("02:60:8c:00:00:03"), "{s}");
        assert!(s.contains("BLAST"), "{s}");
    }

    #[test]
    fn into_inner_returns_buffer() {
        let buf = sample_frame();
        let f = EthernetFrame::new_checked(buf.clone()).unwrap();
        assert_eq!(f.into_inner(), buf);
    }

    #[test]
    fn payload_mut_roundtrips() {
        let mut buf = [0u8; 64];
        let mut f = EthernetFrame::new_unchecked(&mut buf[..]);
        f.payload_mut()[0] = 0x5a;
        assert_eq!(f.payload()[0], 0x5a);
        assert_eq!(buf[ETHERNET_HEADER_LEN], 0x5a);
    }
}
