//! Criterion bench for the node: aggregate goodput as the number of
//! concurrent sessions grows (1, 4, 16) on loopback.
//!
//! Each measurement pushes `BYTES_PER_SESSION` from N client threads
//! simultaneously through one node and times the whole fan-in, so the
//! reported throughput is the *aggregate* across sessions — the figure
//! a transfer node is judged on.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::time::Duration;

use blast_core::ProtocolConfig;
use blast_node::server::NodeBuilder;
use blast_node::Client;

const BYTES_PER_SESSION: usize = 256 * 1024;

fn client_cfg() -> ProtocolConfig {
    let mut cfg = ProtocolConfig::default();
    cfg.timeout = Duration::from_millis(50).into();
    cfg.max_retries = 100_000;
    // Larger packets than the paper's 1 KB: loopback has no Ethernet
    // MTU, but stay within the validated bound.
    cfg.packet_payload = 1400;
    cfg
}

fn bench_node(c: &mut Criterion) {
    let data: Vec<u8> = (0..BYTES_PER_SESSION).map(|i| i as u8).collect();

    let mut group = c.benchmark_group("node_loopback");
    group.measurement_time(Duration::from_secs(8));

    for sessions in [1usize, 4, 16] {
        group.throughput(Throughput::Bytes((BYTES_PER_SESSION * sessions) as u64));
        group.bench_function(format!("push_{sessions}x256k"), |b| {
            b.iter_custom(|iters| {
                let node = NodeBuilder::new()
                    .timeout(Duration::from_millis(50))
                    .max_retries(100_000)
                    .start()
                    .unwrap();
                let addr = node.addr();
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    let t0 = std::time::Instant::now();
                    let handles: Vec<_> = (0..sessions)
                        .map(|s| {
                            let data = data.clone();
                            std::thread::spawn(move || {
                                let mut client =
                                    Client::connect(addr).unwrap().config(client_cfg());
                                client.push(&format!("s{s}"), &data).unwrap();
                            })
                        })
                        .collect();
                    for h in handles {
                        h.join().unwrap();
                    }
                    total += t0.elapsed();
                }
                node.shutdown().unwrap();
                total
            })
        });
    }

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_node
}
criterion_main!(benches);
