//! The blocking driver: one engine, one channel, real timers.
//!
//! The sim driver translates engine actions into simulated copy costs;
//! this driver translates them into socket sends and wall-clock timer
//! deadlines.  Same engines, same actions, different clock — that is
//! the point of the sans-I/O design.

use std::io;
use std::time::{Duration, Instant};

use blast_core::api::{Action, CompletionInfo, TimerToken};
use blast_core::engine::Engine;
use blast_core::PacingConfig;
use blast_wire::header::PacketKind;
use blast_wire::packet::Datagram;

use crate::channel::{Channel, MAX_DATAGRAM};
use crate::timers::TimerWheel;

/// How long a finished receiver keeps answering duplicate packets, so
/// that a peer whose final ack was lost can still complete (§3.2.2's
/// tail problem).  Called "linger" by analogy with TCP's TIME-WAIT.
///
/// The window is a *quiet* window: incoming traffic restarts it, since
/// a peer still retransmitting is a peer that has not heard our final
/// ack.  Lingering therefore lasts exactly as long as the peer needs
/// (bounded by the driver deadline), and a clean exit costs only this
/// constant.
pub const LINGER: Duration = Duration::from_millis(50);

/// Outcome of a driver run.
#[derive(Debug)]
pub struct DriveOutcome {
    /// The engine's completion report.
    pub completion: CompletionInfo,
    /// Wall-clock duration of the run (excluding linger).
    pub elapsed: Duration,
    /// Datagrams sent on the channel.
    pub datagrams_sent: u64,
    /// Datagrams received (before filtering).
    pub datagrams_received: u64,
    /// Datagrams dropped as malformed (failed wire validation —
    /// corruption turned into loss, as the Ethernet FCS would).
    pub malformed: u64,
}

/// Runs a single engine over a channel until it completes.
pub struct Driver<C: Channel> {
    channel: C,
    /// Re-sent verbatim whenever a `Request` packet arrives — lets the
    /// session layer keep answering handshake retransmissions while the
    /// data engine runs (see `crate::peer`).
    pub request_reply: Option<Vec<u8>>,
    /// Stop even if incomplete after this long (safety for tests).
    pub deadline: Duration,
    /// Keep answering duplicates after the engine finishes until the
    /// channel has been quiet for [`linger_for`](Driver::linger_for)
    /// (receivers should; senders need not).
    pub linger: bool,
    /// The quiet window that ends lingering.  Incoming traffic restarts
    /// it: a peer still retransmitting has not heard our final ack, so
    /// the driver stays to re-acknowledge.  The [`LINGER`] default
    /// suits most links; raise it past the peer's retransmission
    /// interval if that interval is unusually long.
    pub linger_for: Duration,
    /// Optional shorter quiet window used when the run completed
    /// *clean* — no retransmission rounds, no malformed datagrams.  A
    /// clean run is strong evidence the link is not losing packets, so
    /// the final status is very unlikely to need re-answering and a
    /// long tail wait would be pure dead time (per-transfer callers
    /// like `blast-node`'s `Client::pull` pay it on every call).  Runs
    /// that saw any loss keep the full [`linger_for`](Self::linger_for)
    /// window.
    pub clean_linger_for: Option<Duration>,
    /// Flight recorder, handed to the engine and the channel at
    /// [`run`](Driver::run).  The recorder's epoch also becomes the
    /// engine's `set_now` base, so engine events and the backend's
    /// syscall events land on one consistent timeline.
    pub recorder: Option<blast_telemetry::Recorder>,
}

impl<C: Channel> Driver<C> {
    /// New driver over `channel`.
    pub fn new(channel: C) -> Self {
        Driver {
            channel,
            request_reply: None,
            deadline: Duration::from_secs(60),
            linger: false,
            linger_for: LINGER,
            clean_linger_for: None,
            recorder: None,
        }
    }

    /// Attach a flight recorder (see [`Driver::recorder`]).
    pub fn with_recorder(mut self, recorder: blast_telemetry::Recorder) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Enable receiver lingering.
    pub fn with_linger(mut self) -> Self {
        self.linger = true;
        self
    }

    /// Enable receiver lingering with an explicit window.
    pub fn with_linger_for(mut self, window: Duration) -> Self {
        self.linger = true;
        self.linger_for = window;
        self
    }

    /// Use a shorter quiet window after a clean run (see
    /// [`Driver::clean_linger_for`]).  Implies lingering.
    pub fn with_clean_linger_for(mut self, window: Duration) -> Self {
        self.linger = true;
        self.clean_linger_for = Some(window);
        self
    }

    /// Set the overall deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = deadline;
        self
    }

    /// Take back the channel.
    pub fn into_channel(self) -> C {
        self.channel
    }

    /// Run `engine` to completion.
    pub fn run(&mut self, engine: &mut dyn Engine) -> io::Result<DriveOutcome> {
        let start = Instant::now();
        let mut sent = 0u64;
        let mut received = 0u64;
        let mut malformed = 0u64;
        let mut timers: TimerWheel<TimerToken> = TimerWheel::new();

        // One scratch vector serves every engine call for the whole
        // run: `execute` drains it, so the packet loop reuses its
        // capacity instead of allocating a sink per datagram.
        let mut actions: Vec<Action> = Vec::new();
        // With a recorder attached, the engine's clock runs from the
        // recorder's epoch instead of the run start, so `record_at`
        // timestamps merge cleanly with the backend's `record` ones.
        let clock = match &self.recorder {
            Some(rec) => {
                engine.set_recorder(rec.clone());
                self.channel.set_recorder(rec.clone());
                rec.epoch()
            }
            None => start,
        };
        engine.set_now(clock.elapsed());
        engine.start(&mut actions);
        self.execute(&mut actions, &mut sent, &mut timers)?;

        let mut buf = vec![0u8; MAX_DATAGRAM];
        let mut completion: Option<CompletionInfo> = None;
        let mut finished_at: Option<Instant> = None;
        // The linger quiet-clock: set at completion, restarted by any
        // incoming traffic (kept separate from `finished_at`, which
        // feeds the elapsed-time measurement).
        let mut quiet_since: Option<Instant> = None;
        // Picked at completion: the clean-run short window when the
        // transfer saw no loss, the full window otherwise.
        let mut linger_window = self.linger_for;

        loop {
            let now = Instant::now();
            if now.duration_since(start) > self.deadline {
                break;
            }
            if let Some(t) = quiet_since {
                if !self.linger || now.duration_since(t) > linger_window {
                    break;
                }
            }

            // Fire due timers.
            while let Some(token) = timers.pop_due(now) {
                engine.set_now(now.duration_since(clock));
                engine.on_timer(token, &mut actions);
                let done = self.execute(&mut actions, &mut sent, &mut timers)?;
                if let Some(info) = done {
                    if let Some(short) = self.clean_linger_for {
                        if info.stats.retransmission_rounds == 0 && malformed == 0 {
                            linger_window = short;
                        }
                    }
                    completion = Some(info);
                    finished_at = Some(Instant::now());
                    quiet_since = finished_at;
                }
            }
            if finished_at.is_some() && !self.linger {
                break;
            }

            // Wait for the next packet or the next timer, whichever
            // comes first.  The channel's backend makes this an
            // *event-driven* wait: the batched `NetIo` blocks on
            // epoll + timerfd at the exact deadline, so sub-millisecond
            // pace gaps (hundreds of µs between bursts) cost neither a
            // scheduler-tick round-up nor the yield-spin that used to
            // paper over it; the portable fallback degrades to a coarse
            // `SO_RCVTIMEO` wait with the shared floor.
            let mut until_timer = timers
                .next_deadline()
                .map(|when| when.saturating_duration_since(now))
                .unwrap_or(Duration::from_millis(20))
                .clamp(PacingConfig::MIN_WAIT, Duration::from_millis(50));
            // While lingering, don't oversleep the quiet window: with
            // no timers pending the default 20 ms wait would stretch a
            // shorter (clean-run) window to the wait granularity.
            if let Some(t) = quiet_since {
                let remaining = linger_window.saturating_sub(now.duration_since(t));
                until_timer = until_timer.min(remaining.max(PacingConfig::MIN_WAIT));
            }
            match self.channel.recv_timeout(&mut buf, until_timer)? {
                None => continue,
                Some(n) => {
                    received += 1;
                    // Any traffic during linger means the peer is still
                    // working (our final ack may be lost): restart the
                    // quiet window so we stay to answer.
                    if let Some(t) = quiet_since.as_mut() {
                        *t = Instant::now();
                    }
                    let Ok(dgram) = Datagram::parse(&buf[..n]) else {
                        malformed += 1; // checksum turned corruption into loss
                        continue;
                    };
                    if dgram.kind == PacketKind::Request {
                        if let Some(reply) = &self.request_reply {
                            self.channel.send(reply)?;
                            sent += 1;
                        }
                        continue;
                    }
                    engine.set_now(clock.elapsed());
                    engine.on_datagram(&dgram, &mut actions);
                    let done = self.execute(&mut actions, &mut sent, &mut timers)?;
                    if let Some(info) = done {
                        if let Some(short) = self.clean_linger_for {
                            if info.stats.retransmission_rounds == 0 && malformed == 0 {
                                linger_window = short;
                            }
                        }
                        completion = Some(info);
                        finished_at = Some(Instant::now());
                        quiet_since = finished_at;
                    }
                }
            }
        }

        let completion = completion.unwrap_or_else(|| {
            CompletionInfo::failure(
                blast_core::CoreError::BadState {
                    what: "driver deadline exceeded",
                },
                engine.stats(),
            )
        });
        Ok(DriveOutcome {
            completion,
            elapsed: finished_at
                .unwrap_or_else(Instant::now)
                .duration_since(start),
            datagrams_sent: sent,
            datagrams_received: received,
            malformed,
        })
    }

    /// Drain and execute `actions`, leaving the vector's capacity for
    /// the caller to reuse on the next engine call.
    ///
    /// Transmissions are *staged* and flushed once at the end: a paced
    /// burst (one engine call's worth of packets) becomes a single
    /// `sendmmsg` submission on the batched backend instead of one
    /// kernel crossing per datagram.
    fn execute(
        &mut self,
        actions: &mut Vec<Action>,
        sent: &mut u64,
        timers: &mut TimerWheel<TimerToken>,
    ) -> io::Result<Option<CompletionInfo>> {
        let mut done = None;
        for action in actions.drain(..) {
            match action {
                Action::Transmit(bytes) => {
                    self.channel.stage(&bytes)?;
                    *sent += 1;
                }
                Action::SetTimer { token, after } => timers.arm(token, after),
                Action::CancelTimer { token } => timers.cancel(token),
                Action::Complete(info) => done = Some(*info),
            }
        }
        self.channel.flush()?;
        Ok(done)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::UdpChannel;
    use blast_core::blast::{BlastReceiver, BlastSender};
    use blast_core::saw::{SawReceiver, SawSender};
    use blast_core::ProtocolConfig;
    use std::sync::Arc;

    fn cfg() -> ProtocolConfig {
        let mut c = ProtocolConfig::default();
        c.timeout = Duration::from_millis(15).into();
        c
    }

    fn data(n: usize) -> Arc<[u8]> {
        (0..n)
            .map(|i| (i * 31 % 256) as u8)
            .collect::<Vec<u8>>()
            .into()
    }

    #[test]
    fn blast_over_loopback() {
        let (a, b) = UdpChannel::pair().unwrap();
        let c = cfg();
        let payload = data(50_000);
        let payload2 = payload.clone();
        let c2 = c.clone();
        let receiver = std::thread::spawn(move || {
            let mut engine = BlastReceiver::new(1, payload2.len(), &c2);
            let mut driver = Driver::new(b).with_linger();
            let out = driver.run(&mut engine).unwrap();
            assert!(out.completion.is_success());
            engine.into_data()
        });
        let mut engine = BlastSender::new(1, payload.clone(), &c);
        let mut driver = Driver::new(a);
        let out = driver.run(&mut engine).unwrap();
        assert!(out.completion.is_success(), "{:?}", out.completion);
        let received = receiver.join().unwrap();
        assert_eq!(received, payload.as_ref());
        assert!(out.datagrams_sent >= 49); // 49 data packets
    }

    #[test]
    fn saw_over_loopback() {
        let (a, b) = UdpChannel::pair().unwrap();
        let c = cfg();
        let payload = data(8_000);
        let payload2 = payload.clone();
        let c2 = c.clone();
        let receiver = std::thread::spawn(move || {
            let mut engine = SawReceiver::new(1, payload2.len(), &c2);
            let mut driver = Driver::new(b).with_linger();
            driver.run(&mut engine).unwrap();
            engine.into_data()
        });
        let mut engine = SawSender::new(1, payload.clone(), &c);
        let mut driver = Driver::new(a);
        let out = driver.run(&mut engine).unwrap();
        assert!(out.completion.is_success());
        assert_eq!(receiver.join().unwrap(), payload.as_ref());
    }

    #[test]
    fn clean_run_uses_the_short_linger_window() {
        let (a, b) = UdpChannel::pair().unwrap();
        let c = cfg();
        let payload = data(20_000);
        let payload2 = payload.clone();
        let c2 = c.clone();
        let receiver = std::thread::spawn(move || {
            let mut engine = BlastReceiver::new(1, payload2.len(), &c2);
            let start = Instant::now();
            let mut driver = Driver::new(b)
                .with_linger_for(Duration::from_millis(400))
                .with_clean_linger_for(Duration::from_millis(10));
            let out = driver.run(&mut engine).unwrap();
            assert!(out.completion.is_success());
            (engine.into_data(), start.elapsed())
        });
        let mut engine = BlastSender::new(1, payload.clone(), &c);
        let out = Driver::new(a).run(&mut engine).unwrap();
        assert!(out.completion.is_success());
        let (received, elapsed) = receiver.join().unwrap();
        assert_eq!(received, payload.as_ref());
        assert!(
            elapsed < Duration::from_millis(300),
            "loopback run is clean, so the 400 ms window must not be paid: {elapsed:?}"
        );
    }

    #[test]
    fn driver_deadline_prevents_hangs() {
        // No peer at all: the sender must give up at the deadline.
        let (a, _b) = UdpChannel::pair().unwrap();
        let mut c = cfg();
        c.max_retries = 1_000_000;
        c.timeout = Duration::from_millis(5).into();
        let mut engine = BlastSender::new(1, data(1024), &c);
        let mut driver = Driver::new(a).with_deadline(Duration::from_millis(100));
        let start = Instant::now();
        let out = driver.run(&mut engine).unwrap();
        assert!(!out.completion.is_success());
        assert!(start.elapsed() < Duration::from_secs(2));
    }

    #[test]
    fn request_reply_answers_handshake_retransmissions() {
        let (mut a, b) = UdpChannel::pair().unwrap();
        let c = cfg();
        // Receiver drives a blast receiver with a canned request-reply.
        let handle = std::thread::spawn(move || {
            let mut engine = BlastReceiver::new(5, 1024, &c);
            let mut driver = Driver::new(b).with_deadline(Duration::from_millis(300));
            driver.request_reply = Some(vec![0xAB; 4]);
            let _ = driver.run(&mut engine);
            driver.into_channel()
        });
        // Send a Request packet; expect the canned reply back.
        let builder = blast_wire::DatagramBuilder::new(5);
        let mut buf = vec![0u8; 128];
        let len = builder.build_request(&mut buf, 1, b"hello").unwrap();
        a.send(&buf[..len]).unwrap();
        let mut rbuf = [0u8; 64];
        let n = a
            .recv_timeout(&mut rbuf, Duration::from_millis(500))
            .unwrap()
            .unwrap();
        assert_eq!(&rbuf[..n], &[0xAB; 4]);
        drop(handle);
    }
}
