//! Sans-I/O arithmetic for UDP segmentation offload.
//!
//! The batched [`crate::netio`] backend coalesces same-destination,
//! equal-size datagrams from one flush into *super-datagrams* sent with
//! a `UDP_SEGMENT` control message (the kernel segments them at the
//! stack/NIC edge), and splits `UDP_GRO`-coalesced reads back into
//! per-datagram views.  The decisions — when a frame may join a run,
//! and how a coalesced buffer splits — are pure arithmetic, so they
//! live here where they compile and test on every host, while the
//! Linux-only FFI stays in `netio`.
//!
//! Kernel rules encoded by this module:
//!
//! * every segment of a super-datagram has the same size (`seg_size`),
//!   except the last, which may be a shorter *tail runt*;
//! * a super-datagram carries at most [`MAX_SEGMENTS`] segments and at
//!   most [`MAX_SUPER_DATAGRAM`] bytes (the UDP payload ceiling);
//! * on receive, a buffer of `len` bytes with a `UDP_GRO` segment size
//!   of `seg_size` splits into `seg_size`-byte datagrams plus a final
//!   runt of `len % seg_size` bytes (a `seg_size` of 0 means the read
//!   was not coalesced).

/// Most segments one super-datagram may carry (kernel
/// `UDP_MAX_SEGMENTS`).
pub const MAX_SEGMENTS: u32 = 64;

/// Largest super-datagram payload: the IPv4 UDP maximum.
pub const MAX_SUPER_DATAGRAM: usize = 65_507;

/// One coalesced run of equal-size datagrams under construction.
///
/// Start a run with the first frame ([`Run::start`]), then offer each
/// following same-destination frame with [`Run::try_append`]; a refusal
/// means the frame must start a new run.  Destination equality is the
/// caller's job — a run only tracks sizes and counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Run {
    seg_size: usize,
    len: usize,
    segments: u32,
    open: bool,
}

impl Run {
    /// Begin a run whose segment size is the first frame's length.
    pub fn start(frame_len: usize) -> Run {
        Run {
            seg_size: frame_len,
            len: frame_len,
            segments: 1,
            // A zero-length datagram cannot define a segment size.
            open: frame_len > 0,
        }
    }

    /// Try to add one more frame to the run, bounded by `budget` (the
    /// bytes of staging storage left for this run; the kernel ceilings
    /// apply on top).  Returns `false` when the frame must go into a
    /// new run: the run is closed (a tail runt was already taken), the
    /// frame is larger than the segment size, or a limit would be
    /// exceeded.  A frame *smaller* than the segment size is accepted
    /// as the tail runt and closes the run.
    pub fn try_append(&mut self, frame_len: usize, budget: usize) -> bool {
        if !self.open || frame_len == 0 || frame_len > self.seg_size {
            return false;
        }
        if self.segments >= MAX_SEGMENTS {
            return false;
        }
        if self.len + frame_len > MAX_SUPER_DATAGRAM.min(budget) {
            return false;
        }
        self.len += frame_len;
        self.segments += 1;
        if frame_len < self.seg_size {
            self.open = false;
        }
        true
    }

    /// Refuse further appends (the next frame went elsewhere).
    pub fn close(&mut self) {
        self.open = false;
    }

    /// The run's segment size: the length of its first frame.
    pub fn seg_size(&self) -> usize {
        self.seg_size
    }

    /// Total payload bytes staged in the run.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True only for a run started from a zero-length frame.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// How many datagrams the run carries.
    pub fn segments(&self) -> u32 {
        self.segments
    }

    /// True when the run holds more than one datagram and therefore
    /// needs a `UDP_SEGMENT` control message.
    pub fn is_coalesced(&self) -> bool {
        self.segments > 1
    }
}

/// Split one received buffer back into per-datagram lengths.
///
/// `seg_size` comes from the `UDP_GRO` control message; 0 means the
/// read was a plain datagram.  The iterator yields each datagram's
/// length in order (a single item for an uncoalesced read, including
/// the zero-length-datagram case).
pub fn split(len: usize, seg_size: usize) -> Split {
    Split {
        remaining: len,
        seg_size,
        yielded: false,
    }
}

/// Iterator over the per-datagram lengths of one coalesced read; see
/// [`split`].
#[derive(Debug, Clone)]
pub struct Split {
    remaining: usize,
    seg_size: usize,
    yielded: bool,
}

impl Iterator for Split {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.remaining == 0 {
            // A zero-length datagram is still one datagram.
            if self.yielded {
                return None;
            }
            self.yielded = true;
            return Some(0);
        }
        self.yielded = true;
        let n = if self.seg_size == 0 || self.seg_size >= self.remaining {
            self.remaining
        } else {
            self.seg_size
        };
        self.remaining -= n;
        Some(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_size_frames_coalesce_into_one_run() {
        let mut run = Run::start(1400);
        for _ in 0..9 {
            assert!(run.try_append(1400, usize::MAX));
        }
        assert_eq!(run.segments(), 10);
        assert_eq!(run.len(), 14_000);
        assert_eq!(run.seg_size(), 1400);
        assert!(run.is_coalesced());
    }

    #[test]
    fn larger_frame_starts_a_new_run() {
        let mut run = Run::start(100);
        assert!(!run.try_append(101, usize::MAX), "oversize frame refused");
        assert!(run.try_append(100, usize::MAX), "refusal leaves run usable");
    }

    #[test]
    fn tail_runt_joins_then_closes_the_run() {
        let mut run = Run::start(100);
        assert!(run.try_append(40, usize::MAX), "runt accepted as tail");
        assert_eq!(run.segments(), 2);
        assert_eq!(run.len(), 140);
        assert!(
            !run.try_append(100, usize::MAX),
            "nothing may follow the runt"
        );
    }

    #[test]
    fn segment_count_ceiling_is_enforced() {
        let mut run = Run::start(10);
        for _ in 1..MAX_SEGMENTS {
            assert!(run.try_append(10, usize::MAX));
        }
        assert_eq!(run.segments(), MAX_SEGMENTS);
        assert!(!run.try_append(10, usize::MAX), "65th segment refused");
    }

    #[test]
    fn byte_ceilings_are_enforced() {
        let mut run = Run::start(60_000);
        assert!(
            !run.try_append(60_000, usize::MAX),
            "second segment would exceed the UDP payload maximum"
        );
        let mut run = Run::start(100);
        assert!(!run.try_append(100, 150), "budget caps the run");
        assert!(run.try_append(50, 150), "a runt within budget still fits");
    }

    #[test]
    fn zero_length_frames_never_coalesce() {
        let run = Run::start(0);
        assert!(run.is_empty());
        let mut run = run;
        assert!(!run.try_append(0, usize::MAX));
        let mut run = Run::start(100);
        assert!(!run.try_append(0, usize::MAX));
    }

    #[test]
    fn split_yields_equal_segments_plus_tail_runt() {
        let lens: Vec<usize> = split(1400 * 3 + 250, 1400).collect();
        assert_eq!(lens, vec![1400, 1400, 1400, 250]);
    }

    #[test]
    fn split_of_uncoalesced_read_is_one_datagram() {
        assert_eq!(split(900, 0).collect::<Vec<_>>(), vec![900]);
        assert_eq!(split(900, 1400).collect::<Vec<_>>(), vec![900]);
        assert_eq!(split(0, 0).collect::<Vec<_>>(), vec![0], "empty datagram");
    }

    #[test]
    fn split_round_trips_a_run() {
        let mut run = Run::start(700);
        for _ in 0..5 {
            assert!(run.try_append(700, usize::MAX));
        }
        assert!(run.try_append(123, usize::MAX), "tail runt");
        let lens: Vec<usize> = split(run.len(), run.seg_size()).collect();
        assert_eq!(lens, vec![700, 700, 700, 700, 700, 700, 123]);
        assert_eq!(lens.len(), run.segments() as usize);
    }
}
