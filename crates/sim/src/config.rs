//! Simulator configuration: the hardware being modelled and the fault
//! environment.

use blast_analytic::CostModel;

/// How packet loss is injected on the wire.
///
/// The paper's measurements put the 10 Mbit Ethernet's own error rate at
/// ~1e-5 under normal load, rising to ~1e-4 "when one station transmits
/// at full speed to another workstation" — with the excess attributed to
/// the 3-Com *interfaces*, not the cable (§3.1.3).  The simulator
/// separates the two: [`LossModel`] drops frames in flight (network
/// errors), while receive-buffer overruns in the interface model drop
/// them at the destination (interface errors) — see
/// [`SimConfig::rx_buffers`] and the host speed factors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LossModel {
    /// No loss.
    None,
    /// Independent loss with probability `p` per frame — §3's
    /// analytical model ("statistically independent events with a
    /// constant failure probability").
    Iid {
        /// Per-frame loss probability.
        p: f64,
    },
    /// Two-state Gilbert–Elliott burst model: the channel alternates
    /// between a good and a bad state with per-frame transition
    /// probabilities, each state having its own loss rate.  The paper
    /// notes "burst errors occasionally occur" but analyzes only the
    /// iid case; this model is the extension for studying how robust
    /// the conclusions are to that assumption.
    GilbertElliott {
        /// P(good → bad) per frame.
        p_g2b: f64,
        /// P(bad → good) per frame.
        p_b2g: f64,
        /// Loss probability in the good state.
        loss_good: f64,
        /// Loss probability in the bad state.
        loss_bad: f64,
    },
}

impl LossModel {
    /// iid loss with probability `p`.
    pub fn iid(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        if p == 0.0 {
            LossModel::None
        } else {
            LossModel::Iid { p }
        }
    }
}

/// How transmission and copy times are computed per frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimingPolicy {
    /// The paper's model: every data packet costs exactly `C`/`T`,
    /// every acknowledgement exactly `Ca`/`Ta`, regardless of exact
    /// byte counts.  Use this to reproduce the paper's numbers.
    PerKind,
    /// Byte-accurate: copy cost is linear in frame bytes (calibrated
    /// through the paper's two measured points) and transmission time is
    /// `wire_len × 8 / bandwidth` including Ethernet header and minimum
    /// padding.  Use this for realism ablations.
    PerByte,
}

/// Full simulator configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Copy/transmission cost constants (`C`, `Ca`, `T`, `Ta`, `τ`).
    pub cost: CostModel,
    /// Transmit buffers per interface: 1 = the 3-Com behaviour
    /// (copy and transmit strictly alternate), 2 = the double-buffered
    /// interface of §2.1.3/Figure 3.d.
    pub tx_buffers: usize,
    /// Receive buffers per interface.  When all are occupied an
    /// arriving frame is dropped — an *interface error*, the §3
    /// phenomenon that forces NACK-based retransmission strategies.
    pub rx_buffers: usize,
    /// Whether the processor busy-waits on transmission completion
    /// before doing anything else (§2.1.1: "each of the two programs
    /// simply busy-waits on the completion of its current operation").
    /// True models the paper's single-buffered measurements; set false
    /// for the double-buffered interface, which signals buffer-free
    /// instead.
    pub busy_wait_tx: bool,
    /// In-flight loss model (network errors).
    pub loss: LossModel,
    /// RNG seed for loss decisions.
    pub seed: u64,
    /// Collect a detailed trace for timeline rendering (Figures 2/3).
    pub trace: bool,
    /// Timing policy (paper-exact vs byte-accurate).
    pub timing: TimingPolicy,
    /// Nominal data payload size in bytes (for `PerByte` timing and
    /// reporting).
    pub data_bytes: usize,
    /// Nominal acknowledgement size in bytes.
    pub ack_bytes: usize,
    /// Hard event budget (guards runaway configurations).
    pub max_events: u64,
}

impl SimConfig {
    /// The standalone measurement setup of §2.1.1: Table 2 constants,
    /// single-buffered 3-Com interface, busy-waiting hosts, no loss.
    pub fn standalone() -> Self {
        SimConfig {
            cost: CostModel::standalone_sun(),
            tx_buffers: 1,
            rx_buffers: 64,
            busy_wait_tx: true,
            loss: LossModel::None,
            seed: 1,
            trace: false,
            timing: TimingPolicy::PerKind,
            data_bytes: 1024,
            ack_bytes: 64,
            max_events: 200_000_000,
        }
    }

    /// The V-kernel setup of §2.2: inflated copy costs covering header
    /// transmission, access checking, demultiplexing and interrupt
    /// handling.
    pub fn vkernel() -> Self {
        SimConfig {
            cost: CostModel::vkernel_sun(),
            ..Self::standalone()
        }
    }

    /// The hypothetical double-buffered interface of Figure 3.d.
    pub fn double_buffered() -> Self {
        SimConfig {
            tx_buffers: 2,
            busy_wait_tx: false,
            ..Self::standalone()
        }
    }

    /// Builder-style loss model.
    pub fn with_loss(mut self, loss: LossModel, seed: u64) -> Self {
        self.loss = loss;
        self.seed = seed;
        self
    }

    /// Builder-style trace collection.
    pub fn with_trace(mut self) -> Self {
        self.trace = true;
        self
    }

    /// Builder-style cost model.
    pub fn with_cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Builder-style rx buffer count.
    pub fn with_rx_buffers(mut self, n: usize) -> Self {
        assert!(n > 0, "need at least one receive buffer");
        self.rx_buffers = n;
        self
    }

    /// Builder-style timing policy.
    pub fn with_timing(mut self, timing: TimingPolicy) -> Self {
        self.timing = timing;
        self
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        Self::standalone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_reflect_hardware() {
        let s = SimConfig::standalone();
        assert_eq!(s.tx_buffers, 1);
        assert!(s.busy_wait_tx);
        assert_eq!(s.cost, CostModel::standalone_sun());

        let d = SimConfig::double_buffered();
        assert_eq!(d.tx_buffers, 2);
        assert!(!d.busy_wait_tx);

        let v = SimConfig::vkernel();
        assert_eq!(v.cost, CostModel::vkernel_sun());
    }

    #[test]
    fn loss_model_constructor() {
        assert_eq!(LossModel::iid(0.0), LossModel::None);
        assert_eq!(LossModel::iid(0.5), LossModel::Iid { p: 0.5 });
    }

    #[test]
    #[should_panic(expected = "probability out of range")]
    fn loss_model_rejects_bad_p() {
        let _ = LossModel::iid(1.5);
    }

    #[test]
    fn builders() {
        let c = SimConfig::standalone()
            .with_loss(LossModel::iid(0.01), 42)
            .with_trace()
            .with_rx_buffers(2)
            .with_timing(TimingPolicy::PerByte);
        assert_eq!(c.seed, 42);
        assert!(c.trace);
        assert_eq!(c.rx_buffers, 2);
        assert_eq!(c.timing, TimingPolicy::PerByte);
    }
}
