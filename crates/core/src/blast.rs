//! The blast protocol (§2.1 Figure 3.b, §3 of the paper).
//!
//! "With a blast protocol all data packets are transmitted in sequence,
//! with only a single acknowledgement for the entire packet sequence.
//! Different protocols within the category of blast protocols are
//! distinguished by their retransmission strategies."
//!
//! ## Structure of a transfer (§3.2.3)
//!
//! "In order to execute a D-packet transfer, (D−1) packets are
//! transmitted without acknowledgement.  The last packet is sent
//! reliably, i.e. it is retransmitted periodically until an
//! acknowledgement is received.  The acknowledgement to the last packet
//! indicates [what is missing].  If D′ did not get there, they need to
//! be retransmitted using the same method: transmit D′−1 packets
//! unreliably and the last packet reliably.  This procedure continues
//! until all packets get to their destination."
//!
//! Each *round* therefore sends a set of packets whose final member
//! carries the `LAST|RELIABLE` flags and solicits a status report:
//!
//! * round 0 sends packets `0..D`;
//! * a go-back-n NACK (`first_missing = f`) makes the next round send
//!   `f..D`;
//! * a selective NACK (bitmap) makes the next round send exactly the
//!   missing set;
//! * a full-retransmission NACK (or, for [`RetxStrategy::FullNoNack`] /
//!   [`RetxStrategy::FullNack`], a timeout) makes the next round resend
//!   `0..D`;
//! * for [`RetxStrategy::GoBackN`] and [`RetxStrategy::Selective`] a
//!   timeout retransmits *only* the round's reliable last packet — that
//!   is what "the last packet is sent reliably" means; the re-solicited
//!   NACK then directs the real retransmission.
//!
//! The sender supports an arbitrary sub-range of the transfer so that
//! [`crate::multiblast`] can reuse it per chunk; acknowledgements use
//! cumulative semantics (`Positive { acked: s }` ⇒ everything `≤ s`
//! arrived).

use std::sync::Arc;

use blast_telemetry::{EventKind, Recorder};
use blast_wire::ack::{AckPayload, Bitmap};
use blast_wire::header::PacketKind;
use blast_wire::packet::{Datagram, DatagramBuilder};

use std::time::Duration;

use crate::api::{Action, ActionSink, CompletionInfo, EngineStats, TimerToken};
use crate::config::{ProtocolConfig, RetxStrategy};
use crate::control::{Pacer, PacerSnapshot, RttEstimator, PACE_TIMER};
use crate::engine::{Engine, Finish};
use crate::error::CoreError;
use crate::pool::{BufferPool, PooledBuf};
use crate::rxbuf::RxBuffer;
use crate::txdata::TxData;

/// The retransmission timer a blast sender uses (pacing uses
/// [`PACE_TIMER`]).
const RETX_TIMER: TimerToken = TimerToken(0);

/// Upper bound on the per-round buffer stash (and on one batched pool
/// checkout) — matches the pool's default free-list bound, so a single
/// giant round cannot drain the free list through one engine.
const MAX_BATCH: usize = 256;

/// Emission cursor of the round in flight: what remains to be put on
/// the wire once the pacer's next burst budget opens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pending {
    /// The round is fully emitted; only timers are outstanding.
    Idle,
    /// Emitting the contiguous span `next..end`.
    Span { next: u32 },
    /// Emitting `pending_set[next..]` (bitmap-NACK rounds).
    Set { next: usize },
}

/// Blast sender for a contiguous range of a transfer.
#[derive(Debug)]
pub struct BlastSender {
    transfer_id: u32,
    tx: TxData,
    builder: DatagramBuilder,
    /// Retransmission-timeout source: fixed `Tr` or Jacobson/Karn.
    rto: RttEstimator,
    pacer: Pacer,
    max_retries: u32,
    strategy: RetxStrategy,
    /// First sequence this sender is responsible for.
    first: u32,
    /// One past the last sequence this sender is responsible for.
    end: u32,
    /// The reliable (LAST-flagged) packet of the current round.
    reliable_seq: u32,
    /// Retransmission rounds consumed (timeouts + NACK rounds).
    rounds_used: u32,
    /// Driver clock (see [`Engine::set_now`]).
    now: Duration,
    /// When the current round's soliciting tail went out — `Some` only
    /// while an RTT sample off its acknowledgement would be unambiguous
    /// under Karn's rule (the tail transmitted exactly once, in a round
    /// that retransmitted nothing).
    solicit_sent: Option<Duration>,
    /// When the round in flight began emitting: the delivery-rate
    /// sample's interval origin (packets acked over the time from first
    /// offer to status report — pacing gaps included, because data not
    /// yet offered cannot have been delivered).
    round_started_at: Duration,
    /// Packets the round in flight solicits.
    round_size: u32,
    /// The round could not fill even one burst: its delivery sample
    /// measures the application's supply, not the path (excluded from
    /// the estimator's rate window).
    round_app_limited: bool,
    /// Paced-emission cursor for the round in flight.
    pending: Pending,
    /// Storage behind [`Pending::Set`], reused across rounds.
    pending_set: Vec<u32>,
    /// Batched pool checkouts for the burst being emitted (one pool
    /// lock per burst instead of one per packet).
    stash: Vec<PooledBuf>,
    pool: BufferPool,
    /// Flight recorder, when attached; events stamp with `self.now`.
    recorder: Option<Recorder>,
    stats: EngineStats,
    finish: Finish,
}

/// What a NACK asks the sender to retransmit.  Contiguous answers stay
/// as ranges so the steady paths (full retransmission, go-back-n) never
/// materialise a `Vec` of sequence numbers; only a selective bitmap
/// needs an explicit set, staged in the sender's reused `pending_set`.
enum Resend {
    /// Retransmit `first..end` of the sender's range.
    Span { first: u32 },
    /// Retransmit exactly the set staged in `pending_set` (bitmap NACK).
    Set,
    /// Nothing actionable: re-solicit with the reliable tail.
    Resolicit,
}

impl BlastSender {
    /// Create a sender blasting all of `data` on `transfer_id`.
    pub fn new(transfer_id: u32, data: Arc<[u8]>, config: &ProtocolConfig) -> Self {
        let tx = TxData::new(data, config.packet_payload);
        let end = tx.total_packets();
        Self::for_range(transfer_id, tx, config, 0, end, false)
    }

    /// Create a sender for packets `first..end` of `data` (multi-blast
    /// chunks).  `multiblast` stamps the MULTIBLAST flag on packets.
    pub(crate) fn for_range(
        transfer_id: u32,
        tx: TxData,
        config: &ProtocolConfig,
        first: u32,
        end: u32,
        multiblast: bool,
    ) -> Self {
        assert!(
            first < end && end <= tx.total_packets(),
            "invalid blast range"
        );
        let span = (end - first) as usize;
        BlastSender {
            transfer_id,
            tx,
            builder: DatagramBuilder::new(transfer_id)
                .kernel(config.kernel_flag)
                .multiblast(multiblast),
            rto: RttEstimator::new(&config.timeout),
            pacer: Pacer::new(config.pacing),
            max_retries: config.max_retries,
            strategy: config.strategy,
            first,
            end,
            reliable_seq: end - 1,
            rounds_used: 0,
            now: Duration::ZERO,
            solicit_sent: None,
            round_started_at: Duration::ZERO,
            round_size: 0,
            round_app_limited: false,
            pending: Pending::Idle,
            pending_set: Vec::new(),
            // Sized up front so steady-state bursts never grow it (the
            // zero-allocation property of the packet loop).
            stash: Vec::with_capacity(span.min(MAX_BATCH)),
            pool: config.pool.clone(),
            recorder: None,
            stats: EngineStats::default(),
            finish: Finish::default(),
        }
    }

    /// One flight-recorder event at the engine's sans-I/O clock; a
    /// no-op (one branch) when no recorder is attached.
    fn trace(&self, kind: EventKind, a: u64, b: u64) {
        if let Some(rec) = &self.recorder {
            rec.record_at(self.now, self.transfer_id, kind, a, b);
        }
    }

    /// Trace an AIMD burst transition around a pacer feedback call.
    /// `before` is the burst budget captured before the call.
    fn trace_burst_change(&self, before: u32) {
        if self.recorder.is_none() || !self.pacer.is_adaptive() {
            return;
        }
        let after = self.pacer.burst_budget();
        if after > before {
            self.trace(EventKind::PacerGrow, u64::from(before), u64::from(after));
        } else if after < before {
            self.trace(EventKind::PacerShrink, u64::from(before), u64::from(after));
        }
    }

    /// The strategy this sender retransmits with.
    pub fn strategy(&self) -> RetxStrategy {
        self.strategy
    }

    /// The retransmission timeout currently in force (diagnostics and
    /// the perf harness's RTO-trajectory records).
    pub fn current_rto(&self) -> Duration {
        self.rto.rto()
    }

    /// The smoothed round-trip estimate, once a sample has been taken.
    pub fn srtt(&self) -> Option<Duration> {
        self.rto.srtt()
    }

    /// Snapshot the RTT estimator (multi-blast carries it across
    /// chunks so later chunks inherit earlier chunks' samples).
    pub(crate) fn estimator(&self) -> &RttEstimator {
        &self.rto
    }

    /// Replace the RTT estimator (the other half of the multi-blast
    /// carry-over).
    pub(crate) fn adopt_estimator(&mut self, estimator: RttEstimator) {
        self.rto = estimator;
    }

    /// Snapshot the pacer (multi-blast carries it across chunks so the
    /// AIMD burst size keeps adapting over the whole transfer).
    pub(crate) fn pacer(&self) -> &Pacer {
        &self.pacer
    }

    /// Replace the pacer (the other half of the carry-over).
    pub(crate) fn adopt_pacer(&mut self, pacer: Pacer) {
        self.pacer = pacer;
    }

    /// The AIMD pacing state, when pacing is enabled.
    pub fn pacing_snapshot(&self) -> Option<PacerSnapshot> {
        self.pacer.enabled().then(|| self.pacer.snapshot())
    }

    fn transmit_one(&mut self, seq: u32, last: bool, sink: &mut dyn ActionSink) {
        let payload = self.tx.payload_of(seq);
        let len = blast_wire::HEADER_LEN + payload.len();
        // Bursts pre-checkout their buffers in one batch (`emit_burst`);
        // stragglers — the re-solicited tail, oversized rounds — fall
        // back to the per-packet path.
        let mut buf = match self.stash.pop() {
            Some(buf) => buf,
            None => self.pool.checkout_sized(len),
        };
        buf.resize(len, 0);
        let len = self
            .builder
            .build_data(
                &mut buf,
                seq,
                self.tx.total_packets(),
                self.tx.offset_of(seq) as u32,
                payload,
                self.rounds_used.min(u16::MAX as u32) as u16,
                last,
            )
            .expect("buffer sized for payload");
        buf.truncate(len);
        self.stats.data_packets_sent += 1;
        if self.rounds_used > 0 {
            self.stats.data_packets_retransmitted += 1;
        }
        sink.push_action(Action::Transmit(buf));
    }

    /// Packets of the round in flight not yet emitted.
    fn pending_len(&self) -> usize {
        match self.pending {
            Pending::Idle => 0,
            Pending::Span { next } => (self.end - next) as usize,
            Pending::Set { next } => self.pending_set.len() - next,
        }
    }

    /// Emit up to one pacer burst of the pending round.  Between bursts
    /// the engine arms [`PACE_TIMER`]; once the round's reliable tail
    /// is on the wire it arms the retransmission timer at the current
    /// RTO and records the Karn solicitation timestamp.
    fn emit_burst(&mut self, sink: &mut dyn ActionSink) {
        let remaining = self.pending_len();
        debug_assert!(remaining > 0, "emit_burst on an idle round");
        let n = remaining.min(self.pacer.burst_budget() as usize);
        // One pool lock covers the whole burst.
        let fresh_before = self
            .recorder
            .is_some()
            .then(|| self.pool.fresh_allocations());
        self.pool.checkout_many(n.min(MAX_BATCH), &mut self.stash);
        if let Some(before) = fresh_before {
            let fresh = self.pool.fresh_allocations();
            if fresh > before {
                self.trace(EventKind::PoolExhausted, fresh, n as u64);
            }
        }
        match self.pending {
            Pending::Idle => unreachable!("pending_len > 0"),
            Pending::Span { next } => {
                for seq in next..next + n as u32 {
                    self.transmit_one(seq, seq == self.reliable_seq, sink);
                }
                self.pending = Pending::Span {
                    next: next + n as u32,
                };
            }
            Pending::Set { next } => {
                for i in next..next + n {
                    let seq = self.pending_set[i];
                    self.transmit_one(seq, seq == self.reliable_seq, sink);
                }
                self.pending = Pending::Set { next: next + n };
            }
        }
        if self.pending_len() == 0 {
            self.pending = Pending::Idle;
            // Karn: an acknowledgement solicited by this tail measures a
            // true round trip only if nothing in the round was a
            // retransmission.
            self.solicit_sent = (self.rounds_used == 0).then_some(self.now);
            sink.push_action(Action::SetTimer {
                token: RETX_TIMER,
                after: self.rto.rto(),
            });
        } else {
            sink.push_action(Action::SetTimer {
                token: PACE_TIMER,
                after: self.pacer.gap(),
            });
        }
    }

    /// Start emitting a freshly-staged round (the cursor in
    /// `self.pending`).  A round that spans multiple bursts first
    /// cancels the previous round's retransmission timer — it is re-armed
    /// when the tail finally goes out, so a paced round can never be
    /// interrupted by the old deadline.
    fn begin_round(&mut self, sink: &mut dyn ActionSink) {
        self.trace(
            EventKind::RoundStart,
            u64::from(self.rounds_used),
            self.pending_len() as u64,
        );
        self.round_started_at = self.now;
        self.round_size = self.pending_len() as u32;
        self.round_app_limited = (self.round_size as u64) < u64::from(self.pacer.burst_budget());
        if self.pending_len() > self.pacer.burst_budget() as usize {
            sink.push_action(Action::CancelTimer { token: RETX_TIMER });
        }
        self.emit_burst(sink);
    }

    /// Blast out the contiguous span `first..end` — the allocation-free
    /// fast path used by round 0 and every non-bitmap retransmission.
    fn send_span(&mut self, first: u32, sink: &mut dyn ActionSink) {
        debug_assert!(first < self.end);
        self.reliable_seq = self.end - 1;
        self.pending = Pending::Span { next: first };
        self.begin_round(sink);
    }

    /// Blast out the explicit set staged in `pending_set` (ordered);
    /// its final member is the round's reliable packet.
    fn send_set_round(&mut self, sink: &mut dyn ActionSink) {
        debug_assert!(!self.pending_set.is_empty());
        self.reliable_seq = *self.pending_set.last().expect("non-empty round");
        self.pending = Pending::Set { next: 0 };
        self.begin_round(sink);
    }

    /// Retransmit only the reliable tail to re-solicit a status report.
    /// The retransmitted tail makes the next acknowledgement ambiguous
    /// (Karn), so the solicitation timestamp is cleared.
    fn resolicit(&mut self, sink: &mut dyn ActionSink) {
        // A re-solicitation supersedes any round still mid-emission: a
        // NACK can arrive in a paced round's inter-burst gap and resolve
        // to `Resolicit` (nonsense range, empty bitmap) after
        // `resend_set` has already restaged `pending_set` — the old
        // cursor must not survive for a stale pace deadline to resume.
        self.pending = Pending::Idle;
        // A re-solicitation is a one-packet round of its own, so the
        // trace's begin/end spans stay balanced.
        self.trace(EventKind::RoundStart, u64::from(self.rounds_used), 1);
        let seq = self.reliable_seq;
        self.solicit_sent = None;
        self.transmit_one(seq, true, sink);
        sink.push_action(Action::SetTimer {
            token: RETX_TIMER,
            after: self.rto.rto(),
        });
    }

    /// Take the Karn-valid RTT and delivery-rate samples for an
    /// arriving status report, if the soliciting tail is still
    /// unambiguous.  `delivered` is how many of the round's packets the
    /// report acknowledges.
    fn sample_rtt(&mut self, delivered: u32) {
        if let Some(sent) = self.solicit_sent.take() {
            let sample = self.now.saturating_sub(sent);
            self.rto.sample(sample);
            if self.recorder.is_some() {
                let srtt = self.rto.srtt().unwrap_or_default();
                self.trace(
                    EventKind::RttSample,
                    sample.as_nanos() as u64,
                    srtt.as_nanos() as u64,
                );
            }
            self.sample_rate(delivered);
        } else {
            // The solicitation window was poisoned (retransmitted tail
            // or timeout): Karn's rule rejects this report's sample.
            self.trace(EventKind::KarnReject, u64::from(self.rounds_used), 0);
        }
    }

    /// Feed the pacer one delivery-rate sample: `delivered` packets
    /// acknowledged over the time since the round began emitting.
    /// Reached only through a Karn-valid solicitation, so the pairing
    /// is unambiguous.
    fn sample_rate(&mut self, delivered: u32) {
        let interval = self.now.saturating_sub(self.round_started_at);
        if delivered == 0 || interval.is_zero() {
            return;
        }
        let bytes = u64::from(delivered) * self.tx.payload_of(self.first).len() as u64;
        self.pacer
            .on_rate_sample(delivered, bytes, interval, self.round_app_limited);
        if self.recorder.is_some() {
            let est = self.pacer.estimator();
            let sample_bps = bytes as f64 / interval.as_secs_f64();
            self.trace(
                EventKind::RateSample,
                sample_bps as u64,
                est.max_rate_bps() as u64,
            );
            if self.pacer.is_rate_based() {
                let min_rtt = est.min_rtt().unwrap_or_default();
                self.trace(
                    EventKind::PaceTarget,
                    u64::from(self.pacer.burst_budget()),
                    min_rtt.as_nanos() as u64,
                );
            }
        }
    }

    /// Consume one unit of retransmission budget; completes with failure
    /// and returns `false` when exhausted.
    fn charge_round(&mut self, sink: &mut dyn ActionSink) -> bool {
        if self.rounds_used >= self.max_retries {
            let stats = self.stats;
            self.finish.complete(
                sink,
                CompletionInfo::failure(
                    CoreError::RetriesExhausted {
                        retries: self.max_retries,
                    },
                    stats,
                ),
            );
            return false;
        }
        self.rounds_used += 1;
        self.stats.retransmission_rounds += 1;
        self.trace(EventKind::RetxRound, u64::from(self.rounds_used), 0);
        true
    }

    /// How many of the round's packets a NACK still acknowledges as
    /// delivered (the delivery-rate sample's numerator).  Conservative:
    /// anything the report leaves unaccounted for counts as missing.
    fn delivered_of_round(&self, ack: &AckPayload) -> u32 {
        match ack {
            AckPayload::Positive { .. } => self.round_size,
            // A full-retransmission NACK reports nothing about what
            // arrived; no delivery information.
            AckPayload::NackFull => 0,
            AckPayload::NackFirstMissing { first_missing } => first_missing
                .saturating_sub(self.first)
                .min(self.round_size),
            AckPayload::NackBitmap(bm) => {
                let horizon = bm.base().saturating_add(u32::from(bm.nbits()));
                let in_range = bm
                    .missing()
                    .filter(|&s| s >= self.first && s < self.end)
                    .count() as u32;
                let beyond = self.end.saturating_sub(horizon.max(self.first));
                self.round_size.saturating_sub(in_range + beyond)
            }
        }
    }

    /// Packets to resend for a NACK, per strategy and NACK payload.  A
    /// bitmap NACK stages its explicit set into the reused
    /// `pending_set` storage.
    fn resend_set(&mut self, ack: &AckPayload) -> Option<Resend> {
        match ack {
            AckPayload::Positive { .. } => None,
            AckPayload::NackFull => Some(Resend::Span { first: self.first }),
            AckPayload::NackFirstMissing { first_missing } => {
                if *first_missing >= self.end {
                    // Nonsense NACK (beyond our range): re-solicit.
                    Some(Resend::Resolicit)
                } else {
                    Some(Resend::Span {
                        first: *first_missing,
                    })
                }
            }
            AckPayload::NackBitmap(bm) => {
                self.pending_set.clear();
                self.pending_set
                    .extend(bm.missing().filter(|&s| s < self.end));
                // Anything beyond the bitmap's horizon is unreported;
                // conservatively resend it (empty for transfers that fit
                // in one bitmap, i.e. ≤ Bitmap::MAX_BITS packets).
                let horizon = bm.base() + u32::from(bm.nbits());
                self.pending_set.extend(horizon.max(self.first)..self.end);
                if self.pending_set.is_empty() {
                    // NACK with nothing missing in range: re-solicit.
                    Some(Resend::Resolicit)
                } else {
                    Some(Resend::Set)
                }
            }
        }
    }
}

impl Engine for BlastSender {
    fn start(&mut self, sink: &mut dyn ActionSink) {
        let first = self.first;
        self.send_span(first, sink);
    }

    fn set_now(&mut self, now: Duration) {
        self.now = now;
    }

    fn on_datagram(&mut self, dgram: &Datagram<'_>, sink: &mut dyn ActionSink) {
        if self.finish.is_finished() || dgram.kind != PacketKind::Ack {
            return;
        }
        let Some(ack) = &dgram.ack else { return };
        self.stats.acks_received += 1;
        match ack {
            AckPayload::Positive { acked } => {
                if *acked + 1 >= self.end {
                    self.sample_rtt(self.round_size);
                    // AIMD: the whole range was acknowledged in one
                    // report — a clean round, grow the burst.
                    let burst_before = self.pacer.burst_budget();
                    self.pacer.on_clean_round();
                    self.trace_burst_change(burst_before);
                    self.trace(EventKind::RoundEnd, u64::from(self.rounds_used), 0);
                    self.pending = Pending::Idle;
                    sink.push_action(Action::CancelTimer { token: RETX_TIMER });
                    sink.push_action(Action::CancelTimer { token: PACE_TIMER });
                    let stats = self.stats;
                    let bytes = self.tx.len();
                    self.finish
                        .complete(sink, CompletionInfo::success(bytes, stats));
                }
                // A positive ack below our range end is stale
                // (an earlier chunk's ack); keep waiting.
            }
            nack => {
                // The status report answers our soliciting tail: a valid
                // round-trip measurement even when it asks for more data.
                // Delivery-rate-wise the report also says how much of the
                // round *did* land — partial rounds are samples too.
                let delivered = self.delivered_of_round(nack);
                self.sample_rtt(delivered);
                // AIMD: any NACK means the receiver missed packets —
                // shrink the burst before retransmitting.
                let burst_before = self.pacer.burst_budget();
                self.pacer.on_loss();
                self.trace_burst_change(burst_before);
                self.trace(EventKind::RoundEnd, u64::from(self.rounds_used), 1);
                if let Some(resend) = self.resend_set(nack) {
                    if self.recorder.is_some() {
                        let missing = match &resend {
                            Resend::Span { first } => u64::from(self.end - *first),
                            Resend::Set => self.pending_set.len() as u64,
                            Resend::Resolicit => 0,
                        };
                        self.trace(
                            EventKind::NackReceived,
                            u64::from(self.rounds_used),
                            missing,
                        );
                    }
                    if self.charge_round(sink) {
                        match resend {
                            Resend::Span { first } => self.send_span(first, sink),
                            Resend::Set => self.send_set_round(sink),
                            Resend::Resolicit => self.resolicit(sink),
                        }
                    }
                }
            }
        }
    }

    fn on_timer(&mut self, token: TimerToken, sink: &mut dyn ActionSink) {
        if self.finish.is_finished() {
            return;
        }
        if token == PACE_TIMER {
            // The gap between bursts of a paced round elapsed; a stale
            // pace deadline from a superseded round is inert.
            if self.pending != Pending::Idle {
                self.emit_burst(sink);
            }
            return;
        }
        if token != RETX_TIMER || self.pending != Pending::Idle {
            // `begin_round` cancels the retransmission deadline for any
            // multi-burst round, so an expiry mid-round is stale.
            return;
        }
        self.stats.timeouts += 1;
        // Karn: double the RTO and poison the sample window — whatever
        // answer eventually arrives is ambiguous.  The timeout is also
        // the strongest loss signal the engine has: AIMD shrink.
        let rto_before = self.rto.rto();
        self.rto.backoff();
        self.trace(
            EventKind::RtoBackoff,
            rto_before.as_nanos() as u64,
            self.rto.rto().as_nanos() as u64,
        );
        let burst_before = self.pacer.burst_budget();
        self.pacer.on_loss();
        self.trace_burst_change(burst_before);
        self.trace(EventKind::RoundEnd, u64::from(self.rounds_used), 2);
        self.solicit_sent = None;
        if !self.charge_round(sink) {
            return;
        }
        match self.strategy {
            // §3.1.2 / §3.2.2: "it retransmits the whole sequence".
            RetxStrategy::FullNoNack | RetxStrategy::FullNack => {
                let first = self.first;
                self.send_span(first, sink);
            }
            // §3.2.3: only the reliable last packet is retransmitted
            // periodically; the NACK it solicits directs the rest.
            RetxStrategy::GoBackN | RetxStrategy::Selective => self.resolicit(sink),
        }
    }

    fn is_finished(&self) -> bool {
        self.finish.is_finished()
    }

    fn stats(&self) -> EngineStats {
        self.stats
    }

    fn transfer_id(&self) -> u32 {
        self.transfer_id
    }

    fn pacing_snapshot(&self) -> Option<PacerSnapshot> {
        BlastSender::pacing_snapshot(self)
    }

    fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = Some(recorder);
    }
}

/// Blast receiver: places data packets into the pre-allocated buffer and
/// answers each round's reliable packet with the strategy's status
/// report.
#[derive(Debug)]
pub struct BlastReceiver {
    transfer_id: u32,
    rx: RxBuffer,
    builder: DatagramBuilder,
    strategy: RetxStrategy,
    /// Highest sequence number ever seen — the horizon up to which
    /// status reports are computed.  Cumulative-ack semantics for
    /// multi-blast fall out of this: a chunk's reliable packet raises
    /// the horizon to the chunk end, and the report covers everything
    /// up to it.
    horizon: Option<u32>,
    pool: BufferPool,
    stats: EngineStats,
    finish: Finish,
    now: Duration,
    recorder: Option<Recorder>,
}

impl BlastReceiver {
    /// Create a receiver expecting `bytes` bytes on `transfer_id`.
    pub fn new(transfer_id: u32, bytes: usize, config: &ProtocolConfig) -> Self {
        BlastReceiver {
            transfer_id,
            rx: RxBuffer::new(bytes, config.packet_payload),
            builder: DatagramBuilder::new(transfer_id).kernel(config.kernel_flag),
            strategy: config.strategy,
            horizon: None,
            pool: config.pool.clone(),
            stats: EngineStats::default(),
            finish: Finish::default(),
            now: Duration::ZERO,
            recorder: None,
        }
    }

    /// The received bytes (zero-filled holes until complete).
    pub fn data(&self) -> &[u8] {
        self.rx.data()
    }

    /// Consume the engine, returning the received data.
    pub fn into_data(self) -> Vec<u8> {
        self.rx.into_data()
    }

    /// Packets received so far (diagnostics).
    pub fn received_packets(&self) -> u32 {
        self.rx.received_packets()
    }

    fn trace(&self, kind: EventKind, a: u64, b: u64) {
        if let Some(rec) = &self.recorder {
            rec.record_at(self.now, self.transfer_id, kind, a, b);
        }
    }

    fn send_status(&mut self, sink: &mut dyn ActionSink) {
        let upto = match self.horizon {
            Some(h) => h,
            None => return,
        };
        let total = self.rx.total_packets();
        let report = match self.rx.first_missing_upto(upto) {
            None => AckPayload::Positive { acked: upto },
            Some(first_missing) => match self.strategy {
                // Strategy 1: stay silent; the sender's timeout drives
                // full retransmission.
                RetxStrategy::FullNoNack => return,
                RetxStrategy::FullNack => AckPayload::NackFull,
                RetxStrategy::GoBackN => AckPayload::NackFirstMissing { first_missing },
                RetxStrategy::Selective => {
                    let bm = self
                        .rx
                        .missing_bitmap_upto(upto)
                        .expect("missing bitmap exists when a packet is missing");
                    AckPayload::NackBitmap(bm)
                }
            },
        };
        let is_nack = report.is_nack();
        if self.recorder.is_some() {
            // Holes below the horizon, counted exactly when the bitmap
            // is already in hand and approximated otherwise.
            let missing = match &report {
                AckPayload::NackBitmap(bm) => bm.missing().filter(|&s| s <= upto).count() as u64,
                AckPayload::Positive { .. } => 0,
                _ => (u64::from(upto) + 1).saturating_sub(u64::from(self.rx.received_packets())),
            };
            self.trace(EventKind::StatusSend, u64::from(!is_nack), missing);
        }
        let mut buf = self
            .pool
            .checkout_sized(blast_wire::HEADER_LEN + report.encoded_len());
        let len = self
            .builder
            .build_ack(&mut buf, total, &report)
            .expect("ack fits");
        buf.truncate(len);
        self.stats.acks_sent += 1;
        if is_nack {
            self.stats.nacks_sent += 1;
        }
        sink.push_action(Action::Transmit(buf));
    }
}

impl Engine for BlastReceiver {
    fn start(&mut self, _sink: &mut dyn ActionSink) {
        // Passive: buffers were allocated in `new`, per the paper.
    }

    fn set_now(&mut self, now: Duration) {
        self.now = now;
    }

    fn on_datagram(&mut self, dgram: &Datagram<'_>, sink: &mut dyn ActionSink) {
        match dgram.kind {
            PacketKind::Data => {}
            PacketKind::Cancel => {
                let stats = self.stats;
                self.finish
                    .complete(sink, CompletionInfo::failure(CoreError::Cancelled, stats));
                return;
            }
            _ => return,
        }
        match self
            .rx
            .place(dgram.seq, dgram.offset as usize, dgram.payload)
        {
            Ok(true) => self.stats.data_packets_received += 1,
            Ok(false) => self.stats.duplicate_packets_received += 1,
            Err(e) => {
                let stats = self.stats;
                self.finish
                    .complete(sink, CompletionInfo::failure(e, stats));
                return;
            }
        }
        self.horizon = Some(self.horizon.map_or(dgram.seq, |h| h.max(dgram.seq)));
        // Only the round's reliable packet solicits a status report —
        // that is the whole point of the blast protocol: one ack (or
        // NACK) per round instead of one per packet.
        if dgram.is_last() {
            self.send_status(sink);
        }
        if self.rx.is_complete() {
            let stats = self.stats;
            let bytes = self.rx.len();
            self.finish
                .complete(sink, CompletionInfo::success(bytes, stats));
        }
    }

    fn on_timer(&mut self, _token: TimerToken, _sink: &mut dyn ActionSink) {}

    fn is_finished(&self) -> bool {
        self.finish.is_finished()
    }

    fn stats(&self) -> EngineStats {
        self.stats
    }

    fn transfer_id(&self) -> u32 {
        self.transfer_id
    }

    fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = Some(recorder);
    }

    fn received_data(&self) -> Option<&[u8]> {
        Some(self.rx.data())
    }
}

/// Compute the resend set a bitmap NACK implies — exposed for tests and
/// for the analytic Monte-Carlo model, which replays strategy behaviour
/// without engines.
pub fn bitmap_resend_set(bm: &Bitmap, range_end: u32) -> Vec<u32> {
    let mut set: Vec<u32> = bm.missing().filter(|&s| s < range_end).collect();
    set.extend((bm.base() + u32::from(bm.nbits())).min(range_end)..range_end);
    set
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(strategy: RetxStrategy) -> ProtocolConfig {
        ProtocolConfig::default().with_strategy(strategy)
    }

    fn data(n: usize) -> Arc<[u8]> {
        (0..n)
            .map(|i| (i * 13 % 251) as u8)
            .collect::<Vec<u8>>()
            .into()
    }

    fn feed(engine: &mut dyn Engine, packet: &[u8]) -> Vec<Action> {
        let d = Datagram::parse(packet).unwrap();
        let mut out = Vec::new();
        engine.on_datagram(&d, &mut out);
        out
    }

    fn transmits(actions: &[Action]) -> Vec<Vec<u8>> {
        actions
            .iter()
            .filter_map(|a| a.as_transmit().map(<[u8]>::to_vec))
            .collect()
    }

    #[test]
    fn round_zero_blasts_everything_with_one_reliable_tail() {
        let cfg = config(RetxStrategy::GoBackN);
        let mut s = BlastSender::new(1, data(8 * 1024), &cfg);
        let mut actions = Vec::new();
        s.start(&mut actions);
        let pkts = transmits(&actions);
        assert_eq!(pkts.len(), 8);
        for (i, p) in pkts.iter().enumerate() {
            let d = Datagram::parse(p).unwrap();
            assert_eq!(d.seq, i as u32);
            assert_eq!(d.is_last(), i == 7, "only the tail is LAST");
            assert_eq!(d.is_reliable(), i == 7, "only the tail is RELIABLE");
        }
        // Exactly one timer, armed after the blast.
        let timers = actions
            .iter()
            .filter(|a| matches!(a, Action::SetTimer { .. }))
            .count();
        assert_eq!(timers, 1);
    }

    #[test]
    fn error_free_blast_single_ack() {
        for strategy in RetxStrategy::ALL {
            let cfg = config(strategy);
            let payload = data(8 * 1024);
            let mut s = BlastSender::new(1, payload.clone(), &cfg);
            let mut r = BlastReceiver::new(1, payload.len(), &cfg);
            let mut actions = Vec::new();
            s.start(&mut actions);
            let mut acks = Vec::new();
            for p in transmits(&actions) {
                let out = feed(&mut r, &p);
                acks.extend(transmits(&out));
            }
            assert_eq!(acks.len(), 1, "{strategy}: blast uses a single ack");
            assert!(r.is_finished());
            assert_eq!(r.data(), &payload[..]);
            feed(&mut s, &acks[0]);
            assert!(s.is_finished(), "{strategy}");
            assert_eq!(s.stats().data_packets_sent, 8);
            assert_eq!(s.stats().data_packets_retransmitted, 0);
            assert_eq!(r.stats().acks_sent, 1);
            assert_eq!(r.stats().nacks_sent, 0);
        }
    }

    /// Deliver `pkts` to the receiver, dropping the sequences in `drop`.
    fn deliver_except(r: &mut BlastReceiver, pkts: &[Vec<u8>], drop: &[u32]) -> Vec<Vec<u8>> {
        let mut acks = Vec::new();
        for p in pkts {
            let d = Datagram::parse(p).unwrap();
            if drop.contains(&d.seq) {
                continue;
            }
            let out = feed(r, p);
            acks.extend(transmits(&out));
        }
        acks
    }

    #[test]
    fn gobackn_nack_names_first_missing_and_sender_goes_back() {
        let cfg = config(RetxStrategy::GoBackN);
        let payload = data(8 * 1024);
        let mut s = BlastSender::new(1, payload.clone(), &cfg);
        let mut r = BlastReceiver::new(1, payload.len(), &cfg);
        let mut actions = Vec::new();
        s.start(&mut actions);
        // Drop packets 3 and 5; the reliable tail (7) arrives.
        let acks = deliver_except(&mut r, &transmits(&actions), &[3, 5]);
        assert_eq!(acks.len(), 1);
        let d = Datagram::parse(&acks[0]).unwrap();
        assert_eq!(
            d.ack,
            Some(AckPayload::NackFirstMissing { first_missing: 3 })
        );

        // Sender resends 3..8 (one materialised packet list serves the
        // whole round — no re-collecting clones of every transmit).
        let out = feed(&mut s, &acks[0]);
        let pkts = transmits(&out);
        let resent: Vec<u32> = pkts
            .iter()
            .map(|p| Datagram::parse(p).unwrap().seq)
            .collect();
        assert_eq!(resent, vec![3, 4, 5, 6, 7]);
        // Tail of the new round is reliable again.
        let d = Datagram::parse(pkts.last().unwrap()).unwrap();
        assert!(d.is_last() && d.is_reliable());
        assert_eq!(d.round, 1);

        // Deliver the new round; receiver completes and acks positively.
        let acks = deliver_except(&mut r, &pkts, &[]);
        assert!(r.is_finished());
        assert_eq!(r.data(), &payload[..]);
        let d = Datagram::parse(&acks[0]).unwrap();
        assert_eq!(d.ack, Some(AckPayload::Positive { acked: 7 }));
        feed(&mut s, &acks[0]);
        assert!(s.is_finished());
        assert_eq!(s.stats().retransmission_rounds, 1);
        assert_eq!(s.stats().data_packets_retransmitted, 5);
    }

    #[test]
    fn selective_nack_resends_exactly_missing() {
        let cfg = config(RetxStrategy::Selective);
        let payload = data(8 * 1024);
        let mut s = BlastSender::new(1, payload.clone(), &cfg);
        let mut r = BlastReceiver::new(1, payload.len(), &cfg);
        let mut actions = Vec::new();
        s.start(&mut actions);
        let acks = deliver_except(&mut r, &transmits(&actions), &[1, 4, 6]);
        let d = Datagram::parse(&acks[0]).unwrap();
        match &d.ack {
            Some(AckPayload::NackBitmap(bm)) => {
                assert_eq!(bm.missing().collect::<Vec<_>>(), vec![1, 4, 6]);
            }
            other => panic!("expected bitmap NACK, got {other:?}"),
        }
        let out = feed(&mut s, &acks[0]);
        let pkts = transmits(&out);
        let resent: Vec<u32> = pkts
            .iter()
            .map(|p| Datagram::parse(p).unwrap().seq)
            .collect();
        assert_eq!(
            resent,
            vec![1, 4, 6],
            "selective resends exactly the missing set"
        );
        // Last of the resent subset carries the solicitation flags.
        let tail = Datagram::parse(pkts.last().unwrap()).unwrap();
        assert_eq!(tail.seq, 6);
        assert!(tail.is_last() && tail.is_reliable());

        let acks = deliver_except(&mut r, &pkts, &[]);
        assert!(r.is_finished());
        assert_eq!(r.data(), &payload[..]);
        feed(&mut s, &acks[0]);
        assert!(s.is_finished());
        assert_eq!(s.stats().data_packets_retransmitted, 3);
    }

    #[test]
    fn full_nack_strategy_resends_all() {
        let cfg = config(RetxStrategy::FullNack);
        let payload = data(4 * 1024);
        let mut s = BlastSender::new(1, payload.clone(), &cfg);
        let mut r = BlastReceiver::new(1, payload.len(), &cfg);
        let mut actions = Vec::new();
        s.start(&mut actions);
        let acks = deliver_except(&mut r, &transmits(&actions), &[0]);
        let d = Datagram::parse(&acks[0]).unwrap();
        assert_eq!(d.ack, Some(AckPayload::NackFull));
        assert_eq!(r.stats().nacks_sent, 1);

        let out = feed(&mut s, &acks[0]);
        let resent: Vec<u32> = transmits(&out)
            .iter()
            .map(|p| Datagram::parse(p).unwrap().seq)
            .collect();
        assert_eq!(
            resent,
            vec![0, 1, 2, 3],
            "full retransmission resends the whole sequence"
        );
    }

    #[test]
    fn full_no_nack_receiver_stays_silent_on_loss() {
        let cfg = config(RetxStrategy::FullNoNack);
        let payload = data(4 * 1024);
        let mut s = BlastSender::new(1, payload.clone(), &cfg);
        let mut r = BlastReceiver::new(1, payload.len(), &cfg);
        let mut actions = Vec::new();
        s.start(&mut actions);
        let acks = deliver_except(&mut r, &transmits(&actions), &[2]);
        assert!(acks.is_empty(), "strategy 1 receiver must not NACK");

        // Sender timeout: full retransmission.
        let mut out = Vec::new();
        s.on_timer(RETX_TIMER, &mut out);
        let pkts = transmits(&out);
        let resent: Vec<u32> = pkts
            .iter()
            .map(|p| Datagram::parse(p).unwrap().seq)
            .collect();
        assert_eq!(resent, vec![0, 1, 2, 3]);
        assert_eq!(s.stats().timeouts, 1);

        let acks = deliver_except(&mut r, &pkts, &[]);
        assert_eq!(acks.len(), 1);
        let d = Datagram::parse(&acks[0]).unwrap();
        assert_eq!(d.ack, Some(AckPayload::Positive { acked: 3 }));
    }

    #[test]
    fn gobackn_timeout_resends_only_the_reliable_tail() {
        let cfg = config(RetxStrategy::GoBackN);
        let mut s = BlastSender::new(1, data(8 * 1024), &cfg);
        let mut actions = Vec::new();
        s.start(&mut actions);
        let mut out = Vec::new();
        s.on_timer(RETX_TIMER, &mut out);
        let resent = transmits(&out);
        assert_eq!(resent.len(), 1, "timeout solicits, it does not re-blast");
        let d = Datagram::parse(&resent[0]).unwrap();
        assert_eq!(d.seq, 7);
        assert!(d.is_last() && d.is_reliable());
    }

    #[test]
    fn lost_tail_then_timeout_then_nack_recovers() {
        // Lose the reliable tail itself: receiver can't report until the
        // re-solicitation arrives.
        let cfg = config(RetxStrategy::GoBackN);
        let payload = data(6 * 1024);
        let mut s = BlastSender::new(1, payload.clone(), &cfg);
        let mut r = BlastReceiver::new(1, payload.len(), &cfg);
        let mut actions = Vec::new();
        s.start(&mut actions);
        let acks = deliver_except(&mut r, &transmits(&actions), &[2, 5]);
        assert!(acks.is_empty(), "tail lost: no report possible");

        let mut out = Vec::new();
        s.on_timer(RETX_TIMER, &mut out);
        let acks = deliver_except(&mut r, &transmits(&out), &[]);
        assert_eq!(acks.len(), 1);
        let d = Datagram::parse(&acks[0]).unwrap();
        assert_eq!(
            d.ack,
            Some(AckPayload::NackFirstMissing { first_missing: 2 })
        );

        let out = feed(&mut s, &acks[0]);
        let acks = deliver_except(&mut r, &transmits(&out), &[]);
        assert!(r.is_finished());
        assert_eq!(r.data(), &payload[..]);
        feed(&mut s, &acks[0]);
        assert!(s.is_finished());
    }

    #[test]
    fn lost_final_ack_recovered_by_resolicitation() {
        let cfg = config(RetxStrategy::GoBackN);
        let payload = data(3 * 1024);
        let mut s = BlastSender::new(1, payload.clone(), &cfg);
        let mut r = BlastReceiver::new(1, payload.len(), &cfg);
        let mut actions = Vec::new();
        s.start(&mut actions);
        // Receiver gets everything; its positive ack is "lost".
        let _lost_acks = deliver_except(&mut r, &transmits(&actions), &[]);
        assert!(r.is_finished());
        // Sender times out, re-solicits with the reliable tail.
        let mut out = Vec::new();
        s.on_timer(RETX_TIMER, &mut out);
        let acks = deliver_except(&mut r, &transmits(&out), &[]);
        assert_eq!(
            acks.len(),
            1,
            "finished receiver must re-ack duplicates of the tail"
        );
        let d = Datagram::parse(&acks[0]).unwrap();
        assert_eq!(d.ack, Some(AckPayload::Positive { acked: 2 }));
        feed(&mut s, &acks[0]);
        assert!(s.is_finished());
    }

    #[test]
    fn retries_exhaust_to_failure() {
        let mut cfg = config(RetxStrategy::FullNoNack);
        cfg.max_retries = 2;
        let mut s = BlastSender::new(1, data(2048), &cfg);
        let mut actions = Vec::new();
        s.start(&mut actions);
        for _ in 0..2 {
            let mut out = Vec::new();
            s.on_timer(RETX_TIMER, &mut out);
            assert!(!s.is_finished());
        }
        let mut out = Vec::new();
        s.on_timer(RETX_TIMER, &mut out);
        assert!(s.is_finished());
        match &out[..] {
            [Action::Complete(info)] => {
                assert!(matches!(
                    info.result,
                    Err(CoreError::RetriesExhausted { retries: 2 })
                ));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn mid_sequence_packets_do_not_trigger_acks() {
        let cfg = config(RetxStrategy::GoBackN);
        let mut r = BlastReceiver::new(1, 8 * 1024, &cfg);
        let b = DatagramBuilder::new(1);
        let mut buf = vec![0u8; 2048];
        let payload = vec![7u8; 1024];
        for seq in 0..7u32 {
            let len = b
                .build_data(&mut buf, seq, 8, seq * 1024, &payload, 0, false)
                .unwrap();
            let out = feed(&mut r, &buf[..len]);
            assert!(
                transmits(&out).is_empty(),
                "no per-packet acks in blast mode"
            );
        }
        assert_eq!(r.stats().acks_sent, 0);
        assert_eq!(r.received_packets(), 7);
    }

    #[test]
    fn positive_ack_below_range_is_ignored() {
        let cfg = config(RetxStrategy::GoBackN);
        let mut s = BlastSender::new(1, data(4 * 1024), &cfg);
        let mut actions = Vec::new();
        s.start(&mut actions);
        let b = DatagramBuilder::new(1);
        let mut buf = vec![0u8; 64];
        let len = b
            .build_ack(&mut buf, 4, &AckPayload::Positive { acked: 1 })
            .unwrap();
        feed(&mut s, &buf[..len]);
        assert!(
            !s.is_finished(),
            "cumulative ack below the range end must not complete"
        );
        let len = b
            .build_ack(&mut buf, 4, &AckPayload::Positive { acked: 3 })
            .unwrap();
        feed(&mut s, &buf[..len]);
        assert!(s.is_finished());
    }

    #[test]
    fn nonsense_nacks_resolicit_not_crash() {
        let cfg = config(RetxStrategy::GoBackN);
        let mut s = BlastSender::new(1, data(4 * 1024), &cfg);
        let mut actions = Vec::new();
        s.start(&mut actions);
        let b = DatagramBuilder::new(1);
        let mut buf = vec![0u8; 64];
        // first_missing beyond the range: sender re-solicits with tail.
        let len = b
            .build_ack(
                &mut buf,
                4,
                &AckPayload::NackFirstMissing { first_missing: 99 },
            )
            .unwrap();
        let out = feed(&mut s, &buf[..len]);
        let resent: Vec<u32> = transmits(&out)
            .iter()
            .map(|p| Datagram::parse(p).unwrap().seq)
            .collect();
        assert_eq!(resent, vec![3]);
    }

    #[test]
    fn nonsense_nack_mid_paced_round_leaves_no_stale_pace_cursor() {
        // Regression: a NACK resolving to `Resolicit` while a paced
        // bitmap round was mid-emission used to leave `pending` aimed
        // at the cleared `pending_set`; the still-armed pace deadline
        // then underflowed `pending_len`.
        let cfg = config(RetxStrategy::Selective).with_pacing(crate::control::PacingConfig::new(
            2,
            std::time::Duration::from_millis(1),
        ));
        let payload = data(8 * 1024);
        let mut s = BlastSender::new(1, payload.clone(), &cfg);
        let mut r = BlastReceiver::new(1, payload.len(), &cfg);
        let mut actions = Vec::new();
        s.start(&mut actions);
        let mut guard = 0;
        while transmits(&actions).len() < 8 {
            s.on_timer(crate::control::PACE_TIMER, &mut actions);
            guard += 1;
            assert!(guard < 16, "round 0 failed to drain");
        }
        // Drop three packets: the bitmap NACK stages a 3-packet round,
        // of which the first burst emits only 2 — mid-emission state.
        let acks = deliver_except(&mut r, &transmits(&actions), &[1, 4, 6]);
        let out = feed(&mut s, &acks[0]);
        assert_eq!(transmits(&out).len(), 2, "paced Set round: first burst");

        // A nonsense NACK (beyond the range) arrives in the gap and
        // resolves to a re-solicitation.
        let b = DatagramBuilder::new(1);
        let mut buf = vec![0u8; 64];
        let len = b
            .build_ack(
                &mut buf,
                8,
                &AckPayload::NackFirstMissing { first_missing: 99 },
            )
            .unwrap();
        let out = feed(&mut s, &buf[..len]);
        assert_eq!(transmits(&out).len(), 1, "re-solicited tail");

        // The superseded round's pace deadline fires: must be inert.
        let mut stale = Vec::new();
        s.on_timer(crate::control::PACE_TIMER, &mut stale);
        assert!(transmits(&stale).is_empty(), "stale pace deadline is inert");

        // And the transfer still converges from here.
        let mut acks = deliver_except(&mut r, &transmits(&out), &[]);
        let mut guard = 0;
        while !s.is_finished() {
            guard += 1;
            assert!(guard < 32, "livelock after stale pace deadline");
            let mut next = Vec::new();
            for a in &acks {
                next.extend(feed(&mut s, a));
            }
            // Drain any paced round fully (idle pace fires are inert).
            for _ in 0..8 {
                s.on_timer(crate::control::PACE_TIMER, &mut next);
            }
            acks = deliver_except(&mut r, &transmits(&next), &[]);
        }
        assert!(r.is_finished());
        assert_eq!(r.data(), &payload[..]);
    }

    #[test]
    fn bitmap_resend_set_includes_beyond_horizon() {
        let bm = Bitmap::from_missing(2, 4, [3, 5]).unwrap(); // covers 2..6
        let set = bitmap_resend_set(&bm, 10);
        assert_eq!(set, vec![3, 5, 6, 7, 8, 9]);
        let set = bitmap_resend_set(&bm, 6);
        assert_eq!(set, vec![3, 5]);
    }

    #[test]
    fn single_packet_blast() {
        let cfg = config(RetxStrategy::GoBackN);
        let payload = data(100);
        let mut s = BlastSender::new(1, payload.clone(), &cfg);
        let mut r = BlastReceiver::new(1, payload.len(), &cfg);
        let mut actions = Vec::new();
        s.start(&mut actions);
        let pkts = transmits(&actions);
        assert_eq!(pkts.len(), 1);
        let d = Datagram::parse(&pkts[0]).unwrap();
        assert!(
            d.is_last() && d.is_reliable(),
            "single packet is the reliable tail"
        );
        let acks = deliver_except(&mut r, &pkts, &[]);
        feed(&mut s, &acks[0]);
        assert!(s.is_finished() && r.is_finished());
        assert_eq!(r.data(), &payload[..]);
    }
}
