//! Ablation A3 — the interface-error regime (§3.1.3).
//!
//! "Our measurements on our local 10 megabit Ethernet indicate an error
//! rate of approximately 1 in 100,000 under normal circumstances.
//! However, when one station transmits at full speed to another
//! workstation, the error rates rise an order of magnitude, to
//! approximately 1 in 10,000.  We assume that most of the additional
//! errors are due to failures in the 3-COM Ethernet interface."
//!
//! The simulator reproduces the mechanism: a receiver whose processor
//! is slightly slower than the sender's (violating the matched-speed
//! assumption) with a small number of interface receive buffers drops
//! frames by *overrun*.  This binary sweeps the speed mismatch and
//! buffer count and reports the effective interface error rate — and
//! shows that go-back-n recovers where the paper's no-NACK strategy
//! would stall on timeouts.

use blast_bench::payload;
use blast_core::blast::{BlastReceiver, BlastSender};
use blast_core::config::{ProtocolConfig, RetxStrategy};
use blast_sim::{SimConfig, Simulator};
use blast_stats::Table;

struct Outcome {
    overruns: u64,
    frames: u64,
    elapsed_ms: f64,
}

fn run(speed: f64, rx_buffers: usize, strategy: RetxStrategy) -> Outcome {
    let data = payload(64 * 1024);
    let sim_cfg = SimConfig::standalone().with_rx_buffers(rx_buffers);
    let mut sim = Simulator::new(sim_cfg);
    let a = sim.add_host("sender");
    let b = sim.add_host_scaled("receiver", speed);
    let mut cfg = ProtocolConfig::default().with_strategy(strategy);
    cfg.max_retries = 1_000_000;
    cfg.timeout = std::time::Duration::from_millis(500).into();
    sim.attach(a, b, Box::new(BlastSender::new(1, data.clone(), &cfg)));
    sim.attach(b, a, Box::new(BlastReceiver::new(1, data.len(), &cfg)));
    let report = sim.run();
    let frames: u64 = report.host_stats.iter().map(|(_, s)| s.frames_sent).sum();
    Outcome {
        overruns: report.total_overruns(),
        frames,
        elapsed_ms: report.elapsed_ms(a, 1).unwrap_or(f64::NAN),
    }
}

fn main() {
    println!("Interface errors from speed mismatch (64 KB blast, standalone constants)\n");
    let mut t = Table::new(&[
        "rx speed",
        "rx buffers",
        "overruns",
        "frames",
        "iface error rate",
        "elapsed (ms)",
    ])
    .with_title("go-back-n blast under receive-interface overruns");
    // The overrun threshold is analytic: the receiver falls behind once
    // its per-packet copy C×scale exceeds the sender's C+T inter-arrival
    // slot, i.e. scale > (C+T)/C = 2.17/1.35 ≈ 1.61.
    for &(speed, bufs) in &[
        (1.0, 1),
        (1.5, 1),
        (1.6, 1),
        (1.65, 1),
        (1.65, 4),
        (1.8, 1),
        (2.0, 1),
        (2.0, 4),
        (3.0, 8),
    ] {
        let o = run(speed, bufs, RetxStrategy::GoBackN);
        t.row(&[
            &format!("{speed:.2}x slower"),
            &bufs.to_string(),
            &o.overruns.to_string(),
            &o.frames.to_string(),
            &format!("{:.3}", o.overruns as f64 / o.frames.max(1) as f64),
            &format!("{:.1}", o.elapsed_ms),
        ]);
    }
    println!("{}", t.render());

    println!("matched speeds (the paper's assumption): zero overruns — the receiver");
    println!("keeps up because its per-packet copy fits within the sender's C+T slot.");
    println!("past the analytic knee at (C+T)/C = 1.61x, a mismatched receiver overruns");
    println!("systematically: the paper's 1e-5 -> 1e-4 error-rate jump 'when one");
    println!("station transmits at full speed'.  More receive buffers absorb bursts");
    println!("but cannot fix a sustained rate mismatch.");
    println!();

    // Strategy comparison under heavy overruns (past the 1.61 knee).
    let mut t = Table::new(&["strategy", "elapsed (ms)", "overruns"])
        .with_title("strategies under a 2x slower receiver, 1 rx buffer");
    for strategy in RetxStrategy::ALL {
        let o = run(2.0, 1, strategy);
        t.row(&[
            &strategy.to_string(),
            &format!("{:.1}", o.elapsed_ms),
            &o.overruns.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "this is exactly why §3.2 wants NACK-directed retransmission: interface\n\
         errors are frequent and systematic, so full-retransmission-on-timeout\n\
         keeps losing the same race; go-back-n resends only the dropped suffix\n\
         at a pace the receiver can absorb."
    );
}
