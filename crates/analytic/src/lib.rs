//! # blast-analytic — the paper's performance model, in code
//!
//! Closed-form elapsed-time and error analysis from *Zwaenepoel,
//! "Protocols for Large Data Transfers over Local Networks"*, SIGCOMM
//! 1985, plus Monte-Carlo estimators for the strategies the paper itself
//! could only simulate (§3.2.3: "we have simulated the procedures by
//! computer").
//!
//! * [`cost`] — the four constants everything reduces to: `C` (data
//!   copy), `Ca` (ack copy), `T` (data transmission), `Ta` (ack
//!   transmission), plus the propagation delay `τ`; with the paper's
//!   calibrated presets (standalone SUN, V-kernel, wire-only).
//! * [`errorfree`] — §2.1.3: `T_SAW`, `T_SW`, `T_B`, `T_dbl`, network
//!   utilization, and the §2.1 "naive" wire-only estimates.
//! * [`geom`] — geometric-distribution helpers underlying §3.1.
//! * [`errors`] — §3.1: failure probabilities and expected elapsed
//!   times under iid packet loss.
//! * [`variance`] — §3.2.1/§3.2.2: closed-form standard deviations for
//!   full retransmission with and without NACK.
//! * [`montecarlo`] — trial-level simulation of all four retransmission
//!   strategies at the paper's level of abstraction (packet Bernoulli
//!   trials + the cost model), for Figure 5/6 reproductions and for
//!   validating the closed forms.
//!
//! All times are `f64` **milliseconds** — the unit the paper reports.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod errorfree;
pub mod errors;
pub mod geom;
pub mod montecarlo;
pub mod variance;

pub use cost::CostModel;
pub use errorfree::ErrorFree;
pub use errors::ExpectedTime;
pub use montecarlo::{McConfig, McResult, Strategy};
