//! Figure 6 — "64 Kilobyte MoveTo: Standard Deviation" of the four
//! retransmission strategies vs the error rate `p_n`.
//!
//! The paper's argument for go-back-n lives in this figure: *expected*
//! times are near-identical across strategies at LAN error rates
//! (Figure 5), but the *standard deviation* differs by orders of
//! magnitude.  Full retransmission without NACK scales with the
//! retransmission interval `T_r`; adding a NACK removes the `T_r`
//! dependence; partial (go-back-n) retransmission shrinks it further;
//! selective retransmission buys only a little more — "given its
//! simplicity, [go-back-n is] the retransmission strategy of choice".
//!
//! Curves: closed forms for strategies 1–2 (§3.2.1/§3.2.2), Monte-Carlo
//! simulation for strategies 3–4 (as in the paper: "we have simulated
//! the procedures by computer"), plus full engine-in-simulator spot
//! checks.

use blast_analytic::montecarlo::{simulate, McConfig, Strategy};
use blast_analytic::variance::StdDev;
use blast_analytic::CostModel;
use blast_bench::{pn_sweep, trials_under_loss, Proto};
use blast_core::config::RetxStrategy;
use blast_stats::Chart;

fn main() {
    let s = StdDev::new(CostModel::vkernel_sun());
    let d = 64u64;
    let t0_d = s.error_free().blast(d); // 172.82 ms

    let mut chart = Chart::new(
        "Figure 6: standard deviation of a 64 KB transfer vs p_n (Tr = To(D))",
        90,
        24,
    )
    .log_x()
    .log_y()
    .labels("p_n", "sigma (ms)");

    // Strategy 1 at two timeouts (the Tr-dependence the figure shows).
    for (name, tr) in [
        ("full, no NACK, Tr=10xTo(D)", 10.0 * t0_d),
        ("full, no NACK, Tr=To(D)", t0_d),
    ] {
        let pts: Vec<(f64, f64)> = pn_sweep()
            .into_iter()
            .map(|p| (p, s.full_no_nack(d, p, tr)))
            .filter(|&(_, y)| y.is_finite() && y > 1e-3)
            .collect();
        chart.series(name, pts);
    }
    // Strategy 2 closed form.
    let pts: Vec<(f64, f64)> = pn_sweep()
        .into_iter()
        .map(|p| (p, s.full_nack(d, p, t0_d)))
        .filter(|&(_, y)| y.is_finite() && y > 1e-3)
        .collect();
    chart.series("full + NACK", pts);
    // Strategies 3 and 4 by Monte Carlo (100k trials per point).
    for (name, strategy) in [
        ("go-back-n (MC)", Strategy::GoBackN),
        ("selective (MC)", Strategy::Selective),
    ] {
        let pts: Vec<(f64, f64)> = pn_sweep()
            .into_iter()
            .map(|p| {
                let cfg = McConfig::paper_default(p)
                    .with_trials(100_000)
                    .with_t_r(t0_d);
                (p, simulate(strategy, &cfg).stddev)
            })
            .filter(|&(_, y)| y.is_finite() && y > 1e-3)
            .collect();
        chart.series(name, pts);
    }
    println!("{}", chart.render());

    // Numeric slice at the paper's interface-error rate.
    println!("sigma at p_n = 1e-4 (the interface-error regime), Tr = To(D):");
    let p = 1e-4;
    println!(
        "  full, no NACK : {:>8.2} ms (closed form)",
        s.full_no_nack(d, p, t0_d)
    );
    println!(
        "  full + NACK   : {:>8.2} ms (closed form)",
        s.full_nack(d, p, t0_d)
    );
    for (name, strategy) in [
        ("go-back-n", Strategy::GoBackN),
        ("selective", Strategy::Selective),
    ] {
        let cfg = McConfig::paper_default(p)
            .with_trials(400_000)
            .with_t_r(t0_d);
        let r = simulate(strategy, &cfg);
        println!("  {name:<14}: {:>8.2} ms (Monte Carlo)", r.stddev);
    }

    // Engine-level spot check: the real protocol engines over the
    // simulated network, 400 seeded trials.
    println!();
    println!("engine-in-simulator spot check at p_n = 1e-3 (400 trials):");
    for strategy in RetxStrategy::ALL {
        let stats = trials_under_loss(Proto::Blast(strategy), 64 * 1024, 1e-3, t0_d, 400, 29);
        println!(
            "  {strategy:<14}: mean {:>7.2} ms, sigma {:>7.2} ms",
            stats.mean(),
            stats.population_stddev()
        );
    }
    println!();
    println!(
        "conclusion (§3.2.4): go-back-n is within a whisker of selective and far\n\
         simpler; full retransmission without NACK has unacceptable variance."
    );
}
