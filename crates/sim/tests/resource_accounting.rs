//! Resource-accounting invariants of the simulator: CPU busy time,
//! frame conservation, medium occupancy and trace consistency must all
//! reconcile exactly — the discrete-event core keeps books that the
//! paper's formulas can be checked against.

use std::sync::Arc;
use std::time::Duration;

use blast_core::blast::{BlastReceiver, BlastSender};
use blast_core::saw::{SawReceiver, SawSender};
use blast_core::ProtocolConfig;
use blast_sim::{Lane, LossModel, SimConfig, SimTime, Simulator};

fn data(n: usize) -> Arc<[u8]> {
    (0..n).map(|i| (i % 233) as u8).collect::<Vec<u8>>().into()
}

fn blast_run(n_kb: usize, sim_cfg: SimConfig) -> blast_sim::SimReport {
    let mut sim = Simulator::new(sim_cfg);
    let a = sim.add_host("sender");
    let b = sim.add_host("receiver");
    let mut cfg = ProtocolConfig::default();
    cfg.timeout = Duration::from_secs(3600).into();
    let payload = data(n_kb * 1024);
    sim.attach(a, b, Box::new(BlastSender::new(1, payload.clone(), &cfg)));
    sim.attach(b, a, Box::new(BlastReceiver::new(1, payload.len(), &cfg)));
    sim.run()
}

#[test]
fn cpu_busy_time_matches_copy_arithmetic() {
    // Error-free 64 KB blast: sender CPU = 64 C + 1 Ca (ack copy-out);
    // receiver CPU = 64 C + 1 Ca (ack copy-in).
    let report = blast_run(64, SimConfig::standalone());
    let expected = Duration::from_nanos(((64.0 * 1.35 + 0.17) * 1e6_f64).round() as u64);
    assert_eq!(report.host_stats[0].1.cpu_busy, expected, "sender");
    assert_eq!(report.host_stats[1].1.cpu_busy, expected, "receiver");
}

#[test]
fn medium_busy_matches_wire_arithmetic() {
    // 64 data transmissions + 1 ack: 64 T + Ta.
    let report = blast_run(64, SimConfig::standalone());
    let expected = Duration::from_nanos(((64.0 * 0.82 + 0.05) * 1e6_f64).round() as u64);
    assert_eq!(report.medium_busy, expected);
}

#[test]
fn frame_conservation_error_free() {
    let report = blast_run(16, SimConfig::standalone());
    let sent: u64 = report.host_stats.iter().map(|(_, h)| h.frames_sent).sum();
    let delivered: u64 = report
        .host_stats
        .iter()
        .map(|(_, h)| h.frames_delivered)
        .sum();
    assert_eq!(sent, 17, "16 data + 1 ack");
    assert_eq!(delivered, 17);
    assert_eq!(report.wire_losses, 0);
    assert_eq!(report.total_overruns(), 0);
    assert_eq!(report.unroutable, 0);
}

#[test]
fn frame_conservation_under_loss() {
    let report = blast_run(
        64,
        SimConfig::standalone().with_loss(LossModel::iid(0.05), 99),
    );
    let sent: u64 = report.host_stats.iter().map(|(_, h)| h.frames_sent).sum();
    let delivered: u64 = report
        .host_stats
        .iter()
        .map(|(_, h)| h.frames_delivered)
        .sum();
    // Every sent frame is delivered, lost in flight, overrun, or still
    // in an rx queue when the run stopped (the final ack ends the run
    // while late retransmissions may sit unconsumed).
    assert!(delivered + report.wire_losses + report.total_overruns() <= sent);
    assert!(sent - (delivered + report.wire_losses + report.total_overruns()) <= 3);
    assert!(report.wire_losses > 0);
}

#[test]
fn trace_events_are_well_formed_and_cover_the_run() {
    let report = blast_run(8, SimConfig::standalone().with_trace());
    assert!(!report.trace.is_empty());
    for e in &report.trace {
        assert!(e.end > e.start, "{e:?}");
        assert!(e.end <= report.end + Duration::ZERO, "{e:?}");
    }
    // Per-lane counts: 9 frames each copied in, transmitted, copied out.
    for lane in [Lane::CpuCopyIn, Lane::Wire, Lane::CpuCopyOut] {
        let count = report.trace.iter().filter(|e| e.lane == lane).count();
        assert_eq!(count, 9, "{lane:?}");
    }
    // Wire events never overlap (the ether is a single resource).
    let mut wires: Vec<(SimTime, SimTime)> = report
        .trace
        .iter()
        .filter(|e| e.lane == Lane::Wire)
        .map(|e| (e.start, e.end))
        .collect();
    wires.sort();
    for w in wires.windows(2) {
        assert!(w[0].1 <= w[1].0, "wire overlap: {w:?}");
    }
}

#[test]
fn cpu_trace_never_overlaps_per_host() {
    let report = blast_run(8, SimConfig::standalone().with_trace());
    for host in 0..2 {
        let mut cpu: Vec<(SimTime, SimTime)> = report
            .trace
            .iter()
            .filter(|e| e.host == host && e.lane != Lane::Wire)
            .map(|e| (e.start, e.end))
            .collect();
        cpu.sort();
        for w in cpu.windows(2) {
            assert!(w[0].1 <= w[1].0, "host {host} CPU overlap: {w:?}");
        }
    }
}

#[test]
fn stop_and_wait_cpu_books() {
    // SAW sender: N data copies in + N ack copies out; receiver: N data
    // copies out + N ack copies in.
    let mut sim = Simulator::new(SimConfig::standalone());
    let a = sim.add_host("s");
    let b = sim.add_host("r");
    let mut cfg = ProtocolConfig::default();
    cfg.timeout = Duration::from_secs(3600).into();
    let payload = data(16 * 1024);
    sim.attach(a, b, Box::new(SawSender::new(1, payload.clone(), &cfg)));
    sim.attach(b, a, Box::new(SawReceiver::new(1, payload.len(), &cfg)));
    let report = sim.run();
    let expected = Duration::from_nanos(((16.0 * (1.35 + 0.17)) * 1e6_f64).round() as u64);
    assert_eq!(report.host_stats[0].1.cpu_busy, expected);
    assert_eq!(report.host_stats[1].1.cpu_busy, expected);
}

#[test]
fn utilization_definition_is_consistent() {
    let report = blast_run(64, SimConfig::standalone());
    let u = report.utilization();
    let manual = report.medium_busy.as_secs_f64() / report.end.as_duration().as_secs_f64();
    assert!((u - manual).abs() < 1e-12);
}

#[test]
fn events_processed_is_reported_and_bounded() {
    let report = blast_run(4, SimConfig::standalone());
    // 5 frames × (CpuDone-tx, TxEnd, Arrive, CpuDone-rx) = 20 events,
    // plus scheduling slack; certainly < 64.
    assert!(report.events_processed >= 20);
    assert!(report.events_processed < 64, "{}", report.events_processed);
}
