//! Push to or pull from a running blast node.
//!
//! ```bash
//! cargo run --release --example node_client -- 127.0.0.1:47611 push greeting 65536
//! cargo run --release --example node_client -- 127.0.0.1:47611 pull demo
//! ```
//!
//! `push <name> <bytes>` stores a deterministic test pattern of the
//! given size under `name`; `pull <name>` fetches a blob and verifies
//! the pattern if it looks like one of ours.  Pair with the
//! `node_server` example.

use std::time::Duration;

use blast_node::Client;

fn pattern(n: usize) -> Vec<u8> {
    (0..n).map(|i| (i % 251) as u8).collect()
}

fn main() -> std::io::Result<()> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let usage = "usage: node_client <addr> push <name> <bytes> | node_client <addr> pull <name>";
    let (addr, op) = match args.as_slice() {
        [addr, rest @ ..] if !rest.is_empty() => (addr.clone(), rest.to_vec()),
        _ => {
            eprintln!("{usage}");
            std::process::exit(2);
        }
    };
    let addr = addr.parse().expect("node address like 127.0.0.1:47611");

    // Transfer ids come from the client's own ephemeral port, so
    // concurrent example runs never collide.
    let mut client = Client::connect(addr)?.timeout(Duration::from_millis(25));

    match op.as_slice() {
        [verb, name, bytes] if verb == "push" => {
            let n: usize = bytes.parse().expect("byte count");
            let data = pattern(n);
            let report = client.push(name, &data)?;
            println!(
                "pushed '{}' ({} bytes) in {:?}: {} data packets ({} retransmitted), {:.1} Mbit/s",
                name,
                n,
                report.elapsed,
                report.stats.data_packets_sent,
                report.stats.data_packets_retransmitted,
                report.goodput_mbps(n),
            );
        }
        [verb, name] if verb == "pull" => {
            let report = client.pull(name)?;
            let n = report.data.len();
            let verified = if report.data == pattern(n) {
                "pattern verified"
            } else {
                "opaque payload"
            };
            println!(
                "pulled '{}' ({} bytes, {}) in {:?}: {:.1} Mbit/s",
                name,
                n,
                verified,
                report.elapsed,
                report.goodput_mbps(n),
            );
        }
        _ => {
            eprintln!("{usage}");
            std::process::exit(2);
        }
    }
    Ok(())
}
