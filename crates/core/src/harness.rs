//! A deterministic virtual-time harness that runs a sender engine
//! against a receiver engine over a configurable lossy channel.
//!
//! This is *not* the performance simulator (`blast-sim` models processor
//! copy costs, interfaces and the Ethernet medium).  The harness exists
//! to test and property-test protocol *correctness*: it gives packets a
//! fixed tiny latency, honours timers in virtual time, and injects
//! losses according to a [`LossPlan`] — deterministic from a seed, so
//! every failure reproduces.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::collections::HashMap;
use std::time::Duration;

use blast_wire::packet::Datagram;

use crate::api::{Action, EngineStats, Outcome, TimerToken};
use crate::engine::Engine;
use crate::error::CoreError;
use crate::pool::PooledBuf;

/// Which end of the channel an event belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Side {
    /// The data source.
    Sender,
    /// The data sink.
    Receiver,
}

impl Side {
    fn other(self) -> Side {
        match self {
            Side::Sender => Side::Receiver,
            Side::Receiver => Side::Sender,
        }
    }
}

/// Loss injection policy for the harness channel.
#[derive(Debug, Clone)]
pub enum LossPlan {
    /// Deliver everything.
    Perfect,
    /// Drop each packet independently with probability
    /// `numerator / denominator` — the paper's iid error model with
    /// `p_n = numerator/denominator`, driven by a deterministic
    /// xorshift generator from `seed`.
    Random {
        /// RNG seed; same seed ⇒ same drop pattern.
        seed: u64,
        /// Loss probability numerator.
        numerator: u32,
        /// Loss probability denominator.
        denominator: u32,
    },
    /// Drop exactly the n-th, m-th, ... packets placed on the wire
    /// (0-based, counting every transmission from either side).
    Script(Vec<u64>),
    /// Two-state Gilbert–Elliott burst-loss model: a hidden Markov
    /// chain alternates between a *good* and a *bad* state, each with
    /// its own iid loss probability.  Loss on a LAN is bursty — a
    /// swamped receiving interface drops packets in runs, not
    /// independently — and this is the classic model for it.  All
    /// probabilities are in parts per million; the chain steps once per
    /// wire packet, then the packet is dropped with the current state's
    /// loss probability.
    GilbertElliott {
        /// RNG seed; same seed ⇒ same state and drop trajectory.
        seed: u64,
        /// P(good → bad) per packet, ppm.
        p_enter_ppm: u32,
        /// P(bad → good) per packet, ppm.
        p_exit_ppm: u32,
        /// Loss probability while in the good state, ppm.
        good_loss_ppm: u32,
        /// Loss probability while in the bad state, ppm.
        bad_loss_ppm: u32,
    },
}

impl LossPlan {
    /// No loss.
    pub fn perfect() -> Self {
        LossPlan::Perfect
    }

    /// iid loss with probability `p halves in 1/denominator` units.
    pub fn random(seed: u64, numerator: u32, denominator: u32) -> Self {
        assert!(denominator > 0 && numerator <= denominator);
        LossPlan::Random {
            seed,
            numerator,
            denominator,
        }
    }

    /// Drop the given wire-sequence numbers.
    pub fn script(drops: impl Into<Vec<u64>>) -> Self {
        LossPlan::Script(drops.into())
    }

    /// Gilbert–Elliott burst loss.  All probabilities in parts per
    /// million (`1_000_000` = certainty).
    pub fn gilbert_elliott(
        seed: u64,
        p_enter_ppm: u32,
        p_exit_ppm: u32,
        good_loss_ppm: u32,
        bad_loss_ppm: u32,
    ) -> Self {
        const PPM: u32 = 1_000_000;
        assert!(
            p_enter_ppm <= PPM && p_exit_ppm <= PPM && good_loss_ppm <= PPM && bad_loss_ppm <= PPM,
            "probabilities are parts per million"
        );
        LossPlan::GilbertElliott {
            seed,
            p_enter_ppm,
            p_exit_ppm,
            good_loss_ppm,
            bad_loss_ppm,
        }
    }
}

/// Internal deterministic RNG (xorshift64*), independent of the `rand`
/// crate so the harness can live in `blast-core` without dependencies.
#[derive(Debug, Clone)]
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        XorShift(seed.max(1))
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum EventKind {
    Deliver {
        to: Side,
        // Stays pooled across the virtual wire: delivering the event
        // returns the buffer to the engines' shared pool.
        packet: PooledBuf,
    },
    Timer {
        side: Side,
        token: TimerToken,
        generation: u64,
    },
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Event {
    at_ns: u64,
    seq: u64, // tie-break for determinism
    kind: EventKind,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at_ns, self.seq).cmp(&(other.at_ns, other.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Errors the harness can report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HarnessError {
    /// Both event queues drained without both engines completing —
    /// a protocol deadlock.
    Deadlock {
        /// Virtual time at which the queue drained.
        at: Duration,
    },
    /// The event budget was exhausted (livelock or pathological loss).
    BudgetExhausted,
    /// An engine completed with a failure.
    TransferFailed(CoreError),
}

impl std::fmt::Display for HarnessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HarnessError::Deadlock { at } => write!(f, "protocol deadlock at {at:?}"),
            HarnessError::BudgetExhausted => write!(f, "event budget exhausted"),
            HarnessError::TransferFailed(e) => write!(f, "transfer failed: {e}"),
        }
    }
}

impl std::error::Error for HarnessError {}

/// Receiver engines that expose the received bytes, so the harness can
/// verify data integrity.
pub trait ReceiverEngine: Engine {
    /// The received bytes (zero-filled holes until complete).
    fn received(&self) -> &[u8];
}

impl ReceiverEngine for crate::saw::SawReceiver {
    fn received(&self) -> &[u8] {
        self.data()
    }
}

impl ReceiverEngine for crate::blast::BlastReceiver {
    fn received(&self) -> &[u8] {
        self.data()
    }
}

/// A single-server bottleneck at the receiving interface: every
/// sender→receiver packet needs `service_ns` of exclusive service, and
/// at most `queue_cap` packets may wait for the server.  Arrivals that
/// find the queue full are lost — the paper's "interface errors",
/// where "packets arrive faster than the receiving interface can move
/// them to memory".
#[derive(Debug, Clone, Copy)]
struct Bottleneck {
    service_ns: u64,
    queue_cap: u64,
    busy_until_ns: u64,
}

/// The virtual-time correctness harness.
pub struct Harness<S: Engine, R: ReceiverEngine> {
    sender: S,
    receiver: R,
    plan: LossPlan,
    rng: XorShift,
    /// Gilbert–Elliott channel state (`true` = bad state).
    ge_bad: bool,
    queue: BinaryHeap<Reverse<Event>>,
    now_ns: u64,
    event_seq: u64,
    /// Current generation per (side, token): a timer event only fires if
    /// its generation is still current (set/cancel bump it).
    timer_gen: HashMap<(Side, TimerToken), u64>,
    /// One-way packet latency.
    latency: Duration,
    /// Optional receiving-interface bottleneck (data direction only).
    bottleneck: Option<Bottleneck>,
    /// Packets placed on the wire so far (index for `LossPlan::Script`).
    pub wire_count: u64,
    /// Packets dropped by the loss plan.
    pub dropped: u64,
    /// Packets lost to bottleneck queue overflow (not counted in
    /// [`Self::dropped`], which is loss-plan drops only).
    pub overflow: u64,
    /// Hard cap on processed events.
    pub max_events: u64,
    sender_done: Option<Result<usize, CoreError>>,
    receiver_done: Option<Result<usize, CoreError>>,
    sender_finish_ns: Option<u64>,
}

impl<S: Engine, R: ReceiverEngine> Harness<S, R> {
    /// Create a harness around a sender/receiver pair.
    pub fn new(sender: S, receiver: R, plan: LossPlan) -> Self {
        let seed = match &plan {
            LossPlan::Random { seed, .. } | LossPlan::GilbertElliott { seed, .. } => *seed,
            _ => 1,
        };
        Harness {
            sender,
            receiver,
            plan,
            rng: XorShift::new(seed),
            ge_bad: false,
            queue: BinaryHeap::new(),
            now_ns: 0,
            event_seq: 0,
            timer_gen: HashMap::new(),
            latency: Duration::from_micros(10), // the paper's τ
            bottleneck: None,
            wire_count: 0,
            dropped: 0,
            overflow: 0,
            max_events: 10_000_000,
            sender_done: None,
            receiver_done: None,
            sender_finish_ns: None,
        }
    }

    /// Override the one-way latency (default 10 µs).
    pub fn with_latency(mut self, latency: Duration) -> Self {
        self.latency = latency;
        self
    }

    /// Put a single-server bottleneck in the data direction: each
    /// sender→receiver packet takes `service` to move into memory, at
    /// most `queue_cap` packets may queue for it, and arrivals beyond
    /// that are silently lost.  A sender that bursts faster than
    /// `1/service` *induces* loss here — which is exactly what
    /// delivery-rate pacing exists to avoid.
    pub fn with_bottleneck(mut self, service: Duration, queue_cap: u32) -> Self {
        assert!(
            !service.is_zero(),
            "bottleneck needs a positive service time"
        );
        self.bottleneck = Some(Bottleneck {
            service_ns: service.as_nanos() as u64,
            queue_cap: u64::from(queue_cap),
            busy_until_ns: 0,
        });
        self
    }

    fn push(&mut self, at_ns: u64, kind: EventKind) {
        let seq = self.event_seq;
        self.event_seq += 1;
        self.queue.push(Reverse(Event { at_ns, seq, kind }));
    }

    fn should_drop(&mut self) -> bool {
        let idx = self.wire_count;
        match &self.plan {
            LossPlan::Perfect => false,
            LossPlan::Random {
                numerator,
                denominator,
                ..
            } => {
                let (n, d) = (*numerator, *denominator);
                (self.rng.next_u64() % u64::from(d)) < u64::from(n)
            }
            LossPlan::Script(drops) => drops.contains(&idx),
            LossPlan::GilbertElliott {
                p_enter_ppm,
                p_exit_ppm,
                good_loss_ppm,
                bad_loss_ppm,
                ..
            } => {
                let (enter, exit, good, bad) =
                    (*p_enter_ppm, *p_exit_ppm, *good_loss_ppm, *bad_loss_ppm);
                const PPM: u64 = 1_000_000;
                let flip = self.rng.next_u64() % PPM;
                self.ge_bad = if self.ge_bad {
                    flip >= u64::from(exit)
                } else {
                    flip < u64::from(enter)
                };
                let loss = if self.ge_bad { bad } else { good };
                (self.rng.next_u64() % PPM) < u64::from(loss)
            }
        }
    }

    /// Drain and execute `actions`, leaving the (emptied) vector's
    /// capacity behind for the caller to reuse.
    fn run_actions(&mut self, side: Side, actions: &mut Vec<Action>) {
        for action in actions.drain(..) {
            match action {
                Action::Transmit(packet) => {
                    let drop = self.should_drop();
                    self.wire_count += 1;
                    if drop {
                        self.dropped += 1;
                        continue;
                    }
                    let mut at = self.now_ns + self.latency.as_nanos() as u64;
                    if side == Side::Sender {
                        if let Some(b) = &mut self.bottleneck {
                            // Transmissions happen in virtual-time order,
                            // so the FIFO queue reduces to one deadline:
                            // the wait at arrival is `start - at`, and a
                            // wait of `queue_cap` service times means the
                            // queue is full.
                            let start = at.max(b.busy_until_ns);
                            if start - at > b.service_ns.saturating_mul(b.queue_cap) {
                                self.overflow += 1;
                                continue;
                            }
                            b.busy_until_ns = start + b.service_ns;
                            at = b.busy_until_ns;
                        }
                    }
                    self.push(
                        at,
                        EventKind::Deliver {
                            to: side.other(),
                            packet,
                        },
                    );
                }
                Action::SetTimer { token, after } => {
                    let generation = self.timer_gen.entry((side, token)).or_insert(0);
                    *generation += 1;
                    let g = *generation;
                    let at = self.now_ns + after.as_nanos() as u64;
                    self.push(
                        at,
                        EventKind::Timer {
                            side,
                            token,
                            generation: g,
                        },
                    );
                }
                Action::CancelTimer { token } => {
                    // Bump the generation: pending events become stale.
                    *self.timer_gen.entry((side, token)).or_insert(0) += 1;
                }
                Action::Complete(info) => match side {
                    Side::Sender => {
                        self.sender_done = Some(info.result.clone());
                        self.sender_finish_ns = Some(self.now_ns);
                    }
                    Side::Receiver => self.receiver_done = Some(info.result.clone()),
                },
            }
        }
    }

    /// Run until both engines complete (success) or fail.
    pub fn run(&mut self) -> Result<Outcome, HarnessError> {
        // One scratch vector serves every engine call: `run_actions`
        // drains it, so its capacity is recycled for the whole run.
        let mut out: Vec<Action> = Vec::new();
        self.sender.set_now(Duration::ZERO);
        self.sender.start(&mut out);
        self.run_actions(Side::Sender, &mut out);
        self.receiver.set_now(Duration::ZERO);
        self.receiver.start(&mut out);
        self.run_actions(Side::Receiver, &mut out);

        let mut processed: u64 = 0;
        while self.sender_done.is_none() || self.receiver_done.is_none() {
            // A failed engine ends the run immediately: its peer may
            // never learn (that is the failure mode being tested).
            if let Some(Err(e)) = &self.sender_done {
                return Err(HarnessError::TransferFailed(e.clone()));
            }
            if let Some(Err(e)) = &self.receiver_done {
                return Err(HarnessError::TransferFailed(e.clone()));
            }
            processed += 1;
            if processed > self.max_events {
                return Err(HarnessError::BudgetExhausted);
            }
            let Some(Reverse(event)) = self.queue.pop() else {
                return Err(HarnessError::Deadlock {
                    at: Duration::from_nanos(self.now_ns),
                });
            };
            self.now_ns = event.at_ns;
            // Engines see the virtual clock before every event — the
            // adaptive RTO's samples are exact in virtual time.
            let now = Duration::from_nanos(self.now_ns);
            match event.kind {
                EventKind::Deliver { to, packet } => {
                    {
                        let Ok(dgram) = Datagram::parse(&packet) else {
                            continue; // corrupt packets are dropped by the wire layer
                        };
                        match to {
                            Side::Sender => {
                                self.sender.set_now(now);
                                self.sender.on_datagram(&dgram, &mut out);
                            }
                            Side::Receiver => {
                                self.receiver.set_now(now);
                                self.receiver.on_datagram(&dgram, &mut out);
                            }
                        }
                    }
                    // The datagram borrow ends above; dropping `packet`
                    // here returns its buffer to the pool before the
                    // emitted actions (which may check new ones out)
                    // run.
                    drop(packet);
                    self.run_actions(to, &mut out);
                }
                EventKind::Timer {
                    side,
                    token,
                    generation,
                } => {
                    if self.timer_gen.get(&(side, token)).copied() != Some(generation) {
                        continue; // re-armed or cancelled
                    }
                    match side {
                        Side::Sender => {
                            self.sender.set_now(now);
                            self.sender.on_timer(token, &mut out);
                        }
                        Side::Receiver => {
                            self.receiver.set_now(now);
                            self.receiver.on_timer(token, &mut out);
                        }
                    }
                    self.run_actions(side, &mut out);
                }
            }
        }

        let sender_result = self.sender_done.clone().expect("loop exit condition");
        let receiver_result = self.receiver_done.clone().expect("loop exit condition");
        match (&sender_result, &receiver_result) {
            (Ok(bytes), Ok(_)) => Ok(Outcome {
                sender: self.sender.stats(),
                receiver: self.receiver.stats(),
                bytes: *bytes,
            }),
            (Err(e), _) => Err(HarnessError::TransferFailed(e.clone())),
            (_, Err(e)) => Err(HarnessError::TransferFailed(e.clone())),
        }
    }

    /// Virtual time at which the sender completed (the paper's "elapsed
    /// time … including the receipt of the last acknowledgement at the
    /// source").
    pub fn sender_elapsed(&self) -> Option<Duration> {
        self.sender_finish_ns.map(Duration::from_nanos)
    }

    /// The receiver's assembled data.
    pub fn received_data(&self) -> &[u8] {
        self.receiver.received()
    }

    /// Borrow the sender engine.
    pub fn sender(&self) -> &S {
        &self.sender
    }

    /// Borrow the receiver engine.
    pub fn receiver(&self) -> &R {
        &self.receiver
    }

    /// Sender + receiver stats snapshot.
    pub fn stats(&self) -> (EngineStats, EngineStats) {
        (self.sender.stats(), self.receiver.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blast::{BlastReceiver, BlastSender};
    use crate::config::{ProtocolConfig, RetxStrategy};
    use crate::multiblast::MultiBlastSender;
    use crate::saw::{SawReceiver, SawSender};
    use crate::window::WindowSender;
    use std::sync::Arc;

    fn data(n: usize) -> Arc<[u8]> {
        (0..n)
            .map(|i| (i * 17 % 255) as u8)
            .collect::<Vec<u8>>()
            .into()
    }

    #[test]
    fn all_protocols_complete_losslessly() {
        let cfg = ProtocolConfig::default();
        let payload = data(32 * 1024);

        let mut h = Harness::new(
            SawSender::new(1, payload.clone(), &cfg),
            SawReceiver::new(1, payload.len(), &cfg),
            LossPlan::perfect(),
        );
        h.run().unwrap();
        assert_eq!(h.received_data(), &payload[..]);

        let mut h = Harness::new(
            WindowSender::new(1, payload.clone(), &cfg),
            SawReceiver::new(1, payload.len(), &cfg),
            LossPlan::perfect(),
        );
        h.run().unwrap();
        assert_eq!(h.received_data(), &payload[..]);

        for strategy in RetxStrategy::ALL {
            let cfg = cfg.clone().with_strategy(strategy);
            let mut h = Harness::new(
                BlastSender::new(1, payload.clone(), &cfg),
                BlastReceiver::new(1, payload.len(), &cfg),
                LossPlan::perfect(),
            );
            let outcome = h.run().unwrap();
            assert_eq!(h.received_data(), &payload[..]);
            assert_eq!(outcome.sender.data_packets_sent, 32);
            assert_eq!(outcome.receiver.acks_sent, 1);
        }

        let cfg = cfg.clone().with_multiblast_chunk(8);
        let mut h = Harness::new(
            MultiBlastSender::new(1, payload.clone(), &cfg),
            BlastReceiver::new(1, payload.len(), &cfg),
            LossPlan::perfect(),
        );
        let outcome = h.run().unwrap();
        assert_eq!(h.received_data(), &payload[..]);
        assert_eq!(outcome.receiver.acks_sent, 4);
    }

    #[test]
    fn scripted_loss_recovers_per_strategy() {
        let payload = data(16 * 1024);
        for strategy in RetxStrategy::ALL {
            let cfg = ProtocolConfig::default().with_strategy(strategy);
            // Drop the 2nd, 5th and 11th wire packets.
            let mut h = Harness::new(
                BlastSender::new(1, payload.clone(), &cfg),
                BlastReceiver::new(1, payload.len(), &cfg),
                LossPlan::script(vec![2, 5, 11]),
            );
            let outcome = h.run().unwrap_or_else(|e| panic!("{strategy}: {e}"));
            assert_eq!(h.received_data(), &payload[..], "{strategy}");
            assert!(outcome.sender.data_packets_sent >= 16, "{strategy}");
            assert_eq!(h.dropped, 3, "{strategy}");
        }
    }

    #[test]
    fn heavy_random_loss_still_completes() {
        let payload = data(64 * 1024);
        for strategy in RetxStrategy::ALL {
            let mut cfg = ProtocolConfig::default().with_strategy(strategy);
            cfg.max_retries = 10_000;
            // 10 % iid loss: brutal by LAN standards (the paper's worst
            // interface-error case is ~1e-2 … 1e-4).
            let mut h = Harness::new(
                BlastSender::new(1, payload.clone(), &cfg),
                BlastReceiver::new(1, payload.len(), &cfg),
                LossPlan::random(0xBAD5EED ^ strategy as u64, 1, 10),
            );
            h.run().unwrap_or_else(|e| panic!("{strategy}: {e}"));
            assert_eq!(h.received_data(), &payload[..], "{strategy}");
            assert!(
                h.dropped > 0,
                "{strategy}: loss plan should have dropped something"
            );
        }
    }

    #[test]
    fn total_loss_exhausts_retries() {
        let payload = data(4 * 1024);
        let mut cfg = ProtocolConfig::default();
        cfg.max_retries = 5;
        let mut h = Harness::new(
            BlastSender::new(1, payload.clone(), &cfg),
            BlastReceiver::new(1, payload.len(), &cfg),
            LossPlan::random(7, 1, 1), // 100 % loss
        );
        match h.run() {
            Err(HarnessError::TransferFailed(CoreError::RetriesExhausted { retries: 5 })) => {}
            other => panic!("expected retries exhausted, got {other:?}"),
        }
    }

    #[test]
    fn sender_elapsed_reflects_latency_and_timers() {
        let payload = data(1024);
        let cfg = ProtocolConfig::default();
        let mut h = Harness::new(
            BlastSender::new(1, payload.clone(), &cfg),
            BlastReceiver::new(1, payload.len(), &cfg),
            LossPlan::perfect(),
        );
        h.run().unwrap();
        // One data packet out (10 µs) + ack back (10 µs) = 20 µs.
        assert_eq!(h.sender_elapsed(), Some(Duration::from_micros(20)));

        // Drop the data packet once: one retransmit timeout is added.
        let mut h = Harness::new(
            BlastSender::new(1, payload.clone(), &cfg),
            BlastReceiver::new(1, payload.len(), &cfg),
            LossPlan::script(vec![0]),
        );
        h.run().unwrap();
        let expected = cfg.timeout.initial() + Duration::from_micros(20);
        assert_eq!(h.sender_elapsed(), Some(expected));
    }

    #[test]
    fn gilbert_elliott_losses_are_bursty_and_deterministic() {
        let payload = data(64 * 1024);
        let mut cfg = ProtocolConfig::default();
        cfg.max_retries = 10_000;
        let run = |seed: u64| {
            // Good state is clean; the bad state (entered ~2 % of
            // packets, left ~25 %) drops half of everything — loss
            // arrives in runs, never as isolated drops.
            let mut h = Harness::new(
                BlastSender::new(1, payload.clone(), &cfg),
                BlastReceiver::new(1, payload.len(), &cfg),
                LossPlan::gilbert_elliott(seed, 20_000, 250_000, 0, 500_000),
            );
            h.run().unwrap();
            assert_eq!(h.received_data(), &payload[..]);
            (h.wire_count, h.dropped, h.sender_elapsed())
        };
        let (wire, dropped, _) = run(3);
        assert!(dropped > 0, "the bad state should have bitten");
        assert!(dropped < wire, "the good state should be mostly clean");
        assert_eq!(run(3), run(3), "same seed, same burst trajectory");
    }

    #[test]
    fn bottleneck_drops_unpaced_bursts_but_not_paced_ones() {
        use crate::control::PacingConfig;
        let payload = data(32 * 1024);
        let service = Duration::from_micros(50);

        // Unpaced blast: 32 packets hit the interface back to back, the
        // 8-deep queue overflows, retransmission rounds mop up.
        let mut cfg = ProtocolConfig::default();
        cfg.max_retries = 10_000;
        let mut h = Harness::new(
            BlastSender::new(1, payload.clone(), &cfg),
            BlastReceiver::new(1, payload.len(), &cfg),
            LossPlan::perfect(),
        )
        .with_bottleneck(service, 8);
        let outcome = h.run().unwrap();
        assert_eq!(h.received_data(), &payload[..]);
        assert!(h.overflow > 0, "an unpaced blast must overrun the queue");
        assert_eq!(h.dropped, 0, "the loss plan itself was perfect");
        assert!(outcome.sender.retransmission_rounds > 0);

        // Paced below the bottleneck rate (4 packets per 4 × 50 µs):
        // the queue never overflows and no retransmissions happen.
        let cfg =
            ProtocolConfig::default().with_pacing(PacingConfig::new(4, Duration::from_micros(200)));
        let mut h = Harness::new(
            BlastSender::new(1, payload.clone(), &cfg),
            BlastReceiver::new(1, payload.len(), &cfg),
            LossPlan::perfect(),
        )
        .with_bottleneck(service, 8);
        let outcome = h.run().unwrap();
        assert_eq!(h.received_data(), &payload[..]);
        assert_eq!(h.overflow, 0, "pacing at the service rate fits the queue");
        assert_eq!(outcome.sender.retransmission_rounds, 0);
    }

    #[test]
    fn random_plan_is_deterministic() {
        let payload = data(32 * 1024);
        let cfg = ProtocolConfig::default();
        let run = |seed: u64| {
            let mut h = Harness::new(
                BlastSender::new(1, payload.clone(), &cfg),
                BlastReceiver::new(1, payload.len(), &cfg),
                LossPlan::random(seed, 1, 20),
            );
            h.run().unwrap();
            (h.wire_count, h.dropped, h.sender_elapsed())
        };
        assert_eq!(run(42), run(42), "same seed, same trajectory");
    }
}
