//! Protocol configuration shared by all engines.

use core::fmt;
use std::time::Duration;

use crate::control::{AdaptiveTimeout, PacingConfig};
use crate::error::{CoreError, CoreResult};
use crate::pool::BufferPool;

/// Which of the paper's protocol classes to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProtocolKind {
    /// Stop-and-wait: "the source refrains from sending a packet until
    /// it has received an acknowledgement for the previous packet".
    StopAndWait,
    /// Sliding window: "every packet is individually acknowledged but
    /// the sender continues to transmit data without waiting".
    SlidingWindow,
    /// Blast: "all data packets are transmitted in sequence, with only a
    /// single acknowledgement for the entire packet sequence".
    Blast,
    /// Multi-blast (§3.1.3): the transfer is broken into a number of
    /// blasts, each acknowledged separately — for very large transfers
    /// where a failure of a single huge blast becomes too costly.
    MultiBlast,
}

impl fmt::Display for ProtocolKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ProtocolKind::StopAndWait => "stop-and-wait",
            ProtocolKind::SlidingWindow => "sliding-window",
            ProtocolKind::Blast => "blast",
            ProtocolKind::MultiBlast => "multi-blast",
        };
        f.write_str(s)
    }
}

/// Retransmission strategy for blast transfers (§3.2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RetxStrategy {
    /// (1) Full retransmission on error **without** negative
    /// acknowledgement: the receiver only ever sends a positive ack when
    /// the entire sequence arrived; the sender retransmits everything on
    /// timeout.  Simplest, and per §3.1.3 its *expected* time is nearly
    /// optimal at LAN error rates — but §3.2.1 shows its standard
    /// deviation is unacceptable for realistic timeout intervals.
    FullNoNack,
    /// (2) Full retransmission **with** negative acknowledgement: if the
    /// receiver gets the last packet but misses earlier ones it NACKs
    /// immediately, so the sender rarely waits out the full timeout.
    FullNack,
    /// (3) Partial retransmission from the first packet not received
    /// (go-back-n).  The paper's recommendation: "simple to implement
    /// and not significantly worse than more complicated strategies".
    #[default]
    GoBackN,
    /// (4) Selective retransmission of exactly the missing packets,
    /// reported in a bitmap NACK.
    Selective,
}

impl RetxStrategy {
    /// All strategies, in the paper's order.
    pub const ALL: [RetxStrategy; 4] = [
        RetxStrategy::FullNoNack,
        RetxStrategy::FullNack,
        RetxStrategy::GoBackN,
        RetxStrategy::Selective,
    ];

    /// Does the receiver send negative acknowledgements at all?
    pub fn uses_nack(&self) -> bool {
        !matches!(self, RetxStrategy::FullNoNack)
    }
}

impl fmt::Display for RetxStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RetxStrategy::FullNoNack => "full-no-nack",
            RetxStrategy::FullNack => "full-nack",
            RetxStrategy::GoBackN => "go-back-n",
            RetxStrategy::Selective => "selective",
        };
        f.write_str(s)
    }
}

/// Tunable parameters for a transfer.
///
/// The defaults reproduce the paper's experimental setup: 1024-byte data
/// packets, a retransmission interval equal to the error-free transfer
/// time of a 64-packet blast (`Tr = To(D)`, the best curve in Fig. 5/6),
/// go-back-n retransmission, and an effectively unbounded window for the
/// sliding-window protocol ("we assume that the window is large enough
/// so that it never gets closed").
#[derive(Debug, Clone)]
pub struct ProtocolConfig {
    /// Payload bytes per data packet.  The paper uses 1024 everywhere.
    pub packet_payload: usize,
    /// Retransmission-timeout policy.  [`AdaptiveTimeout::Fixed`] is the
    /// paper's interval `Tr` (Figure 5 sweeps it between `To(D)` and
    /// `100 × To(1)`); [`AdaptiveTimeout::Adaptive`] is the
    /// Jacobson/Karn estimator for real, variable-latency paths.
    pub timeout: AdaptiveTimeout,
    /// How multi-packet rounds are offered to the network:
    /// [`PacingConfig::off`] blasts at full speed (the paper's mode),
    /// anything else spreads each round into timed bursts.
    pub pacing: PacingConfig,
    /// How many retransmission rounds to attempt before giving up with
    /// [`CoreError::RetriesExhausted`].
    pub max_retries: u32,
    /// Blast retransmission strategy.
    pub strategy: RetxStrategy,
    /// Sliding-window size in packets.  `None` means unbounded — the
    /// paper's assumption.  `Some(w)` bounds the number of unacked
    /// packets in flight.
    pub window: Option<u32>,
    /// Packets per chunk for multi-blast transfers (§3.1.3).
    pub multiblast_chunk: u32,
    /// Set the KERNEL flag on all packets (V-kernel IPC traffic).
    pub kernel_flag: bool,
    /// The packet-buffer pool engines built from this config share.
    ///
    /// Cloning a config clones the *handle*: every engine created from
    /// the same config (or a clone of it, as the `blast-node` server
    /// does per session) recycles one bounded set of buffers — the
    /// zero-allocation hot path.  Excluded from equality: two configs
    /// with the same parameters are the same configuration regardless of
    /// which pool instance they drain.
    pub pool: BufferPool,
}

impl PartialEq for ProtocolConfig {
    fn eq(&self, other: &Self) -> bool {
        // Exhaustive destructuring: adding a field without deciding how
        // it compares is a compile error, not a silently-vacuous eq.
        let ProtocolConfig {
            packet_payload,
            timeout,
            pacing,
            max_retries,
            strategy,
            window,
            multiblast_chunk,
            kernel_flag,
            pool: _,
        } = self;
        *packet_payload == other.packet_payload
            && *timeout == other.timeout
            && *pacing == other.pacing
            && *max_retries == other.max_retries
            && *strategy == other.strategy
            && *window == other.window
            && *multiblast_chunk == other.multiblast_chunk
            && *kernel_flag == other.kernel_flag
    }
}

impl Eq for ProtocolConfig {}

impl Default for ProtocolConfig {
    fn default() -> Self {
        ProtocolConfig {
            packet_payload: 1024,
            // ≈ the error-free time of a 64-packet V-kernel blast
            // (To(D) = 173 ms in Table 3) — the paper's best-case Tr,
            // kept fixed so the analytic model and calibrated simulator
            // reproduce the paper's numbers exactly.
            timeout: AdaptiveTimeout::Fixed(Duration::from_millis(173)),
            pacing: PacingConfig::off(),
            max_retries: 64,
            strategy: RetxStrategy::default(),
            window: None,
            multiblast_chunk: 64,
            kernel_flag: false,
            pool: BufferPool::default(),
        }
    }
}

impl ProtocolConfig {
    /// Validate the configuration, returning it for chaining.
    pub fn validated(self) -> CoreResult<Self> {
        if self.packet_payload == 0 {
            return Err(CoreError::BadConfig {
                what: "packet_payload must be > 0",
            });
        }
        if self.packet_payload > blast_wire::MAX_ETHERNET_PAYLOAD {
            return Err(CoreError::BadConfig {
                what: "packet_payload exceeds the maximum Ethernet payload",
            });
        }
        if let Some(what) = self.timeout.invalid() {
            return Err(CoreError::BadConfig { what });
        }
        if let Some(what) = self.pacing.invalid() {
            return Err(CoreError::BadConfig { what });
        }
        if self.window == Some(0) {
            return Err(CoreError::BadConfig {
                what: "window must be > 0 when bounded",
            });
        }
        if self.multiblast_chunk == 0 {
            return Err(CoreError::BadConfig {
                what: "multiblast_chunk must be > 0",
            });
        }
        Ok(self)
    }

    /// Number of data packets a transfer of `bytes` bytes needs.
    pub fn packets_for(&self, bytes: usize) -> u32 {
        if bytes == 0 {
            1 // a zero-byte transfer still sends one (empty) packet
        } else {
            bytes.div_ceil(self.packet_payload) as u32
        }
    }

    /// Builder-style setter for the strategy.
    pub fn with_strategy(mut self, strategy: RetxStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Builder-style setter for the timeout policy.  A plain
    /// [`Duration`] selects the paper's fixed mode; pass
    /// [`AdaptiveTimeout::Adaptive`] (or [`AdaptiveTimeout::lan`]) for
    /// the Jacobson/Karn estimator.
    pub fn with_timeout(mut self, timeout: impl Into<AdaptiveTimeout>) -> Self {
        self.timeout = timeout.into();
        self
    }

    /// Builder-style setter for round pacing.
    pub fn with_pacing(mut self, pacing: PacingConfig) -> Self {
        self.pacing = pacing;
        self
    }

    /// Builder-style setter for the window bound.
    pub fn with_window(mut self, window: Option<u32>) -> Self {
        self.window = window;
        self
    }

    /// Builder-style setter for the packet payload size.
    pub fn with_packet_payload(mut self, payload: usize) -> Self {
        self.packet_payload = payload;
        self
    }

    /// Builder-style setter for the multiblast chunk size.
    pub fn with_multiblast_chunk(mut self, chunk: u32) -> Self {
        self.multiblast_chunk = chunk;
        self
    }

    /// Builder-style setter for the shared buffer pool (e.g. to make
    /// several independently-built configs recycle one set of buffers).
    pub fn with_pool(mut self, pool: BufferPool) -> Self {
        self.pool = pool;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_and_paperlike() {
        let c = ProtocolConfig::default().validated().unwrap();
        assert_eq!(c.packet_payload, 1024);
        assert_eq!(c.strategy, RetxStrategy::GoBackN);
        assert!(c.window.is_none());
        // The paper's fixed Tr and full-speed blast are the defaults.
        assert_eq!(
            c.timeout,
            AdaptiveTimeout::Fixed(Duration::from_millis(173))
        );
        assert!(!c.pacing.enabled());
    }

    #[test]
    fn validation_rejects_nonsense() {
        assert!(ProtocolConfig {
            packet_payload: 0,
            ..Default::default()
        }
        .validated()
        .is_err());
        assert!(ProtocolConfig {
            packet_payload: 40_000,
            ..Default::default()
        }
        .validated()
        .is_err());
        assert!(ProtocolConfig {
            timeout: AdaptiveTimeout::Fixed(Duration::ZERO),
            ..Default::default()
        }
        .validated()
        .is_err());
        assert!(ProtocolConfig {
            timeout: AdaptiveTimeout::Adaptive {
                initial: Duration::from_millis(1),
                min: Duration::from_millis(5),
                max: Duration::from_millis(10),
            },
            ..Default::default()
        }
        .validated()
        .is_err());
        assert!(ProtocolConfig {
            pacing: PacingConfig::new(4, Duration::ZERO),
            ..Default::default()
        }
        .validated()
        .is_err());
        assert!(ProtocolConfig {
            window: Some(0),
            ..Default::default()
        }
        .validated()
        .is_err());
        assert!(ProtocolConfig {
            multiblast_chunk: 0,
            ..Default::default()
        }
        .validated()
        .is_err());
    }

    #[test]
    fn packets_for_rounds_up() {
        let c = ProtocolConfig::default();
        assert_eq!(c.packets_for(0), 1);
        assert_eq!(c.packets_for(1), 1);
        assert_eq!(c.packets_for(1024), 1);
        assert_eq!(c.packets_for(1025), 2);
        assert_eq!(c.packets_for(64 * 1024), 64);
        assert_eq!(c.packets_for(64 * 1024 + 1), 65);
    }

    #[test]
    fn builders_compose() {
        let c = ProtocolConfig::default()
            .with_strategy(RetxStrategy::Selective)
            .with_timeout(Duration::from_millis(10))
            .with_window(Some(8))
            .with_packet_payload(512)
            .with_multiblast_chunk(16)
            .with_pacing(PacingConfig::lan());
        assert_eq!(c.strategy, RetxStrategy::Selective);
        assert_eq!(c.timeout, AdaptiveTimeout::Fixed(Duration::from_millis(10)));
        assert_eq!(c.timeout.initial(), Duration::from_millis(10));
        assert_eq!(c.window, Some(8));
        assert_eq!(c.packet_payload, 512);
        assert_eq!(c.multiblast_chunk, 16);
        assert!(c.pacing.enabled());
        let c = c.with_timeout(AdaptiveTimeout::lan());
        assert!(c.timeout.is_adaptive());
        assert!(c.validated().is_ok());
    }

    #[test]
    fn strategy_metadata() {
        assert!(!RetxStrategy::FullNoNack.uses_nack());
        for s in [
            RetxStrategy::FullNack,
            RetxStrategy::GoBackN,
            RetxStrategy::Selective,
        ] {
            assert!(s.uses_nack());
        }
        assert_eq!(RetxStrategy::ALL.len(), 4);
        assert_eq!(RetxStrategy::GoBackN.to_string(), "go-back-n");
        assert_eq!(ProtocolKind::Blast.to_string(), "blast");
    }
}
