//! Cross-stack integration: the same engines running over the
//! virtual-time harness, the discrete-event simulator and real UDP must
//! all deliver byte-identical data; the simulator must host concurrent
//! transfers; the V-kernel file server must work end-to-end on a lossy
//! network.

use std::time::Duration;

use blastlan::core::blast::{BlastReceiver, BlastSender};
use blastlan::core::config::{ProtocolConfig, RetxStrategy};
use blastlan::core::harness::{Harness, LossPlan};
use blastlan::core::multiblast::MultiBlastSender;
use blastlan::sim::{LossModel, SimConfig, Simulator};
use blastlan::udp::channel::UdpChannel;
use blastlan::udp::fault::{FaultConfig, FaultyChannel};
use blastlan::udp::peer::{recv_data, send_data};
use blastlan::vkernel::fileserver::{client_read, FileServer};
use blastlan::vkernel::VCluster;

fn payload(bytes: usize) -> Vec<u8> {
    (0..bytes)
        .map(|i| (i.wrapping_mul(131) % 256) as u8)
        .collect()
}

#[test]
fn same_engine_three_substrates() {
    let data = payload(96 * 1024);
    for strategy in RetxStrategy::ALL {
        let mut cfg = ProtocolConfig::default().with_strategy(strategy);
        cfg.max_retries = 100_000;

        // 1. Virtual-time harness, 5 % loss.
        let mut h = Harness::new(
            BlastSender::new(1, data.clone().into(), &cfg),
            BlastReceiver::new(1, data.len(), &cfg),
            LossPlan::random(strategy as u64 + 1, 1, 20),
        );
        h.run()
            .unwrap_or_else(|e| panic!("{strategy} harness: {e}"));
        assert_eq!(h.received_data(), &data[..], "{strategy} harness");

        // 2. Simulator, 2 % loss.
        let mut sim = Simulator::new(SimConfig::standalone().with_loss(LossModel::iid(0.02), 3));
        let a = sim.add_host("a");
        let b = sim.add_host("b");
        let mut scfg = cfg.clone();
        scfg.timeout = Duration::from_millis(200).into();
        sim.attach(
            a,
            b,
            Box::new(BlastSender::new(1, data.clone().into(), &scfg)),
        );
        sim.attach(b, a, Box::new(BlastReceiver::new(1, data.len(), &scfg)));
        let report = sim.run();
        assert!(report.succeeded(a, 1), "{strategy} sim");

        // 3. Real UDP with injected loss.
        let (ca, cb) = UdpChannel::pair().unwrap();
        let mut ucfg = cfg.clone();
        ucfg.timeout = Duration::from_millis(15).into();
        let faulty = FaultyChannel::new(ca, FaultConfig::loss(0.05), strategy as u64);
        let ucfg2 = ucfg.clone();
        let data2 = data.clone();
        let rx = std::thread::spawn(move || recv_data(cb, &ucfg2).unwrap());
        send_data(faulty, 5, &data2, &ucfg).unwrap();
        let report = rx.join().unwrap();
        assert_eq!(report.data, data, "{strategy} udp");
    }
}

#[test]
fn simulator_hosts_concurrent_transfers_with_demux() {
    // Four transfers between four host pairs at once, different sizes
    // and strategies, sharing one ether.
    let mut sim = Simulator::new(SimConfig::standalone());
    let mut expected = Vec::new();
    for i in 0..4u32 {
        let a = sim.add_host(&format!("tx{i}"));
        let b = sim.add_host(&format!("rx{i}"));
        let bytes = (8 + 8 * i as usize) * 1024;
        let data = payload(bytes);
        let cfg = ProtocolConfig::default().with_strategy(RetxStrategy::ALL[i as usize % 4]);
        sim.attach(
            a,
            b,
            Box::new(BlastSender::new(100 + i, data.clone().into(), &cfg)),
        );
        sim.attach(
            b,
            a,
            Box::new(BlastReceiver::new(100 + i, data.len(), &cfg)),
        );
        expected.push((a, 100 + i));
    }
    let report = sim.run();
    for (host, transfer) in expected {
        assert!(report.succeeded(host, transfer), "transfer {transfer}");
    }
    assert_eq!(report.unroutable, 0, "demux must route everything");
}

#[test]
fn multiblast_over_udp_and_sim_agree_on_data() {
    let data = payload(200 * 1024);
    let mut cfg = ProtocolConfig::default().with_multiblast_chunk(32);
    cfg.timeout = Duration::from_millis(20).into();
    cfg.max_retries = 100_000;

    // Simulator.
    let mut sim = Simulator::new(SimConfig::vkernel().with_loss(LossModel::iid(0.01), 5));
    let a = sim.add_host("a");
    let b = sim.add_host("b");
    let mut scfg = cfg.clone();
    scfg.timeout = Duration::from_millis(200).into();
    sim.attach(
        a,
        b,
        Box::new(MultiBlastSender::new(9, data.clone().into(), &scfg)),
    );
    sim.attach(b, a, Box::new(BlastReceiver::new(9, data.len(), &scfg)));
    let report = sim.run();
    assert!(report.succeeded(a, 9));

    // UDP.
    let (ca, cb) = UdpChannel::pair().unwrap();
    let cfg2 = cfg.clone();
    let data2 = data.clone();
    let rx = std::thread::spawn(move || recv_data(cb, &cfg2).unwrap());
    blastlan::udp::peer::send_data_multiblast(ca, 9, &data2, &cfg).unwrap();
    let r = rx.join().unwrap();
    assert_eq!(r.data, data);
}

#[test]
fn vkernel_file_read_on_lossy_network() {
    let mut cluster = VCluster::new().with_loss(0.03, 2026);
    let k0 = cluster.add_kernel("workstation");
    let k1 = cluster.add_kernel("server");
    let client = cluster.create_process(k0, "client");
    let fs_pid = cluster.create_process(k1, "fs");
    let mut fs = FileServer::new(fs_pid);
    let contents = payload(128 * 1024);
    fs.put("/dump", contents.clone());
    let (seg, outcome) = client_read(&mut cluster, &mut fs, client, "/dump").unwrap();
    assert_eq!(cluster.segment(client, seg).unwrap(), &contents[..]);
    assert!(outcome.transfer.remote);
    assert!(
        outcome.transfer.elapsed_ms > 300.0,
        "128 KB ≈ 2 × 173 ms of blasting"
    );
    assert_eq!(fs.reads_served, 1);
}

#[test]
fn sim_elapsed_never_beats_the_error_free_floor() {
    // Loss can only cost time: for any seed, elapsed ≥ the closed-form
    // error-free time.
    let floor = blastlan::analytic::ErrorFree::new(blastlan::analytic::CostModel::standalone_sun())
        .blast(32);
    let data = payload(32 * 1024);
    for seed in 0..20 {
        let mut sim = Simulator::new(SimConfig::standalone().with_loss(LossModel::iid(0.05), seed));
        let a = sim.add_host("a");
        let b = sim.add_host("b");
        let mut cfg = ProtocolConfig::default();
        cfg.max_retries = 100_000;
        cfg.timeout = Duration::from_millis(100).into();
        sim.attach(
            a,
            b,
            Box::new(BlastSender::new(1, data.clone().into(), &cfg)),
        );
        sim.attach(b, a, Box::new(BlastReceiver::new(1, data.len(), &cfg)));
        let report = sim.run();
        let elapsed = report.elapsed_ms(a, 1).unwrap();
        assert!(
            elapsed >= floor - 1e-9,
            "seed {seed}: {elapsed} must be ≥ floor {floor}"
        );
    }
}
