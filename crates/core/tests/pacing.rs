//! Virtual-time pacing tests: paced transmits are scheduled *exactly*
//! by the harness (pacing rides the ordinary `SetTimer` machinery, so
//! any driver that honours timers honours pacing), and pacing composes
//! with loss, adaptive timeouts and every retransmission strategy.

use std::sync::Arc;
use std::time::Duration;

use blast_core::blast::{BlastReceiver, BlastSender};
use blast_core::config::RetxStrategy;
use blast_core::control::{AdaptiveTimeout, PacingConfig};
use blast_core::harness::{Harness, LossPlan};
use blast_core::saw::SawReceiver;
use blast_core::window::WindowSender;
use blast_core::ProtocolConfig;

fn data(n: usize) -> Arc<[u8]> {
    (0..n)
        .map(|i| (i * 131 % 251) as u8)
        .collect::<Vec<u8>>()
        .into()
}

/// The harness schedules a paced round to the nanosecond: a 16-packet
/// blast at 4 packets per 1 ms gap takes exactly 3 gaps + one one-way
/// latency for the tail + one for the ack.
#[test]
fn harness_schedules_paced_round_exactly() {
    let gap = Duration::from_millis(1);
    let cfg = ProtocolConfig::default().with_pacing(PacingConfig::new(4, gap));
    let payload = data(16 * 1024);
    let mut h = Harness::new(
        BlastSender::new(1, payload.clone(), &cfg),
        BlastReceiver::new(1, payload.len(), &cfg),
        LossPlan::perfect(),
    );
    let outcome = h.run().expect("paced transfer completes");
    assert_eq!(h.received_data(), &payload[..]);
    assert_eq!(outcome.sender.data_packets_sent, 16);
    assert_eq!(outcome.receiver.acks_sent, 1, "still one ack per blast");
    // 3 inter-burst gaps, then the tail flies (10 µs) and the ack
    // returns (10 µs).  Exact, not approximate: pacing is virtual-time
    // scheduled like any other timer.
    let expected = gap * 3 + Duration::from_micros(20);
    assert_eq!(h.sender_elapsed(), Some(expected));
}

/// An unpaced run of the same transfer completes in just the two
/// one-way latencies — the degenerate mode is genuinely unpaced.
#[test]
fn unpaced_round_has_no_gap_cost() {
    let cfg = ProtocolConfig::default();
    let payload = data(16 * 1024);
    let mut h = Harness::new(
        BlastSender::new(1, payload.clone(), &cfg),
        BlastReceiver::new(1, payload.len(), &cfg),
        LossPlan::perfect(),
    );
    h.run().expect("transfer completes");
    assert_eq!(h.sender_elapsed(), Some(Duration::from_micros(20)));
}

/// Pacing composes with loss and the adaptive timeout for every
/// retransmission strategy — the full modern configuration.
#[test]
fn paced_adaptive_transfer_recovers_under_loss() {
    let payload = data(64 * 1024);
    for strategy in RetxStrategy::ALL {
        let mut cfg = ProtocolConfig::default()
            .with_strategy(strategy)
            .with_timeout(AdaptiveTimeout::Adaptive {
                initial: Duration::from_millis(5),
                min: Duration::from_millis(1),
                max: Duration::from_millis(500),
            })
            .with_pacing(PacingConfig::new(8, Duration::from_micros(100)));
        cfg.max_retries = 10_000;
        let mut h = Harness::new(
            BlastSender::new(1, payload.clone(), &cfg),
            BlastReceiver::new(1, payload.len(), &cfg),
            LossPlan::random(0xFEED ^ strategy as u64, 1, 20), // 5 % loss
        );
        h.run().unwrap_or_else(|e| panic!("{strategy}: {e}"));
        assert_eq!(h.received_data(), &payload[..], "{strategy}");
        assert!(h.dropped > 0, "{strategy}: loss plan must bite");
    }
}

/// The sliding-window sender's paced fill: the window opens in bursts,
/// and the transfer still completes with every packet acknowledged.
#[test]
fn paced_window_fill_completes() {
    let cfg =
        ProtocolConfig::default().with_pacing(PacingConfig::new(3, Duration::from_micros(500)));
    let payload = data(12 * 1024);
    let mut h = Harness::new(
        WindowSender::new(1, payload.clone(), &cfg),
        SawReceiver::new(1, payload.len(), &cfg),
        LossPlan::perfect(),
    );
    let outcome = h.run().expect("paced window transfer completes");
    assert_eq!(h.received_data(), &payload[..]);
    assert_eq!(outcome.sender.data_packets_sent, 12);
    assert_eq!(outcome.receiver.acks_sent, 12);
    // 12 packets in bursts of 3 → 3 gaps before the last burst.
    let elapsed = h.sender_elapsed().expect("finished");
    assert!(elapsed >= Duration::from_micros(1500), "{elapsed:?}");
}

/// Adaptive RTO through the harness: after one clean blast the sender's
/// estimator has locked onto the virtual round-trip (exactly 2 × 10 µs
/// for the tail + ack), so a follow-up timeout fires at the adapted
/// value, not the 25 ms seed.
#[test]
fn adaptive_rto_locks_onto_virtual_rtt() {
    let cfg = ProtocolConfig::default().with_timeout(AdaptiveTimeout::lan());
    let payload = data(8 * 1024);
    let mut h = Harness::new(
        BlastSender::new(1, payload.clone(), &cfg),
        BlastReceiver::new(1, payload.len(), &cfg),
        LossPlan::perfect(),
    );
    h.run().expect("clean transfer");
    // Tail departs at t=0, ack arrives at t=20 µs: SRTT = 20 µs, and
    // the RTO clamps up to the configured 2 ms floor.
    assert_eq!(h.sender().srtt(), Some(Duration::from_micros(20)));
    assert_eq!(h.sender().current_rto(), Duration::from_millis(2));
}

/// Lost-tail recovery under pacing: the adapted RTO re-solicits and the
/// go-back-n machinery finishes the job.
#[test]
fn paced_lost_tail_recovers_via_adapted_rto() {
    let mut cfg = ProtocolConfig::default()
        .with_timeout(AdaptiveTimeout::Adaptive {
            initial: Duration::from_millis(5),
            min: Duration::from_millis(1),
            max: Duration::from_millis(100),
        })
        .with_pacing(PacingConfig::new(2, Duration::from_micros(100)));
    cfg.max_retries = 100;
    let payload = data(6 * 1024);
    // Wire packets 0..6 are the data; drop the reliable tail (index 5).
    let mut h = Harness::new(
        BlastSender::new(1, payload.clone(), &cfg),
        BlastReceiver::new(1, payload.len(), &cfg),
        LossPlan::script(vec![5]),
    );
    let outcome = h.run().expect("recovers");
    assert_eq!(h.received_data(), &payload[..]);
    assert_eq!(outcome.sender.timeouts, 1, "one re-solicitation timeout");
    assert!(outcome.sender.retransmission_rounds >= 1);
}
