//! The acceptance test for the sharded node: 32 concurrent transfers —
//! mixed push/pull, all four retransmission strategies, fault
//! injection — through a 4-shard reactor group, every payload verified
//! byte for byte and the per-shard breakdown reconciled against the
//! merged metrics.
//!
//! Where `SO_REUSEPORT` is unavailable the builder degrades to one
//! shard; the test then still runs the full workload and checks the
//! single-shard accounting, so the suite is green everywhere and only
//! the spread assertions are Linux-conditional.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use blast_core::config::{ProtocolConfig, RetxStrategy};
use blast_node::server::NodeBuilder;
use blast_node::{shared_store, Client};
use blast_udp::channel::UdpChannel;
use blast_udp::fault::{FaultConfig, FaultyChannel};
use blast_udp::sockopt;

fn client_cfg(strategy: RetxStrategy) -> ProtocolConfig {
    let mut c = ProtocolConfig::default();
    c.timeout = Duration::from_millis(12).into();
    c.max_retries = 100_000;
    c.strategy = strategy;
    c
}

fn payload(seed: usize, n: usize) -> Vec<u8> {
    (0..n)
        .map(|i| ((i.wrapping_mul(37) ^ seed.wrapping_mul(101)) % 256) as u8)
        .collect()
}

#[test]
fn thirty_two_mixed_transfers_across_four_shards() {
    let store = shared_store();
    // Four seeded blobs for the pull sessions, one per strategy.
    let pull_blobs: Vec<(String, Vec<u8>)> = (0..4)
        .map(|i| (format!("seed-{i}"), payload(2000 + i, 15_000 + 4_000 * i)))
        .collect();
    for (name, data) in &pull_blobs {
        store.put(name, data.clone().into());
    }

    let node = NodeBuilder::new()
        .timeout(Duration::from_millis(12))
        .max_retries(100_000)
        .shards(4)
        .store(store)
        .start()
        .unwrap();
    if sockopt::reuseport_supported() {
        assert_eq!(node.shards(), 4, "Linux must give us the full group");
    } else {
        assert_eq!(node.shards(), 1, "portable fallback is a single shard");
    }
    let addr = node.addr();
    let transfer_ids = Arc::new(AtomicU64::new(1));

    let mut handles = Vec::new();
    // 16 pushes: strategies cycling through all four, the odd clients
    // behind a chaos-injecting channel.  Each client is its own socket,
    // so each is its own 4-tuple — the kernel spreads them over shards.
    let mut push_data = Vec::new();
    for i in 0..16usize {
        let strategy = RetxStrategy::ALL[i % 4];
        let data = payload(i, 10_000 + 2_000 * i);
        let name = format!("push-{i}");
        push_data.push((name.clone(), data.clone()));
        let ids = Arc::clone(&transfer_ids);
        handles.push(std::thread::spawn(move || {
            let id = ids.fetch_add(1, Ordering::Relaxed) as u32;
            let cfg = client_cfg(strategy);
            let ch = UdpChannel::connect("127.0.0.1:0".parse().unwrap(), addr).unwrap();
            let report = if i % 2 == 1 {
                let faulty = FaultyChannel::new(ch, FaultConfig::chaos(0.03), 140 + i as u64);
                let mut client = Client::over(faulty).config(cfg).transfer_ids_from(id);
                client.push(&name, &data).unwrap()
            } else {
                let mut client = Client::over(ch).config(cfg).transfer_ids_from(id);
                client.push(&name, &data).unwrap()
            };
            assert!(report.stats.data_packets_sent > 0, "{name}");
        }));
    }
    // 16 pulls of the seeded blobs (each seed pulled four times), again
    // with strategies cycling and loss on the odd clients.
    for i in 0..16usize {
        let strategy = RetxStrategy::ALL[(i + 2) % 4];
        let (name, expected) = pull_blobs[i % 4].clone();
        let ids = Arc::clone(&transfer_ids);
        handles.push(std::thread::spawn(move || {
            let id = ids.fetch_add(1, Ordering::Relaxed) as u32;
            let cfg = client_cfg(strategy);
            let ch = UdpChannel::connect("127.0.0.1:0".parse().unwrap(), addr).unwrap();
            let report = if i % 2 == 1 {
                let faulty = FaultyChannel::new(ch, FaultConfig::loss(0.05), 170 + i as u64);
                let mut client = Client::over(faulty).config(cfg).transfer_ids_from(id);
                client.pull(&name).unwrap()
            } else {
                let mut client = Client::over(ch).config(cfg).transfer_ids_from(id);
                client.pull(&name).unwrap()
            };
            assert_eq!(report.data, expected, "pull {name} must be byte-exact");
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    // Every push must now be pullable, byte for byte — the store is
    // shared across shards, so a blob pushed through one shard must be
    // servable by whichever shard the verification pull hashes to.
    for (name, expected) in &push_data {
        let mut verifier = Client::connect(addr)
            .unwrap()
            .config(client_cfg(RetxStrategy::Selective));
        let report = verifier.pull(name).unwrap();
        assert_eq!(&report.data, expected, "pushed blob {name} must round-trip");
    }

    assert!(
        node.wait_idle(Duration::from_secs(10)),
        "sessions drained\n{}",
        node.metrics().summary()
    );
    let reports = node.shard_reports();
    let store = node.store();
    let shards = node.shards();
    let m = node.shutdown().unwrap();

    // Merged accounting: 32 concurrent + 16 verification pulls.
    assert_eq!(m.sessions_accepted, 48);
    assert_eq!(m.sessions_completed, 48);
    assert_eq!(m.sessions_failed, 0);
    assert_eq!(m.pushes, 16);
    assert_eq!(m.pulls, 32);
    assert_eq!(m.sessions_in_flight(), 0);
    assert_eq!(m.session_secs.count(), 48);
    assert_eq!(store.len(), 20, "4 seeds + 16 pushes");

    // The per-shard breakdown must reconcile exactly with the merge.
    assert_eq!(reports.len(), shards);
    assert_eq!(
        reports.iter().map(|r| r.sessions_accepted).sum::<u64>(),
        m.sessions_accepted
    );
    assert_eq!(
        reports.iter().map(|r| r.sessions_completed).sum::<u64>(),
        m.sessions_completed
    );
    assert_eq!(
        reports.iter().map(|r| r.datagrams_received).sum::<u64>(),
        m.datagrams_received
    );
    if reports.len() == 4 {
        // 48 distinct ephemeral 4-tuples over 4 shards: the odds that
        // the kernel hashed them all onto one shard are ~4^-47.
        let busy = reports.iter().filter(|r| r.sessions_accepted > 0).count();
        assert!(busy >= 2, "sessions all landed on one shard: {reports:?}");
    }

    // Fault injection really happened: chaotic clients corrupted frames
    // (FCS drops) and/or duplicated data the engines had to absorb.
    let dup_or_drops: u64 = m.fcs_drops
        + m.reports
            .iter()
            .map(|r| r.stats.duplicate_packets_received + r.stats.data_packets_retransmitted)
            .sum::<u64>();
    assert!(
        dup_or_drops > 0,
        "faulty channels must exercise recovery paths"
    );
}
