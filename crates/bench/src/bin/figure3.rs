//! Figure 3 — timelines of the four transfer disciplines for N = 3.
//!
//! 3.a stop-and-wait ("the two processors are never active in
//! parallel"), 3.b blast (sender copy-in overlaps receiver copy-out),
//! 3.c sliding window (overlap plus per-packet ack copies), 3.d blast
//! over a double-buffered interface (copy overlaps transmission too).
//! Rendered straight from the simulator's execution trace.

use blast_bench::{run_transfer, Proto};
use blast_core::config::RetxStrategy;
use blast_sim::{render_timeline, SimConfig};

fn show(title: &str, proto: Proto, sim_cfg: SimConfig) {
    let r = run_transfer(proto, 3 * 1024, sim_cfg.with_trace(), None);
    println!("{title}   (total {} ms)", r.elapsed_ms);
    println!(
        "{}",
        render_timeline(&r.report.trace, &["sender", "receiver"], 100)
    );
}

fn main() {
    println!("Figure 3: transmission timelines, N = 3 data packets\n");
    show(
        "Figure 3.a: stop-and-wait",
        Proto::Saw,
        SimConfig::standalone(),
    );
    show(
        "Figure 3.b: blast",
        Proto::Blast(RetxStrategy::GoBackN),
        SimConfig::standalone(),
    );
    show(
        "Figure 3.c: sliding window",
        Proto::Window,
        SimConfig::standalone(),
    );
    show(
        "Figure 3.d: double-buffered interface with blast",
        Proto::BlastDouble,
        SimConfig::double_buffered(),
    );
    println!(
        "reading the rows: digits = data packet copies/transmissions (seq mod 10),\n\
         'a' = acknowledgements; one row per host resource plus the shared ether."
    );
}
