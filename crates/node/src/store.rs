//! The in-memory blob store a node serves.
//!
//! This is the `blast-vkernel` file-server idea carried down to the
//! page level: the paper's motivating workload is a client that
//! "allocates a buffer big enough to contain that file", asks the
//! server for it by name, and has the whole thing moved into its
//! address space in one bulk transfer.  [`BlobStore`] is that server's
//! catalogue — named, immutable byte blobs, each pulled or pushed as
//! one blast transfer — without the surrounding IPC machinery.
//!
//! Blobs are `Arc<[u8]>` so that serving a pull never copies the
//! catalogue entry: the session's sender engine shares the allocation,
//! and a concurrent `put` under the same name simply swaps the `Arc`
//! without disturbing in-flight transfers.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// A named catalogue of immutable byte blobs.
#[derive(Debug, Default)]
pub struct BlobStore {
    blobs: BTreeMap<String, Arc<[u8]>>,
    /// Blobs inserted over the store's lifetime (puts, not distinct
    /// names).
    pub puts: u64,
}

impl BlobStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert (or replace) `name`.  In-flight pulls of a replaced blob
    /// keep the version they started with.
    pub fn put(&mut self, name: &str, data: impl Into<Arc<[u8]>>) {
        self.blobs.insert(name.to_string(), data.into());
        self.puts += 1;
    }

    /// Fetch `name`, sharing the allocation.
    pub fn get(&self, name: &str) -> Option<Arc<[u8]>> {
        self.blobs.get(name).cloned()
    }

    /// Whether `name` exists.
    pub fn contains(&self, name: &str) -> bool {
        self.blobs.contains_key(name)
    }

    /// Remove `name`, returning the blob if present.
    pub fn remove(&mut self, name: &str) -> Option<Arc<[u8]>> {
        self.blobs.remove(name)
    }

    /// Number of blobs stored.
    pub fn len(&self) -> usize {
        self.blobs.len()
    }

    /// True when the catalogue is empty.
    pub fn is_empty(&self) -> bool {
        self.blobs.is_empty()
    }

    /// Total payload bytes across all blobs.
    pub fn total_bytes(&self) -> usize {
        self.blobs.values().map(|b| b.len()).sum()
    }

    /// Blob names in sorted order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.blobs.keys().map(String::as_str)
    }
}

/// The store as shared between a running server and its owner.
pub type SharedStore = Arc<Mutex<BlobStore>>;

/// A fresh, empty [`SharedStore`].
pub fn shared_store() -> SharedStore {
    Arc::new(Mutex::new(BlobStore::new()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_replace() {
        let mut s = BlobStore::new();
        assert!(s.is_empty());
        s.put("a", vec![1u8, 2, 3]);
        s.put("b", vec![9u8; 10]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.total_bytes(), 13);
        assert_eq!(s.get("a").unwrap().as_ref(), &[1, 2, 3]);
        assert!(s.get("missing").is_none());
        s.put("a", vec![7u8; 4]);
        assert_eq!(s.len(), 2, "replacement, not duplication");
        assert_eq!(s.get("a").unwrap().len(), 4);
        assert_eq!(s.puts, 3);
        assert_eq!(s.names().collect::<Vec<_>>(), vec!["a", "b"]);
    }

    #[test]
    fn inflight_pull_keeps_replaced_version() {
        let mut s = BlobStore::new();
        s.put("model", vec![1u8; 100]);
        let inflight = s.get("model").unwrap();
        s.put("model", vec![2u8; 50]);
        assert_eq!(inflight.len(), 100, "old Arc still alive");
        assert_eq!(s.get("model").unwrap().len(), 50);
    }

    #[test]
    fn remove_and_contains() {
        let mut s = BlobStore::new();
        s.put("x", vec![0u8; 8]);
        assert!(s.contains("x"));
        assert_eq!(s.remove("x").unwrap().len(), 8);
        assert!(!s.contains("x"));
        assert!(s.remove("x").is_none());
    }
}
