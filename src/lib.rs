//! # blastlan — protocols for large data transfers over local networks
//!
//! An umbrella crate re-exporting the whole workspace: a faithful,
//! production-quality reproduction of *W. Zwaenepoel, "Protocols for
//! Large Data Transfers over Local Networks", SIGCOMM 1985*.
//!
//! | Crate | Contents |
//! |---|---|
//! | [`wire`] | Ethernet II framing, blast transport headers, ack/NACK encodings, checksums |
//! | [`core`] | Sans-I/O engines: stop-and-wait, sliding window, blast (4 retransmission strategies), multi-blast |
//! | [`sim`] | Discrete-event simulator of the paper's hardware: CPUs with copy costs, single/double-buffered interfaces, 10 Mbit Ethernet, fault injection |
//! | [`analytic`] | Closed-form performance model (§2.1.3, §3.1, §3.2) and Monte-Carlo estimators |
//! | [`vkernel`] | Miniature V-kernel IPC: processes, Send/Receive/Reply, MoveTo/MoveFrom, file server |
//! | [`udp`] | The same engines over real UDP sockets with fault injection |
//! | [`node`] | Concurrent blast transfer server: many push/pull sessions across N `SO_REUSEPORT` reactor shards |
//! | [`telemetry`] | Flight recorder: zero-alloc SPSC event rings, JSONL + Perfetto (Chrome trace-event) exporters |
//! | [`stats`] | Experiment support: online statistics, histograms, tables, ASCII charts |
//!
//! See `README.md` for a tour, `DESIGN.md` for the architecture and the
//! experiment index, and `EXPERIMENTS.md` for paper-vs-measured results.
//!
//! ## Quickstart
//!
//! ```
//! use blastlan::core::blast::{BlastReceiver, BlastSender};
//! use blastlan::core::harness::{Harness, LossPlan};
//! use blastlan::core::ProtocolConfig;
//!
//! let config = ProtocolConfig::default();
//! let data: Vec<u8> = (0..64 * 1024).map(|i| (i % 251) as u8).collect();
//!
//! let sender = BlastSender::new(7, data.clone().into(), &config);
//! let receiver = BlastReceiver::new(7, data.len(), &config);
//! let mut harness = Harness::new(sender, receiver, LossPlan::random(42, 1, 10_000));
//! let outcome = harness.run().expect("transfer completes");
//! assert_eq!(harness.received_data(), &data[..]);
//! println!("sent {} packets ({} retransmitted)",
//!          outcome.sender.data_packets_sent,
//!          outcome.sender.data_packets_retransmitted);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use blast_analytic as analytic;
pub use blast_core as core;
pub use blast_node as node;
/// The node's control surface, re-exported at the top level: build a
/// sharded node with [`NodeBuilder`], drive it through [`NodeHandle`],
/// talk to it with a [`Client`] (push/pull/stats plus third-party
/// `copy_to`/`copy_from`/`fan_out`), and share a blob catalogue
/// through the object-safe [`Store`] trait.
pub use blast_node::{
    shared_store, Client, CopyReport, MemStore, NodeBuilder, NodeHandle, SharedStore, Store,
};
pub use blast_sim as sim;
pub use blast_stats as stats;
pub use blast_telemetry as telemetry;
/// The flight recorder's handles, re-exported at the top level: create
/// a [`Telemetry`] (or get one from `NodeBuilder::telemetry`), thread
/// [`Recorder`]s through engines and drivers, and drain the merged
/// stream into `telemetry::export::{jsonl, chrome_trace}`.
pub use blast_telemetry::{Recorder, Telemetry};
pub use blast_udp as udp;
pub use blast_vkernel as vkernel;
pub use blast_wire as wire;

/// Compile-checks every code block in the README.
#[cfg(doctest)]
#[doc = include_str!("../README.md")]
pub struct ReadmeDoctests;
