//! Transmission control: adaptive retransmission timeouts and paced
//! blast rounds.
//!
//! The paper's protocols are tuned by two knobs the text calls out
//! explicitly: the retransmission interval `Tr` (Figures 5/6 sweep it
//! from `To(D)` to `100 × To(1)`) and the rate at which a blast is
//! offered to the receiving interface (§3's *interface errors* are
//! exactly what happens when the sender overruns it).  On 1985 hardware
//! both were fixed constants; on a modern stack neither survives
//! contact with a shared socket buffer:
//!
//! * a fixed `Tr` is either so short it fires spuriously under load or
//!   so long that one lost round-0 packet stalls the transfer for the
//!   whole interval — [`RttEstimator`] replaces it with the classic
//!   Jacobson/Karn estimator (SRTT + RTTVAR, exponential backoff on
//!   retransmission, samples only from unambiguous exchanges);
//! * dumping a whole round into the socket in one loop overruns the
//!   receive buffer exactly like the paper's single-buffered interface —
//!   [`Pacer`] spreads each round into bursts separated by a configured
//!   gap, expressed through the ordinary timer machinery
//!   ([`PACE_TIMER`]) so every driver honours it without new I/O
//!   vocabulary.
//!
//! Both knobs keep their paper-faithful degenerate modes:
//! [`AdaptiveTimeout::Fixed`] is the fixed `Tr` every analytic-model
//! test pins, and [`PacingConfig::off`] is the paper's full-speed blast.

use std::time::Duration;

use crate::api::TimerToken;

/// The timer token engines arm between paced bursts of one round.
///
/// Chosen above `u32::MAX` so it can never collide with the
/// sliding-window sender's per-sequence tokens (sequence numbers are
/// `u32`) nor with the blast/stop-and-wait retransmission token `0`.
pub const PACE_TIMER: TimerToken = TimerToken(1 << 32);

/// Retransmission-timeout policy for a transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AdaptiveTimeout {
    /// The paper's fixed retransmission interval `Tr`: every timeout
    /// waits exactly this long, regardless of observed round trips.
    /// The degenerate mode the analytic model and the calibrated
    /// simulator tests pin.
    Fixed(Duration),
    /// Jacobson/Karn adaptive RTO: seeded at `initial` until the first
    /// round-trip sample, then `SRTT + 4 × RTTVAR`, clamped to
    /// `[min, max]`, doubled on every retransmission timeout.
    Adaptive {
        /// RTO before the first RTT sample.
        initial: Duration,
        /// Lower clamp on the computed RTO.
        min: Duration,
        /// Upper clamp on the computed RTO (and on backoff).
        max: Duration,
    },
}

impl AdaptiveTimeout {
    /// Adaptive defaults for a LAN/loopback path: start at 25 ms (well
    /// under the paper's 173 ms `To(D)`), clamp to [2 ms, 2 s].
    pub fn lan() -> Self {
        AdaptiveTimeout::Adaptive {
            initial: Duration::from_millis(25),
            min: Duration::from_millis(2),
            max: Duration::from_secs(2),
        }
    }

    /// The timeout in force before any RTT sample: the fixed value, or
    /// the adaptive seed.
    pub fn initial(&self) -> Duration {
        match self {
            AdaptiveTimeout::Fixed(d) => *d,
            AdaptiveTimeout::Adaptive { initial, .. } => *initial,
        }
    }

    /// True for the adaptive mode.
    pub fn is_adaptive(&self) -> bool {
        matches!(self, AdaptiveTimeout::Adaptive { .. })
    }

    /// Validation error, if any (used by `ProtocolConfig::validated`).
    pub(crate) fn invalid(&self) -> Option<&'static str> {
        match self {
            AdaptiveTimeout::Fixed(d) if d.is_zero() => Some("retransmission timeout must be > 0"),
            AdaptiveTimeout::Adaptive { initial, min, max } => {
                if initial.is_zero() || min.is_zero() {
                    Some("adaptive timeout bounds must be > 0")
                } else if min > max || initial > max || initial < min {
                    Some("adaptive timeout requires min <= initial <= max")
                } else {
                    None
                }
            }
            _ => None,
        }
    }
}

impl From<Duration> for AdaptiveTimeout {
    /// A plain `Duration` is the fixed (paper) mode — so existing
    /// `cfg.timeout = Duration::from_millis(15).into()` call sites stay
    /// one-liners.
    fn from(d: Duration) -> Self {
        AdaptiveTimeout::Fixed(d)
    }
}

/// Jacobson/Karn round-trip estimator (RFC 6298 constants: gains 1/8
/// and 1/4, variance multiplier 4), with the fixed mode folded in as a
/// degenerate case so engines hold exactly one timeout source.
///
/// Karn's algorithm is the *caller's* half of the contract: feed
/// [`sample`](RttEstimator::sample) only round trips whose request was
/// transmitted exactly once (an ack following any retransmission is
/// ambiguous), and call [`backoff`](RttEstimator::backoff) on every
/// retransmission timeout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RttEstimator {
    /// Smoothed RTT in nanoseconds; `None` until the first sample.
    srtt_ns: Option<u64>,
    /// RTT variance in nanoseconds.
    rttvar_ns: u64,
    /// Current RTO in nanoseconds.
    rto_ns: u64,
    min_ns: u64,
    max_ns: u64,
    /// Fixed mode: `sample` and `backoff` are no-ops.
    fixed: bool,
}

impl RttEstimator {
    /// An estimator implementing `policy`.
    pub fn new(policy: &AdaptiveTimeout) -> Self {
        match *policy {
            AdaptiveTimeout::Fixed(d) => {
                let ns = d.as_nanos() as u64;
                RttEstimator {
                    srtt_ns: None,
                    rttvar_ns: 0,
                    rto_ns: ns,
                    min_ns: ns,
                    max_ns: ns,
                    fixed: true,
                }
            }
            AdaptiveTimeout::Adaptive { initial, min, max } => RttEstimator {
                srtt_ns: None,
                rttvar_ns: 0,
                rto_ns: initial.as_nanos() as u64,
                min_ns: min.as_nanos() as u64,
                max_ns: max.as_nanos() as u64,
                fixed: false,
            },
        }
    }

    /// The retransmission timeout currently in force.
    pub fn rto(&self) -> Duration {
        Duration::from_nanos(self.rto_ns)
    }

    /// The smoothed round-trip estimate, once at least one sample has
    /// been taken (always `None` in fixed mode).
    pub fn srtt(&self) -> Option<Duration> {
        self.srtt_ns.map(Duration::from_nanos)
    }

    /// Feed one **unambiguous** round-trip measurement (Karn: the
    /// request was transmitted exactly once).  No-op in fixed mode.
    pub fn sample(&mut self, rtt: Duration) {
        if self.fixed {
            return;
        }
        let r = rtt.as_nanos() as u64;
        match self.srtt_ns {
            None => {
                // RFC 6298 §2.2: SRTT = R, RTTVAR = R/2.
                self.srtt_ns = Some(r);
                self.rttvar_ns = r / 2;
            }
            Some(srtt) => {
                // RTTVAR = 3/4·RTTVAR + 1/4·|SRTT − R|;
                // SRTT = 7/8·SRTT + 1/8·R.
                let delta = srtt.abs_diff(r);
                self.rttvar_ns = self.rttvar_ns - self.rttvar_ns / 4 + delta / 4;
                self.srtt_ns = Some(srtt - srtt / 8 + r / 8);
            }
        }
        let srtt = self.srtt_ns.expect("just set");
        self.rto_ns = (srtt + 4 * self.rttvar_ns.max(1)).clamp(self.min_ns, self.max_ns);
    }

    /// Exponential backoff after a retransmission timeout (Karn's
    /// second half), capped at the configured maximum.  No-op in fixed
    /// mode.
    pub fn backoff(&mut self) {
        if self.fixed {
            return;
        }
        self.rto_ns = self.rto_ns.saturating_mul(2).min(self.max_ns);
    }
}

/// How a multi-packet round is offered to the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PacingConfig {
    /// Packets emitted back-to-back before the engine yields for
    /// [`gap`](PacingConfig::gap).  `0` disables pacing (the paper's
    /// full-speed blast).
    pub burst: u32,
    /// Inter-burst gap, expressed through [`PACE_TIMER`].
    pub gap: Duration,
}

impl Default for PacingConfig {
    fn default() -> Self {
        PacingConfig::off()
    }
}

impl PacingConfig {
    /// No pacing: every round goes out in one loop (the paper's mode).
    pub fn off() -> Self {
        PacingConfig {
            burst: 0,
            gap: Duration::ZERO,
        }
    }

    /// Pace `burst` packets per `gap`.
    pub fn new(burst: u32, gap: Duration) -> Self {
        PacingConfig { burst, gap }
    }

    /// LAN/loopback defaults: 32 packets per 500 µs — ≈ 90 MB/s ceiling
    /// at 1400-byte payloads, far above a single session's goodput but
    /// low enough that a burst no longer dumps a quarter-megabyte round
    /// into `SO_RCVBUF` in one scheduler quantum.
    pub fn lan() -> Self {
        PacingConfig::new(32, Duration::from_micros(500))
    }

    /// True when pacing is in force.
    pub fn enabled(&self) -> bool {
        self.burst > 0 && !self.gap.is_zero()
    }

    /// Validation error, if any.
    pub(crate) fn invalid(&self) -> Option<&'static str> {
        if self.burst > 0 && self.gap.is_zero() {
            Some("pacing burst requires a non-zero gap")
        } else {
            None
        }
    }
}

/// The per-engine pacing governor: answers "how many packets may this
/// burst emit" so the emission loops stay branch-light.
#[derive(Debug, Clone, Copy)]
pub struct Pacer {
    cfg: PacingConfig,
}

impl Pacer {
    /// A pacer enforcing `cfg`.
    pub fn new(cfg: PacingConfig) -> Self {
        Pacer { cfg }
    }

    /// True when bursts are bounded.
    pub fn enabled(&self) -> bool {
        self.cfg.enabled()
    }

    /// Packets the current burst may emit (`u32::MAX` when unpaced).
    pub fn burst_budget(&self) -> u32 {
        if self.cfg.enabled() {
            self.cfg.burst
        } else {
            u32::MAX
        }
    }

    /// The inter-burst gap.
    pub fn gap(&self) -> Duration {
        self.cfg.gap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_mode_is_inert() {
        let mut e = RttEstimator::new(&AdaptiveTimeout::Fixed(Duration::from_millis(173)));
        assert_eq!(e.rto(), Duration::from_millis(173));
        e.sample(Duration::from_micros(20));
        e.backoff();
        e.backoff();
        assert_eq!(e.rto(), Duration::from_millis(173), "fixed stays fixed");
        assert_eq!(e.srtt(), None);
    }

    #[test]
    fn first_sample_seeds_srtt_and_variance() {
        let mut e = RttEstimator::new(&AdaptiveTimeout::lan());
        assert_eq!(e.rto(), Duration::from_millis(25));
        e.sample(Duration::from_millis(10));
        assert_eq!(e.srtt(), Some(Duration::from_millis(10)));
        // RTO = SRTT + 4·(SRTT/2) = 3·SRTT = 30 ms.
        assert_eq!(e.rto(), Duration::from_millis(30));
    }

    #[test]
    fn constant_rtt_converges_to_min_clamp() {
        let mut e = RttEstimator::new(&AdaptiveTimeout::Adaptive {
            initial: Duration::from_millis(100),
            min: Duration::from_millis(1),
            max: Duration::from_secs(1),
        });
        for _ in 0..100 {
            e.sample(Duration::from_micros(500));
        }
        let srtt = e.srtt().unwrap();
        assert!(
            srtt.abs_diff(Duration::from_micros(500)) < Duration::from_micros(5),
            "srtt converges to the true rtt, got {srtt:?}"
        );
        // Variance decays toward zero, so the RTO hits the min clamp.
        assert_eq!(e.rto(), Duration::from_millis(1));
    }

    #[test]
    fn backoff_doubles_and_saturates() {
        let mut e = RttEstimator::new(&AdaptiveTimeout::Adaptive {
            initial: Duration::from_millis(10),
            min: Duration::from_millis(1),
            max: Duration::from_millis(100),
        });
        let mut prev = e.rto();
        for _ in 0..10 {
            e.backoff();
            assert!(e.rto() >= prev, "backoff is monotone");
            prev = e.rto();
        }
        assert_eq!(e.rto(), Duration::from_millis(100), "capped at max");
    }

    #[test]
    fn sample_after_backoff_recovers() {
        let mut e = RttEstimator::new(&AdaptiveTimeout::lan());
        e.sample(Duration::from_millis(4));
        for _ in 0..6 {
            e.backoff();
        }
        assert!(e.rto() > Duration::from_millis(100));
        // One valid sample recomputes from SRTT/RTTVAR, collapsing the
        // backed-off value.
        e.sample(Duration::from_millis(4));
        assert!(e.rto() < Duration::from_millis(20), "rto {:?}", e.rto());
    }

    #[test]
    fn timeout_policy_validation() {
        assert!(AdaptiveTimeout::Fixed(Duration::ZERO).invalid().is_some());
        assert!(AdaptiveTimeout::Fixed(Duration::from_millis(1))
            .invalid()
            .is_none());
        assert!(AdaptiveTimeout::lan().invalid().is_none());
        assert!(AdaptiveTimeout::Adaptive {
            initial: Duration::from_millis(1),
            min: Duration::from_millis(2),
            max: Duration::from_millis(3),
        }
        .invalid()
        .is_some());
        assert!(AdaptiveTimeout::Adaptive {
            initial: Duration::from_millis(5),
            min: Duration::from_millis(2),
            max: Duration::from_millis(3),
        }
        .invalid()
        .is_some());
        let t: AdaptiveTimeout = Duration::from_millis(7).into();
        assert_eq!(t, AdaptiveTimeout::Fixed(Duration::from_millis(7)));
        assert_eq!(t.initial(), Duration::from_millis(7));
        assert!(!t.is_adaptive());
        assert!(AdaptiveTimeout::lan().is_adaptive());
    }

    #[test]
    fn pacer_budget_and_validation() {
        let p = Pacer::new(PacingConfig::off());
        assert!(!p.enabled());
        assert_eq!(p.burst_budget(), u32::MAX);

        let p = Pacer::new(PacingConfig::new(8, Duration::from_micros(100)));
        assert!(p.enabled());
        assert_eq!(p.burst_budget(), 8);
        assert_eq!(p.gap(), Duration::from_micros(100));

        assert!(PacingConfig::off().invalid().is_none());
        assert!(PacingConfig::lan().invalid().is_none());
        assert!(PacingConfig::new(4, Duration::ZERO).invalid().is_some());
    }
}
