//! Execution traces and timeline rendering.
//!
//! Figures 2 and 3 of the paper are timelines: which processor or wire
//! is busy with what, over time.  The simulator records every copy and
//! transmission as a [`TraceEvent`]; [`render_timeline`] draws them as
//! ASCII gantt rows — one row per (host, lane) — reproducing the
//! figures' structure directly from simulation.

use crate::time::SimTime;

/// What kind of activity a trace event describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Lane {
    /// A processor copying a packet into its interface (cost `C`/`Ca`).
    CpuCopyIn,
    /// A processor copying a packet out of its interface.
    CpuCopyOut,
    /// The wire transmitting a frame (cost `T`/`Ta`).
    Wire,
}

impl Lane {
    fn label(&self) -> &'static str {
        match self {
            Lane::CpuCopyIn => "copy-in ",
            Lane::CpuCopyOut => "copy-out",
            Lane::Wire => "wire    ",
        }
    }
}

/// One recorded activity interval.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Activity start.
    pub start: SimTime,
    /// Activity end.
    pub end: SimTime,
    /// Which host's resource (wire events use the *sender's* id).
    pub host: usize,
    /// Which resource.
    pub lane: Lane,
    /// Short label: `D3` = data packet seq 3, `A` = acknowledgement.
    pub label: String,
}

/// Render events as an ASCII timeline.
///
/// Each (host, lane) pair occupies one row (wire rows are shared and
/// shown once); time maps linearly onto `width` columns.  Data-packet
/// activity renders as the packet's sequence digit (mod 10), ack
/// activity as `a`, producing output directly comparable to the paper's
/// Figure 3.
pub fn render_timeline(events: &[TraceEvent], host_names: &[&str], width: usize) -> String {
    if events.is_empty() {
        return "(no trace)\n".to_string();
    }
    let t_end = events
        .iter()
        .map(|e| e.end.as_nanos())
        .max()
        .expect("non-empty");
    let t_end = t_end.max(1);
    let col_of = |t: SimTime| -> usize {
        ((t.as_nanos() as u128 * (width as u128 - 1)) / t_end as u128) as usize
    };

    // Row order: host 0 copy lanes, wire, host 1 copy lanes, ...
    let mut rows: Vec<(String, Vec<char>)> = Vec::new();
    let mut row_index: std::collections::BTreeMap<(usize, Lane), usize> =
        std::collections::BTreeMap::new();
    let mut hosts: Vec<usize> = events.iter().map(|e| e.host).collect();
    hosts.sort_unstable();
    hosts.dedup();

    // Copy rows per host.
    for &h in &hosts {
        for lane in [Lane::CpuCopyIn, Lane::CpuCopyOut] {
            if events.iter().any(|e| e.host == h && e.lane == lane) {
                let name = host_names.get(h).copied().unwrap_or("host");
                row_index.insert((h, lane), rows.len());
                rows.push((format!("{name:<10} {}", lane.label()), vec![' '; width]));
            }
        }
    }
    // One shared wire row.
    let wire_row = rows.len();
    rows.push((
        format!("{:<10} {}", "ether", Lane::Wire.label()),
        vec![' '; width],
    ));

    for e in events {
        let row = match e.lane {
            Lane::Wire => wire_row,
            lane => match row_index.get(&(e.host, lane)) {
                Some(&r) => r,
                None => continue,
            },
        };
        let c0 = col_of(e.start);
        let c1 = col_of(e.end).max(c0);
        let ch = e
            .label
            .strip_prefix('D')
            .and_then(|digits| digits.chars().last())
            .unwrap_or('a');
        for c in c0..=c1.min(width - 1) {
            rows[row].1[c] = ch;
        }
    }

    let mut out = String::new();
    for (label, cells) in rows {
        out.push_str(&label);
        out.push('|');
        out.extend(cells.iter());
        out.push('\n');
    }
    out.push_str(&format!(
        "{:<19}|0{}{:.3} ms\n",
        "time",
        " ".repeat(width.saturating_sub(10)),
        SimTime(t_end).as_ms()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::ms;

    fn ev(start: f64, end: f64, host: usize, lane: Lane, label: &str) -> TraceEvent {
        TraceEvent {
            start: SimTime::from_ms(start),
            end: SimTime::from_ms(end),
            host,
            lane,
            label: label.to_string(),
        }
    }

    #[test]
    fn renders_rows_per_host_and_shared_wire() {
        let events = vec![
            ev(0.0, 1.35, 0, Lane::CpuCopyIn, "D0"),
            ev(1.35, 2.17, 0, Lane::Wire, "D0"),
            ev(2.17, 3.52, 1, Lane::CpuCopyOut, "D0"),
            ev(3.52, 3.69, 1, Lane::CpuCopyIn, "A"),
            ev(3.69, 3.74, 1, Lane::Wire, "A"),
            ev(3.74, 3.91, 0, Lane::CpuCopyOut, "A"),
        ];
        let s = render_timeline(&events, &["sender", "receiver"], 60);
        assert!(s.contains("sender"));
        assert!(s.contains("receiver"));
        assert!(s.contains("ether"));
        // Data packets draw their sequence digit, acks draw 'a'.
        assert!(s.contains('0'));
        assert!(s.contains('a'));
        // Exactly one wire row.
        assert_eq!(s.matches("ether").count(), 1);
    }

    #[test]
    fn empty_trace() {
        assert_eq!(render_timeline(&[], &[], 40), "(no trace)\n");
    }

    #[test]
    fn data_label_uses_last_digit() {
        let events = vec![ev(0.0, 1.0, 0, Lane::CpuCopyIn, "D13")];
        let s = render_timeline(&events, &["h"], 30);
        assert!(s.contains('3'));
    }

    #[test]
    fn columns_scale_with_time() {
        let events = vec![
            ev(0.0, 1.0, 0, Lane::Wire, "D0"),
            ev(9.0, 10.0, 0, Lane::Wire, "D1"),
        ];
        let s = render_timeline(&events, &["h"], 50);
        let wire_line = s.lines().find(|l| l.starts_with("ether")).unwrap();
        let first = wire_line.find('0').unwrap();
        let last = wire_line.rfind('1').unwrap();
        assert!(
            last > first + 30,
            "events 10x apart should be far apart: {wire_line}"
        );
    }

    #[test]
    fn time_axis_shows_extent() {
        let events = vec![ev(0.0, 4.08, 0, Lane::Wire, "D0")];
        let s = render_timeline(&events, &["h"], 40);
        assert!(s.contains("4.080 ms"));
    }

    #[test]
    fn lane_ordering_is_stable() {
        let _ = SimTime::ZERO + ms(1.0); // exercise helper import
        let events = vec![
            ev(0.0, 1.0, 1, Lane::CpuCopyOut, "D0"),
            ev(0.0, 1.0, 0, Lane::CpuCopyIn, "D0"),
        ];
        let s = render_timeline(&events, &["a", "b"], 30);
        let a_pos = s.find("a         ").unwrap();
        let b_pos = s.find("b         ").unwrap();
        assert!(a_pos < b_pos, "host 0 rows come first:\n{s}");
    }
}
