//! Extension E2 — the DMA-interface discussion of §2.1.3, quantified.
//!
//! "Most DMA interfaces do not allow … a direct copy.  For instance,
//! the Excelan DMA interface first copies the data into on-board
//! buffers … The formulas derived above for the elapsed time therefore
//! remain valid, provided that C and Ca are … the time required for
//! the DMA processor to make the copies.  With the Excelan board, the
//! copy performed by the 8088 interface processor is much slower than
//! the copy performed by the 68000 host processor into the 3-Com
//! interface. … In summary, it seems that the elapsed time is not
//! significantly improved by using currently available DMA interfaces.
//! The amount of host processor utilization for network access is
//! decreased."
//!
//! This binary runs the three interface designs through the same
//! formulas/simulator and reports both metrics — elapsed time *and*
//! host-CPU time — making the trade-off the paper describes explicit.

use blast_analytic::{CostModel, ErrorFree};
use blast_bench::{run_transfer, Proto};
use blast_core::config::RetxStrategy;
use blast_sim::SimConfig;
use blast_stats::table::fmt_ms;
use blast_stats::Table;

fn main() {
    let n = 64u64;
    let bytes = 64 * 1024;
    let designs: [(&str, CostModel, bool); 3] = [
        ("3-Com (host copies)", CostModel::standalone_sun(), true),
        ("Excelan DMA (8088 copies)", CostModel::excelan_dma(), false),
        (
            "ideal DMA (copy at host speed)",
            CostModel::standalone_sun(),
            false,
        ),
    ];

    let mut t = Table::new(&[
        "interface",
        "blast 64 KB (ms)",
        "sim (ms)",
        "host CPU (ms)",
        "host CPU share",
    ])
    .with_title("Interface designs: elapsed time vs host-processor cost (64 KB blast)");

    for (name, cost, host_copies) in designs {
        let ef = ErrorFree::new(cost);
        let elapsed = ef.blast(n);
        let sim = run_transfer(
            Proto::Blast(RetxStrategy::GoBackN),
            bytes,
            SimConfig::standalone().with_cost(cost),
            None,
        )
        .elapsed_ms;
        let host_cpu = if host_copies {
            // Sender-side: N copies in + 1 ack copy out.
            n as f64 * cost.host_cpu_per_packet_host_copy() + cost.c_ack
        } else {
            n as f64 * cost.host_cpu_per_packet_dma()
        };
        t.row(&[
            name,
            &fmt_ms(elapsed),
            &fmt_ms(sim),
            &fmt_ms(host_cpu),
            &format!("{:.0} %", host_cpu / elapsed * 100.0),
        ]);
    }
    println!("{}", t.render());
    println!(
        "the paper's summary holds: the slow-copy DMA board *worsens* elapsed time\n\
         (the copy is on the critical path wherever it runs) while freeing the host\n\
         CPU; only a DMA engine as fast as the host's block move (bottom row) gets\n\
         both.  \"A processor with a fast block move operation, accompanied by very\n\
         high speed device memory, is more promising than any kind of special\n\
         purpose hardware on the interface.\""
    );

    println!();
    let host = ErrorFree::new(CostModel::standalone_sun());
    let dma = ErrorFree::new(CostModel::excelan_dma());
    let mut t = Table::new(&["size", "3-Com (ms)", "Excelan (ms)", "penalty"])
        .with_title("elapsed-time penalty of the slow-copy DMA path by size");
    for kb in [1u64, 4, 16, 64, 256] {
        let a = host.blast(kb);
        let b = dma.blast(kb);
        t.row(&[
            &format!("{kb} KB"),
            &fmt_ms(a),
            &fmt_ms(b),
            &format!("{:+.0} %", (b / a - 1.0) * 100.0),
        ]);
    }
    println!("{}", t.render());
}
