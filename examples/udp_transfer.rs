//! Bulk transfer over real UDP with configurable fault injection —
//! the modern incarnation of the paper's protocols.
//!
//! Usage: `cargo run --release --example udp_transfer -- [KB] [loss%] [strategy]`
//! e.g.   `cargo run --release --example udp_transfer -- 512 5 selective`
//!
//! Strategies: full-no-nack | full-nack | go-back-n | selective

use std::time::Duration;

use blastlan::core::config::RetxStrategy;
use blastlan::core::ProtocolConfig;
use blastlan::udp::channel::UdpChannel;
use blastlan::udp::fault::{FaultConfig, FaultyChannel};
use blastlan::udp::peer::{recv_data, send_data};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let kb: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(256);
    let loss_pct: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(5.0);
    let strategy = match args.get(3).map(String::as_str) {
        Some("full-no-nack") => RetxStrategy::FullNoNack,
        Some("full-nack") => RetxStrategy::FullNack,
        Some("selective") => RetxStrategy::Selective,
        _ => RetxStrategy::GoBackN,
    };

    let data: Vec<u8> = (0..kb * 1024)
        .map(|i| (i.wrapping_mul(31) % 256) as u8)
        .collect();
    println!("transferring {kb} KB over UDP loopback, {loss_pct}% injected loss, {strategy}\n");

    let (ca, cb) = UdpChannel::pair().unwrap();
    let mut cfg = ProtocolConfig::default();
    cfg.strategy = strategy;
    cfg.timeout = Duration::from_millis(20).into();
    cfg.max_retries = 100_000;

    // Faults injected on the sender side (data packets suffer the loss,
    // like the paper's receiving-interface overruns).
    let faulty = FaultyChannel::new(ca, FaultConfig::loss(loss_pct / 100.0), 0xF00D);

    let cfg2 = cfg.clone();
    let rx = std::thread::spawn(move || recv_data(cb, &cfg2).unwrap());
    let tx = send_data(faulty, 1, &data, &cfg).unwrap();
    let report = rx.join().unwrap();

    assert_eq!(report.data, data, "delivered bytes must be identical");
    println!(
        "sender:   {} data packets ({} retransmitted), {} rounds, {} timeouts",
        tx.stats.data_packets_sent,
        tx.stats.data_packets_retransmitted,
        tx.stats.retransmission_rounds,
        tx.stats.timeouts
    );
    println!(
        "receiver: {} packets placed, {} duplicates, {} acks ({} NACKs)",
        report.stats.data_packets_received,
        report.stats.duplicate_packets_received,
        report.stats.acks_sent,
        report.stats.nacks_sent
    );
    println!(
        "elapsed {:.1} ms, goodput {:.0} Mbit/s — data verified byte-identical",
        tx.elapsed.as_secs_f64() * 1e3,
        report.goodput_mbps(data.len())
    );
}
