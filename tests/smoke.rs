//! Workspace smoke test: the umbrella crate's re-exports are the
//! public face of the repository (`blastlan::core`, `blastlan::sim`,
//! …), so every alias must resolve and the README-facing quickstart
//! path must work end-to-end.  The doctest in `src/lib.rs` covers the
//! same flow as documentation; this test keeps it covered even when
//! doctests are skipped (e.g. `cargo test --tests`).

use blastlan::core::blast::{BlastReceiver, BlastSender};
use blastlan::core::harness::{Harness, LossPlan};
use blastlan::core::ProtocolConfig;

/// Every umbrella alias resolves to its crate: touch one public item
/// through each re-export so a broken alias fails to compile here.
#[test]
fn umbrella_reexports_resolve() {
    let _cost = blastlan::analytic::CostModel::vkernel_sun();
    let _cfg: blastlan::core::ProtocolConfig = ProtocolConfig::default();
    let _node = blastlan::node::NodeConfig::default();
    let _builder = blastlan::NodeBuilder::new().shards(2);
    let _store: blastlan::SharedStore = blastlan::shared_store();
    let _sim = blastlan::sim::SimConfig::standalone();
    let _stats = blastlan::stats::OnlineStats::new();
    let _udp = blastlan::udp::FaultConfig::none();
    let _vk = blastlan::vkernel::VCluster::new();
    let _mac = blastlan::wire::mac::MacAddr::BROADCAST;
}

/// The `src/lib.rs` quickstart, as a plain test: a 64 KB blast
/// transfer over the lossy harness delivers byte-identical data.
#[test]
fn quickstart_blast_transfer_completes() {
    let config = ProtocolConfig::default();
    let data: Vec<u8> = (0..64 * 1024).map(|i| (i % 251) as u8).collect();

    let sender = BlastSender::new(7, data.clone().into(), &config);
    let receiver = BlastReceiver::new(7, data.len(), &config);
    let mut harness = Harness::new(sender, receiver, LossPlan::random(42, 1, 10_000));
    let outcome = harness.run().expect("transfer completes");

    assert_eq!(harness.received_data(), &data[..]);
    assert!(
        outcome.sender.data_packets_sent >= 64,
        "64 KB is ≥ 64 packets"
    );
}
