//! Property-based tests: under *arbitrary* loss patterns, every protocol
//! eventually delivers byte-identical data or fails cleanly with
//! retries-exhausted — never corrupts, never deadlocks, never panics.
//!
//! This is the invariant the paper takes for granted ("this procedure
//! continues until all packets get to their destination", §3.2.3); here
//! it is machine-checked.

use std::sync::Arc;
use std::time::Duration;

use blast_core::blast::{BlastReceiver, BlastSender};
use blast_core::config::{ProtocolConfig, RetxStrategy};
use blast_core::harness::{Harness, HarnessError, LossPlan};
use blast_core::multiblast::MultiBlastSender;
use blast_core::saw::{SawReceiver, SawSender};
use blast_core::window::WindowSender;
use blast_core::CoreError;
use proptest::prelude::*;

fn payload(len: usize) -> Arc<[u8]> {
    (0..len)
        .map(|i| (i.wrapping_mul(2654435761) >> 7) as u8)
        .collect::<Vec<u8>>()
        .into()
}

fn strategy_from(idx: u8) -> RetxStrategy {
    RetxStrategy::ALL[(idx as usize) % RetxStrategy::ALL.len()]
}

/// Random-loss completion for the blast strategies.  Loss ≤ 25 %: with a
/// generous retry budget the transfer must complete with intact data.
fn check_blast(len: usize, strategy: RetxStrategy, seed: u64, loss_pct: u32) {
    let mut cfg = ProtocolConfig::default().with_strategy(strategy);
    cfg.max_retries = 50_000;
    cfg.timeout = Duration::from_millis(50).into();
    let data = payload(len);
    let mut h = Harness::new(
        BlastSender::new(1, data.clone(), &cfg),
        BlastReceiver::new(1, data.len(), &cfg),
        LossPlan::random(seed, loss_pct, 100),
    );
    match h.run() {
        Ok(_) => assert_eq!(h.received_data(), &data[..], "{strategy} seed={seed}"),
        Err(e) => panic!("{strategy} seed={seed} loss={loss_pct}%: {e}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn blast_survives_random_loss(
        len in 1usize..40_000,
        strategy_idx in 0u8..4,
        seed in any::<u64>(),
        loss_pct in 0u32..=25,
    ) {
        check_blast(len, strategy_from(strategy_idx), seed, loss_pct);
    }

    #[test]
    fn saw_survives_random_loss(
        len in 1usize..20_000,
        seed in any::<u64>(),
        loss_pct in 0u32..=25,
    ) {
        let mut cfg = ProtocolConfig::default();
        cfg.max_retries = 50_000;
        cfg.timeout = Duration::from_millis(20).into();
        let data = payload(len);
        let mut h = Harness::new(
            SawSender::new(1, data.clone(), &cfg),
            SawReceiver::new(1, data.len(), &cfg),
            LossPlan::random(seed, loss_pct, 100),
        );
        h.run().unwrap();
        prop_assert_eq!(h.received_data(), &data[..]);
    }

    #[test]
    fn window_survives_random_loss(
        len in 1usize..20_000,
        window in prop::option::of(1u32..16),
        seed in any::<u64>(),
        loss_pct in 0u32..=25,
    ) {
        let mut cfg = ProtocolConfig::default().with_window(window);
        cfg.max_retries = 50_000;
        cfg.timeout = Duration::from_millis(20).into();
        let data = payload(len);
        let mut h = Harness::new(
            WindowSender::new(1, data.clone(), &cfg),
            SawReceiver::new(1, data.len(), &cfg),
            LossPlan::random(seed, loss_pct, 100),
        );
        h.run().unwrap();
        prop_assert_eq!(h.received_data(), &data[..]);
    }

    #[test]
    fn multiblast_survives_random_loss(
        len in 1usize..40_000,
        chunk in 1u32..16,
        strategy_idx in 0u8..4,
        seed in any::<u64>(),
        loss_pct in 0u32..=20,
    ) {
        let mut cfg = ProtocolConfig::default()
            .with_strategy(strategy_from(strategy_idx))
            .with_multiblast_chunk(chunk);
        cfg.max_retries = 50_000;
        cfg.timeout = Duration::from_millis(50).into();
        let data = payload(len);
        let mut h = Harness::new(
            MultiBlastSender::new(1, data.clone(), &cfg),
            BlastReceiver::new(1, data.len(), &cfg),
            LossPlan::random(seed, loss_pct, 100),
        );
        h.run().unwrap();
        prop_assert_eq!(h.received_data(), &data[..]);
    }

    #[test]
    fn scripted_adversarial_drops_cannot_corrupt(
        len in 1usize..16_000,
        strategy_idx in 0u8..4,
        drops in proptest::collection::btree_set(0u64..60, 0..24),
    ) {
        // Drop any subset of the first 60 wire packets: the protocol must
        // still converge (retries are plentiful, losses are finite).
        let mut cfg = ProtocolConfig::default().with_strategy(strategy_from(strategy_idx));
        cfg.max_retries = 50_000;
        cfg.timeout = Duration::from_millis(50).into();
        let data = payload(len);
        let mut h = Harness::new(
            BlastSender::new(1, data.clone(), &cfg),
            BlastReceiver::new(1, data.len(), &cfg),
            LossPlan::script(drops.into_iter().collect::<Vec<_>>()),
        );
        h.run().unwrap();
        prop_assert_eq!(h.received_data(), &data[..]);
    }

    #[test]
    fn exhaustion_is_clean_not_corrupt(
        len in 1usize..8_000,
        strategy_idx in 0u8..4,
        retries in 1u32..6,
    ) {
        // 100 % loss: the sender must fail with RetriesExhausted after
        // exactly the configured budget — no hang, no partial success.
        let mut cfg = ProtocolConfig::default().with_strategy(strategy_from(strategy_idx));
        cfg.max_retries = retries;
        cfg.timeout = Duration::from_millis(5).into();
        let data = payload(len);
        let mut h = Harness::new(
            BlastSender::new(1, data.clone(), &cfg),
            BlastReceiver::new(1, data.len(), &cfg),
            LossPlan::random(9, 1, 1),
        );
        match h.run() {
            Err(HarnessError::TransferFailed(CoreError::RetriesExhausted { retries: r })) => {
                prop_assert_eq!(r, retries);
            }
            other => prop_assert!(false, "expected clean exhaustion, got {:?}", other),
        }
    }

    #[test]
    fn retransmission_accounting_is_consistent(
        len in 1024usize..32_000,
        strategy_idx in 0u8..4,
        seed in any::<u64>(),
    ) {
        let mut cfg = ProtocolConfig::default().with_strategy(strategy_from(strategy_idx));
        cfg.max_retries = 50_000;
        cfg.timeout = Duration::from_millis(50).into();
        let data = payload(len);
        let mut h = Harness::new(
            BlastSender::new(1, data.clone(), &cfg),
            BlastReceiver::new(1, data.len(), &cfg),
            LossPlan::random(seed, 1, 10),
        );
        let outcome = h.run().unwrap();
        let s = outcome.sender;
        let r = outcome.receiver;
        let total = blast_core::ProtocolConfig::default().packets_for(len) as u64;
        // Fresh transmissions = sent − retransmitted = exactly D.
        prop_assert_eq!(s.data_packets_sent - s.data_packets_retransmitted, total);
        // The receiver placed exactly D distinct packets.
        prop_assert_eq!(r.data_packets_received, total);
        // Everything else it saw was a duplicate.
        prop_assert!(r.duplicate_packets_received <= s.data_packets_sent - total);
    }
}
