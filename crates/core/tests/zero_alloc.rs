//! Proof of the zero-allocation hot path: a counting global allocator
//! wraps `System`, and a full blast round trip is driven by hand with
//! the counter watched at each phase.
//!
//! The claim (and the paper's point, translated to 2020s software): the
//! per-packet cost of a steady-state transfer must not include heap
//! allocation.  Concretely —
//!
//! * blasting every data packet and placing it at the receiver performs
//!   **exactly zero** allocations once the shared [`BufferPool`] is
//!   warm, and
//! * the *entire* second transfer allocates only the two boxed
//!   completion reports, i.e. allocations-per-packet ≈ 0.03 for a
//!   64-packet transfer and falling with size.
//!
//! This file contains a single `#[test]` on purpose: the allocation
//! counter is process-global, and a sibling test running on another
//! thread would pollute the measured window.

use std::sync::Arc;
use std::time::Duration;

use blast_core::api::Action;
use blast_core::blast::{BlastReceiver, BlastSender};
use blast_core::control::{PacingConfig, PACE_TIMER};
use blast_core::{Engine, ProtocolConfig};
use blast_counting_alloc::{allocations, CountingAlloc};
use blast_wire::packet::Datagram;

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const PACKETS: usize = 64;
const BYTES: usize = PACKETS * 1024;

/// Drive one complete blast transfer by hand (no harness, so the event
/// queue cannot blur the measurement), reusing the caller's sinks.
fn run_transfer(
    id: u32,
    payload: &Arc<[u8]>,
    cfg: &ProtocolConfig,
    sink: &mut Vec<Action>,
    out: &mut Vec<Action>,
    sender_out: &mut Vec<Action>,
) {
    let mut s = BlastSender::new(id, payload.clone(), cfg);
    let mut r = BlastReceiver::new(id, payload.len(), cfg);
    s.start(sink);
    for a in sink.iter() {
        if let Some(pkt) = a.as_transmit() {
            let d = Datagram::parse(pkt).expect("engine emits well-formed packets");
            r.on_datagram(&d, out);
        }
    }
    let ack = out
        .iter()
        .find_map(Action::as_transmit)
        .expect("receiver acks the reliable tail");
    let d = Datagram::parse(ack).expect("well-formed ack");
    s.on_datagram(&d, sender_out);
    assert!(s.is_finished() && r.is_finished());
    sink.clear();
    out.clear();
    sender_out.clear();
}

#[test]
fn steady_state_blast_round_trip_allocates_zero_per_packet() {
    let cfg = ProtocolConfig::default();
    // Warm the shared pool past the blast's in-flight high-water mark.
    cfg.pool.warm(PACKETS + 4);
    let payload: Arc<[u8]> = (0..BYTES)
        .map(|i| (i * 31 % 251) as u8)
        .collect::<Vec<u8>>()
        .into();

    // Pre-size every sink the measured transfer will use, and run one
    // full warm-up transfer so first-use growth is out of the picture.
    let mut sink: Vec<Action> = Vec::with_capacity(2 * PACKETS + 8);
    let mut out: Vec<Action> = Vec::with_capacity(8);
    let mut sender_out: Vec<Action> = Vec::with_capacity(8);
    run_transfer(1, &payload, &cfg, &mut sink, &mut out, &mut sender_out);

    // ---- measured transfer ----
    let mut s = BlastSender::new(2, payload.clone(), &cfg);
    let mut r = BlastReceiver::new(2, payload.len(), &cfg);

    // Phase A — the steady-state packet loop: blast all packets, place
    // all but the reliable tail.  Zero allocations, exactly.
    let before = allocations();
    s.start(&mut sink);
    for a in sink.iter().take(PACKETS - 1) {
        let pkt = a.as_transmit().expect("round 0 leads with data packets");
        let d = Datagram::parse(pkt).expect("well-formed packet");
        r.on_datagram(&d, &mut out);
        assert!(out.is_empty(), "mid-sequence packets emit nothing");
    }
    let steady = allocations() - before;
    assert_eq!(
        steady,
        0,
        "steady-state send+receive of {} packets must not allocate",
        PACKETS - 1
    );

    // Phase B — the tail: one pooled ack plus the two boxed completion
    // reports are the transfer's entire allocation budget.
    let before_tail = allocations();
    let tail = sink[PACKETS - 1].as_transmit().expect("reliable tail");
    let d = Datagram::parse(tail).expect("well-formed tail");
    r.on_datagram(&d, &mut out);
    assert!(r.is_finished());
    let ack = out
        .iter()
        .find_map(Action::as_transmit)
        .expect("single blast ack");
    let d = Datagram::parse(ack).expect("well-formed ack");
    s.on_datagram(&d, &mut sender_out);
    assert!(s.is_finished());
    let tail_allocs = allocations() - before_tail;
    assert!(
        tail_allocs <= 2,
        "completing the transfer may allocate at most the two boxed \
         completion reports, got {tail_allocs}"
    );

    // Headline number: allocations per packet over the whole transfer.
    let per_packet = (steady + tail_allocs) as f64 / PACKETS as f64;
    assert!(
        per_packet < 0.05,
        "allocations per packet should be ~0, got {per_packet}"
    );
    assert_eq!(r.data(), &payload[..], "and the bytes still arrive intact");

    // Phase C — pacing must not allocate per packet either: a paced
    // round recycles the same pooled buffers (batch-checked-out, one
    // pool lock per burst), and the pace-timer and AIMD bookkeeping
    // (burst growth/shrink, trajectory counters) are all in-place
    // state.  Engines are built before the measured window (their
    // burst stash is pre-sized at construction, like the receiver's
    // buffer in the paper's pre-allocation premise).
    let paced_cfg =
        cfg.clone()
            .with_pacing(PacingConfig::aimd(8, Duration::from_millis(1), 2, 16, 4));
    let mut s = BlastSender::new(3, payload.clone(), &paced_cfg);
    let mut r = BlastReceiver::new(3, payload.len(), &paced_cfg);
    sink.clear();
    out.clear();
    sender_out.clear();

    let before_paced = allocations();
    s.start(&mut sink);
    // Drive the pace timer until the whole round (tail included) is out.
    let mut guard = 0;
    while sink.iter().filter(|a| a.as_transmit().is_some()).count() < PACKETS {
        s.on_timer(PACE_TIMER, &mut sink);
        guard += 1;
        assert!(guard <= PACKETS, "paced round failed to drain");
    }
    // Deliver everything but the tail: the steady paced loop.
    let mut delivered = 0;
    for a in sink.iter() {
        if let Some(pkt) = a.as_transmit() {
            delivered += 1;
            if delivered == PACKETS {
                break; // the tail is phase-D territory
            }
            let d = Datagram::parse(pkt).expect("well-formed paced packet");
            r.on_datagram(&d, &mut out);
            assert!(out.is_empty(), "mid-round paced packets emit nothing");
        }
    }
    let paced_steady = allocations() - before_paced;
    assert_eq!(
        paced_steady, 0,
        "a paced round must stay allocation-free per packet"
    );

    // Paced tail: same budget as the unpaced one — the ack buffer is
    // pooled and only the two completion reports are boxed.
    let before_paced_tail = allocations();
    let tail = sink
        .iter()
        .filter_map(Action::as_transmit)
        .nth(PACKETS - 1)
        .expect("paced reliable tail");
    let d = Datagram::parse(tail).expect("well-formed tail");
    r.on_datagram(&d, &mut out);
    assert!(r.is_finished());
    let ack = out
        .iter()
        .find_map(Action::as_transmit)
        .expect("single paced blast ack");
    let d = Datagram::parse(ack).expect("well-formed ack");
    s.on_datagram(&d, &mut sender_out);
    assert!(s.is_finished());
    let paced_tail_allocs = allocations() - before_paced_tail;
    assert!(
        paced_tail_allocs <= 2,
        "paced completion budget exceeded: {paced_tail_allocs}"
    );
    assert_eq!(r.data(), &payload[..], "paced bytes arrive intact");

    // Phase E — rate-based pacing: the delivery-rate estimator is two
    // fixed-size rings inside the (Copy) pacer, the gain cycle is a
    // counter, and taking a rate sample at the status report is pure
    // arithmetic — so the whole BBR-flavoured mode rides the same
    // zero-allocation budget as AIMD.
    let rate_cfg = cfg.clone().with_pacing(PacingConfig::rate_based(
        8,
        Duration::from_millis(1),
        2,
        16,
        4,
    ));
    let mut s = BlastSender::new(4, payload.clone(), &rate_cfg);
    let mut r = BlastReceiver::new(4, payload.len(), &rate_cfg);
    sink.clear();
    out.clear();
    sender_out.clear();

    let before_rate = allocations();
    s.start(&mut sink);
    let mut guard = 0;
    while sink.iter().filter(|a| a.as_transmit().is_some()).count() < PACKETS {
        s.on_timer(PACE_TIMER, &mut sink);
        guard += 1;
        assert!(guard <= PACKETS, "rate-paced round failed to drain");
    }
    let mut delivered = 0;
    for a in sink.iter() {
        if let Some(pkt) = a.as_transmit() {
            delivered += 1;
            if delivered == PACKETS {
                break;
            }
            let d = Datagram::parse(pkt).expect("well-formed rate-paced packet");
            r.on_datagram(&d, &mut out);
            assert!(out.is_empty(), "mid-round rate-paced packets emit nothing");
        }
    }
    let rate_steady = allocations() - before_rate;
    assert_eq!(
        rate_steady, 0,
        "a rate-paced round must stay allocation-free per packet"
    );

    // Rate-paced tail: the status report also feeds the estimator (a
    // delivery-rate sample plus the min-RTT filter) — still only the
    // two boxed completion reports.
    let before_rate_tail = allocations();
    let tail = sink
        .iter()
        .filter_map(Action::as_transmit)
        .nth(PACKETS - 1)
        .expect("rate-paced reliable tail");
    let d = Datagram::parse(tail).expect("well-formed tail");
    r.on_datagram(&d, &mut out);
    assert!(r.is_finished());
    let ack = out
        .iter()
        .find_map(Action::as_transmit)
        .expect("single rate-paced blast ack");
    let d = Datagram::parse(ack).expect("well-formed ack");
    // Hand-driven, so the clock must advance by hand too: a zero-width
    // round is no delivery-rate sample (the estimator ignores it).
    s.set_now(Duration::from_micros(500));
    s.on_datagram(&d, &mut sender_out);
    assert!(s.is_finished());
    let rate_tail_allocs = allocations() - before_rate_tail;
    assert!(
        rate_tail_allocs <= 2,
        "rate-paced completion budget exceeded: {rate_tail_allocs}"
    );
    let snap = s.pacing_snapshot().expect("rate-based sender is paced");
    assert!(snap.rate_samples > 0, "the tail ack took a rate sample");
    assert_eq!(r.data(), &payload[..], "rate-paced bytes arrive intact");
}
